#!/usr/bin/env python3
"""Gate CI on the end-to-end tracing contract of ``--trace``.

Runs a genuine ``python -m repro sweep`` subprocess over a grid large
enough for two process-executor chunks (>=256 evaluation units), with
``--jobs 2 --executor process --trace``, then checks the exported file:

1. **Valid Chrome trace** -- the file parses as JSON with the
   ``traceEvents`` / ``displayTimeUnit`` / ``otherData`` document shape
   chrome://tracing and Perfetto accept.
2. **Cross-process spans** -- ``executor.chunk`` spans carry at least two
   distinct worker pids, none of them the parent's: the worker span
   batches crossed the fork boundary.
3. **Layer coverage** -- executor lifecycle spans (dedupe, dispatch,
   merge-back) and engine spans appear.
4. **Counter track** -- the final metrics samples include the cache-tier
   counters (``cache.*``) and the columnar-dispatch counters
   (``executor.columnar.*``), with totals consistent with the grid size.

Exits non-zero with a diagnostic when any property fails.  Usage (what
.github/workflows/ci.yml runs)::

    PYTHONPATH=src python tools/check_trace_smoke.py
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from typing import List, Optional

#: 5 TDPs x 4 ARs x 3 workloads x 5 PDNs = 300 units: two >=128-unit
#: process-executor chunks, small enough to stay quick on a CI runner.
SWEEP_ARGS = [
    "--tdps", "4", "8", "10", "18", "25",
    "--ars", "0.4", "0.5", "0.56", "0.6",
    "--workloads", "cpu_single_thread", "cpu_multi_thread", "graphics",
    "--jobs", "2",
    "--executor", "process",
    "--format", "json",
]
EXPECTED_UNITS = 5 * 4 * 3 * 5


def expect(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")


def main(argv: Optional[List[str]] = None) -> int:
    del argv  # no options: the gate is deliberately fixed
    with tempfile.TemporaryDirectory(prefix="repro-trace-smoke-") as tmp:
        trace_path = os.path.join(tmp, "trace.json")
        out_path = os.path.join(tmp, "sweep.json")
        command = [
            sys.executable, "-m", "repro", "sweep",
            *SWEEP_ARGS, "--output", out_path, "--trace", trace_path,
        ]
        print("trace smoke gate:", " ".join(command))
        completed = subprocess.run(
            command, env=os.environ.copy(), capture_output=True, text=True,
            timeout=600,
        )
        expect(
            completed.returncode == 0,
            f"sweep exited {completed.returncode}: {completed.stderr[-2000:]}",
        )
        try:
            document = json.loads(open(trace_path, encoding="utf-8").read())
        except (OSError, ValueError) as error:
            raise SystemExit(f"FAIL: trace file unreadable: {error}")

        expect(
            set(document) == {"traceEvents", "displayTimeUnit", "otherData"},
            f"unexpected document keys: {sorted(document)}",
        )
        expect(
            document["otherData"].get("producer") == "repro.obs",
            "missing producer marker in otherData",
        )
        events = document["traceEvents"]
        expect(bool(events), "trace contains no events")
        for event in events:
            expect(
                {"name", "ph", "ts", "pid", "tid"} <= set(event),
                f"malformed event: {event}",
            )

        spans = [event for event in events if event["ph"] == "X"]
        names = {event["name"] for event in spans}
        for required in ("executor.dedupe", "executor.dispatch",
                        "executor.merge_back", "executor.chunk",
                        "engine.run", "engine.columnar_block"):
            expect(required in names, f"missing span {required!r}")

        chunk_pids = {
            event["pid"] for event in spans if event["name"] == "executor.chunk"
        }
        dedupe_pids = {
            event["pid"] for event in spans if event["name"] == "executor.dedupe"
        }
        worker_pids = chunk_pids - dedupe_pids
        expect(
            len(worker_pids) >= 2,
            f"expected chunk spans from >=2 worker processes, got {chunk_pids}",
        )
        print(f"  worker pids in trace: {sorted(worker_pids)}")

        counters = {
            event["name"]: event["args"].get("value")
            for event in events
            if event["ph"] == "C" and event.get("cat") == "metrics"
        }
        for required in ("cache.memory.hits", "cache.disk.hits",
                        "cache.lookup.misses", "cache.installs",
                        "executor.columnar.units", "executor.chunks"):
            expect(required in counters, f"missing counter {required!r}")
        expect(
            counters["executor.columnar.units"]
            + counters.get("executor.scalar.units", 0)
            == EXPECTED_UNITS,
            f"dispatch counters cover {counters['executor.columnar.units']} "
            f"units, expected {EXPECTED_UNITS}",
        )
        lookups = (
            counters["cache.memory.hits"]
            + counters["cache.disk.hits"]
            + counters["cache.lookup.misses"]
        )
        expect(
            lookups == EXPECTED_UNITS,
            f"cache-tier counters cover {lookups} lookups, "
            f"expected {EXPECTED_UNITS}",
        )
        print(f"  events: {len(events)}, spans: {len(spans)}, "
              f"counters: {len(counters)}")
    print("OK: trace smoke gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
