#!/usr/bin/env python3
"""Compact a pytest-benchmark JSON file into the committed-baseline format.

Raw ``--benchmark-json`` output stores every per-round timing sample plus
full machine/commit metadata -- ~20k lines for the benchmark suite, almost
all of it noise for the regression gate, which only compares means.  This
tool strips a run down to per-benchmark summary statistics::

    {
      "format": "bench-baseline-compact/1",
      "datetime": "...",
      "machine": {"cpu": "...", "cpu_count": 1, "python": "3.11.7"},
      "benchmarks": {
        "test_bench_sweep_grid_cached": {
          "group": "sweep",
          "mean": 0.0123, "median": 0.0121, "stddev": 0.0004,
          "min": 0.0119, "max": 0.0182, "rounds": 57
        },
        ...
      }
    }

``tools/check_bench_regression.py`` reads both this format and the raw one.

Usage::

    PYTHONPATH=src python -m pytest benchmarks -q \
        --benchmark-json /tmp/BENCH_full.json
    python tools/compact_bench_baseline.py /tmp/BENCH_full.json \
        -o benchmarks/baseline/BENCH_sweep.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: The summary statistics kept per benchmark, in output order.
SUMMARY_STATS = ("mean", "median", "stddev", "min", "max", "rounds")

FORMAT_TAG = "bench-baseline-compact/1"


def compact(payload: dict) -> dict:
    """Reduce a raw pytest-benchmark payload to the compact baseline form."""
    entries = payload.get("benchmarks")
    if isinstance(entries, dict):  # already compact -- pass through
        return payload
    if not entries:
        raise SystemExit("error: no benchmarks in the input JSON")
    machine = payload.get("machine_info", {})
    benchmarks = {}
    for entry in sorted(entries, key=lambda e: e.get("name", "")):
        name = entry.get("name")
        stats = entry.get("stats", {})
        if not isinstance(name, str) or not isinstance(stats, dict):
            continue
        benchmarks[name] = {"group": entry.get("group")}
        benchmarks[name].update(
            {key: stats[key] for key in SUMMARY_STATS if key in stats}
        )
    return {
        "format": FORMAT_TAG,
        "datetime": payload.get("datetime"),
        "machine": {
            "cpu": machine.get("cpu", {}).get("brand_raw"),
            "cpu_count": machine.get("cpu", {}).get("count"),
            "python": machine.get("python_version"),
        },
        "benchmarks": benchmarks,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("input", type=Path, help="raw --benchmark-json output")
    parser.add_argument(
        "-o",
        "--output",
        type=Path,
        default=Path("benchmarks/baseline/BENCH_sweep.json"),
        help="compact baseline to write (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        payload = json.loads(args.input.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise SystemExit(f"error: cannot read {args.input}: {error}")
    compacted = compact(payload)
    args.output.write_text(
        json.dumps(compacted, indent=1, sort_keys=False) + "\n", encoding="utf-8"
    )
    print(
        f"wrote {args.output}: {len(compacted['benchmarks'])} benchmarks",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
