#!/usr/bin/env python3
"""Gate CI on the cross-run warm-start contract of the disk cache.

Runs the same workloads twice against one cache directory:

1. **Cold pass** -- real ``python -m repro`` subprocesses (``sweep``,
   ``simulate``, ``optimize``) populate the directory and write their JSON
   output to files, exactly as a user or CI job would.
2. **Warm pass** -- *this* process rebuilds fresh engines on the same
   directory, re-runs the identical workloads through the library, and
   asserts that (a) every evaluation unit is served from disk (zero
   recomputation; the disk tier reports hits covering the whole grid) and
   (b) the rendered output is byte-identical to the cold subprocess's.

Exits non-zero with a diagnostic when either property fails.  Usage (what
.github/workflows/ci.yml runs)::

    PYTHONPATH=src python tools/check_disk_cache_warm.py

An explicit ``--cache-dir`` keeps the directory around for inspection.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import List, Optional

SWEEP_TDPS = ["4", "18", "50"]
SWEEP_ARS = ["0.4", "0.56"]
SIM_SCENARIOS = ["duty-cycled-background", "race-to-idle"]
OPTIMIZE_PDNS = ["IVR", "LDO", "FlexWatts"]
OPTIMIZE_OBJECTIVES = ["etee", "bom"]


def run_cli(arguments: List[str], output: Path) -> None:
    """Run one cold ``python -m repro`` pass in a genuine subprocess."""
    command = [sys.executable, "-m", "repro", *arguments, "--output", str(output)]
    completed = subprocess.run(
        command, env=os.environ.copy(), capture_output=True, text=True
    )
    if completed.returncode != 0:
        raise SystemExit(
            f"error: cold pass {' '.join(arguments)} failed "
            f"({completed.returncode}):\n{completed.stderr}"
        )


def expect(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")


def compare(label: str, warm_text: str, cold_file: Path) -> None:
    cold_text = cold_file.read_text(encoding="utf-8").rstrip("\n")
    expect(
        warm_text.rstrip("\n") == cold_text,
        f"{label}: warm output differs from the cold subprocess output",
    )
    print(f"  {label}: warm output byte-identical to cold run")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cache-dir", default=None,
        help="cache directory to use (default: a fresh temporary directory)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory() as scratch:
        cache_dir = args.cache_dir or str(Path(scratch) / "cache")
        outputs = Path(scratch) / "outputs"
        outputs.mkdir()

        print(f"disk-cache warm-start gate (cache dir: {cache_dir})")
        print("cold pass: populating via python -m repro subprocesses ...")
        run_cli(
            ["sweep", "--tdps", *SWEEP_TDPS, "--ars", *SWEEP_ARS,
             "--format", "json", "--cache-dir", cache_dir],
            outputs / "sweep.json",
        )
        run_cli(
            ["simulate", "--scenario", *SIM_SCENARIOS, "--format", "json",
             "--cache-dir", cache_dir],
            outputs / "simulate.json",
        )
        run_cli(
            ["optimize", "--pdns", *OPTIMIZE_PDNS, "--objectives",
             *OPTIMIZE_OBJECTIVES, "--format", "json", "--cache-dir", cache_dir],
            outputs / "optimize.json",
        )

        print("warm pass: fresh engines in this process ...")
        from repro.analysis.pdnspot import PdnSpot
        from repro.cli import build_simulate_study, run_sweep
        from repro.sim.study import SimEngine

        # Sweep: assert disk hits cover the grid, nothing recomputed.
        spot = PdnSpot(disk_cache=cache_dir)
        sweep_text = run_sweep(
            spot,
            [float(value) for value in SWEEP_TDPS],
            ars=[float(value) for value in SWEEP_ARS],
            output_format="json",
        )
        info, disk = spot.cache_info(), spot.disk_cache.stats()
        expect(info.misses == 0, f"sweep recomputed {info.misses} units")
        expect(
            disk.hits == info.hits > 0,
            f"sweep: disk hits {disk.hits} do not cover the {info.hits} lookups",
        )
        print(f"  sweep: {disk.hits} units served from disk, 0 recomputed")
        compare("sweep", sweep_text, outputs / "sweep.json")

        # Simulate: every simulation replayed from the sim namespace.
        engine = SimEngine(disk_cache=cache_dir)
        sim_resultset = engine.run(build_simulate_study(SIM_SCENARIOS))
        sim_info, sim_disk = engine.cache_info(), engine.disk_cache.stats()
        expect(sim_info.misses == 0, f"simulate recomputed {sim_info.misses} runs")
        expect(
            sim_disk.hits == sim_info.hits > 0,
            f"simulate: disk hits {sim_disk.hits} do not cover "
            f"the {sim_info.hits} lookups",
        )
        print(f"  simulate: {sim_disk.hits} simulations replayed from disk")
        from repro.cli import _render  # the CLI's own JSON writer

        compare("simulate", _render(sim_resultset, "json"), outputs / "simulate.json")

        # Optimize: rebuild the CLI's exact search with an inspectable
        # evaluator so the disk-hit assertion covers this path too.
        from repro.cli import build_optimize_space
        from repro.optimize import CandidateEvaluator, resolve_objectives
        from repro.optimize.runner import run_optimization

        evaluator = CandidateEvaluator(
            resolve_objectives(OPTIMIZE_OBJECTIVES), cache_dir=cache_dir
        )
        outcome = run_optimization(
            build_optimize_space(OPTIMIZE_PDNS),
            objectives=OPTIMIZE_OBJECTIVES,
            evaluator=evaluator,
        )
        opt_info = evaluator.spot.cache_info()
        opt_disk = evaluator.spot.disk_cache.stats()
        expect(opt_info.misses == 0, f"optimize recomputed {opt_info.misses} units")
        expect(
            opt_disk.hits == opt_info.hits > 0,
            f"optimize: disk hits {opt_disk.hits} do not cover "
            f"the {opt_info.hits} lookups",
        )
        print(f"  optimize: {opt_disk.hits} units served from disk, 0 recomputed")
        compare("optimize", _render(outcome.results, "json"), outputs / "optimize.json")

    print("OK: second pass served from disk with identical results")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
