#!/usr/bin/env python3
"""Gate CI on pytest-benchmark results: fail on a >Nx cached-grid regression.

Compares a fresh ``--benchmark-json`` output against the committed baseline
(``benchmarks/baseline/BENCH_sweep.json``) and exits non-zero when the gated
benchmark's mean time regressed by more than ``--threshold`` (default 2x).

Because absolute timings differ between the machine that produced the
baseline and the CI runner, the gate can instead be expressed relative to a
reference benchmark from the *same* run with ``--relative-to``: the gated
quantity becomes ``mean(gated) / mean(reference)`` in both runs, which
cancels machine speed and isolates genuine efficiency regressions (for the
cached-grid benchmark: cache hits suddenly costing like misses).

The normalised gate has one deliberate blind spot: it moves when *either*
side of the ratio moves, so a PR that intentionally changes model evaluation
speed (the uncached reference) shifts the cached/uncached ratio without any
cache regression -- a big model speed-up can even trip the gate.  That is the
signal to **refresh the committed baseline in the same PR**::

    PYTHONPATH=src python -m pytest benchmarks -q \
        --benchmark-json /tmp/BENCH_full.json
    python tools/compact_bench_baseline.py /tmp/BENCH_full.json \
        -o benchmarks/baseline/BENCH_sweep.json

and commit the regenerated file alongside the model change, which re-anchors
the ratio.  A genuine cache regression (hits suddenly costing like misses)
moves only the numerator and fails the gate on an unchanged baseline.

The committed baseline uses the *compact* format (per-benchmark summary
stats only, no raw per-round samples); this script reads both the compact
format and raw ``--benchmark-json`` output interchangeably.

``--max-ratio`` adds a baseline-independent gate on the current run: with
``--relative-to`` it asserts ``mean(gated) / mean(reference) <= max-ratio``
on the CI machine itself.  CI uses it to require the vectorized columnar
path to beat the per-point path by at least 10x (``--max-ratio 0.1``).

Usage (what .github/workflows/ci.yml runs)::

    python tools/check_bench_regression.py BENCH_sweep.json \
        --baseline benchmarks/baseline/BENCH_sweep.json \
        --benchmark test_bench_sweep_grid_cached \
        --relative-to test_bench_sweep_grid_uncached \
        --threshold 2.0
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Optional


def load_means(path: Path) -> Dict[str, float]:
    """Benchmark name -> mean seconds from a benchmark JSON file.

    Accepts both supported layouts:

    * the raw ``pytest-benchmark --benchmark-json`` output, where
      ``benchmarks`` is a *list* of entries with full per-round ``stats``
      (including every raw timing sample), and
    * the compact committed-baseline format written by
      ``tools/compact_bench_baseline.py``, where ``benchmarks`` is a *dict*
      mapping benchmark name to per-group summary stats only.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise SystemExit(f"error: cannot read benchmark JSON {path}: {error}")
    means: Dict[str, float] = {}
    benchmarks = payload.get("benchmarks", [])
    if isinstance(benchmarks, dict):
        for name, stats in benchmarks.items():
            mean = stats.get("mean") if isinstance(stats, dict) else None
            if isinstance(name, str) and isinstance(mean, (int, float)):
                means[name] = float(mean)
    else:
        for entry in benchmarks:
            name = entry.get("name")
            mean = entry.get("stats", {}).get("mean")
            if isinstance(name, str) and isinstance(mean, (int, float)):
                means[name] = float(mean)
    if not means:
        raise SystemExit(f"error: no benchmarks found in {path}")
    return means


def gated_quantity(
    means: Dict[str, float], benchmark: str, relative_to: Optional[str], label: str
) -> float:
    """The gated mean (seconds), optionally normalised by a reference mean."""
    if benchmark not in means:
        raise SystemExit(
            f"error: benchmark {benchmark!r} not in the {label} run; "
            f"available: {', '.join(sorted(means))}"
        )
    value = means[benchmark]
    if relative_to is not None:
        if relative_to not in means:
            raise SystemExit(
                f"error: reference benchmark {relative_to!r} not in the {label} run"
            )
        reference = means[relative_to]
        if reference <= 0.0:
            raise SystemExit(f"error: reference mean in the {label} run is not positive")
        value /= reference
    return value


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="fresh --benchmark-json output")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/baseline/BENCH_sweep.json"),
        help="committed baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--benchmark",
        default="test_bench_sweep_grid_cached",
        help="benchmark name the gate applies to (default: %(default)s)",
    )
    parser.add_argument(
        "--relative-to",
        default=None,
        help="normalise the gated mean by this benchmark's mean from the "
        "same run (cancels machine speed between baseline and CI)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="maximum allowed current/baseline ratio (default: %(default)s)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=None,
        help="absolute ceiling on the gated quantity in the CURRENT run "
        "(requires --relative-to). E.g. --relative-to per_point "
        "--max-ratio 0.1 asserts the gated benchmark runs at least 10x "
        "faster than the reference on this very machine, independent of "
        "the committed baseline.",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0.0:
        parser.error("--threshold must be positive")
    if args.max_ratio is not None:
        if args.max_ratio <= 0.0:
            parser.error("--max-ratio must be positive")
        if args.relative_to is None:
            parser.error("--max-ratio needs --relative-to (it gates a ratio)")

    current_means = load_means(args.current)
    baseline_means = load_means(args.baseline)
    current = gated_quantity(current_means, args.benchmark, args.relative_to, "current")
    baseline = gated_quantity(baseline_means, args.benchmark, args.relative_to, "baseline")
    if baseline <= 0.0:
        raise SystemExit("error: baseline quantity is not positive")
    ratio = current / baseline

    unit = "x vs reference" if args.relative_to else " s"
    print(f"benchmark-regression gate: {args.benchmark}")
    if args.relative_to:
        print(f"  normalised by:   {args.relative_to}")
    print(f"  baseline:        {baseline:.6g}{unit}")
    print(f"  current:         {current:.6g}{unit}")
    print(f"  ratio:           {ratio:.3f} (threshold {args.threshold:g})")

    # Informational comparison of every benchmark the two runs share.
    shared = sorted(set(current_means) & set(baseline_means))
    if shared:
        print("  shared benchmarks (current/baseline mean):")
        for name in shared:
            if baseline_means[name] > 0.0:
                print(
                    f"    {name}: {current_means[name] / baseline_means[name]:.3f}"
                )

    failed = False
    if args.max_ratio is not None:
        print(f"  max-ratio gate:  {current:.6g} <= {args.max_ratio:g} required")
        if current > args.max_ratio:
            print(
                f"FAIL: {args.benchmark} is {current:.3g}x the reference "
                f"{args.relative_to} (> {args.max_ratio:g}x allowed)",
                file=sys.stderr,
            )
            failed = True

    if ratio > args.threshold:
        print(
            f"FAIL: {args.benchmark} regressed {ratio:.2f}x "
            f"(> {args.threshold:g}x allowed)",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("OK: within threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
