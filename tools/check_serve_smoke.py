#!/usr/bin/env python3
"""Gate CI on the evaluation daemon's end-to-end contract.

Starts a genuine ``python -m repro serve`` subprocess on an ephemeral port,
then drives it exactly as a user would:

1. **Liveness** -- ``GET /v1/healthz`` answers ``ok`` with the package
   version.
2. **Round trip** -- ``POST /v1/sweep`` returns a ResultSet that is
   bit-identical (``to_json()`` equality) to the same grid evaluated by a
   local in-process engine.
3. **Observability** -- ``GET /v1/stats`` reports the evaluations the
   round trip just performed.
4. **Clean shutdown** -- SIGTERM drains the daemon, which announces
   ``shutdown complete`` and exits with status 0.

Exits non-zero with a diagnostic when any property fails.  Usage (what
.github/workflows/ci.yml runs)::

    PYTHONPATH=src python tools/check_serve_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import urllib.request
from typing import List, Optional

SWEEP_BODY = {"tdps": [4.0, 18.0], "ars": [0.4], "pdns": ["IVR", "LDO"]}
STARTUP_TIMEOUT_S = 60.0
SHUTDOWN_TIMEOUT_S = 60.0


def expect(condition: bool, message: str) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {message}")


def get_json(url: str, body: Optional[dict] = None) -> dict:
    request = urllib.request.Request(
        url,
        data=None if body is None else json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="GET" if body is None else "POST",
    )
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read().decode("utf-8"))


def main(argv: Optional[List[str]] = None) -> int:
    del argv  # no options: the gate is deliberately fixed
    print("serve smoke gate: starting python -m repro serve --port 0 ...")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        env=os.environ.copy(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        assert process.stdout is not None
        announce = process.stdout.readline()
        match = re.search(r"listening on (http://\S+)", announce)
        expect(
            match is not None,
            f"daemon did not announce a listen address: {announce!r}",
        )
        base_url = match.group(1)
        print(f"  daemon up at {base_url}")

        healthz = get_json(f"{base_url}/v1/healthz")
        expect(healthz.get("status") == "ok", f"healthz not ok: {healthz}")

        sys.path.insert(0, "src")
        import repro
        from repro.analysis.pdnspot import PdnSpot
        from repro.serve.protocol import build_sweep_study

        expect(
            healthz.get("version") == repro.__version__,
            f"healthz version {healthz.get('version')} != {repro.__version__}",
        )
        print(f"  healthz: ok (version {healthz['version']})")

        payload = get_json(f"{base_url}/v1/sweep", SWEEP_BODY)
        expect(payload.get("status") == "ok", f"sweep not ok: {payload}")
        local = PdnSpot().run(
            build_sweep_study(
                SWEEP_BODY["tdps"], SWEEP_BODY["ars"], pdns=SWEEP_BODY["pdns"]
            )
        )
        expect(
            payload["resultset"] == json.loads(local.to_json()),
            "server sweep ResultSet differs from the local engine's",
        )
        rows = len(payload["resultset"]["rows"])
        print(f"  sweep: {rows} rows, bit-identical to a local engine run")

        stats = get_json(f"{base_url}/v1/stats")
        requests_served = stats["endpoints"]["sweep"]["requests"]
        expect(
            requests_served == 1,
            f"stats counted {requests_served} sweep requests, expected 1",
        )
        misses = stats["cache"]["memory"]["pdnspot"]["misses"]
        expect(misses == rows, f"stats report {misses} misses for {rows} rows")
        print(f"  stats: 1 sweep request, {misses} evaluations accounted")

        print("  sending SIGTERM for graceful shutdown ...")
        process.send_signal(signal.SIGTERM)
        remainder = process.stdout.read()
        returncode = process.wait(timeout=SHUTDOWN_TIMEOUT_S)
        expect(
            "shutdown complete" in remainder,
            f"daemon never announced shutdown: {remainder!r}",
        )
        expect(returncode == 0, f"daemon exited with status {returncode}")
    finally:
        if process.poll() is None:  # pragma: no cover - cleanup on failure
            process.kill()
            process.wait()

    print("OK: daemon served a bit-identical round trip and shut down cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
