"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists only so
that legacy editable installs (``pip install -e .`` on environments without
the ``wheel`` package) keep working.
"""

from setuptools import setup

setup()
