"""Property-based tests (hypothesis) on the core models and invariants."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.pdn.base import OperatingConditions
from repro.pdn.imbvr import IMbvrPdn
from repro.pdn.ivr import IvrPdn
from repro.pdn.ldo import LdoPdn
from repro.pdn.mbvr import MbvrPdn
from repro.power.domains import WorkloadType
from repro.power.leakage import scale_power_with_voltage
from repro.util.interpolate import LinearTable1D
from repro.vr.base import RegulatorOperatingPoint
from repro.vr.efficiency_curves import default_board_vr, default_ivr, default_ldo
from repro.vr.load_line import LoadLine

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

tdps = st.floats(min_value=4.0, max_value=50.0)
ars = st.floats(min_value=0.3, max_value=1.0)
workloads = st.sampled_from(
    [WorkloadType.CPU_SINGLE_THREAD, WorkloadType.CPU_MULTI_THREAD, WorkloadType.GRAPHICS]
)


class TestRegulatorProperties:
    @SETTINGS
    @given(
        vout=st.floats(min_value=0.5, max_value=1.8),
        iout=st.floats(min_value=0.01, max_value=15.0),
    )
    def test_board_vr_efficiency_is_a_fraction(self, vout, iout):
        regulator = default_board_vr("vr", iccmax_a=20.0)
        point = RegulatorOperatingPoint(7.2, vout, iout)
        efficiency = regulator.efficiency(point)
        assert 0.0 < efficiency <= 0.93
        assert regulator.input_power_w(point) >= point.output_power_w

    @SETTINGS
    @given(
        vout=st.floats(min_value=0.5, max_value=1.1),
        iout=st.floats(min_value=0.01, max_value=20.0),
    )
    def test_ivr_efficiency_within_bounds(self, vout, iout):
        regulator = default_ivr("ivr", iccmax_a=25.0)
        efficiency = regulator.efficiency(RegulatorOperatingPoint(1.8, vout, iout))
        assert 0.5 <= efficiency <= 0.88

    @SETTINGS
    @given(
        vin=st.floats(min_value=0.6, max_value=1.2),
        ratio=st.floats(min_value=0.1, max_value=1.0),
        iout=st.floats(min_value=0.01, max_value=10.0),
    )
    def test_ldo_efficiency_tracks_voltage_ratio(self, vin, ratio, iout):
        regulator = default_ldo("ldo")
        vout = vin * ratio
        point = RegulatorOperatingPoint(vin, vout, iout)
        regulator.set_mode(regulator.mode_for(point))
        efficiency = regulator.efficiency(point)
        assert efficiency <= 0.992
        # In regulation mode the efficiency is exactly ratio * Ie; in bypass
        # mode (near-unity ratio) it is bounded below by the pass-device drop.
        bypass_floor = (vin - regulator.bypass_resistance_ohm * iout) / vin
        assert efficiency >= min(ratio, bypass_floor) * 0.991 - 1e-9

    @SETTINGS
    @given(
        impedance=st.floats(min_value=0.0, max_value=0.01),
        power=st.floats(min_value=0.0, max_value=60.0),
        ar=st.floats(min_value=0.1, max_value=1.0),
    )
    def test_load_line_guardband_never_reduces_power(self, impedance, power, ar):
        result = LoadLine(impedance).apply(1.0, power, ar)
        assert result.rail_power_w >= power - 1e-12
        assert result.conduction_loss_w >= -1e-12


class TestPowerScalingProperties:
    @SETTINGS
    @given(
        power=st.floats(min_value=0.0, max_value=50.0),
        voltage=st.floats(min_value=0.5, max_value=1.2),
        guardband=st.floats(min_value=0.0, max_value=0.1),
        leakage=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_guardband_scaling_is_monotone_and_bounded_below(
        self, power, voltage, guardband, leakage
    ):
        scaled = scale_power_with_voltage(power, voltage, guardband, leakage)
        assert scaled >= power - 1e-12
        # Upper bound: everything scaling with the leakage exponent.
        ratio = (voltage + guardband) / voltage
        assert scaled <= power * ratio**2.8 + 1e-9

    @SETTINGS
    @given(st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=2, max_size=8))
    def test_linear_table_stays_within_value_range(self, values):
        xs = list(range(len(values)))
        table = LinearTable1D(xs, values)
        for query in (min(xs) - 1.0, 0.5, max(xs) + 1.0, 1.49):
            assert min(values) - 1e-9 <= table(query) <= max(values) + 1e-9


class TestPdnProperties:
    @SETTINGS
    @given(tdp=tdps, ar=ars, workload=workloads)
    def test_etee_always_a_physical_fraction(self, tdp, ar, workload):
        conditions = OperatingConditions.for_active_workload(tdp, ar, workload)
        for pdn in (IvrPdn(), MbvrPdn(), LdoPdn(), IMbvrPdn()):
            evaluation = pdn.evaluate(conditions)
            assert 0.4 < evaluation.etee < 1.0
            assert evaluation.supply_power_w > evaluation.nominal_power_w

    @SETTINGS
    @given(tdp=tdps, workload=workloads)
    def test_higher_ar_never_hurts_mbvr_etee(self, tdp, workload):
        pdn = MbvrPdn()
        low = pdn.evaluate(OperatingConditions.for_active_workload(tdp, 0.4, workload)).etee
        high = pdn.evaluate(OperatingConditions.for_active_workload(tdp, 0.8, workload)).etee
        assert high >= low - 1e-9

    @SETTINGS
    @given(tdp=tdps, ar=ars)
    def test_imbvr_never_worse_than_ivr(self, tdp, ar):
        conditions = OperatingConditions.for_active_workload(
            tdp, ar, WorkloadType.CPU_MULTI_THREAD
        )
        assert IMbvrPdn().evaluate(conditions).etee >= IvrPdn().evaluate(conditions).etee
