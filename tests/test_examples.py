"""Smoke tests: every documented example script must run headlessly.

The ``examples/`` directory is part of the documented surface (the docs site
cross-links each script as an executable guide), so CI runs each one end to
end: a clean exit and non-trivial stdout, with no plotting or network
dependencies.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES_DIR = REPO_ROOT / "examples"

EXAMPLE_SCRIPTS = sorted(EXAMPLES_DIR.glob("*.py"))


def test_every_example_is_covered():
    """The parametrised list below must track the examples directory."""
    assert EXAMPLE_SCRIPTS, "examples/ directory is empty or missing"
    assert {path.name for path in EXAMPLE_SCRIPTS} == {
        "adaptive_runtime.py",
        "battery_life_study.py",
        "design_space_exploration.py",
        "design_space_search.py",
        "quickstart.py",
        "scenario_sweep.py",
    }


@pytest.mark.parametrize(
    "script", EXAMPLE_SCRIPTS, ids=[path.stem for path in EXAMPLE_SCRIPTS]
)
def test_example_runs_headlessly(script):
    environment = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = environment.get("PYTHONPATH")
    environment["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    completed = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env=environment,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script.name} failed:\n{completed.stderr}"
    )
    assert len(completed.stdout.splitlines()) >= 5, (
        f"{script.name} printed almost nothing:\n{completed.stdout}"
    )
