"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.flexwatts import FlexWattsPdn
from repro.pdn.base import OperatingConditions
from repro.pdn.registry import available_pdns, build_pdn
from repro.power.domains import WorkloadType
from repro.power.parameters import default_parameters
from repro.power.power_states import PackageCState


@pytest.fixture(scope="session")
def parameters():
    """The default (Table 2) technology parameters."""
    return default_parameters()


@pytest.fixture(scope="session")
def all_pdns():
    """One instance of every PDN architecture, keyed by name."""
    return {name: build_pdn(name) for name in available_pdns()}


@pytest.fixture(scope="session")
def flexwatts():
    """A FlexWatts instance with a calibrated predictor (built once per session)."""
    pdn = FlexWattsPdn()
    _ = pdn.predictor  # force the (relatively slow) calibration once
    return pdn


@pytest.fixture
def cpu_conditions_4w():
    """A CPU-intensive operating point at a 4 W TDP (AR = 56 %)."""
    return OperatingConditions.for_active_workload(
        tdp_w=4.0, application_ratio=0.56, workload_type=WorkloadType.CPU_MULTI_THREAD
    )


@pytest.fixture
def cpu_conditions_50w():
    """A CPU-intensive operating point at a 50 W TDP (AR = 56 %)."""
    return OperatingConditions.for_active_workload(
        tdp_w=50.0, application_ratio=0.56, workload_type=WorkloadType.CPU_MULTI_THREAD
    )


@pytest.fixture
def gfx_conditions_18w():
    """A graphics-intensive operating point at an 18 W TDP."""
    return OperatingConditions.for_active_workload(
        tdp_w=18.0, application_ratio=0.56, workload_type=WorkloadType.GRAPHICS
    )


@pytest.fixture
def idle_conditions_c8():
    """The deep-idle (C8) operating point at an 18 W TDP."""
    return OperatingConditions.for_power_state(18.0, PackageCState.C8)
