"""Tests for the domain descriptions and nominal-power curves (Table 1/2)."""

import pytest

from repro.power.domains import (
    COMPUTE_DOMAINS,
    DEFAULT_DOMAINS,
    DomainKind,
    DomainLoad,
    NominalPowerCurves,
    WorkloadType,
    loads_by_kind,
    total_nominal_power_w,
    validate_load_set,
)
from repro.util.errors import ConfigurationError


class TestDomainDescriptions:
    def test_all_six_domains_have_defaults(self):
        assert set(DEFAULT_DOMAINS) == set(DomainKind)

    def test_leakage_fractions_match_paper(self):
        # 45 % for graphics, 22 % elsewhere (Sec. 3.1, after Rusu et al.).
        assert DEFAULT_DOMAINS[DomainKind.GFX].leakage_fraction == pytest.approx(0.45)
        for kind in (DomainKind.CORE0, DomainKind.LLC, DomainKind.SA):
            assert DEFAULT_DOMAINS[kind].leakage_fraction == pytest.approx(0.22)

    def test_compute_domains_exclude_sa_io(self):
        assert DomainKind.SA not in COMPUTE_DOMAINS
        assert DomainKind.IO not in COMPUTE_DOMAINS
        assert DomainKind.GFX in COMPUTE_DOMAINS


class TestDomainLoad:
    def test_effective_power_respects_gating(self):
        active = DomainLoad(DomainKind.CORE0, 2.0, 0.8, 0.22, active=True)
        gated = DomainLoad(DomainKind.CORE0, 2.0, 0.8, 0.22, active=False)
        assert active.effective_power_w == 2.0
        assert gated.effective_power_w == 0.0

    def test_current_is_power_over_voltage(self):
        load = DomainLoad(DomainKind.GFX, 4.0, 0.8, 0.45)
        assert load.current_a == pytest.approx(5.0)

    def test_scaled_load(self):
        load = DomainLoad(DomainKind.LLC, 2.0, 0.7, 0.22)
        assert load.scaled(0.5).nominal_power_w == pytest.approx(1.0)


class TestNominalPowerCurves:
    def test_table2_ranges_at_the_endpoints(self):
        curves = NominalPowerCurves()
        # Cores: 0.6 W - 30 W over the 4 W - 50 W TDP range (Table 2).
        assert 0.4 <= curves.cores_power_w(4.0, WorkloadType.CPU_MULTI_THREAD) <= 1.0
        assert 20.0 <= curves.cores_power_w(50.0, WorkloadType.CPU_MULTI_THREAD) <= 30.0
        # LLC: 0.5 W - 4 W.
        assert curves.llc_power_w(4.0, WorkloadType.CPU_MULTI_THREAD) == pytest.approx(0.5)
        assert curves.llc_power_w(50.0, WorkloadType.CPU_MULTI_THREAD) == pytest.approx(4.0)
        # GFX: 0.58 W - 29.4 W.
        assert 0.4 <= curves.gfx_power_w(4.0, WorkloadType.GRAPHICS) <= 1.0
        assert 20.0 <= curves.gfx_power_w(50.0, WorkloadType.GRAPHICS) <= 29.4

    def test_curves_monotone_in_tdp(self):
        curves = NominalPowerCurves()
        tdps = (4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0)
        cores = [curves.cores_power_w(t, WorkloadType.CPU_MULTI_THREAD) for t in tdps]
        gfx = [curves.gfx_power_w(t, WorkloadType.GRAPHICS) for t in tdps]
        assert cores == sorted(cores)
        assert gfx == sorted(gfx)

    def test_uncore_power_nearly_flat_across_tdps(self):
        curves = NominalPowerCurves()
        sa_low, io_low = curves.uncore_power_w(4.0)
        sa_high, io_high = curves.uncore_power_w(50.0)
        assert sa_high / sa_low < 2.0
        assert io_high / io_low < 2.0

    def test_single_thread_uses_less_core_power_than_multi_thread(self):
        curves = NominalPowerCurves()
        st = curves.cores_power_w(18.0, WorkloadType.CPU_SINGLE_THREAD)
        mt = curves.cores_power_w(18.0, WorkloadType.CPU_MULTI_THREAD)
        assert st < mt

    def test_gfx_idle_during_cpu_workloads(self):
        curves = NominalPowerCurves()
        assert curves.gfx_power_w(18.0, WorkloadType.CPU_MULTI_THREAD) == pytest.approx(
            curves.idle_compute_w
        )


class TestLoadSetHelpers:
    def _full_set(self):
        return [
            DomainLoad(kind, 1.0, 0.8, 0.22) for kind in DomainKind
        ]

    def test_total_nominal_power(self):
        assert total_nominal_power_w(self._full_set()) == pytest.approx(6.0)

    def test_loads_by_kind_rejects_duplicates(self):
        loads = self._full_set() + [DomainLoad(DomainKind.IO, 1.0, 1.0, 0.22)]
        with pytest.raises(ConfigurationError):
            loads_by_kind(loads)

    def test_validate_load_set_requires_all_domains(self):
        with pytest.raises(ConfigurationError):
            validate_load_set(self._full_set()[:-1])
        assert len(validate_load_set(self._full_set())) == 6
