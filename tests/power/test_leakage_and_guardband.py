"""Tests for the leakage/dynamic scaling and guardband models (Eq. 2)."""

import pytest

from repro.power.domains import DomainKind, DomainLoad
from repro.power.guardband import guardband_power_w, power_gate_power_w
from repro.power.leakage import (
    leakage_temperature_factor,
    scale_power_with_voltage,
    split_power,
)
from repro.util.errors import ModelDomainError


def _load(power_w=1.0, voltage_v=0.8, leakage=0.22, active=True, gated=True):
    return DomainLoad(
        kind=DomainKind.CORE0,
        nominal_power_w=power_w,
        voltage_v=voltage_v,
        leakage_fraction=leakage,
        active=active,
        power_gated_rail=gated,
    )


class TestScalePowerWithVoltage:
    def test_zero_guardband_is_identity(self):
        assert scale_power_with_voltage(2.0, 0.8, 0.0, 0.22) == pytest.approx(2.0)

    def test_equation_2_explicitly(self):
        power = scale_power_with_voltage(1.0, 1.0, 0.1, 0.4, leakage_exponent=2.8)
        expected = 0.4 * 1.1**2.8 + 0.6 * 1.1**2
        assert power == pytest.approx(expected)

    def test_higher_leakage_fraction_scales_more(self):
        low_leak = scale_power_with_voltage(1.0, 0.8, 0.05, 0.22)
        high_leak = scale_power_with_voltage(1.0, 0.8, 0.05, 0.45)
        assert high_leak > low_leak

    def test_monotone_in_guardband(self):
        values = [scale_power_with_voltage(1.0, 0.8, gb, 0.22) for gb in (0.0, 0.01, 0.02, 0.05)]
        assert values == sorted(values)

    def test_negative_guardband_rejected(self):
        with pytest.raises(ModelDomainError):
            scale_power_with_voltage(1.0, 0.8, -0.01, 0.22)

    def test_negative_power_rejected(self):
        with pytest.raises(ModelDomainError):
            scale_power_with_voltage(-1.0, 0.8, 0.01, 0.22)


class TestTemperatureAndSplit:
    def test_reference_temperature_factor_is_one(self):
        assert leakage_temperature_factor(80.0) == pytest.approx(1.0)

    def test_hotter_means_more_leakage(self):
        assert leakage_temperature_factor(100.0) > 1.0
        assert leakage_temperature_factor(50.0) < 1.0

    def test_split_power(self):
        leakage, dynamic = split_power(10.0, 0.22)
        assert leakage == pytest.approx(2.2)
        assert dynamic == pytest.approx(7.8)
        assert leakage + dynamic == pytest.approx(10.0)


class TestGuardbandPower:
    def test_guardband_increases_power(self):
        load = _load()
        assert guardband_power_w(load, 0.020) > load.nominal_power_w

    def test_inactive_domain_draws_nothing(self):
        load = _load(active=False)
        assert guardband_power_w(load, 0.020) == 0.0

    def test_typical_guardband_magnitude_is_a_few_percent(self):
        # A 20 mV tolerance band on a 0.8 V rail costs roughly 5 % extra power.
        load = _load(power_w=1.0, voltage_v=0.8)
        pgb = guardband_power_w(load, 0.020)
        assert 1.03 < pgb < 1.08

    def test_power_gate_adds_on_top_of_guardband(self):
        load = _load(power_w=5.0, voltage_v=0.7)
        pgb = guardband_power_w(load, 0.020)
        ppg = power_gate_power_w(load, pgb, 0.020, power_gate_impedance_ohm=1.5e-3)
        assert ppg > pgb

    def test_power_gate_skipped_for_non_gated_rail(self):
        load = _load(gated=False)
        pgb = guardband_power_w(load, 0.020)
        assert power_gate_power_w(load, pgb, 0.020, 1.5e-3) == pytest.approx(pgb)

    def test_zero_impedance_gate_is_free(self):
        load = _load()
        pgb = guardband_power_w(load, 0.020)
        assert power_gate_power_w(load, pgb, 0.020, 0.0) == pytest.approx(pgb)
