"""Tests for the package power states, budget manager and thermal model."""

import pytest

from repro.power.budget import PowerBudgetManager
from repro.power.domains import DomainKind, WorkloadType
from repro.power.power_states import (
    BATTERY_LIFE_STATES,
    PackageCState,
    POWER_STATE_PROFILES,
)
from repro.power.thermal import ThermalModel
from repro.util.errors import ModelDomainError


class TestPowerStateProfiles:
    def test_every_battery_life_state_has_a_profile(self):
        for state in BATTERY_LIFE_STATES:
            assert state in POWER_STATE_PROFILES

    def test_video_playback_state_powers_match_section5(self):
        # C0_MIN ~2.5 W, C2 ~1.2 W, C8 ~0.13 W (Sec. 5).
        assert POWER_STATE_PROFILES[PackageCState.C0_MIN].total_nominal_power_w == pytest.approx(2.5, abs=0.1)
        assert POWER_STATE_PROFILES[PackageCState.C2].total_nominal_power_w == pytest.approx(1.2, abs=0.1)
        assert POWER_STATE_PROFILES[PackageCState.C8].total_nominal_power_w == pytest.approx(0.13, abs=0.02)

    def test_deeper_states_draw_less_power(self):
        powers = [
            POWER_STATE_PROFILES[state].total_nominal_power_w
            for state in BATTERY_LIFE_STATES
        ]
        assert powers == sorted(powers, reverse=True)

    def test_idle_states_gate_the_compute_domains(self):
        for state in (PackageCState.C2, PackageCState.C6, PackageCState.C8):
            profile = POWER_STATE_PROFILES[state]
            assert DomainKind.CORE0 not in profile.domain_power_w
            assert DomainKind.GFX not in profile.domain_power_w

    def test_profiles_produce_all_six_loads(self):
        loads = POWER_STATE_PROFILES[PackageCState.C8].loads()
        assert len(loads) == 6
        active = [load for load in loads if load.active]
        assert {load.kind for load in active} == {DomainKind.SA, DomainKind.IO}

    def test_is_active_and_is_idle(self):
        assert PackageCState.C0.is_active
        assert PackageCState.C0_MIN.is_active
        assert PackageCState.C6.is_idle
        assert not PackageCState.C6.is_active


class TestPowerBudgetManager:
    def test_split_conserves_the_tdp(self):
        split = PowerBudgetManager().split(18.0, 0.75, WorkloadType.CPU_MULTI_THREAD)
        total = split.sa_io_w + split.llc_w + split.compute_w + split.pdn_loss_w
        assert total == pytest.approx(18.0)

    def test_higher_etee_gives_more_compute_budget(self):
        manager = PowerBudgetManager()
        low = manager.split(18.0, 0.70)
        high = manager.split(18.0, 0.80)
        assert high.compute_w > low.compute_w
        assert high.pdn_loss_w < low.pdn_loss_w

    def test_compute_budget_gain_matches_split_difference(self):
        manager = PowerBudgetManager()
        gain = manager.compute_budget_gain_w(18.0, 0.70, 0.80)
        expected = manager.split(18.0, 0.80).compute_w - manager.split(18.0, 0.70).compute_w
        assert gain == pytest.approx(expected)

    def test_section_3_3_example_magnitude(self):
        # A 5 % ETEE improvement at 4 W frees roughly 0.2-0.3 W of budget
        # (the paper's worked example frees 250 mW going from 75 % to 80 %).
        gain = PowerBudgetManager().compute_budget_gain_w(4.0, 0.75, 0.80)
        assert 0.15 <= gain <= 0.30

    def test_budget_fractions_sum_to_one(self):
        fractions = PowerBudgetManager().split(25.0, 0.72).as_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_infeasible_budget_raises(self):
        with pytest.raises(ModelDomainError):
            PowerBudgetManager().split(4.0, 0.2)


class TestThermalModel:
    def test_performance_scenario_junction_temperatures(self):
        # Tj 80 C for TDPs up to 8 W, 100 C above (Sec. 7.1).
        assert ThermalModel.for_performance_workload(4.0).junction_temperature_c == 80.0
        assert ThermalModel.for_performance_workload(8.0).junction_temperature_c == 80.0
        assert ThermalModel.for_performance_workload(18.0).junction_temperature_c == 100.0

    def test_battery_life_scenario_is_50c(self):
        assert ThermalModel.for_battery_life_workload(18.0).junction_temperature_c == 50.0

    def test_leakage_factor_direction(self):
        hot = ThermalModel.for_performance_workload(50.0)
        cool = ThermalModel.for_battery_life_workload(50.0)
        assert hot.leakage_factor > 1.0 > cool.leakage_factor

    def test_budget_checks(self):
        model = ThermalModel(tdp_w=15.0, junction_temperature_c=80.0)
        assert model.within_budget(14.9)
        assert not model.within_budget(15.1)
        assert model.headroom_w(10.0) == pytest.approx(5.0)

    def test_silicon_temperature_range_enforced(self):
        with pytest.raises(ModelDomainError):
            ThermalModel(tdp_w=15.0, junction_temperature_c=150.0)
