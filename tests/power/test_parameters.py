"""Tests for the Table 2 parameter set (experiment E-TAB2)."""

import pytest

from repro.power.domains import DomainKind
from repro.power.parameters import PdnTechnologyParameters, default_parameters
from repro.util.errors import ConfigurationError


class TestTable2Defaults:
    def test_load_line_impedances_match_table2(self):
        params = default_parameters()
        # IVR: IN = 1 mOhm.
        assert params.ivr_input_loadline_ohm == pytest.approx(1.0e-3)
        # MBVR: cores, GFX, SA, IO = 2.5, 2.5, 7, 4 mOhm.
        assert params.mbvr_loadline_ohm[DomainKind.CORE0] == pytest.approx(2.5e-3)
        assert params.mbvr_loadline_ohm[DomainKind.GFX] == pytest.approx(2.5e-3)
        assert params.mbvr_loadline_ohm[DomainKind.SA] == pytest.approx(7.0e-3)
        assert params.mbvr_loadline_ohm[DomainKind.IO] == pytest.approx(4.0e-3)
        # LDO: IN, SA, IO = 1.25, 7, 4 mOhm.
        assert params.ldo_input_loadline_ohm == pytest.approx(1.25e-3)
        assert params.uncore_loadline_ohm[DomainKind.SA] == pytest.approx(7.0e-3)
        assert params.uncore_loadline_ohm[DomainKind.IO] == pytest.approx(4.0e-3)

    def test_power_gate_impedances_in_table2_range(self):
        params = default_parameters()
        for impedance in params.power_gate_impedance_ohm.values():
            assert 1.0e-3 <= impedance <= 2.0e-3

    def test_supply_and_input_voltages(self):
        params = default_parameters()
        assert 7.2 <= params.supply_voltage_v <= 20.0
        assert params.ivr_input_voltage_v == pytest.approx(1.8)

    def test_leakage_exponent(self):
        assert default_parameters().leakage_exponent == pytest.approx(2.8)

    def test_ldo_current_efficiency(self):
        assert default_parameters().ldo_current_efficiency == pytest.approx(0.991)

    def test_flexwatts_loadline_scale_above_one(self):
        assert default_parameters().flexwatts_loadline_scale > 1.0


class TestOverrides:
    def test_with_overrides_returns_new_object(self):
        params = default_parameters()
        modified = params.with_overrides(ivr_tolerance_band_v=0.022)
        assert modified is not params
        assert modified.ivr_tolerance_band_v == pytest.approx(0.022)
        assert params.ivr_tolerance_band_v == pytest.approx(0.020)

    def test_invalid_override_rejected(self):
        with pytest.raises(ConfigurationError):
            default_parameters().with_overrides(supply_voltage_v=-1.0)

    def test_invalid_current_efficiency_rejected(self):
        with pytest.raises(ConfigurationError):
            PdnTechnologyParameters(ldo_current_efficiency=1.5)
