"""End-to-end regression tests pinning the paper's headline numbers (shapes).

Each test corresponds to one quantitative claim from the abstract / Sec. 7 of
the paper.  Absolute magnitudes are allowed to differ (the substrate is a
behavioural model, not the authors' testbed), but the direction and rough
size of every effect is asserted.
"""

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.core.hybrid_vr import PdnMode
from repro.core.mode_switching import ModeSwitchOverheads
from repro.core.hybrid_vr import HybridVoltageRegulator
from repro.workloads.graphics import THREEDMARK06_BENCHMARKS
from repro.workloads.spec_cpu2006 import SPEC_CPU2006_BENCHMARKS


@pytest.fixture(scope="module")
def spot():
    return PdnSpot()


class TestAbstractClaims:
    def test_spec_cpu2006_improvement_at_4w(self, spot):
        """FlexWatts improves average SPEC CPU2006 performance by ~22 % at 4 W."""
        table = spot.compare_performance(SPEC_CPU2006_BENCHMARKS, 4.0)
        assert table["FlexWatts"] > 1.15
        assert table["FlexWatts"] < 1.45

    def test_3dmark06_improvement_at_4w(self, spot):
        """FlexWatts improves average 3DMark06 performance by ~25 % at 4 W."""
        table = spot.compare_performance(THREEDMARK06_BENCHMARKS, 4.0)
        assert table["FlexWatts"] > 1.20

    def test_video_playback_power_reduction(self, spot):
        """FlexWatts reduces video-playback average power by ~11 % vs IVR."""
        table = spot.compare_battery_life_power()["video_playback"]
        reduction = 1.0 - table["FlexWatts"] / table["IVR"]
        assert 0.05 < reduction < 0.20

    def test_bom_and_area_comparable_to_ivr(self, spot):
        """FlexWatts has BOM and area comparable to IVR, unlike MBVR/LDO."""
        for tdp in (4.0, 18.0, 50.0):
            bom = spot.compare_bom(tdp)
            area = spot.compare_board_area(tdp)
            assert bom["FlexWatts"] < 0.8 * bom["MBVR"]
            assert area["FlexWatts"] < 0.8 * area["MBVR"]


class TestSection7Claims:
    def test_low_tdp_gain_and_high_tdp_parity_for_spec(self, spot):
        """Below ~18 W FlexWatts gains a lot over IVR; above, it stays ahead of MBVR/LDO."""
        low = spot.compare_performance(SPEC_CPU2006_BENCHMARKS, 8.0)
        high = spot.compare_performance(SPEC_CPU2006_BENCHMARKS, 50.0)
        assert low["FlexWatts"] > 1.08
        assert high["FlexWatts"] >= high["MBVR"]
        assert high["FlexWatts"] >= high["LDO"] - 0.01

    def test_flexwatts_within_one_percent_of_best_static_at_4w(self, spot):
        table = spot.compare_performance(SPEC_CPU2006_BENCHMARKS, 4.0)
        best_static = max(table["MBVR"], table["LDO"])
        assert table["FlexWatts"] > best_static - 0.015

    def test_imbvr_improves_on_ivr_but_less_than_flexwatts_at_low_tdp(self, spot):
        table = spot.compare_performance(SPEC_CPU2006_BENCHMARKS, 4.0)
        assert 1.0 < table["I+MBVR"] < table["FlexWatts"]

    def test_mode_selection_tracks_tdp(self, spot):
        """FlexWatts operates mainly in LDO-Mode at low TDP, IVR-Mode at high TDP."""
        from repro.pdn.base import OperatingConditions
        from repro.power.domains import WorkloadType

        flexwatts = spot.pdn("FlexWatts")
        low = OperatingConditions.for_active_workload(4.0, 0.56, WorkloadType.CPU_MULTI_THREAD)
        high = OperatingConditions.for_active_workload(50.0, 0.56, WorkloadType.CPU_MULTI_THREAD)
        assert flexwatts.predict_mode(low) is PdnMode.LDO_MODE
        assert flexwatts.predict_mode(high) is PdnMode.IVR_MODE


class TestOverheadClaims:
    def test_mode_switch_flow_latency(self):
        """The mode-switch flow takes ~94 us, well under a 500 us DVFS transition."""
        overheads = ModeSwitchOverheads()
        assert 80e-6 < overheads.total_latency_s < 110e-6

    def test_area_overhead_negligible(self):
        """The LDO-mode area overhead is ~0.041 mm^2, <0.05 % of a client die."""
        assert HybridVoltageRegulator.AREA_OVERHEAD_MM2 < 0.05
        assert ModeSwitchOverheads().dual_core_die_fraction < 0.001
