"""Span tracer contracts: nesting, export, the fork boundary, no-op path."""

from __future__ import annotations

import json

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.analysis.study import Study
from repro.obs import trace as obs_trace
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.trace import (
    _NULL_SPAN,
    SpanRecord,
    Tracer,
    install_tracer,
    uninstall_tracer,
    write_chrome_trace,
)


@pytest.fixture
def tracer():
    """An installed tracer, uninstalled again after the test."""
    tracer = install_tracer()
    try:
        yield tracer
    finally:
        uninstall_tracer()


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    """Guarantee no tracer leaks across tests even on assertion failure."""
    yield
    uninstall_tracer()


class TestSpanRecording:
    def test_nested_spans_record_parent_and_containment(self, tracer):
        with obs_trace.span("outer", category="test", level=1):
            with obs_trace.span("inner", category="test") as inner:
                inner.set("answer", 42)
        by_name = {record.name: record for record in tracer.records()}
        assert set(by_name) == {"outer", "inner"}
        inner, outer = by_name["inner"], by_name["outer"]
        assert inner.args["parent"] == "outer"
        assert "parent" not in outer.args
        assert inner.args["answer"] == 42
        assert outer.args["level"] == 1
        # The inner span's interval nests inside the outer span's interval.
        assert outer.ts_us <= inner.ts_us
        assert inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us + 1.0

    def test_instants_and_counters_record_phases(self, tracer):
        obs_trace.instant("tick", category="test", n=1)
        obs_trace.counter_event("load", {"value": 3.0}, category="test")
        phases = sorted(record.phase for record in tracer.records())
        assert phases == ["C", "i"]

    def test_spans_survive_exceptions(self, tracer):
        with pytest.raises(ValueError):
            with obs_trace.span("doomed", category="test"):
                raise ValueError("boom")
        assert [record.name for record in tracer.records()] == ["doomed"]


class TestDisabledPath:
    def test_disabled_span_is_the_shared_null_singleton(self):
        assert not obs_trace.tracing_enabled()
        assert obs_trace.span("anything", key="value") is _NULL_SPAN
        assert obs_trace.span("other") is _NULL_SPAN

    def test_disabled_helpers_record_nothing(self):
        obs_trace.instant("ignored")
        obs_trace.counter_event("ignored", {"value": 1.0})
        with obs_trace.span("ignored") as span:
            span.set("key", "value")
        tracer = install_tracer()
        assert len(tracer) == 0
        uninstall_tracer()


class TestForkBoundary:
    def test_drain_and_absorb_move_records_between_tracers(self):
        worker = Tracer()
        with worker.span("worker.task", category="test"):
            pass
        batch = worker.drain()
        assert len(worker) == 0
        assert [record.name for record in batch] == ["worker.task"]
        parent = Tracer()
        parent.absorb(batch)
        assert [record.name for record in parent.records()] == ["worker.task"]

    def test_process_executor_ships_worker_spans_with_distinct_pids(
        self, tracer, tmp_path
    ):
        # 300 units: enough for two >=128-unit chunks across two workers.
        from repro.power.domains import WorkloadType

        spot = PdnSpot()
        study = (
            Study.builder("obs-fork-smoke")
            .tdps(4.0, 8.0, 10.0, 18.0, 25.0)
            .application_ratios(0.40, 0.50, 0.56, 0.60)
            .workload_types(
                WorkloadType.CPU_SINGLE_THREAD,
                WorkloadType.CPU_MULTI_THREAD,
                WorkloadType.GRAPHICS,
            )
            .build()
        )
        spot.run(study, executor="process", jobs=2)
        chunk_spans = [
            record for record in tracer.records()
            if record.name == "executor.chunk"
        ]
        worker_pids = {record.pid for record in chunk_spans}
        assert len(worker_pids) >= 2, "expected spans from >=2 worker processes"
        import os

        assert os.getpid() not in worker_pids


class TestChromeTraceExport:
    def test_round_trip_is_valid_chrome_trace_json(self, tracer, tmp_path):
        with obs_trace.span("outer", category="test"):
            with obs_trace.span("inner", category="test"):
                pass
        obs_trace.instant("mark", category="test")
        registry = MetricsRegistry()
        registry.counter("test.counter").inc(7)
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), uninstall_tracer(), registry)
        doc = json.loads(path.read_text())
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["producer"] == "repro.obs"
        events = {event["name"]: event for event in doc["traceEvents"]}
        assert events["outer"]["ph"] == "X"
        assert events["outer"]["dur"] >= events["inner"]["dur"]
        assert events["inner"]["args"]["parent"] == "outer"
        assert events["mark"]["ph"] == "i"
        assert events["mark"]["s"] == "t"
        assert events["test.counter"]["ph"] == "C"
        assert events["test.counter"]["args"] == {"value": 7}

    def test_write_tolerates_no_tracer(self, tmp_path):
        path = tmp_path / "empty.json"
        write_chrome_trace(str(path), None, None)
        doc = json.loads(path.read_text())
        assert doc["traceEvents"] == []

    def test_span_record_is_picklable(self):
        import pickle

        record = SpanRecord(
            name="n", category="c", phase="X", ts_us=1.0, dur_us=2.0,
            pid=1, tid=2, args={"k": "v"},
        )
        assert pickle.loads(pickle.dumps(record)) == record


class TestPmuBridge:
    def test_attach_is_idempotent_and_emits_instants(self, tracer):
        from repro.obs import attach_pmu_tracing
        from repro.soc.pmu import PowerManagementUnit

        pmu = PowerManagementUnit(tdp_w=18.0)
        listeners_before = len(pmu._telemetry_listeners)
        attach_pmu_tracing(pmu)
        attach_pmu_tracing(pmu)  # second attach must not double-register
        assert len(pmu._telemetry_listeners) == listeners_before + 1
        assert pmu.has_telemetry_listeners
        assert getattr(pmu, "_obs_telemetry_bridged") is True
        before = METRICS.counter("sim.pmu.telemetry_events").value
        pmu.emit_telemetry()
        instants = [
            record for record in tracer.records()
            if record.name == "pmu.telemetry"
        ]
        assert len(instants) == 1
        assert METRICS.counter("sim.pmu.telemetry_events").value == before + 1
        args = instants[0].args
        assert {"power_state", "workload_type", "tdp_w"} <= set(args)
