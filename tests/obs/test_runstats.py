"""RunStats attachment: engines and the optimizer report run statistics."""

from __future__ import annotations

from repro.analysis.pdnspot import PdnSpot
from repro.analysis.study import Study
from repro.obs.runstats import RunStats, executor_label


class TestRunStatsValue:
    def test_hit_rate_and_dict_shape(self):
        stats = RunStats(
            units=10, duration_s=0.5, cache_hits=6, cache_misses=4,
            executor="process",
        )
        assert stats.hit_rate == 0.6
        assert stats.as_dict() == {
            "units": 10,
            "duration_s": 0.5,
            "cache_hits": 6,
            "cache_misses": 4,
            "hit_rate": 0.6,
            "executor": "process",
        }

    def test_hit_rate_with_no_lookups_is_zero(self):
        stats = RunStats(units=0, duration_s=0.0, cache_hits=0, cache_misses=0)
        assert stats.hit_rate == 0.0

    def test_executor_label(self):
        assert executor_label(None) == "default"
        assert executor_label("process") == "process"

        class Named:
            name = "thread"

        assert executor_label(Named()) == "thread"


class TestEngineAttachment:
    def test_pdnspot_run_attaches_run_stats(self):
        spot = PdnSpot()
        study = Study.over_tdps([4.0, 18.0])
        results = spot.run(study)
        stats = results.run_stats
        assert stats is not None
        assert stats.units == len(results)
        assert stats.duration_s > 0
        assert stats.cache_misses == stats.units
        assert stats.cache_hits == 0
        # A warm rerun is all hits, and equality ignores run_stats.
        rerun = spot.run(study)
        assert rerun.run_stats.cache_hits == rerun.run_stats.units
        assert rerun.run_stats.cache_misses == 0
        assert rerun.run_stats.hit_rate == 1.0
        assert rerun == results

    def test_run_stats_never_serializes(self):
        spot = PdnSpot()
        results = spot.run(Study.over_tdps([4.0]))
        assert results.run_stats is not None
        assert "run_stats" not in results.to_json()
        from repro.analysis.resultset import ResultSet

        revived = ResultSet.from_json(results.to_json())
        assert revived.run_stats is None
        assert revived == results

    def test_optimizer_attaches_run_stats(self):
        from repro.optimize import DesignSpace, run_optimization

        outcome = run_optimization(DesignSpace.over_pdns(["IVR", "LDO"]))
        assert outcome.run_stats is not None
        assert outcome.run_stats.units == 2
        assert outcome.run_stats.duration_s > 0
        assert outcome.run_stats.executor == "default"
