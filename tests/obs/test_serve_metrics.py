"""``GET /v1/metrics``: schema, draining behaviour, concurrent load."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs.metrics import METRICS_SCHEMA_VERSION
from repro.serve.client import ServeClient
from repro.serve.server import start_in_thread


@pytest.fixture(scope="module")
def running_server():
    """One warm in-process server shared by the module's tests."""
    with start_in_thread(cache_dir=None) as handle:
        yield handle


@pytest.fixture
def client(running_server):
    """A client bound to the module's running server."""
    return ServeClient(running_server.base_url)


class TestMetricsEndpoint:
    def test_document_shape(self, client):
        client.sweep(tdps=[4.0], pdns=["IVR"])
        payload = client.metrics()
        assert set(payload) == {"schema_version", "metrics", "tracing"}
        assert payload["schema_version"] == METRICS_SCHEMA_VERSION
        metrics = payload["metrics"]
        assert set(metrics) == {
            "schema_version", "counters", "gauges", "histograms",
        }
        assert payload["tracing"] == {"enabled": False, "spans": 0}

    def test_serve_and_engine_counters_appear(self, client):
        client.sweep(tdps=[4.0], pdns=["IVR"])
        counters = client.metrics()["metrics"]["counters"]
        assert counters["serve.requests"] >= 1
        # The sweep above ran through the executor seam of this process.
        assert "executor.chunks" in counters
        assert "cache.lookup.misses" in counters

    def test_post_is_rejected_with_405(self, running_server):
        import json
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            running_server.base_url + "/v1/metrics",
            data=b"{}",
            method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405
        payload = json.loads(excinfo.value.read())
        assert payload["status"] == "error"

    def test_unknown_path_404_lists_metrics_endpoint(self, running_server):
        import json
        import urllib.error
        import urllib.request

        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                running_server.base_url + "/v1/nonsense", timeout=10
            )
        assert excinfo.value.code == 404
        payload = json.loads(excinfo.value.read())
        assert "/v1/metrics" in payload["error"]

    def test_concurrent_load_returns_consistent_documents(self, client):
        """Hammer /v1/metrics while sweeps mutate the registry underneath."""

        def read_metrics(_):
            return client.metrics()

        def run_sweep(tdp):
            return client.sweep(tdps=[tdp], pdns=["IVR", "LDO"])

        with ThreadPoolExecutor(max_workers=8) as pool:
            sweep_futures = [
                pool.submit(run_sweep, tdp) for tdp in (5.0, 7.0, 9.0, 11.0)
            ]
            metric_futures = [pool.submit(read_metrics, i) for i in range(24)]
            documents = [future.result() for future in metric_futures]
            for future in sweep_futures:
                future.result()
        for document in documents:
            assert document["schema_version"] == METRICS_SCHEMA_VERSION
            counters = document["metrics"]["counters"]
            assert all(value >= 0 for value in counters.values())
        # Request counts are monotonic across the concurrent snapshots.
        requests = [
            document["metrics"]["counters"].get("serve.requests", 0)
            for document in documents
        ]
        assert max(requests) >= 1
