"""Metrics registry contracts: schema stability, reset semantics, wrappers."""

from __future__ import annotations

import math
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS_S,
    METRICS,
    METRICS_SCHEMA_VERSION,
    Histogram,
    MetricsRegistry,
    bucket_label,
    get_metrics,
)


class TestInstruments:
    def test_counter_accumulates_and_is_thread_safe(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")

        def hammer():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 4000

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_histogram_buckets_and_sum(self):
        histogram = Histogram(bounds=(0.1, 1.0, math.inf))
        for value in (0.05, 0.5, 2.0, 100.0):
            histogram.observe(value)
        payload = histogram.as_dict()
        assert payload["count"] == 4
        assert payload["sum"] == pytest.approx(102.55)
        assert payload["buckets"] == {"0.1": 1, "1": 1, "inf": 2}

    def test_histogram_sum_key_override(self):
        histogram = Histogram(bounds=(1.0, math.inf))
        histogram.observe(0.5)
        assert "sum_s" in histogram.as_dict(sum_key="sum_s")

    def test_bucket_label_formats(self):
        assert bucket_label(math.inf) == "inf"
        assert bucket_label(0.0025) == "0.0025"
        assert bucket_label(1.0) == "1"


class TestRegistry:
    def test_get_or_create_shares_instruments(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_snapshot_schema_is_stable(self):
        """The contract behind GET /v1/metrics and the trace counter track."""
        registry = MetricsRegistry()
        registry.counter("z.count").inc(2)
        registry.counter("a.count").inc()
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(0.01)
        snapshot = registry.snapshot()
        assert set(snapshot) == {
            "schema_version", "counters", "gauges", "histograms",
        }
        assert snapshot["schema_version"] == METRICS_SCHEMA_VERSION
        assert list(snapshot["counters"]) == ["a.count", "z.count"]
        assert snapshot["counters"]["z.count"] == 2
        assert snapshot["gauges"] == {"g": 1.0}
        histogram = snapshot["histograms"]["h"]
        assert set(histogram) == {"count", "sum", "buckets"}
        assert list(histogram["buckets"]) == [
            bucket_label(bound) for bound in DEFAULT_LATENCY_BOUNDS_S
        ]

    def test_reset_zeroes_in_place_preserving_bindings(self):
        """Import-time-bound instruments must survive a registry reset."""
        registry = MetricsRegistry()
        counter = registry.counter("bound")
        histogram = registry.histogram("lat")
        counter.inc(5)
        histogram.observe(0.2)
        registry.reset()
        assert counter.value == 0
        assert histogram.count == 0
        # The binding still feeds the snapshot after the reset.
        counter.inc()
        assert registry.snapshot()["counters"]["bound"] == 1
        assert registry.counter("bound") is counter

    def test_global_registry_is_process_wide(self):
        assert get_metrics() is METRICS


class TestServeStatsWrappers:
    def test_latency_histogram_payload_matches_pr6_schema(self):
        """Satellite contract: the /v1/stats histogram shape is byte-stable
        across the rewrite onto repro.obs.metrics."""
        from repro.serve.stats import LATENCY_BUCKET_BOUNDS_S, LatencyHistogram

        histogram = LatencyHistogram()
        for value in (0.0005, 0.003, 0.8, 45.0):
            histogram.observe(value)
        payload = histogram.as_dict()
        # Exactly the PR 6 document: count, sum_s, then one label per bound.
        assert list(payload) == ["count", "sum_s", "buckets"]
        assert payload["count"] == 4
        assert payload["sum_s"] == pytest.approx(0.0005 + 0.003 + 0.8 + 45.0)
        expected_labels = [
            "inf" if math.isinf(bound) else f"{bound:g}"
            for bound in LATENCY_BUCKET_BOUNDS_S
        ]
        assert list(payload["buckets"]) == expected_labels
        assert payload["buckets"]["0.001"] == 1
        assert payload["buckets"]["0.005"] == 1
        assert payload["buckets"]["1"] == 1
        assert payload["buckets"]["inf"] == 1
        assert sum(payload["buckets"].values()) == payload["count"]

    def test_latency_bounds_alias_the_shared_default_layout(self):
        from repro.serve.stats import LATENCY_BUCKET_BOUNDS_S

        assert LATENCY_BUCKET_BOUNDS_S == DEFAULT_LATENCY_BOUNDS_S

    def test_endpoint_stats_payload_shape_and_registry_mirror(self):
        from repro.serve.stats import EndpointStats

        requests_before = METRICS.counter("serve.requests").value
        errors_before = METRICS.counter("serve.errors").value
        stats = EndpointStats()
        stats.observe(0.02, error=False)
        stats.observe(0.04, error=True)
        payload = stats.as_dict()
        assert list(payload) == ["requests", "errors", "latency"]
        assert payload["requests"] == 2
        assert payload["errors"] == 1
        assert payload["latency"]["count"] == 2
        assert METRICS.counter("serve.requests").value == requests_before + 2
        assert METRICS.counter("serve.errors").value == errors_before + 1
