"""Tests for the interval simulator and FlexWatts' dynamic behaviour."""

import pytest

from repro.core.flexwatts import FlexWattsPdn
from repro.core.hybrid_vr import PdnMode
from repro.core.mode_switching import ModeSwitchController
from repro.pdn.ivr import IvrPdn
from repro.pdn.mbvr import MbvrPdn
from repro.power.power_states import PackageCState
from repro.sim.engine import IntervalSimulator
from repro.workloads.base import WorkloadPhase, WorkloadTrace
from repro.workloads.battery_life import BATTERY_LIFE_WORKLOADS
from repro.workloads.spec_cpu2006 import SPEC_CPU2006_BENCHMARKS
from repro.workloads.synthetic import SyntheticTraceGenerator


@pytest.fixture(scope="module")
def simulator():
    return IntervalSimulator(tdp_w=18.0, trace_period_s=1.0)


@pytest.fixture(scope="module")
def video_trace():
    return BATTERY_LIFE_WORKLOADS[0].trace()


class TestStaticPdnSimulation:
    def test_energy_is_power_times_time(self, simulator, video_trace):
        result = simulator.run(video_trace, IvrPdn())
        manual = sum(record.supply_power_w * record.duration_s for record in result.phase_records)
        assert result.total_energy_j == pytest.approx(manual)

    def test_total_time_matches_trace_period(self, simulator, video_trace):
        result = simulator.run(video_trace, IvrPdn())
        assert result.total_time_s == pytest.approx(1.0)

    def test_mbvr_uses_less_energy_than_ivr_for_video_playback(self, simulator, video_trace):
        ivr = simulator.run(video_trace, IvrPdn())
        mbvr = simulator.run(video_trace, MbvrPdn())
        assert mbvr.total_energy_j < ivr.total_energy_j

    def test_compare_returns_all_pdns(self, simulator, video_trace):
        results = simulator.compare(video_trace, [IvrPdn(), MbvrPdn()])
        assert set(results) == {"IVR", "MBVR"}


class TestFlexWattsSimulation:
    def test_battery_life_trace_settles_into_ldo_mode(self, simulator, video_trace, flexwatts):
        result = simulator.run(video_trace, flexwatts)
        assert result.time_in_mode_s(PdnMode.LDO_MODE) > 0.0
        assert result.average_power_w < simulator.run(video_trace, IvrPdn()).average_power_w

    def test_bursty_trace_triggers_mode_switches_at_high_tdp(self, flexwatts):
        # At 50 W the active phases want IVR-Mode while idle phases want
        # LDO-Mode, so an adaptive PDN booted in the "wrong" mode must switch.
        generator = SyntheticTraceGenerator(seed=5)
        benchmark = SPEC_CPU2006_BENCHMARKS[-1]
        trace = generator.bursty_trace(
            "bursty", benchmark, active_residency=0.5, phase_duration_s=50e-3, phase_count=8
        )
        simulator = IntervalSimulator(tdp_w=50.0)
        pdn = FlexWattsPdn(
            predictor=flexwatts.predictor,
            switch_controller=ModeSwitchController(
                initial_mode=PdnMode.LDO_MODE, min_residency_s=0.0
            ),
        )
        result = simulator.run(trace, pdn)
        assert result.mode_switch_count >= 1
        assert result.mode_switch_time_s > 0.0
        assert result.mode_switch_energy_j > 0.0

    def test_switch_overhead_is_negligible_for_10ms_phases(self, flexwatts):
        generator = SyntheticTraceGenerator(seed=5)
        benchmark = SPEC_CPU2006_BENCHMARKS[-1]
        trace = generator.bursty_trace(
            "bursty", benchmark, active_residency=0.5, phase_duration_s=10e-3, phase_count=8
        )
        simulator = IntervalSimulator(tdp_w=50.0)
        pdn = FlexWattsPdn(
            predictor=flexwatts.predictor,
            switch_controller=ModeSwitchController(
                initial_mode=PdnMode.LDO_MODE, min_residency_s=0.0
            ),
        )
        result = simulator.run(trace, pdn)
        assert result.mode_switch_time_s < 0.01 * result.total_time_s

    def test_min_residency_limits_switch_rate(self, flexwatts):
        generator = SyntheticTraceGenerator(seed=5)
        benchmark = SPEC_CPU2006_BENCHMARKS[-1]
        trace = generator.bursty_trace(
            "bursty", benchmark, active_residency=0.5, phase_duration_s=5e-3, phase_count=20
        )
        simulator = IntervalSimulator(tdp_w=50.0)
        pdn = FlexWattsPdn(
            predictor=flexwatts.predictor,
            switch_controller=ModeSwitchController(
                initial_mode=PdnMode.LDO_MODE, min_residency_s=1.0
            ),
        )
        result = simulator.run(trace, pdn)
        assert result.mode_switch_count <= 1


class TestEngineEdgeCases:
    def _alternating_trace(self, phase_duration_s=50e-3, pairs=4):
        """Active/idle alternation that forces a switch at every boundary."""
        generator = SyntheticTraceGenerator(seed=5)
        benchmark = SPEC_CPU2006_BENCHMARKS[-1]
        return generator.bursty_trace(
            "alternating",
            benchmark,
            active_residency=0.5,
            phase_duration_s=phase_duration_s,
            phase_count=pairs * 2,
        )

    def test_all_zero_duration_trace_rejected(self):
        from repro.util.errors import ConfigurationError

        benchmark = SPEC_CPU2006_BENCHMARKS[0]
        trace = WorkloadTrace(
            name="zero",
            phases=(
                WorkloadPhase(PackageCState.C0, 0.5, benchmark, duration_s=0.0),
                WorkloadPhase(PackageCState.C6, 0.5, duration_s=0.0),
            ),
        )
        with pytest.raises(ConfigurationError, match="non-zero duration"):
            IntervalSimulator(tdp_w=18.0).run(trace, IvrPdn())

    def test_zero_duration_phases_skipped_not_recorded(self):
        benchmark = SPEC_CPU2006_BENCHMARKS[0]
        trace = WorkloadTrace(
            name="sparse",
            phases=(
                WorkloadPhase(PackageCState.C0, 0.4, benchmark, duration_s=0.2),
                WorkloadPhase(PackageCState.C2, 0.2, duration_s=0.0),
                WorkloadPhase(PackageCState.C6, 0.4, duration_s=0.3),
            ),
        )
        result = IntervalSimulator(tdp_w=18.0).run(trace, IvrPdn())
        assert [record.phase_index for record in result.phase_records] == [0, 2]
        assert result.total_time_s == pytest.approx(0.5)

    def test_min_residency_guard_prevents_thrash(self, flexwatts):
        """With the guard longer than a phase, alternation cannot thrash."""
        trace = self._alternating_trace(phase_duration_s=20e-3, pairs=10)
        simulator = IntervalSimulator(tdp_w=50.0)
        guarded = FlexWattsPdn(
            predictor=flexwatts.predictor,
            switch_controller=ModeSwitchController(
                initial_mode=PdnMode.LDO_MODE, min_residency_s=90e-3
            ),
        )
        free = FlexWattsPdn(
            predictor=flexwatts.predictor,
            switch_controller=ModeSwitchController(
                initial_mode=PdnMode.LDO_MODE, min_residency_s=0.0
            ),
        )
        guarded_result = simulator.run(trace, guarded)
        free_result = simulator.run(trace, free)
        assert free_result.mode_switch_count > guarded_result.mode_switch_count
        # Every inter-switch interval respects the guard: with 20 ms phases
        # and a 90 ms guard at most one switch per 5 phases is possible.
        assert guarded_result.mode_switch_count <= len(trace.phases) // 5 + 1

    def test_consecutive_switch_accounting_accumulates(self, flexwatts):
        """N switches cost exactly N flows in count, time and energy."""
        trace = self._alternating_trace(phase_duration_s=50e-3, pairs=4)
        simulator = IntervalSimulator(tdp_w=50.0)
        controller = ModeSwitchController(
            initial_mode=PdnMode.LDO_MODE, min_residency_s=0.0
        )
        pdn = FlexWattsPdn(predictor=flexwatts.predictor, switch_controller=controller)
        result = simulator.run(trace, pdn)
        assert result.mode_switch_count >= 2  # switches at both edge kinds
        assert result.mode_switch_count == controller.switch_count
        per_switch_s = controller.overheads.total_latency_s
        assert result.mode_switch_time_s == pytest.approx(
            result.mode_switch_count * per_switch_s
        )
        # Energy is paid at the pre-switch mode's power; switches out of the
        # active phase cost more than switches out of idle, so the total sits
        # strictly between N x idle-power and N x active-power flows.
        switched = [r for r in result.phase_records if r.mode_switched]
        assert len(switched) == result.mode_switch_count
        powers = sorted(r.supply_power_w for r in result.phase_records)
        assert result.mode_switch_energy_j > 0.0
        assert result.mode_switch_energy_j < result.mode_switch_count * (
            per_switch_s * powers[-1]
        )
        # Total time includes every flow on top of the trace's phase time.
        phase_time = sum(r.duration_s for r in result.phase_records)
        assert result.total_time_s == pytest.approx(
            phase_time + result.mode_switch_time_s
        )

    def test_phase_memo_preserves_results(self, flexwatts):
        """Batched (memoised) evaluation is invisible in the outcome.

        The duty-cycled scenario repeats one operating point 40 times; the
        memo must serve repeats without changing any aggregate relative to
        an evaluation hook that recomputes every phase.
        """
        from repro.workloads.scenarios import build_scenario_trace

        trace = build_scenario_trace("duty-cycled-background")
        simulator = IntervalSimulator(tdp_w=18.0)
        calls = []

        def counting_evaluate(pdn, conditions):
            calls.append(conditions)
            return pdn.evaluate(conditions)

        memoised = simulator.run(trace, IvrPdn(), evaluate=counting_evaluate)
        assert len(calls) == 3  # 120 phases, 3 distinct operating points
        direct = simulator.run(trace, IvrPdn())
        assert memoised == direct


class TestTraceHandling:
    def test_c0_phase_without_benchmark_rejected(self, simulator):
        from repro.util.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            WorkloadTrace(
                name="bad",
                phases=(WorkloadPhase(power_state=PackageCState.C0, residency=1.0),),
            )

    def test_explicit_durations_override_residency(self):
        benchmark = SPEC_CPU2006_BENCHMARKS[0]
        trace = WorkloadTrace(
            name="timed",
            phases=(
                WorkloadPhase(PackageCState.C0, 0.5, benchmark, duration_s=0.2),
                WorkloadPhase(PackageCState.C6, 0.5, duration_s=0.3),
            ),
        )
        result = IntervalSimulator(tdp_w=18.0).run(trace, IvrPdn())
        assert result.total_time_s == pytest.approx(0.5)
