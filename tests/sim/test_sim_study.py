"""SimStudy/SimEngine semantics: grids, executors, caching, adapters.

The simulation engine must honour the same guarantees as the analytic
engine (PR 2): every backend produces a bit-identical ResultSet, duplicate
units are computed once, the memo cache ends a parallel run exactly as warm
as a serial run would leave it, and adaptive (FlexWatts) state never leaks
between grid points.
"""

from __future__ import annotations

import pytest

from repro.analysis.executor import EXECUTORS
from repro.sim.adapters import (
    SIM_METRIC_COLUMNS,
    phases_to_resultset,
    results_to_resultset,
    simulation_record,
)
from repro.sim.study import SimEngine, SimPoint, SimStudy, run_sim
from repro.util.errors import ConfigurationError

BACKENDS = sorted(EXECUTORS)

#: A small but heterogeneous grid: an adaptive-heavy scenario, an idle-heavy
#: scenario, two TDPs.
GRID_SCENARIOS = ("duty-cycled-background", "bursty-interactive")
GRID_TDPS_W = (4.0, 50.0)


def _grid_study() -> SimStudy:
    return (
        SimStudy.builder("sim-grid")
        .scenarios(*GRID_SCENARIOS)
        .tdps(*GRID_TDPS_W)
        .build()
    )


class TestStudyBuilding:
    def test_grid_order_is_scenario_major_then_tdp(self):
        study = _grid_study()
        assert len(study) == 4
        assert [(p.scenario, p.tdp_w) for p in study.points] == [
            ("duty-cycled-background", 4.0),
            ("duty-cycled-background", 50.0),
            ("bursty-interactive", 4.0),
            ("bursty-interactive", 50.0),
        ]

    def test_over_scenarios_convenience(self):
        study = SimStudy.over_scenarios(["race-to-idle"], tdps_w=[18.0])
        assert len(study) == 1
        assert study.points[0].seed == 2020

    def test_parameter_grid_crossed_outermost(self):
        study = (
            SimStudy.builder("overrides")
            .scenarios("race-to-idle")
            .tdps(4.0)
            .parameter_grid({}, {"ivr_tolerance_band_v": 0.010})
            .build()
        )
        assert len(study) == 2
        assert study.points[0].overrides == ()
        assert study.points[1].overrides == (("ivr_tolerance_band_v", 0.010),)

    def test_unknown_scenario_fails_at_build(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            SimStudy.builder("bad").scenarios("no-such-scenario").build()

    def test_empty_study_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one scenario"):
            SimStudy.builder("empty").build()

    def test_invalid_point_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            SimPoint(scenario="race-to-idle", tdp_w=0.0)
        with pytest.raises(ConfigurationError):
            SimPoint(scenario="race-to-idle", tdp_w=4.0, trace_period_s=0.0)


class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def serial_reference(self):
        engine = SimEngine()
        resultset = engine.run(_grid_study())
        return resultset, engine.cache_info()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cold_run_matches_serial(self, backend, serial_reference):
        reference, reference_info = serial_reference
        engine = SimEngine()
        resultset = engine.run(_grid_study(), executor=backend, jobs=4)
        assert resultset == reference
        info = engine.cache_info()
        assert (info.hits, info.misses, info.size) == (
            reference_info.hits,
            reference_info.misses,
            reference_info.size,
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warm_run_is_all_hits_and_equal(self, backend, serial_reference):
        reference, _ = serial_reference
        engine = SimEngine()
        engine.run(_grid_study())  # warm serially
        cold_info = engine.cache_info()
        resultset = engine.run(_grid_study(), executor=backend, jobs=4)
        assert resultset == reference
        warm_info = engine.cache_info()
        assert warm_info.misses == cold_info.misses  # nothing recomputed
        assert warm_info.hits == cold_info.hits + len(reference)

    def test_serial_and_parallel_json_is_bit_identical(self, serial_reference):
        reference, _ = serial_reference
        parallel = SimEngine().run(_grid_study(), executor="process", jobs=4)
        assert parallel.to_json() == reference.to_json()
        assert parallel.to_csv() == reference.to_csv()

    def test_run_sim_entry_point(self, serial_reference):
        reference, _ = serial_reference
        assert run_sim(_grid_study(), jobs=2) == reference

    def test_run_sim_rejects_engine_plus_parameters(self):
        with pytest.raises(ConfigurationError, match="not both"):
            run_sim(
                _grid_study(),
                engine=SimEngine(),
                parameters=SimEngine().parameters,
            )


class TestEngineSemantics:
    def test_adaptive_state_never_leaks_between_runs(self):
        """Re-simulating the same point must give an identical result.

        FlexWatts' mode-switch controller is stateful; the engine must hand
        every simulation a fresh controller or the second run would start in
        the mode the first one ended in.
        """
        engine = SimEngine(enable_cache=False)
        point = SimPoint(scenario="bursty-interactive", tdp_w=50.0)
        first = engine.evaluate_uncached("FlexWatts", point, ())
        second = engine.evaluate_uncached("FlexWatts", point, ())
        assert first == second
        assert first.mode_switch_count > 0

    def test_duplicate_units_counted_like_serial(self):
        point = SimPoint(scenario="race-to-idle", tdp_w=18.0)
        units = [("IVR", point, ())] * 3
        engine = SimEngine()
        results = engine.evaluate_units(units, executor="thread", jobs=2)
        info = engine.cache_info()
        assert (info.hits, info.misses, info.size) == (2, 1, 1)
        assert results[0] == results[1] == results[2]

    def test_cached_master_is_caller_isolated(self):
        engine = SimEngine()
        point = SimPoint(scenario="race-to-idle", tdp_w=18.0)
        first = engine.evaluate_cached("IVR", point, ())
        first.phase_records.clear()
        second = engine.evaluate_cached("IVR", point, ())
        assert second.phase_records  # unaffected by the caller's mutation

    def test_pdn_restriction_and_unknown_pdn(self):
        study = (
            SimStudy.builder("restricted")
            .scenarios("race-to-idle")
            .pdns("IVR", "FlexWatts")
            .build()
        )
        resultset = SimEngine().run(study)
        assert resultset.unique("pdn") == ["IVR", "FlexWatts"]
        bad = (
            SimStudy.builder("bad").scenarios("race-to-idle").pdns("NoSuchPdn").build()
        )
        with pytest.raises(ConfigurationError):
            SimEngine().run(bad)

    def test_parameter_overrides_change_the_outcome(self):
        study = (
            SimStudy.builder("overrides")
            .scenarios("sustained-compute")
            .tdps(18.0)
            .parameter_grid({}, {"ivr_tolerance_band_v": 0.030})
            .pdns("IVR")
            .build()
        )
        resultset = SimEngine().run(study)
        records = resultset.to_records()
        assert len(records) == 2
        assert "parameters" not in records[0]
        assert records[1]["parameters"] == {"ivr_tolerance_band_v": 0.030}
        # A wider tolerance band costs guardband power, so the energy moves.
        assert records[0]["total_energy_j"] != records[1]["total_energy_j"]

    def test_phase_cache_shared_across_scenarios(self):
        """Operating points shared between traces hit the analytic cache."""
        engine = SimEngine()
        study = (
            SimStudy.builder("shared-idle")
            .scenarios("duty-cycled-background")
            .tdps(18.0)
            .pdns("IVR")
            .build()
        )
        engine.run(study)
        spot_info = engine.spot.cache_info()
        # 40 identical wake cycles collapse to 3 distinct operating points.
        assert spot_info.size == 3
        assert spot_info.misses == 3


class TestAdapters:
    @pytest.fixture(scope="class")
    def flexwatts_run(self):
        engine = SimEngine()
        point = SimPoint(scenario="bursty-interactive", tdp_w=50.0)
        return engine.evaluate_cached("FlexWatts", point, ())

    def test_simulation_record_fields(self, flexwatts_run):
        record = simulation_record(flexwatts_run, {"scenario": "x", "seed": 1})
        assert record["pdn"] == "FlexWatts"
        assert record["scenario"] == "x"  # identity wins over trace name
        assert record["seed"] == 1
        assert record["total_energy_j"] == pytest.approx(
            flexwatts_run.total_energy_j
        )
        assert record["ldo_mode_time_s"] >= 0.0

    def test_static_record_has_no_mode_columns(self):
        engine = SimEngine()
        run = engine.evaluate_cached(
            "IVR", SimPoint(scenario="race-to-idle", tdp_w=18.0), ()
        )
        record = simulation_record(run)
        assert "ivr_mode_time_s" not in record
        assert record["mode_switch_count"] == 0

    def test_results_to_resultset_round_trips_json(self, flexwatts_run):
        resultset = results_to_resultset([({"seed": 0}, flexwatts_run)])
        from repro.analysis.resultset import ResultSet

        assert ResultSet.from_json(resultset.to_json()) == resultset

    def test_phases_resultset_shape(self, flexwatts_run):
        phases = phases_to_resultset(flexwatts_run)
        assert len(phases) == len(flexwatts_run.phase_records)
        switched = phases.filter(mode_switched=True)
        assert len(switched) == flexwatts_run.mode_switch_count

    def test_normalize_to_with_sim_metric_columns(self):
        study = SimStudy.over_scenarios(["race-to-idle"], tdps_w=[4.0, 50.0])
        resultset = SimEngine().run(study)
        normalised = resultset.normalize_to(
            "IVR",
            value_columns=("total_energy_j", "average_power_w"),
            metric_columns=SIM_METRIC_COLUMNS,
        )
        for record in normalised.filter(pdn="IVR").to_records():
            assert record["total_energy_j"] == pytest.approx(1.0)
            assert record["average_power_w"] == pytest.approx(1.0)
        # Mode-switch counters must be excluded from scenario identity, or
        # the FlexWatts rows would have found no baseline row at all.
        assert len(normalised) == len(resultset)
