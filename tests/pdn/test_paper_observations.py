"""Integration tests for the paper's three motivating observations (Sec. 5).

These tests pin the qualitative shapes the reproduction must preserve; they
are the regression net for any recalibration of the regulator loss models.
"""

import pytest

from repro.pdn.base import OperatingConditions
from repro.power.domains import WorkloadType
from repro.power.power_states import BATTERY_LIFE_STATES, PackageCState


def _etee(pdns, name, tdp_w, ar=0.56, workload=WorkloadType.CPU_MULTI_THREAD):
    conditions = OperatingConditions.for_active_workload(tdp_w, ar, workload)
    return pdns[name].evaluate(conditions).etee


class TestObservation1:
    """IVR is the least efficient PDN at low TDP and the most efficient at high TDP."""

    def test_ivr_worst_at_4w(self, all_pdns):
        ivr = _etee(all_pdns, "IVR", 4.0)
        assert ivr < _etee(all_pdns, "MBVR", 4.0)
        assert ivr < _etee(all_pdns, "LDO", 4.0)

    def test_ivr_best_of_the_three_common_pdns_at_50w(self, all_pdns):
        ivr = _etee(all_pdns, "IVR", 50.0)
        assert ivr > _etee(all_pdns, "MBVR", 50.0)
        assert ivr > _etee(all_pdns, "LDO", 50.0)

    def test_crossover_exists_between_4w_and_50w(self, all_pdns):
        # Somewhere between 4 W and 50 W the IVR/MBVR ordering flips.
        deltas = []
        for tdp in (4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0):
            deltas.append(_etee(all_pdns, "IVR", tdp) - _etee(all_pdns, "MBVR", tdp))
        assert deltas[0] < 0.0 < deltas[-1]

    def test_4w_gap_is_significant(self, all_pdns):
        # The 4 W gap drives the >22 % performance improvements of Fig. 7.
        gap = _etee(all_pdns, "MBVR", 4.0) - _etee(all_pdns, "IVR", 4.0)
        assert gap > 0.04


class TestObservation2:
    """ETEE depends on the application ratio and the workload type."""

    @pytest.mark.parametrize("pdn_name", ["MBVR", "LDO"])
    def test_mbvr_and_ldo_etee_increase_with_ar(self, all_pdns, pdn_name):
        etees = [_etee(all_pdns, pdn_name, 18.0, ar=ar) for ar in (0.4, 0.6, 0.8)]
        assert etees[0] < etees[1] < etees[2]

    def test_ldo_beats_mbvr_for_cpu_workloads(self, all_pdns):
        for tdp in (4.0, 18.0, 50.0):
            assert _etee(all_pdns, "LDO", tdp) > _etee(all_pdns, "MBVR", tdp)

    def test_ldo_loses_to_mbvr_for_graphics_workloads_at_mid_and_high_tdp(self, all_pdns):
        for tdp in (18.0, 36.0):
            ldo = _etee(all_pdns, "LDO", tdp, workload=WorkloadType.GRAPHICS)
            mbvr = _etee(all_pdns, "MBVR", tdp, workload=WorkloadType.GRAPHICS)
            assert ldo < mbvr

    def test_graphics_voltage_gap_hurts_ldo_more_than_ivr(self, all_pdns):
        tdp = 18.0
        ldo_drop = _etee(all_pdns, "LDO", tdp) - _etee(
            all_pdns, "LDO", tdp, workload=WorkloadType.GRAPHICS
        )
        ivr_drop = _etee(all_pdns, "IVR", tdp) - _etee(
            all_pdns, "IVR", tdp, workload=WorkloadType.GRAPHICS
        )
        assert ldo_drop > ivr_drop


class TestObservation3:
    """IVR is markedly less efficient in light-load / idle power states."""

    @pytest.mark.parametrize("state", list(BATTERY_LIFE_STATES))
    def test_ivr_least_efficient_in_every_battery_life_state(self, all_pdns, state):
        conditions = OperatingConditions.for_power_state(18.0, state)
        ivr = all_pdns["IVR"].evaluate(conditions).etee
        mbvr = all_pdns["MBVR"].evaluate(conditions).etee
        ldo = all_pdns["LDO"].evaluate(conditions).etee
        assert ivr < mbvr
        assert ivr < ldo

    def test_c0min_gap_drives_battery_life_savings(self, all_pdns):
        conditions = OperatingConditions.for_power_state(18.0, PackageCState.C0_MIN)
        ivr = all_pdns["IVR"].evaluate(conditions)
        mbvr = all_pdns["MBVR"].evaluate(conditions)
        # MBVR draws noticeably less supply power for the same nominal load.
        assert mbvr.supply_power_w < 0.95 * ivr.supply_power_w
