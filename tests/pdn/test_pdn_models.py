"""Unit tests for the four baseline PDN models (Eq. 1-12)."""

import pytest

from repro.pdn.base import OperatingConditions, peak_domain_powers_w
from repro.pdn.imbvr import IMbvrPdn
from repro.pdn.ivr import IvrPdn
from repro.pdn.ldo import LdoPdn
from repro.pdn.mbvr import MbvrPdn
from repro.pdn.registry import available_pdns, build_pdn
from repro.power.domains import DomainKind, WorkloadType
from repro.power.power_states import PackageCState
from repro.util.errors import ConfigurationError


ALL_PDN_CLASSES = (IvrPdn, MbvrPdn, LdoPdn, IMbvrPdn)


def _conditions(tdp_w=18.0, ar=0.56, workload=WorkloadType.CPU_MULTI_THREAD):
    return OperatingConditions.for_active_workload(tdp_w, ar, workload)


class TestCommonInvariants:
    @pytest.mark.parametrize("pdn_class", ALL_PDN_CLASSES)
    def test_supply_power_exceeds_nominal_power(self, pdn_class):
        evaluation = pdn_class().evaluate(_conditions())
        assert evaluation.supply_power_w > evaluation.nominal_power_w

    @pytest.mark.parametrize("pdn_class", ALL_PDN_CLASSES)
    def test_etee_is_a_physical_fraction(self, pdn_class):
        for tdp in (4.0, 18.0, 50.0):
            etee = pdn_class().evaluate(_conditions(tdp)).etee
            assert 0.5 < etee < 0.95

    @pytest.mark.parametrize("pdn_class", ALL_PDN_CLASSES)
    def test_loss_breakdown_accounts_for_most_of_the_loss(self, pdn_class):
        evaluation = pdn_class().evaluate(_conditions())
        assert evaluation.breakdown.total_w == pytest.approx(evaluation.loss_w, rel=0.05)

    @pytest.mark.parametrize("pdn_class", ALL_PDN_CLASSES)
    def test_idle_power_state_evaluation(self, pdn_class):
        conditions = OperatingConditions.for_power_state(18.0, PackageCState.C8)
        evaluation = pdn_class().evaluate(conditions)
        assert evaluation.supply_power_w > evaluation.nominal_power_w > 0.0

    @pytest.mark.parametrize("pdn_class", ALL_PDN_CLASSES)
    def test_supply_power_scales_with_tdp(self, pdn_class):
        pdn = pdn_class()
        low = pdn.evaluate(_conditions(4.0)).supply_power_w
        high = pdn.evaluate(_conditions(50.0)).supply_power_w
        assert high > 5.0 * low

    @pytest.mark.parametrize("pdn_class", ALL_PDN_CLASSES)
    def test_describe_mentions_the_pdn(self, pdn_class):
        pdn = pdn_class()
        assert "PDN" in pdn.describe()

    @pytest.mark.parametrize("pdn_class", ALL_PDN_CLASSES)
    def test_chip_input_current_positive(self, pdn_class):
        assert pdn_class().evaluate(_conditions()).chip_input_current_a > 0.0


class TestIvrSpecifics:
    def test_single_off_chip_regulator(self):
        requirements = IvrPdn().iccmax_requirements_a(18.0)
        assert set(requirements) == {"V_IN"}

    def test_input_rail_voltage_is_1v8(self):
        evaluation = IvrPdn().evaluate(_conditions())
        assert evaluation.rail_voltages_v["V_IN"] == pytest.approx(1.8, abs=0.1)

    def test_on_chip_losses_dominate_vr_inefficiency(self):
        breakdown = IvrPdn().evaluate(_conditions(4.0)).breakdown
        assert breakdown.on_chip_vr_w > 0.0
        assert breakdown.off_chip_vr_w > 0.0

    def test_chip_input_current_lower_than_mbvr(self):
        # The IVR PDN feeds the chip at 1.8 V, so its input current is roughly
        # half of the MBVR PDN's (Fig. 5's line plot, ~2x ratio).
        conditions = _conditions(50.0)
        ivr_current = IvrPdn().evaluate(conditions).chip_input_current_a
        mbvr_current = MbvrPdn().evaluate(conditions).chip_input_current_a
        assert mbvr_current > 1.4 * ivr_current


class TestMbvrSpecifics:
    def test_four_off_chip_regulators(self):
        requirements = MbvrPdn().iccmax_requirements_a(18.0)
        assert set(requirements) == {"V_Cores", "V_GFX", "V_SA", "V_IO"}

    def test_compute_conduction_loss_grows_with_tdp(self):
        pdn = MbvrPdn()
        low = pdn.evaluate(_conditions(4.0))
        high = pdn.evaluate(_conditions(50.0))
        low_fraction = low.breakdown.conduction_compute_w / low.supply_power_w
        high_fraction = high.breakdown.conduction_compute_w / high.supply_power_w
        assert high_fraction > 3.0 * low_fraction

    def test_gfx_rail_idle_during_cpu_workload_costs_little(self):
        evaluation = MbvrPdn().evaluate(_conditions())
        assert evaluation.breakdown.rail_details["V_GFX"] < 1.0


class TestLdoSpecifics:
    def test_three_off_chip_regulators(self):
        requirements = LdoPdn().iccmax_requirements_a(18.0)
        assert set(requirements) == {"V_IN", "V_SA", "V_IO"}

    def test_graphics_workload_hurts_ldo_etee(self):
        # Observation 2: the core-vs-graphics voltage gap collapses the core
        # LDO efficiency for graphics workloads.
        pdn = LdoPdn()
        cpu = pdn.evaluate(_conditions(18.0, workload=WorkloadType.CPU_MULTI_THREAD)).etee
        gfx = pdn.evaluate(_conditions(18.0, workload=WorkloadType.GRAPHICS)).etee
        assert gfx < cpu

    def test_input_rail_voltage_tracks_max_compute_voltage(self):
        evaluation = LdoPdn().evaluate(_conditions(50.0, workload=WorkloadType.GRAPHICS))
        assert evaluation.rail_voltages_v["V_IN"] < 1.3  # not the 1.8 V IVR rail


class TestIMbvrSpecifics:
    def test_three_off_chip_regulators(self):
        requirements = IMbvrPdn().iccmax_requirements_a(18.0)
        assert set(requirements) == {"V_IN", "V_SA", "V_IO"}

    def test_beats_plain_ivr_everywhere(self):
        # I+MBVR removes the SA/IO two-stage conversion, so it is never worse
        # than IVR (Sec. 7.1 reports up to +6 %).
        for tdp in (4.0, 18.0, 50.0):
            conditions = _conditions(tdp)
            assert IMbvrPdn().evaluate(conditions).etee > IvrPdn().evaluate(conditions).etee

    def test_v_in_iccmax_smaller_than_ivr(self):
        # I+MBVR's V_IN feeds only the compute domains.
        assert (
            IMbvrPdn().iccmax_requirements_a(50.0)["V_IN"]
            < IvrPdn().iccmax_requirements_a(50.0)["V_IN"]
        )


class TestRegistry:
    def test_all_five_architectures_available(self):
        assert set(available_pdns()) == {"IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts"}

    def test_build_is_case_insensitive(self):
        assert build_pdn("ivr").name == "IVR"
        assert build_pdn("flexwatts").name == "FlexWatts"

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigurationError):
            build_pdn("does-not-exist")

    def test_build_passes_parameters_through(self):
        from repro.power.parameters import default_parameters

        params = default_parameters().with_overrides(ivr_tolerance_band_v=0.022)
        pdn = build_pdn("IVR", params)
        assert pdn.parameters.ivr_tolerance_band_v == pytest.approx(0.022)


class TestOperatingConditions:
    def test_active_constructor_produces_all_domains(self):
        conditions = _conditions()
        assert {load.kind for load in conditions.loads} == set(DomainKind)

    def test_power_state_constructor_rejects_c0(self):
        from repro.util.errors import ModelDomainError

        with pytest.raises(ModelDomainError):
            OperatingConditions.for_power_state(18.0, PackageCState.C0)

    def test_invalid_application_ratio_rejected(self):
        from repro.util.errors import ModelDomainError

        with pytest.raises(ModelDomainError):
            OperatingConditions.for_active_workload(18.0, 0.0, WorkloadType.CPU_MULTI_THREAD)

    def test_load_lookup(self):
        conditions = _conditions()
        assert conditions.load(DomainKind.SA).kind is DomainKind.SA

    def test_peak_domain_powers_monotone_in_tdp(self):
        low = peak_domain_powers_w(4.0)
        high = peak_domain_powers_w(50.0)
        assert high[DomainKind.CORE0] > low[DomainKind.CORE0]
        assert high[DomainKind.GFX] > low[DomainKind.GFX]
