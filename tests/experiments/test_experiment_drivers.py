"""Tests for the per-figure experiment drivers."""

import pytest

from repro.experiments import (
    fig2_performance_model,
    fig3_vr_efficiency,
    fig4_validation,
    fig5_loss_breakdown,
    fig7_spec_4w,
    fig8_evaluation,
)


class TestFig2:
    def test_frequency_sensitivity_monotone(self):
        records = fig2_performance_model.frequency_sensitivity_table()
        costs = [record["cpu_mw_per_percent"] for record in records]
        assert costs == sorted(costs)
        assert 4.0 <= costs[0] <= 15.0  # ~9 mW at 4 W (Fig. 2a)

    def test_budget_breakdown_fractions_sum_to_one(self):
        for record in fig2_performance_model.budget_breakdown_table():
            total = (
                record["sa_io_fraction"]
                + record["cpu_fraction"]
                + record["llc_fraction"]
                + record["pdn_loss_fraction"]
            )
            assert total == pytest.approx(1.0)

    def test_formatting(self):
        assert "Fig. 2(a)" in fig2_performance_model.format_figure2a()
        assert "Fig. 2(b)" in fig2_performance_model.format_figure2b()


class TestFig3:
    def test_curve_grid_size(self):
        records = fig3_vr_efficiency.vr_efficiency_curves()
        expected = (
            len(fig3_vr_efficiency.FIG3_CURRENTS_A)
            * len(fig3_vr_efficiency.FIG3_VOLTAGES_V)
            * len(fig3_vr_efficiency.FIG3_POWER_STATES)
        )
        assert len(records) == expected

    def test_efficiencies_within_figure_range(self):
        for record in fig3_vr_efficiency.vr_efficiency_curves():
            assert 0.40 <= record["efficiency"] <= 0.95

    def test_formatting(self):
        assert "Fig. 3" in fig3_vr_efficiency.format_figure3()


class TestFig4:
    def test_grid_covers_all_panels(self):
        records = fig4_validation.etee_grid(application_ratios=(0.4, 0.8))
        # 3 workload types x 3 TDPs x 2 ARs x 3 PDNs
        assert len(records) == 3 * 3 * 2 * 3

    def test_power_state_grid(self):
        records = fig4_validation.power_state_grid()
        assert len(records) == 6 * 3

    def test_model_accuracy_close_to_one(self):
        accuracy = fig4_validation.model_accuracy(trace_count_per_type=3)
        for stats in accuracy.values():
            assert stats["average_accuracy"] > 0.95


class TestFig5:
    def test_breakdown_shapes(self):
        records = fig5_loss_breakdown.loss_breakdown()
        by_key = {(r["pdn"], r["tdp_w"]): r for r in records}
        # IVR input current is the normalisation base.
        assert by_key[("IVR", 50.0)]["normalised_input_current"] == pytest.approx(1.0)
        # MBVR/LDO chip input current is well above IVR's (paper: ~2x).
        assert by_key[("MBVR", 50.0)]["normalised_input_current"] > 1.3
        assert by_key[("LDO", 50.0)]["normalised_input_current"] > 1.3
        # MBVR compute conduction grows with TDP much faster than IVR's.
        assert (
            by_key[("MBVR", 50.0)]["conduction_compute"]
            > 3.0 * by_key[("IVR", 50.0)]["conduction_compute"]
        )

    def test_ivr_has_highest_vr_inefficiency_at_4w(self):
        records = fig5_loss_breakdown.loss_breakdown(tdps_w=(4.0,))
        by_pdn = {r["pdn"]: r for r in records}
        assert by_pdn["IVR"]["vr_inefficiency"] > by_pdn["MBVR"]["vr_inefficiency"]
        assert by_pdn["IVR"]["vr_inefficiency"] > by_pdn["LDO"]["vr_inefficiency"]

    def test_loadline_line_plot_values(self):
        records = fig5_loss_breakdown.loss_breakdown(tdps_w=(18.0,))
        by_pdn = {r["pdn"]: r for r in records}
        assert by_pdn["MBVR"]["compute_loadline_mohm"] == pytest.approx(2.5)
        assert by_pdn["LDO"]["compute_loadline_mohm"] == pytest.approx(1.25)
        assert by_pdn["IVR"]["compute_loadline_mohm"] == pytest.approx(1.0)


class TestFig7AndFig8:
    def test_fig7_averages_match_headline_claims(self):
        records = fig7_spec_4w.spec_performance_at_4w()
        averages = fig7_spec_4w.average_performance(records)
        assert averages["IVR"] == pytest.approx(1.0)
        assert averages["MBVR"] > 1.18
        assert averages["LDO"] > 1.18
        assert averages["FlexWatts"] > 1.18
        # FlexWatts within ~1 % of the best static PDN.
        assert averages["FlexWatts"] > max(averages["MBVR"], averages["LDO"]) - 0.015
        # I+MBVR improves on IVR but much less than FlexWatts.
        assert 1.0 < averages["I+MBVR"] < averages["FlexWatts"]

    def test_fig8a_flexwatts_never_below_ivr(self):
        spot = fig8_evaluation._spot()
        for record in fig8_evaluation.spec_performance_sweep(tdps_w=(4.0, 18.0, 50.0), spot=spot):
            assert record["FlexWatts"] >= record["IVR"] - 1e-9

    def test_fig8c_battery_life_savings(self):
        table = fig8_evaluation.battery_life_power()
        for workload, powers in table.items():
            assert powers["FlexWatts"] < 0.95  # at least 5 % below IVR
            assert powers["IVR"] == pytest.approx(1.0)

    def test_fig8d_and_e_cost_shapes(self):
        spot = fig8_evaluation._spot()
        bom = fig8_evaluation.bom_sweep(tdps_w=(4.0, 50.0), spot=spot)
        area = fig8_evaluation.board_area_sweep(tdps_w=(4.0, 50.0), spot=spot)
        for record in bom + area:
            assert record["MBVR"] > record["FlexWatts"]
            assert record["LDO"] > record["I+MBVR"]


class TestSimScenarios:
    def test_resultset_covers_the_grid(self):
        from repro.experiments import sim_scenarios

        results = sim_scenarios.scenario_resultset(
            scenarios=("race-to-idle",), tdps_w=(4.0,)
        )
        assert len(results) == len(sim_scenarios.SIM_PDNS)
        assert results.unique("scenario") == ["race-to-idle"]

    def test_formatting_normalises_to_ivr(self):
        from repro.experiments import sim_scenarios

        text = sim_scenarios.format_sim_scenarios()
        assert "normalised to IVR" in text
        assert "FW switches" in text
        for scenario in ("bursty-interactive", "duty-cycled-background"):
            assert scenario in text

    def test_flexwatts_tracks_the_better_static_side(self):
        """FlexWatts never draws more energy than the worse of its two modes."""
        from repro.experiments import sim_scenarios
        from repro.sim.adapters import SIM_METRIC_COLUMNS

        results = sim_scenarios.scenario_resultset()
        normalised = results.normalize_to(
            "IVR",
            value_columns=("total_energy_j",),
            metric_columns=SIM_METRIC_COLUMNS,
        )
        by_point = {}
        for record in normalised.to_records():
            key = (record["scenario"], record["tdp_w"])
            by_point.setdefault(key, {})[record["pdn"]] = record["total_energy_j"]
        for cells in by_point.values():
            worse_static = max(cells["I+MBVR"], cells["LDO"])
            assert cells["FlexWatts"] <= worse_static + 0.02  # switch overhead
