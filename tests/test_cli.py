"""Tests for the command-line interface."""

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.cli import (
    build_parser,
    main,
    run_battery_life,
    run_cost,
    run_etee,
    run_performance,
    run_predict,
)
from repro.power.domains import WorkloadType


@pytest.fixture(scope="module")
def spot():
    return PdnSpot()


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["etee", "--tdp", "4"])
        assert args.command == "etee"
        assert args.tdp == pytest.approx(4.0)
        assert build_parser().parse_args(["battery-life"]).command == "battery-life"
        assert build_parser().parse_args(["figures", "--quick"]).quick is True

    def test_workload_type_parsing(self):
        args = build_parser().parse_args(["etee", "--workload", "graphics"])
        assert args.workload is WorkloadType.GRAPHICS

    def test_invalid_workload_type_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["etee", "--workload", "nonsense"])

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSubcommands:
    def test_etee_table_contains_all_pdns(self, spot):
        text = run_etee(spot, 4.0, 0.56, WorkloadType.CPU_MULTI_THREAD)
        for name in ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts"):
            assert name in text

    def test_performance_table_mentions_suite(self, spot):
        assert "SPEC" in run_performance(spot, 4.0, "spec")
        assert "3DMark06" in run_performance(spot, 4.0, "3dmark")

    def test_battery_life_table(self, spot):
        text = run_battery_life(spot)
        assert "video_playback" in text

    def test_cost_table(self, spot):
        text = run_cost(spot, 18.0)
        assert "BOM vs IVR" in text

    def test_predict_reports_a_mode(self, spot):
        low = run_predict(spot, 4.0, 0.56, WorkloadType.CPU_MULTI_THREAD)
        high = run_predict(spot, 50.0, 0.56, WorkloadType.CPU_MULTI_THREAD)
        assert "ldo_mode" in low
        assert "ivr_mode" in high


class TestMain:
    def test_main_etee_exit_code(self, capsys):
        assert main(["etee", "--tdp", "4"]) == 0
        captured = capsys.readouterr()
        assert "ETEE" in captured.out

    def test_main_cost(self, capsys):
        assert main(["cost", "--tdp", "25"]) == 0
        assert "BOM" in capsys.readouterr().out
