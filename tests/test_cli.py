"""Tests for the command-line interface."""

import json

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.analysis.resultset import ResultSet
from repro.cli import (
    build_parser,
    build_simulate_study,
    build_sweep_study,
    main,
    run_battery_life,
    run_cost,
    run_etee,
    run_export,
    run_performance,
    run_predict,
    run_simulate,
    run_sweep,
)
from repro.power.domains import WorkloadType
from repro.power.power_states import PackageCState


@pytest.fixture(scope="module")
def spot():
    return PdnSpot()


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["etee", "--tdp", "4"])
        assert args.command == "etee"
        assert args.tdp == pytest.approx(4.0)
        assert build_parser().parse_args(["battery-life"]).command == "battery-life"
        assert build_parser().parse_args(["figures", "--quick"]).quick is True

    def test_workload_type_parsing(self):
        args = build_parser().parse_args(["etee", "--workload", "graphics"])
        assert args.workload is WorkloadType.GRAPHICS

    def test_invalid_workload_type_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["etee", "--workload", "nonsense"])

    def test_missing_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSubcommands:
    def test_etee_table_contains_all_pdns(self, spot):
        text = run_etee(spot, 4.0, 0.56, WorkloadType.CPU_MULTI_THREAD)
        for name in ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts"):
            assert name in text

    def test_performance_table_mentions_suite(self, spot):
        assert "SPEC" in run_performance(spot, 4.0, "spec")
        assert "3DMark06" in run_performance(spot, 4.0, "3dmark")

    def test_battery_life_table(self, spot):
        text = run_battery_life(spot)
        assert "video_playback" in text

    def test_cost_table(self, spot):
        text = run_cost(spot, 18.0)
        assert "BOM vs IVR" in text

    def test_predict_reports_a_mode(self, spot):
        low = run_predict(spot, 4.0, 0.56, WorkloadType.CPU_MULTI_THREAD)
        high = run_predict(spot, 50.0, 0.56, WorkloadType.CPU_MULTI_THREAD)
        assert "ldo_mode" in low
        assert "ivr_mode" in high


class TestJsonFlag:
    def test_etee_json(self, spot):
        payload = json.loads(run_etee(spot, 4.0, 0.56, WorkloadType.CPU_MULTI_THREAD, as_json=True))
        assert payload["tdp_w"] == pytest.approx(4.0)
        assert payload["etee"]["FlexWatts"] > payload["etee"]["IVR"]

    def test_performance_json(self, spot):
        payload = json.loads(run_performance(spot, 4.0, "spec", as_json=True))
        assert payload["performance_vs_baseline"]["IVR"] == pytest.approx(1.0)

    def test_battery_life_json(self, spot):
        payload = json.loads(run_battery_life(spot, as_json=True))
        assert "video_playback" in payload["average_power_w"]

    def test_cost_json(self, spot):
        payload = json.loads(run_cost(spot, 18.0, as_json=True))
        assert payload["bom_vs_baseline"]["IVR"] == pytest.approx(1.0)

    def test_predict_json(self, spot):
        payload = json.loads(
            run_predict(spot, 4.0, 0.56, WorkloadType.CPU_MULTI_THREAD, as_json=True)
        )
        assert payload["selected_mode"] == "ldo_mode"


class TestSweepCommand:
    def test_parser_accepts_sweep_axes(self):
        args = build_parser().parse_args(
            ["sweep", "--tdps", "4", "18", "--power-states", "C2", "c8", "--format", "csv"]
        )
        assert args.tdps == [4.0, 18.0]
        assert args.power_states == [PackageCState.C2, PackageCState.C8]
        assert args.format == "csv"

    def test_invalid_power_state_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--tdps", "4", "--power-states", "C99"])

    def test_build_sweep_study_grid(self):
        study = build_sweep_study(
            (4.0, 18.0), ars=(0.4, 0.8), power_states=(PackageCState.C8,), pdns=("IVR",)
        )
        # 2 TDPs x 2 ARs active + 2 TDPs x 1 state idle.
        assert len(study.scenarios) == 6
        assert study.pdn_names == ("IVR",)

    def test_sweep_table_output(self, spot):
        text = run_sweep(spot, (4.0,), pdns=("IVR", "FlexWatts"))
        assert "IVR" in text and "FlexWatts" in text and "etee" in text

    def test_sweep_json_round_trips(self, spot):
        text = run_sweep(spot, (4.0,), output_format="json")
        resultset = ResultSet.from_json(text)
        assert len(resultset) == 5
        assert set(resultset.unique("pdn")) == set(spot.pdns)

    def test_sweep_csv_header(self, spot):
        text = run_sweep(spot, (4.0,), output_format="csv")
        assert text.splitlines()[0].startswith("pdn,tdp_w,")


class TestParallelFlags:
    def test_parser_accepts_executor_flags_on_grid_commands(self):
        args = build_parser().parse_args(
            ["sweep", "--tdps", "4", "--jobs", "4", "--executor", "process"]
        )
        assert args.jobs == 4 and args.executor == "process"
        args = build_parser().parse_args(["export", "fig4-grid", "--jobs", "2"])
        assert args.jobs == 2 and args.executor is None
        args = build_parser().parse_args(["figures", "--quick", "--executor", "thread"])
        assert args.executor == "thread"

    def test_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--tdps", "4", "--executor", "gpu"])

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_parallel_sweep_output_identical_to_serial(self, spot, executor):
        serial = run_sweep(spot, (4.0, 18.0), ars=(0.4, 0.56), output_format="csv")
        parallel = run_sweep(
            PdnSpot(),
            (4.0, 18.0),
            ars=(0.4, 0.56),
            output_format="csv",
            executor=executor,
            jobs=2,
        )
        assert parallel == serial

    def test_parallel_export_identical_to_serial(self):
        serial = run_export("fig4-power-states", output_format="csv")
        parallel = run_export(
            "fig4-power-states", output_format="csv", executor="thread", jobs=2
        )
        assert parallel == serial

    def test_main_sweep_with_jobs(self, capsys):
        assert main(["sweep", "--tdps", "4", "--jobs", "2", "--format", "csv"]) == 0
        assert capsys.readouterr().out.startswith("pdn,")

    def test_main_invalid_jobs_is_user_error(self, capsys):
        assert main(["sweep", "--tdps", "4", "--jobs", "0"]) == 1
        assert "jobs" in capsys.readouterr().err


class TestSimulateCommand:
    def test_parser_accepts_simulate_flags(self):
        args = build_parser().parse_args(
            [
                "simulate",
                "--scenario", "bursty-interactive", "race-to-idle",
                "--tdps", "4", "50",
                "--seed", "7",
                "--jobs", "4",
                "--format", "json",
            ]
        )
        assert args.scenario == ["bursty-interactive", "race-to-idle"]
        assert args.tdps == [4.0, 50.0]
        assert args.seed == 7
        assert args.jobs == 4

    def test_unknown_scenario_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--scenario", "nonsense"])

    def test_build_simulate_study_defaults_to_all_scenarios(self):
        from repro.workloads.scenarios import available_scenarios

        study = build_simulate_study()
        assert len(study) == len(available_scenarios())
        assert study.points[0].tdp_w == 18.0

    def test_simulate_table_lists_every_pdn(self):
        text = run_simulate(
            scenarios=["race-to-idle"], pdns=["IVR", "FlexWatts"]
        )
        assert "Scenario simulation" in text
        assert "IVR" in text and "FlexWatts" in text
        assert "race-to-idle" in text

    def test_simulate_json_round_trips(self):
        payload = run_simulate(scenarios=["race-to-idle"], output_format="json")
        resultset = ResultSet.from_json(payload)
        assert len(resultset) == 5  # one row per PDN
        assert resultset.unique("scenario") == ["race-to-idle"]

    def test_parallel_simulate_output_bit_identical_to_serial(self):
        """The acceptance criterion: --jobs 4 JSON equals the serial JSON."""
        serial = run_simulate(
            scenarios=["bursty-interactive"], output_format="json"
        )
        parallel = run_simulate(
            scenarios=["bursty-interactive"], output_format="json", jobs=4
        )
        assert parallel == serial

    def test_main_simulate_exit_code(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--scenario", "duty-cycled-background",
                    "--pdns", "IVR",
                    "--format", "csv",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out.startswith("pdn,")


class TestExportCommand:
    def test_export_fig2a_json(self):
        payload = json.loads(run_export("fig2a"))
        assert payload["columns"][0] == "tdp_w"
        assert len(payload["rows"]) == 7

    def test_export_fig3_csv(self):
        lines = run_export("fig3", output_format="csv").splitlines()
        assert lines[0] == "power_state,vout_v,iout_a,efficiency"
        assert len(lines) == 1 + 7 * 4 * 2

    def test_export_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            run_export("fig99")


class TestMain:
    def test_main_etee_exit_code(self, capsys):
        assert main(["etee", "--tdp", "4"]) == 0
        captured = capsys.readouterr()
        assert "ETEE" in captured.out

    def test_main_cost(self, capsys):
        assert main(["cost", "--tdp", "25"]) == 0
        assert "BOM" in capsys.readouterr().out

    def test_main_etee_json(self, capsys):
        assert main(["etee", "--tdp", "4", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["tdp_w"] == pytest.approx(4.0)

    def test_main_sweep_to_file(self, tmp_path, capsys):
        target = tmp_path / "sweep.csv"
        assert main(["sweep", "--tdps", "4", "--format", "csv", "--output", str(target)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert target.read_text().startswith("pdn,")

    def test_main_export_stdout(self, capsys):
        assert main(["export", "fig2b", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "fig2b-budget-breakdown"

    def test_main_model_errors_go_to_stderr(self, capsys):
        assert main(["sweep", "--tdps", "4", "--pdns", "BOGUS"]) == 1
        captured = capsys.readouterr()
        assert captured.out == ""  # stdout stays clean for --format json piping
        assert "BOGUS" in captured.err


class TestCacheFlags:
    """The persistent-cache surface: --cache-dir and `repro cache`."""

    def test_cache_dir_flag_on_grid_commands(self):
        for argv in (
            ["sweep", "--tdps", "4", "--cache-dir", "/tmp/c"],
            ["simulate", "--cache-dir", "/tmp/c"],
            ["optimize", "--cache-dir", "/tmp/c"],
            ["export", "fig3", "--cache-dir", "/tmp/c"],
            ["figures", "--cache-dir", "/tmp/c"],
        ):
            assert build_parser().parse_args(argv).cache_dir == "/tmp/c"

    def test_cache_subcommand_parses(self):
        args = build_parser().parse_args(
            ["cache", "prune", "--cache-dir", "/tmp/c", "--older-than", "60"]
        )
        assert args.action == "prune"
        assert args.older_than == pytest.approx(60.0)

    def test_cache_subcommand_requires_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache", "stats"])

    def test_sweep_with_cache_dir_matches_cacheless(self, tmp_path, capsys):
        argv = ["sweep", "--tdps", "4", "18", "--format", "json"]
        assert main(argv) == 0
        reference = capsys.readouterr().out
        cached = argv + ["--cache-dir", str(tmp_path)]
        assert main(cached) == 0  # cold: populates the directory
        assert capsys.readouterr().out == reference
        assert main(cached) == 0  # warm: served from disk
        assert capsys.readouterr().out == reference

    def test_simulate_with_cache_dir_matches_cacheless(self, tmp_path, capsys):
        argv = [
            "simulate", "--scenario", "duty-cycled-background",
            "--pdns", "IVR", "LDO", "--format", "json",
        ]
        assert main(argv) == 0
        reference = capsys.readouterr().out
        cached = argv + ["--cache-dir", str(tmp_path)]
        assert main(cached) == 0
        assert capsys.readouterr().out == reference
        assert main(cached) == 0
        assert capsys.readouterr().out == reference

    def test_cache_stats_and_prune_round_trip(self, tmp_path, capsys):
        directory = str(tmp_path)
        assert main(["sweep", "--tdps", "4", "--cache-dir", directory,
                     "--format", "csv"]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", directory, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["namespaces"]["pdnspot"]["entries"] == 5  # 5 PDNs x 1 TDP
        assert main(["cache", "prune", "--cache-dir", directory, "--json"]) == 0
        pruned = json.loads(capsys.readouterr().out)
        assert pruned["removed_entries"] == 5
        assert main(["cache", "stats", "--cache-dir", directory, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["namespaces"]["pdnspot"]["entries"] == 0

    def test_cache_stats_empty_directory(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        assert "no cache entries" in capsys.readouterr().out

    def test_cache_stats_rejects_older_than(self, tmp_path, capsys):
        # Accepting-and-ignoring the flag would invite misreading the
        # unfiltered footprint as an age-filtered one.
        assert main(["cache", "stats", "--cache-dir", str(tmp_path),
                     "--older-than", "60"]) == 1
        assert "cache prune" in capsys.readouterr().err

    def test_sweep_json_with_nan_is_strict(self, tmp_path, capsys):
        # `repro sweep --format json` output must parse under strict decoders
        # (the ISSUE's jq / JSON.parse consumers).
        assert main(["sweep", "--tdps", "4", "--format", "json"]) == 0
        out = capsys.readouterr().out
        json.loads(out, parse_constant=lambda token: (_ for _ in ()).throw(
            AssertionError(f"non-RFC-8259 token {token!r}")
        ))
