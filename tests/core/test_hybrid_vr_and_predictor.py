"""Tests for the hybrid regulator, the mode predictor and its calibration."""

import pytest

from repro.core.calibration import build_default_predictor, calibrate_mode_curves
from repro.core.hybrid_vr import HybridVoltageRegulator, PdnMode
from repro.core.mode_predictor import EteeCurveSet, ModePredictor
from repro.core.runtime_estimator import RuntimeInputEstimator
from repro.pdn.base import OperatingConditions
from repro.power.domains import WorkloadType
from repro.power.power_states import PackageCState
from repro.soc.pmu import PmuTelemetry, PowerManagementUnit
from repro.util.errors import ConfigurationError, ModelDomainError
from repro.vr.base import RegulatorOperatingPoint


def _point(vin, vout, iout):
    return RegulatorOperatingPoint(
        input_voltage_v=vin, output_voltage_v=vout, output_current_a=iout
    )


class TestHybridVoltageRegulator:
    def test_defaults_to_ivr_mode(self):
        assert HybridVoltageRegulator().mode is PdnMode.IVR_MODE

    def test_ivr_mode_efficiency_in_ivr_range(self):
        hybrid = HybridVoltageRegulator()
        assert 0.78 <= hybrid.efficiency(_point(1.8, 0.9, 5.0)) <= 0.88

    def test_ldo_mode_efficiency_follows_voltage_ratio(self):
        hybrid = HybridVoltageRegulator()
        hybrid.set_mode(PdnMode.LDO_MODE)
        assert hybrid.efficiency(_point(0.9, 0.6, 2.0)) == pytest.approx(
            (0.6 / 0.9) * 0.991, rel=1e-3
        )

    def test_ldo_mode_bypass_near_input_voltage(self):
        hybrid = HybridVoltageRegulator()
        hybrid.set_mode(PdnMode.LDO_MODE)
        assert hybrid.efficiency(_point(0.9, 0.89, 2.0)) > 0.97

    def test_required_input_voltage_per_mode(self):
        hybrid = HybridVoltageRegulator()
        assert hybrid.required_input_voltage_v(0.8) == pytest.approx(1.8)
        hybrid.set_mode(PdnMode.LDO_MODE)
        assert hybrid.required_input_voltage_v(0.8) == pytest.approx(0.8)

    def test_idle_power_only_in_ivr_mode(self):
        hybrid = HybridVoltageRegulator()
        assert hybrid.idle_power_w() > 0.0
        hybrid.set_mode(PdnMode.LDO_MODE)
        assert hybrid.idle_power_w() == 0.0

    def test_area_overhead_matches_paper(self):
        assert HybridVoltageRegulator.AREA_OVERHEAD_MM2 == pytest.approx(0.041)


class TestEteeCurveSet:
    def _curves(self):
        curves = EteeCurveSet()
        curves.add_active_curve(
            WorkloadType.CPU_MULTI_THREAD, 4.0, (0.4, 0.8), (0.70, 0.72)
        )
        curves.add_active_curve(
            WorkloadType.CPU_MULTI_THREAD, 50.0, (0.4, 0.8), (0.74, 0.76)
        )
        curves.add_power_state_etee(PackageCState.C8, 0.80)
        return curves

    def test_exact_lookup(self):
        curves = self._curves()
        assert curves.etee(4.0, 0.4, WorkloadType.CPU_MULTI_THREAD, PackageCState.C0) == pytest.approx(0.70)

    def test_tdp_interpolation(self):
        curves = self._curves()
        mid = curves.etee(27.0, 0.4, WorkloadType.CPU_MULTI_THREAD, PackageCState.C0)
        assert 0.70 < mid < 0.74

    def test_tdp_clamping_outside_grid(self):
        curves = self._curves()
        assert curves.etee(100.0, 0.8, WorkloadType.CPU_MULTI_THREAD, PackageCState.C0) == pytest.approx(0.76)

    def test_power_state_lookup(self):
        curves = self._curves()
        assert curves.etee(18.0, 0.2, WorkloadType.IDLE, PackageCState.C8) == pytest.approx(0.80)

    def test_missing_workload_type_raises(self):
        with pytest.raises(ModelDomainError):
            self._curves().etee(18.0, 0.5, WorkloadType.GRAPHICS, PackageCState.C0)

    def test_stored_tdps(self):
        assert self._curves().stored_tdps_w(WorkloadType.CPU_MULTI_THREAD) == [4.0, 50.0]


class TestModePredictor:
    def _predictor(self):
        ivr = EteeCurveSet()
        ldo = EteeCurveSet()
        ivr.add_active_curve(WorkloadType.CPU_MULTI_THREAD, 4.0, (0.4, 0.8), (0.69, 0.70))
        ivr.add_active_curve(WorkloadType.CPU_MULTI_THREAD, 50.0, (0.4, 0.8), (0.75, 0.76))
        ldo.add_active_curve(WorkloadType.CPU_MULTI_THREAD, 4.0, (0.4, 0.8), (0.77, 0.78))
        ldo.add_active_curve(WorkloadType.CPU_MULTI_THREAD, 50.0, (0.4, 0.8), (0.70, 0.71))
        ivr.add_power_state_etee(PackageCState.C8, 0.68)
        ldo.add_power_state_etee(PackageCState.C8, 0.84)
        return ModePredictor(ivr, ldo)

    def _telemetry(self, tdp_w, state=PackageCState.C0):
        return PmuTelemetry(
            tdp_w=tdp_w,
            application_ratio=0.56,
            workload_type=WorkloadType.CPU_MULTI_THREAD
            if state is PackageCState.C0
            else WorkloadType.IDLE,
            power_state=state,
        )

    def test_algorithm_1_selects_the_higher_etee_mode(self):
        predictor = self._predictor()
        assert predictor.predict(self._telemetry(4.0)) is PdnMode.LDO_MODE
        assert predictor.predict(self._telemetry(50.0)) is PdnMode.IVR_MODE

    def test_idle_telemetry_uses_power_state_curves(self):
        predictor = self._predictor()
        assert predictor.predict(self._telemetry(50.0, PackageCState.C8)) is PdnMode.LDO_MODE

    def test_predicted_gain_is_non_negative(self):
        predictor = self._predictor()
        assert predictor.predicted_gain(self._telemetry(4.0)) > 0.0

    def test_empty_curve_sets_rejected(self):
        with pytest.raises(ConfigurationError):
            ModePredictor(EteeCurveSet(), EteeCurveSet())


class TestCalibration:
    def test_calibrated_curves_cover_the_requested_grid(self, flexwatts):
        curves = calibrate_mode_curves(
            flexwatts, PdnMode.IVR_MODE, tdp_grid_w=(4.0, 18.0), ar_grid=(0.4, 0.6, 0.8)
        )
        assert curves.stored_tdps_w(WorkloadType.CPU_MULTI_THREAD) == [4.0, 18.0]
        assert len(curves.power_state_etee) > 0

    def test_default_predictor_prefers_ldo_at_4w(self, flexwatts):
        predictor = build_default_predictor(flexwatts, tdp_grid_w=(4.0, 50.0), ar_grid=(0.4, 0.6, 0.8))
        telemetry = PmuTelemetry(4.0, 0.56, WorkloadType.CPU_MULTI_THREAD, PackageCState.C0)
        assert predictor.predict(telemetry) is PdnMode.LDO_MODE


class TestRuntimeEstimator:
    def test_estimate_from_conditions_is_exact(self):
        conditions = OperatingConditions.for_active_workload(
            18.0, 0.6, WorkloadType.GRAPHICS
        )
        telemetry = RuntimeInputEstimator.estimate_from_conditions(conditions)
        assert telemetry.tdp_w == pytest.approx(18.0)
        assert telemetry.application_ratio == pytest.approx(0.6)
        assert telemetry.workload_type is WorkloadType.GRAPHICS

    def test_estimate_requires_a_pmu(self):
        with pytest.raises(ConfigurationError):
            RuntimeInputEstimator().estimate()

    def test_estimate_from_live_pmu(self):
        from repro.power.domains import DomainKind

        pmu = PowerManagementUnit(tdp_w=25.0)
        pmu.update_domain(DomainKind.CORE0, True, 5.0, 0.7)
        telemetry = RuntimeInputEstimator(pmu).estimate()
        assert telemetry.tdp_w == pytest.approx(25.0)
        assert telemetry.workload_type is WorkloadType.CPU_SINGLE_THREAD
