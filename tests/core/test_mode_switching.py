"""Tests for the mode-switch flow and its overheads (experiment E-OVH)."""

import pytest

from repro.core.hybrid_vr import PdnMode
from repro.core.mode_switching import (
    ModeSwitchController,
    ModeSwitchOverheads,
    IVR_MODE_INPUT_VOLTAGE_V,
    LDO_MODE_INPUT_VOLTAGE_V,
)
from repro.power.power_states import PackageCState
from repro.soc.pmu import PowerManagementUnit


class TestOverheads:
    def test_total_latency_matches_the_paper(self):
        # Sec. 6: 45 us C6 entry + 19 us VR adjustment + ~30 us C6 exit ~= 94 us.
        overheads = ModeSwitchOverheads()
        assert overheads.total_latency_s == pytest.approx(94e-6, rel=0.02)

    def test_latency_well_below_dvfs_transition(self):
        # The paper argues the flow is acceptable because DVFS transitions can
        # take up to 500 us.
        assert ModeSwitchOverheads().total_latency_s < 500e-6

    def test_area_overhead_matches_the_paper(self):
        overheads = ModeSwitchOverheads()
        assert overheads.area_overhead_mm2 == pytest.approx(0.041)
        assert overheads.dual_core_die_fraction == pytest.approx(0.0004)
        assert overheads.quad_core_die_fraction == pytest.approx(0.0003)

    def test_vr_adjust_latency_from_voltage_swing(self):
        # 1.8 V -> 0.85 V at 50 mV/us is 19 us.
        overheads = ModeSwitchOverheads.from_voltage_swing(
            IVR_MODE_INPUT_VOLTAGE_V, LDO_MODE_INPUT_VOLTAGE_V
        )
        assert overheads.vr_adjust_s == pytest.approx(19e-6, rel=0.01)

    def test_small_swing_bounded_by_on_chip_latency(self):
        overheads = ModeSwitchOverheads.from_voltage_swing(0.851, 0.85)
        assert overheads.vr_adjust_s == pytest.approx(2e-6)


class TestController:
    def test_switching_changes_mode_and_counts(self):
        controller = ModeSwitchController(min_residency_s=0.0)
        latency = controller.switch_to(PdnMode.LDO_MODE)
        assert controller.mode is PdnMode.LDO_MODE
        assert controller.switch_count == 1
        assert latency == pytest.approx(controller.overheads.total_latency_s)

    def test_switching_to_the_same_mode_is_free(self):
        controller = ModeSwitchController(min_residency_s=0.0)
        assert controller.switch_to(PdnMode.IVR_MODE) == 0.0
        assert controller.switch_count == 0

    def test_minimum_residency_prevents_thrashing(self):
        controller = ModeSwitchController(min_residency_s=10e-3)
        controller.switch_to(PdnMode.LDO_MODE)
        # Immediately asking to switch back is refused (no time has passed).
        assert controller.switch_to(PdnMode.IVR_MODE) == 0.0
        assert controller.mode is PdnMode.LDO_MODE
        controller.advance_time(11e-3)
        assert controller.switch_to(PdnMode.IVR_MODE) > 0.0
        assert controller.mode is PdnMode.IVR_MODE

    def test_switch_through_pmu_uses_package_c6(self):
        controller = ModeSwitchController(min_residency_s=0.0)
        pmu = PowerManagementUnit(tdp_w=18.0)
        controller.switch_to(PdnMode.LDO_MODE, pmu=pmu)
        # The flow exits back into an active state.
        assert pmu.power_state in (PackageCState.C0, PackageCState.C0_MIN)
        assert pmu.time_s > 0.0

    def test_energy_overhead_scales_with_power(self):
        controller = ModeSwitchController()
        assert controller.energy_overhead_j(10.0) == pytest.approx(
            10.0 * controller.overheads.total_latency_s
        )
        assert controller.energy_overhead_j(20.0) > controller.energy_overhead_j(10.0)

    def test_total_switch_time_accumulates(self):
        controller = ModeSwitchController(min_residency_s=0.0)
        controller.switch_to(PdnMode.LDO_MODE)
        controller.switch_to(PdnMode.IVR_MODE)
        assert controller.switch_count == 2
        assert controller.total_switch_time_s == pytest.approx(
            2 * controller.overheads.total_latency_s
        )
