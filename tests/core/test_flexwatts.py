"""Tests for the FlexWatts hybrid adaptive PDN (Sec. 6-7)."""

from repro.core.hybrid_vr import PdnMode
from repro.pdn.base import OperatingConditions
from repro.pdn.imbvr import IMbvrPdn
from repro.pdn.ivr import IvrPdn
from repro.pdn.ldo import LdoPdn
from repro.power.domains import WorkloadType
from repro.power.power_states import BATTERY_LIFE_STATES


def _conditions(tdp_w, ar=0.56, workload=WorkloadType.CPU_MULTI_THREAD):
    return OperatingConditions.for_active_workload(tdp_w, ar, workload)


class TestForcedModes:
    def test_ldo_mode_matches_ldo_pdn_within_loadline_penalty(self, flexwatts):
        conditions = _conditions(4.0)
        flexwatts_etee = flexwatts.evaluate_in_mode(conditions, PdnMode.LDO_MODE).etee
        ldo_etee = LdoPdn().evaluate(conditions).etee
        assert flexwatts_etee <= ldo_etee
        assert flexwatts_etee > ldo_etee - 0.01

    def test_ivr_mode_matches_imbvr_within_loadline_penalty(self, flexwatts):
        conditions = _conditions(50.0)
        flexwatts_etee = flexwatts.evaluate_in_mode(conditions, PdnMode.IVR_MODE).etee
        imbvr_etee = IMbvrPdn().evaluate(conditions).etee
        assert flexwatts_etee <= imbvr_etee
        assert flexwatts_etee > imbvr_etee - 0.01

    def test_mode_names_are_tagged_in_forced_evaluations(self, flexwatts):
        conditions = _conditions(18.0)
        result = flexwatts.evaluate_in_mode(conditions, PdnMode.IVR_MODE)
        assert "ivr_mode" in result.pdn_name


class TestModeSelection:
    def test_low_tdp_selects_ldo_mode(self, flexwatts):
        assert flexwatts.predict_mode(_conditions(4.0)) is PdnMode.LDO_MODE

    def test_high_tdp_selects_ivr_mode(self, flexwatts):
        assert flexwatts.predict_mode(_conditions(50.0)) is PdnMode.IVR_MODE

    def test_idle_states_select_ldo_mode(self, flexwatts):
        for state in BATTERY_LIFE_STATES:
            conditions = OperatingConditions.for_power_state(18.0, state)
            assert flexwatts.predict_mode(conditions) is PdnMode.LDO_MODE

    def test_predictor_agrees_with_oracle_on_clear_cases(self, flexwatts):
        for tdp in (4.0, 8.0, 36.0, 50.0):
            conditions = _conditions(tdp)
            assert flexwatts.predict_mode(conditions) is flexwatts.oracle_mode(conditions)

    def test_predictor_close_to_oracle_everywhere(self, flexwatts):
        # Even where the predictor disagrees with the oracle (near the
        # crossover), the ETEE it forfeits must be tiny.
        for tdp in (4.0, 10.0, 18.0, 25.0, 50.0):
            conditions = _conditions(tdp)
            chosen = flexwatts.evaluate(conditions).etee
            best = max(
                flexwatts.evaluate_in_mode(conditions, PdnMode.IVR_MODE).etee,
                flexwatts.evaluate_in_mode(conditions, PdnMode.LDO_MODE).etee,
            )
            assert chosen >= best - 0.005


class TestHeadlineBehaviour:
    def test_beats_ivr_everywhere(self, flexwatts):
        ivr = IvrPdn()
        for tdp in (4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0):
            conditions = _conditions(tdp)
            assert flexwatts.evaluate(conditions).etee > ivr.evaluate(conditions).etee

    def test_large_gain_over_ivr_at_4w(self, flexwatts):
        conditions = _conditions(4.0)
        gain = flexwatts.evaluate(conditions).etee - IvrPdn().evaluate(conditions).etee
        assert gain > 0.05

    def test_within_a_point_of_the_best_static_pdn(self, flexwatts, all_pdns):
        for tdp in (4.0, 18.0, 50.0):
            conditions = _conditions(tdp)
            best_static = max(
                all_pdns[name].evaluate(conditions).etee for name in ("IVR", "MBVR", "LDO")
            )
            assert flexwatts.evaluate(conditions).etee > best_static - 0.012

    def test_battery_life_power_lower_than_ivr(self, flexwatts):
        from repro.workloads.battery_life import BATTERY_LIFE_WORKLOADS

        ivr = IvrPdn()
        for workload in BATTERY_LIFE_WORKLOADS:
            flexwatts_power = workload.average_power_w(flexwatts)
            ivr_power = workload.average_power_w(ivr)
            assert flexwatts_power < 0.95 * ivr_power


class TestCostInputs:
    def test_three_off_chip_regulators(self, flexwatts):
        assert set(flexwatts.iccmax_requirements_a(18.0)) == {"V_IN", "V_SA", "V_IO"}

    def test_shared_vin_sized_like_ivr_mode(self, flexwatts):
        # Sec. 7.1: high-current workloads run in IVR-Mode, so the shared
        # regulator's Iccmax tracks the IVR-style requirement, not the LDO one.
        requirements = flexwatts.iccmax_requirements_a(50.0)
        ldo_requirements = LdoPdn().iccmax_requirements_a(50.0)
        assert requirements["V_IN"] < 0.75 * ldo_requirements["V_IN"]

    def test_describe_mentions_hybrid(self, flexwatts):
        assert "hybrid" in flexwatts.describe().lower()
