"""Tests for the Iccmax, BOM and board-area models (Fig. 8d-e)."""

import pytest

from repro.cost.board_area import BoardAreaModel
from repro.cost.bom import BomModel
from repro.cost.iccmax import pdn_iccmax_summary, total_iccmax_a
from repro.pdn.registry import build_pdn


@pytest.fixture(scope="module")
def pdns():
    return {name: build_pdn(name) for name in ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")}


class TestIccmax:
    def test_total_iccmax_grows_with_tdp(self, pdns):
        for pdn in pdns.values():
            assert total_iccmax_a(pdn, 50.0) > total_iccmax_a(pdn, 4.0)

    def test_mbvr_needs_the_most_total_current(self, pdns):
        totals = {name: total_iccmax_a(pdn, 50.0) for name, pdn in pdns.items()}
        assert totals["MBVR"] == max(totals.values())

    def test_flexwatts_total_close_to_ivr(self, pdns):
        # Sec. 7.1: FlexWatts' shared regulator is sized like IVR's.
        ratio = total_iccmax_a(pdns["FlexWatts"], 50.0) / total_iccmax_a(pdns["IVR"], 50.0)
        assert ratio < 1.35

    def test_summary_structure(self, pdns):
        summary = pdn_iccmax_summary(pdns.values(), 18.0)
        assert set(summary) == set(pdns)
        assert set(summary["MBVR"]) == {"V_Cores", "V_GFX", "V_SA", "V_IO"}


class TestBomModel:
    def test_pmic_used_up_to_18w(self):
        model = BomModel()
        assert model.uses_pmic(18.0)
        assert not model.uses_pmic(25.0)

    def test_rail_cost_monotone_in_current(self):
        model = BomModel()
        assert model.rail_cost(10.0, 10.0) > model.rail_cost(1.0, 10.0)

    def test_mbvr_and_ldo_cost_much_more_than_ivr(self, pdns):
        model = BomModel()
        for tdp in (4.0, 18.0, 50.0):
            comparison = model.compare(pdns.values(), tdp)
            assert comparison["MBVR"] > 1.5
            assert comparison["LDO"] > 1.4
            assert comparison["IVR"] == pytest.approx(1.0)

    def test_flexwatts_cost_comparable_to_ivr(self, pdns):
        model = BomModel()
        for tdp in (4.0, 18.0, 50.0):
            comparison = model.compare(pdns.values(), tdp)
            assert comparison["FlexWatts"] < 1.6
            assert comparison["FlexWatts"] == pytest.approx(comparison["I+MBVR"], rel=0.05)

    def test_reference_must_be_compared(self, pdns):
        model = BomModel()
        with pytest.raises(ValueError):
            model.compare([pdns["MBVR"]], 18.0, reference_name="IVR")


class TestBoardAreaModel:
    def test_area_comparison_shapes(self, pdns):
        model = BoardAreaModel()
        for tdp in (4.0, 18.0, 50.0):
            comparison = model.compare(pdns.values(), tdp)
            assert comparison["MBVR"] > comparison["FlexWatts"]
            assert comparison["LDO"] > comparison["I+MBVR"]
            assert comparison["IVR"] == pytest.approx(1.0)

    def test_estimate_totals_are_positive(self, pdns):
        model = BoardAreaModel()
        estimate = model.estimate(pdns["FlexWatts"], 18.0)
        assert estimate.total_area_mm2 > 0.0
        assert estimate.uses_pmic

    def test_vrm_rails_cost_more_area_per_rail(self):
        model = BoardAreaModel()
        assert model.rail_area_mm2(5.0, 25.0) > model.rail_area_mm2(5.0, 10.0)

    def test_normalised_to_requires_positive_reference(self, pdns):
        model = BoardAreaModel()
        estimate = model.estimate(pdns["IVR"], 18.0)
        assert estimate.normalised_to(estimate) == pytest.approx(1.0)
