"""Tests for the argument-validation helpers."""

import pytest

from repro.util.errors import ConfigurationError
from repro.util.validation import (
    require_fraction,
    require_in_range,
    require_non_negative,
    require_positive,
)


class TestRequirePositive:
    def test_accepts_positive(self):
        assert require_positive(0.1, "x") == 0.1

    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_rejects_non_positive(self, value):
        with pytest.raises(ConfigurationError, match="x"):
            require_positive(value, "x")


class TestRequireNonNegative:
    def test_accepts_zero_and_positive(self):
        assert require_non_negative(0.0, "x") == 0.0
        assert require_non_negative(5.0, "x") == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            require_non_negative(-0.001, "x")


class TestRequireFraction:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_fractions(self, value):
        assert require_fraction(value, "x") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_rejects_out_of_range(self, value):
        with pytest.raises(ConfigurationError):
            require_fraction(value, "x")


class TestRequireInRange:
    def test_accepts_boundaries(self):
        assert require_in_range(4.0, 4.0, 50.0, "tdp") == 4.0
        assert require_in_range(50.0, 4.0, 50.0, "tdp") == 50.0

    def test_rejects_outside(self):
        with pytest.raises(ConfigurationError, match="tdp"):
            require_in_range(3.9, 4.0, 50.0, "tdp")
