"""Tests for the unit-conversion helpers."""

import pytest

from repro.util import units


def test_watts_milliwatts_roundtrip():
    assert units.watts_to_milliwatts(1.5) == pytest.approx(1500.0)
    assert units.milliwatts_to_watts(1500.0) == pytest.approx(1.5)
    assert units.milliwatts_to_watts(units.watts_to_milliwatts(0.123)) == pytest.approx(0.123)


def test_volts_millivolts_roundtrip():
    assert units.volts_to_millivolts(0.02) == pytest.approx(20.0)
    assert units.millivolts_to_volts(20.0) == pytest.approx(0.02)


def test_ohms_milliohms_roundtrip():
    assert units.ohms_to_milliohms(0.0025) == pytest.approx(2.5)
    assert units.milliohms_to_ohms(2.5) == pytest.approx(0.0025)


def test_amps_milliamps_roundtrip():
    assert units.amps_from_milliamps(250.0) == pytest.approx(0.25)
    assert units.milliamps_from_amps(0.25) == pytest.approx(250.0)


def test_time_conversions():
    assert units.microseconds_to_seconds(94.0) == pytest.approx(94e-6)
    assert units.seconds_to_microseconds(94e-6) == pytest.approx(94.0)


def test_zero_is_preserved_by_all_conversions():
    for converter in (
        units.watts_to_milliwatts,
        units.milliwatts_to_watts,
        units.volts_to_millivolts,
        units.millivolts_to_volts,
        units.ohms_to_milliohms,
        units.milliohms_to_ohms,
    ):
        assert converter(0.0) == 0.0
