"""Tests for the table-interpolation primitives."""

import pytest

from repro.util.errors import ConfigurationError
from repro.util.interpolate import BilinearTable2D, LinearTable1D, clamp


class TestClamp:
    def test_within_bounds(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_below_bounds(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0

    def test_above_bounds(self):
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_inverted_bounds_raise(self):
        with pytest.raises(ConfigurationError):
            clamp(0.5, 1.0, 0.0)


class TestLinearTable1D:
    def test_exact_breakpoints(self):
        table = LinearTable1D((0.0, 1.0, 2.0), (10.0, 20.0, 40.0))
        assert table(0.0) == 10.0
        assert table(1.0) == 20.0
        assert table(2.0) == 40.0

    def test_interpolation_between_breakpoints(self):
        table = LinearTable1D((0.0, 2.0), (0.0, 10.0))
        assert table(1.0) == pytest.approx(5.0)
        assert table(0.5) == pytest.approx(2.5)

    def test_clamped_extrapolation(self):
        table = LinearTable1D((1.0, 2.0), (5.0, 7.0))
        assert table(0.0) == 5.0
        assert table(10.0) == 7.0

    def test_linear_extrapolation_when_disabled(self):
        table = LinearTable1D((1.0, 2.0), (5.0, 7.0), clamp_ends=False)
        assert table(3.0) == pytest.approx(9.0)
        assert table(0.0) == pytest.approx(3.0)

    def test_rejects_unsorted_breakpoints(self):
        with pytest.raises(ConfigurationError):
            LinearTable1D((1.0, 1.0), (0.0, 1.0))
        with pytest.raises(ConfigurationError):
            LinearTable1D((2.0, 1.0), (0.0, 1.0))

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            LinearTable1D((1.0, 2.0, 3.0), (0.0, 1.0))

    def test_rejects_single_point(self):
        with pytest.raises(ConfigurationError):
            LinearTable1D((1.0,), (1.0,))

    def test_monotone_table_stays_monotone(self):
        table = LinearTable1D((0.0, 1.0, 2.0, 3.0), (0.0, 1.0, 4.0, 9.0))
        samples = [table(x / 10.0) for x in range(31)]
        assert samples == sorted(samples)


class TestBilinearTable2D:
    def test_corner_values(self):
        table = BilinearTable2D((0.0, 1.0), (0.0, 1.0), ((0.0, 1.0), (2.0, 3.0)))
        assert table(0.0, 0.0) == 0.0
        assert table(0.0, 1.0) == 1.0
        assert table(1.0, 0.0) == 2.0
        assert table(1.0, 1.0) == 3.0

    def test_centre_interpolation(self):
        table = BilinearTable2D((0.0, 1.0), (0.0, 1.0), ((0.0, 1.0), (2.0, 3.0)))
        assert table(0.5, 0.5) == pytest.approx(1.5)

    def test_clamped_outside_grid(self):
        table = BilinearTable2D((0.0, 1.0), (0.0, 1.0), ((0.0, 1.0), (2.0, 3.0)))
        assert table(-5.0, -5.0) == 0.0
        assert table(5.0, 5.0) == 3.0

    def test_rejects_ragged_rows(self):
        with pytest.raises(ConfigurationError):
            BilinearTable2D((0.0, 1.0), (0.0, 1.0), ((0.0, 1.0), (2.0,)))

    def test_rejects_wrong_row_count(self):
        with pytest.raises(ConfigurationError):
            BilinearTable2D((0.0, 1.0, 2.0), (0.0, 1.0), ((0.0, 1.0), (2.0, 3.0)))
