"""The ISSUE 5 serialization bugfixes: RFC-8259 JSON and the CSV round-trip.

``ResultSet.to_json`` used to emit bare ``NaN`` tokens (which ``jq`` and
JavaScript's ``JSON.parse`` reject), and the documented "JSON/CSV
round-trip" had no ``from_csv`` at all.  These tests pin the fixed
behaviour: strict JSON output with an exact NaN/inf restore, a typed
``from_csv``, and the NaN-aware equality that makes the round-trip
assertable.
"""

import json
import math

import pytest

from repro.analysis.resultset import MISSING, ResultSet
from repro.util.errors import ConfigurationError


@pytest.fixture
def mixed_resultset() -> ResultSet:
    """A ragged table mixing strings, ints, floats, NaN, ±inf and dicts."""
    return ResultSet.from_records(
        [
            {"pdn": "IVR", "etee": float("nan"), "count": 3, "tdp_w": 4.0},
            {"pdn": "FlexWatts", "etee": 0.912, "label": "knee", "flag": True},
            {"pdn": "LDO", "etee": math.inf, "parameters": {"a": 1.5, "b": 2}},
            {"pdn": "MBVR", "etee": -math.inf, "tdp_w": 50.0},
        ],
        name="mixed",
    )


class TestStrictJson:
    def test_no_bare_nan_or_infinity_tokens(self, mixed_resultset):
        text = mixed_resultset.to_json()
        assert "NaN" not in text
        assert "Infinity" not in text

    def test_output_parses_with_strict_decoders(self, mixed_resultset):
        # json.loads with a rejecting parse_constant is the stand-in for
        # jq / JSON.parse: it raises on any non-RFC-8259 token.
        def reject(token):
            raise AssertionError(f"non-RFC-8259 token {token!r} in output")

        payload = json.loads(mixed_resultset.to_json(), parse_constant=reject)
        assert payload["name"] == "mixed"

    def test_nan_serialises_as_null(self, mixed_resultset):
        payload = json.loads(mixed_resultset.to_json())
        etee_index = payload["columns"].index("etee")
        assert payload["rows"][0][etee_index] is None

    def test_round_trip_restores_nan_and_infinities(self, mixed_resultset):
        back = ResultSet.from_json(mixed_resultset.to_json())
        assert back == mixed_resultset
        etee = back.column("etee")
        assert math.isnan(etee[0])
        assert etee[2] == math.inf
        assert etee[3] == -math.inf

    def test_round_trip_keeps_missing_cells_missing(self, mixed_resultset):
        back = ResultSet.from_json(mixed_resultset.to_json())
        assert back.column("label")[0] is MISSING
        assert back.column("label")[1] == "knee"
        # Missing cells must not have become NaN (the naive null->nan fix
        # would conflate the two meanings of null).
        assert not isinstance(back.column("label")[0], float)

    def test_no_mask_key_without_non_finite_cells(self):
        finite = ResultSet.from_records([{"a": 1.0, "b": "x"}])
        payload = json.loads(finite.to_json())
        assert "non_finite" not in payload

    def test_old_payloads_without_mask_still_load(self):
        text = json.dumps(
            {"name": "old", "columns": ["a", "b"], "rows": [[1, None]]}
        )
        back = ResultSet.from_json(text)
        assert back.column("b")[0] is MISSING

    @pytest.mark.parametrize(
        "position", [[0], [0, 1, 2], "00", 7, [0, "1"]],
        ids=["short", "long", "string", "scalar", "non-int"],
    )
    def test_malformed_mask_position_rejected_cleanly(self, position):
        text = json.dumps(
            {
                "columns": ["a"],
                "rows": [[None]],
                "non_finite": {"nan": [position]},
            }
        )
        with pytest.raises(ConfigurationError, match="non_finite position"):
            ResultSet.from_json(text)

    @pytest.mark.parametrize(
        "position", [[5, 0], [0, 5], [-1, 0], [0, 0]],
        ids=["row-oob", "col-oob", "negative", "non-null-cell"],
    )
    def test_mask_pointing_at_missing_or_non_null_cell_rejected(self, position):
        # [0, 0] points at a non-null cell; the rest are out of range.  A
        # truncated/edited payload must fail instead of silently turning
        # NaN cells into MISSING.
        text = json.dumps(
            {
                "columns": ["a", "b"],
                "rows": [[1.0, None]],
                "non_finite": {"nan": [position]},
            }
        )
        with pytest.raises(ConfigurationError, match="null cell"):
            ResultSet.from_json(text)

    def test_unknown_mask_label_rejected(self):
        text = json.dumps(
            {
                "columns": ["a"],
                "rows": [[None]],
                "non_finite": {"wat": [[0, 0]]},
            }
        )
        with pytest.raises(ConfigurationError, match="wat"):
            ResultSet.from_json(text)

    def test_indent_and_default_str_preserved(self, mixed_resultset):
        assert "\n" in mixed_resultset.to_json(indent=2)

    def test_nested_non_finite_in_container_cells_does_not_raise(self):
        # Positions inside a dict/list cell cannot be mask-addressed; they
        # degrade to null instead of crashing allow_nan=False (or emitting
        # the bare NaN token the fix exists to prevent).
        rs = ResultSet.from_records(
            [
                {
                    "pdn": "IVR",
                    "parameters": {"x": float("nan"), "y": 1.5},
                    "trace": [1.0, math.inf, 2.0],
                }
            ]
        )
        payload = json.loads(rs.to_json())
        row = payload["rows"][0]
        assert row[payload["columns"].index("parameters")] == {"x": None, "y": 1.5}
        assert row[payload["columns"].index("trace")] == [1.0, None, 2.0]
        # The original cells are untouched (to_json never mutates).
        assert math.isnan(rs.column("parameters")[0]["x"])

    def test_non_finite_in_namedtuple_cell_does_not_raise(self):
        import collections

        Point = collections.namedtuple("Point", ["x", "y"])
        rs = ResultSet.from_records(
            [{"pdn": "IVR", "point": Point(float("nan"), 1.0)}]
        )
        payload = json.loads(rs.to_json())
        cell = payload["rows"][0][payload["columns"].index("point")]
        assert cell == [None, 1.0]

    def test_non_finite_dict_keys_do_not_raise(self):
        rs = ResultSet.from_records(
            [{"pdn": "IVR", "weird": {float("nan"): 1.0, math.inf: 2.0}}]
        )
        payload = json.loads(rs.to_json())
        cell = payload["rows"][0][payload["columns"].index("weird")]
        assert cell == {"nan": 1.0, "inf": 2.0}


class TestFromCsv:
    def test_round_trip_mixed_table(self, mixed_resultset):
        back = ResultSet.from_csv(mixed_resultset.to_csv(), name="mixed")
        assert back == mixed_resultset
        assert back.columns == mixed_resultset.columns
        assert back.name == "mixed"

    def test_typed_column_restore(self, mixed_resultset):
        back = ResultSet.from_csv(mixed_resultset.to_csv())
        assert back.column("count")[0] == 3
        assert isinstance(back.column("count")[0], int)
        assert isinstance(back.column("tdp_w")[0], float)
        assert math.isnan(back.column("etee")[0])
        assert back.column("flag")[1] is True
        assert back.column("parameters")[2] == {"a": 1.5, "b": 2}
        assert back.column("pdn") == ["IVR", "FlexWatts", "LDO", "MBVR"]

    def test_empty_cells_become_missing(self, mixed_resultset):
        back = ResultSet.from_csv(mixed_resultset.to_csv())
        assert back.column("label")[0] is MISSING
        assert back.column("count")[1] is MISSING

    def test_engine_output_round_trips(self):
        from repro.analysis.pdnspot import PdnSpot
        from repro.analysis.study import Study

        resultset = PdnSpot().run(Study.over_tdps([4.0, 18.0]))
        assert ResultSet.from_csv(resultset.to_csv(), name=resultset.name) == resultset

    def test_empty_text_rejected(self):
        with pytest.raises(ConfigurationError, match="header"):
            ResultSet.from_csv("")

    def test_ragged_row_rejected(self):
        with pytest.raises(ConfigurationError, match="line 3"):
            ResultSet.from_csv("a,b\n1,2\n1,2,3\n")

    def test_duplicate_header_rejected(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            ResultSet.from_csv("a,a\n1,2\n")

    def test_header_only_is_empty_resultset(self):
        back = ResultSet.from_csv("a,b\n")
        assert len(back) == 0
        assert back.columns == ("a", "b")


class TestNanAwareEquality:
    def test_nan_cells_compare_equal_in_same_position(self):
        left = ResultSet.from_records([{"x": float("nan"), "y": 1}])
        right = ResultSet.from_records([{"x": float("nan"), "y": 1}])
        assert left == right

    def test_differing_values_still_unequal(self):
        left = ResultSet.from_records([{"x": float("nan"), "y": 1}])
        right = ResultSet.from_records([{"x": float("nan"), "y": 2}])
        assert left != right

    def test_nan_against_number_unequal(self):
        left = ResultSet.from_records([{"x": float("nan")}])
        right = ResultSet.from_records([{"x": 0.0}])
        assert left != right

    def test_column_order_still_matters(self):
        left = ResultSet({"a": [1], "b": [2]})
        right = ResultSet({"b": [2], "a": [1]})
        assert left != right
