"""Tests for the PDNspot facade, sweeps, validation harness and reporting."""

import pytest

from repro.analysis.comparison import best_pdn, merge_comparisons, normalised_metric_table
from repro.analysis.pdnspot import PdnSpot
from repro.analysis.reporting import format_mapping_table, format_table
from repro.analysis.study import Study
from repro.analysis.sweep import records_for_pdn
from repro.analysis.validation import ValidationHarness
from repro.pdn.base import OperatingConditions
from repro.power.domains import WorkloadType
from repro.power.power_states import PackageCState
from repro.util.errors import ConfigurationError
from repro.workloads.spec_cpu2006 import SPEC_CPU2006_BENCHMARKS


@pytest.fixture(scope="module")
def spot():
    return PdnSpot(pdn_names=["IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts"])


class TestPdnSpotFacade:
    def test_compare_etee_has_all_pdns(self, spot):
        table = spot.compare_etee(18.0)
        assert set(table) == {"IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts"}

    def test_flexwatts_tops_the_4w_comparison(self, spot):
        table = spot.compare_etee(4.0)
        assert table["FlexWatts"] > table["IVR"]
        assert table["FlexWatts"] >= table["I+MBVR"]

    def test_power_state_comparison(self, spot):
        table = spot.compare_power_state_etee(18.0, PackageCState.C8)
        assert table["MBVR"] > table["IVR"]

    def test_tdp_sweep_record_count(self, spot):
        records = spot.tdp_sweep((4.0, 18.0, 50.0))
        assert len(records) == 3 * 5

    def test_performance_comparison_normalised_to_ivr(self, spot):
        table = spot.compare_performance(SPEC_CPU2006_BENCHMARKS[:5], 4.0)
        assert table["IVR"] == pytest.approx(1.0)
        assert table["FlexWatts"] > 1.1

    def test_battery_life_table_structure(self, spot):
        table = spot.compare_battery_life_power()
        assert set(table) == {
            "video_playback",
            "video_conferencing",
            "web_browsing",
            "light_gaming",
        }
        for powers in table.values():
            assert powers["FlexWatts"] < powers["IVR"]

    def test_bom_and_area_comparisons(self, spot):
        bom = spot.compare_bom(18.0)
        area = spot.compare_board_area(18.0)
        assert bom["MBVR"] > bom["FlexWatts"]
        assert area["MBVR"] > area["FlexWatts"]

    def test_unknown_pdn_rejected(self, spot):
        with pytest.raises(ConfigurationError):
            spot.pdn("NOPE")

    def test_baseline_must_be_instantiated(self):
        with pytest.raises(ConfigurationError):
            PdnSpot(pdn_names=["MBVR"], baseline_name="IVR")

    def test_explicit_evaluation(self, spot):
        conditions = OperatingConditions.for_active_workload(
            18.0, 0.56, WorkloadType.CPU_MULTI_THREAD
        )
        evaluation = spot.evaluate("MBVR", conditions)
        assert evaluation.pdn_name == "MBVR"


class TestSweeps:
    def test_study_tdp_sweep_records(self):
        spot = PdnSpot(pdn_names=["IVR", "MBVR"])
        records = spot.run(Study.over_tdps((4.0, 18.0))).to_records()
        assert len(records) == 4
        assert {record["pdn"] for record in records} == {"IVR", "MBVR"}

    def test_study_application_ratio_sweep_monotone_for_mbvr(self):
        spot = PdnSpot(pdn_names=["MBVR"], baseline_name="MBVR")
        records = spot.run(
            Study.over_application_ratios((0.4, 0.6, 0.8), 18.0)
        ).to_records()
        etees = [record["etee"] for record in records]
        assert etees == sorted(etees)

    def test_records_for_pdn_filter(self):
        spot = PdnSpot(pdn_names=["IVR", "MBVR"])
        records = spot.run(Study.over_tdps((4.0,))).to_records()
        assert len(records_for_pdn(records, "IVR")) == 1


class TestValidationHarness:
    def test_accuracy_matches_the_papers_ballpark(self):
        harness = ValidationHarness(seed=11)
        summaries = harness.validate_all(trace_count_per_type=5)
        for summary in summaries.values():
            # The paper reports ~99 % average accuracy; the synthetic reference
            # introduces parameter jitter, so we accept >= 95 %.
            assert summary.average_accuracy > 0.95
            assert summary.min_accuracy > 0.85
            assert summary.max_accuracy <= 1.0

    def test_power_state_validation(self):
        harness = ValidationHarness(seed=11)
        summary = harness.validate_power_states("IVR")
        assert len(summary.records) == 6
        assert summary.average_accuracy > 0.9

    def test_reference_parameters_are_perturbed(self):
        harness = ValidationHarness(seed=11)
        reference = harness.reference_parameters()
        nominal = harness._nominal_parameters
        assert reference.ivr_tolerance_band_v != nominal.ivr_tolerance_band_v


class TestComparisonAndReporting:
    def test_normalised_metric_table(self):
        table = normalised_metric_table({"IVR": 2.0, "MBVR": 4.0})
        assert table["IVR"] == pytest.approx(1.0)
        assert table["MBVR"] == pytest.approx(2.0)

    def test_normalisation_requires_reference(self):
        with pytest.raises(ConfigurationError):
            normalised_metric_table({"MBVR": 4.0})

    def test_best_pdn_direction(self):
        metrics = {"IVR": 1.0, "FlexWatts": 1.2}
        assert best_pdn(metrics) == "FlexWatts"
        assert best_pdn(metrics, higher_is_better=False) == "IVR"

    def test_merge_comparisons(self):
        merged = merge_comparisons({"perf": {"IVR": 1.0}, "bom": {"IVR": 1.0, "MBVR": 2.0}})
        assert merged["MBVR"]["bom"] == pytest.approx(2.0)
        assert "perf" not in merged["MBVR"]

    def test_format_table_alignment_and_title(self):
        text = format_table(["a", "bb"], [[1.0, "x"], [2.0, "yy"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_mapping_table(self):
        text = format_mapping_table({"row1": {"c1": 1.0, "c2": 2.0}})
        assert "row1" in text and "c1" in text
