"""Property-based equivalence suite for the vectorized columnar core.

The columnar path's contract is **bit-identity**: for every PDN topology,
every metric and every operating point, ``evaluate_columns`` must return
``PdnEvaluation`` objects that compare *equal* (dataclass equality over
every float field, loss breakdown and rail voltage) to the per-point scalar
oracle.  These tests exercise that contract over randomized grids -- seeded
``random.Random`` draws over topology x parameter overrides x operating
conditions -- plus the negotiated fallbacks: patched models and engines
must decline the fast path so the patch is honoured, and executor sharding
of column blocks must reproduce the serial result exactly.
"""

import random

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.core.hybrid_vr import PdnMode
from repro.pdn import columnar
from repro.pdn.base import OperatingConditions
from repro.pdn.registry import build_pdn
from repro.power.domains import WorkloadType
from repro.power.power_states import BATTERY_LIFE_STATES
from repro.sim.engine import IntervalSimulator
from repro.sim.study import SimEngine, SimPoint

pytestmark = pytest.mark.skipif(
    not columnar.HAVE_NUMPY, reason="columnar path needs NumPy"
)

PDN_NAMES = ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")

WORKLOAD_TYPES = (
    WorkloadType.CPU_SINGLE_THREAD,
    WorkloadType.CPU_MULTI_THREAD,
    WorkloadType.GRAPHICS,
)

#: Override keys with value ranges safely inside every model's domain.
OVERRIDE_RANGES = {
    "ivr_tolerance_band_v": (0.010, 0.030),
    "mbvr_tolerance_band_v": (0.010, 0.030),
    "ldo_tolerance_band_v": (0.008, 0.025),
    "leakage_exponent": (2.2, 3.2),
    "flexwatts_loadline_scale": (1.02, 1.25),
}


def random_conditions(rng: random.Random, count: int):
    """A randomized mix of active-workload and package-C-state points."""
    points = []
    for _ in range(count):
        tdp_w = rng.uniform(4.0, 50.0)
        if rng.random() < 0.75:
            points.append(
                OperatingConditions.for_active_workload(
                    tdp_w, rng.uniform(0.40, 0.80), rng.choice(WORKLOAD_TYPES)
                )
            )
        else:
            points.append(
                OperatingConditions.for_power_state(
                    tdp_w, rng.choice(BATTERY_LIFE_STATES)
                )
            )
    return points


def random_overrides(rng: random.Random):
    """A random override tuple in the engine's canonical key form."""
    keys = rng.sample(sorted(OVERRIDE_RANGES), k=rng.randint(1, 2))
    return tuple((key, round(rng.uniform(*OVERRIDE_RANGES[key]), 6)) for key in keys)


# --------------------------------------------------------------------------- #
# Model level: columnar kernels versus the scalar oracle
# --------------------------------------------------------------------------- #
class TestModelEquivalence:
    @pytest.mark.parametrize("pdn_name", PDN_NAMES)
    @pytest.mark.parametrize("seed", [7, 1337])
    def test_randomized_grid_matches_oracle(self, pdn_name, seed):
        rng = random.Random(seed)
        pdn = build_pdn(pdn_name)
        conditions = random_conditions(rng, 60)
        results = columnar.evaluate_columns(pdn, conditions)
        assert results is not None, "unpatched model must take the fast path"
        assert results == [pdn.evaluate(c) for c in conditions]

    @pytest.mark.parametrize("mode", list(PdnMode))
    def test_flexwatts_forced_modes_match_oracle(self, mode):
        rng = random.Random(23)
        flexwatts = build_pdn("FlexWatts")
        conditions = random_conditions(rng, 40)
        results = columnar.evaluate_columns(flexwatts, conditions, mode=mode)
        assert results is not None
        assert results == [flexwatts.evaluate_in_mode(c, mode) for c in conditions]

    def test_instance_patch_loses_capability(self):
        pdn = build_pdn("MBVR")
        assert columnar.supports_columns(pdn)
        pdn.evaluate = lambda conditions: "patched"  # what-if style instance patch
        assert not columnar.supports_columns(pdn)
        assert columnar.evaluate_columns(pdn, random_conditions(random.Random(1), 4)) is None

    def test_class_patch_loses_capability(self, monkeypatch):
        from repro.pdn.ivr import IvrPdn

        original = IvrPdn.evaluate
        monkeypatch.setattr(IvrPdn, "evaluate", lambda self, c: original(self, c))
        assert not columnar.supports_columns(build_pdn("IVR"))


# --------------------------------------------------------------------------- #
# Engine level: evaluate_units through the columnar negotiation
# --------------------------------------------------------------------------- #
class TestEngineEquivalence:
    @pytest.mark.parametrize("seed", [11, 2024])
    def test_randomized_units_with_overrides(self, seed):
        rng = random.Random(seed)
        spot = PdnSpot(enable_cache=False)
        override_pool = [(), random_overrides(rng), random_overrides(rng)]
        units = [
            (rng.choice(PDN_NAMES), conditions, rng.choice(override_pool))
            for conditions in random_conditions(rng, 80)
        ]
        got = spot.evaluate_units(units)
        assert got == [spot.evaluate_uncached(*unit) for unit in units]

    def test_cached_engine_matches_uncached(self):
        rng = random.Random(5)
        units = [
            (name, conditions, ())
            for conditions in random_conditions(rng, 30)
            for name in PDN_NAMES
        ]
        cached = PdnSpot().evaluate_units(units)
        uncached = PdnSpot(enable_cache=False).evaluate_units(units)
        assert cached == uncached

    def test_columnar_disabled_engine_matches(self):
        rng = random.Random(17)
        units = [
            (name, conditions, ())
            for conditions in random_conditions(rng, 25)
            for name in PDN_NAMES
        ]
        columnar_spot = PdnSpot(enable_cache=False)
        scalar_spot = PdnSpot(enable_cache=False, columnar=False)
        assert columnar_spot.columnar_enabled
        assert not scalar_spot.columnar_enabled
        assert columnar_spot.evaluate_units(units) == scalar_spot.evaluate_units(units)

    def test_engine_patch_declines_columnar(self, monkeypatch):
        spot = PdnSpot(enable_cache=False)
        sentinel = object()
        monkeypatch.setattr(
            spot, "evaluate_uncached", lambda name, c, overrides=(): sentinel
        )
        conditions = random_conditions(random.Random(3), 6)
        units = [("IVR", c, ()) for c in conditions]
        assert spot.evaluate_columns(units) is None
        assert spot.evaluate_units(units) == [sentinel] * len(units)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_executor_columnar_shards_bit_identical(self, backend):
        # 300 units across two override variants: enough for multiple whole
        # column blocks per shard, small enough for a test-suite budget.
        rng = random.Random(29)
        overrides = (("ivr_tolerance_band_v", 0.012),)
        units = [
            (name, conditions, rng.choice([(), overrides]))
            for conditions in random_conditions(rng, 60)
            for name in PDN_NAMES
        ]
        serial = PdnSpot(enable_cache=False).evaluate_units(units)
        parallel = PdnSpot(enable_cache=False).evaluate_units(
            units, executor=backend, jobs=2
        )
        assert parallel == serial


# --------------------------------------------------------------------------- #
# Simulation level: the interval simulator's vectorized phase prefill
# --------------------------------------------------------------------------- #
class TestSimPrefillEquivalence:
    @pytest.mark.parametrize("pdn_name", ["MBVR", "FlexWatts"])
    def test_prefill_matches_scalar_phase_loop(self, pdn_name, monkeypatch):
        point = SimPoint(scenario="bursty-interactive", tdp_w=18.0)
        monkeypatch.setattr(IntervalSimulator, "_COLUMNAR_PREFILL_THRESHOLD", 1)
        prefilled = SimEngine(enable_cache=False).evaluate(pdn_name, point)
        monkeypatch.setattr(
            IntervalSimulator, "_COLUMNAR_PREFILL_THRESHOLD", 10**9
        )
        scalar = SimEngine(enable_cache=False).evaluate(pdn_name, point)
        assert prefilled == scalar
