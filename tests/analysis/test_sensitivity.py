"""Tests for the parameter-sensitivity analysis."""

import pytest

from repro.analysis.sensitivity import (
    PERTURBABLE_PARAMETERS,
    SensitivityAnalysis,
    SensitivityRecord,
)
from repro.pdn.base import OperatingConditions
from repro.power.domains import WorkloadType
from repro.util.errors import ConfigurationError


@pytest.fixture(scope="module")
def analysis():
    return SensitivityAnalysis(pdn_names=["IVR", "MBVR", "LDO"])


class TestPerturb:
    def test_zero_perturbation_changes_nothing(self, analysis):
        for record in analysis.perturb("ivr_tolerance_band_v", 0.0):
            assert record.etee_delta == pytest.approx(0.0)
            assert record.sensitivity == 0.0

    def test_larger_tolerance_band_hurts_the_matching_pdn(self, analysis):
        records = {r.pdn_name: r for r in analysis.perturb("ivr_tolerance_band_v", 0.5)}
        assert records["IVR"].etee_delta < 0.0
        # The MBVR and LDO PDNs do not use the IVR tolerance band at all.
        assert records["MBVR"].etee_delta == pytest.approx(0.0)
        assert records["LDO"].etee_delta == pytest.approx(0.0)

    def test_higher_ldo_current_efficiency_helps_ldo(self, analysis):
        records = {r.pdn_name: r for r in analysis.perturb("ldo_current_efficiency", 0.005)}
        assert records["LDO"].etee_delta > 0.0

    def test_heavier_input_loadline_hurts_ldo_at_high_tdp(self, analysis):
        conditions = OperatingConditions.for_active_workload(
            50.0, 0.56, WorkloadType.CPU_MULTI_THREAD
        )
        records = {
            r.pdn_name: r
            for r in analysis.perturb("ldo_input_loadline_ohm", 1.0, conditions)
        }
        assert records["LDO"].etee_delta < 0.0
        assert records["IVR"].etee_delta == pytest.approx(0.0)

    def test_unknown_parameter_rejected(self, analysis):
        with pytest.raises(ConfigurationError):
            analysis.perturb("not_a_parameter", 0.1)

    def test_small_perturbations_have_small_effects(self, analysis):
        # The validation claim: within the published ranges (a few percent of
        # parameter movement) the ETEE moves by well under one point.
        for parameter in ("ivr_tolerance_band_v", "leakage_exponent"):
            for record in analysis.perturb(parameter, 0.05):
                assert abs(record.etee_delta) < 0.01


class TestTornado:
    def test_summary_covers_requested_parameters_and_pdns(self, analysis):
        summary = analysis.tornado(
            relative_change=0.2, parameters=("ivr_tolerance_band_v", "leakage_exponent")
        )
        assert set(summary) == {"ivr_tolerance_band_v", "leakage_exponent"}
        for swings in summary.values():
            assert set(swings) == {"IVR", "MBVR", "LDO"}
            assert all(value >= 0.0 for value in swings.values())

    def test_most_sensitive_parameter_is_perturbable(self, analysis):
        parameter = analysis.most_sensitive_parameter("IVR", relative_change=0.2)
        assert parameter in PERTURBABLE_PARAMETERS

    def test_record_sensitivity_definition(self):
        record = SensitivityRecord(
            pdn_name="IVR",
            parameter="leakage_exponent",
            relative_change=0.1,
            baseline_etee=0.75,
            perturbed_etee=0.74,
        )
        assert record.etee_delta == pytest.approx(-0.01)
        assert record.sensitivity == pytest.approx(-0.1)
