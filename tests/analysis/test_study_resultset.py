"""Tests for the Study/ResultSet query API and the cached evaluation engine."""

import json

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.analysis.resultset import MISSING, ResultSet
from repro.analysis.study import Scenario, Study, evaluate_study
from repro.pdn.base import OperatingConditions
from repro.pdn.registry import build_pdn
from repro.power.domains import WorkloadType
from repro.power.power_states import BATTERY_LIFE_STATES, PackageCState
from repro.util.errors import ConfigurationError, ModelDomainError


@pytest.fixture(scope="module")
def spot():
    return PdnSpot()


# --------------------------------------------------------------------------- #
# Seed-identical reference implementations of the legacy sweeps
# --------------------------------------------------------------------------- #
def seed_sweep_tdp(pdns, tdps_w, application_ratio=0.56, workload_type=WorkloadType.CPU_MULTI_THREAD):
    records = []
    for tdp_w in tdps_w:
        conditions = OperatingConditions.for_active_workload(
            tdp_w, application_ratio, workload_type
        )
        for pdn in pdns:
            evaluation = pdn.evaluate(conditions)
            records.append(
                {
                    "pdn": pdn.name,
                    "tdp_w": tdp_w,
                    "application_ratio": application_ratio,
                    "workload_type": workload_type.value,
                    "etee": evaluation.etee,
                    "supply_power_w": evaluation.supply_power_w,
                    "nominal_power_w": evaluation.nominal_power_w,
                }
            )
    return records


def seed_sweep_power_states(pdns, tdp_w, power_states=BATTERY_LIFE_STATES):
    records = []
    for state in power_states:
        conditions = OperatingConditions.for_power_state(tdp_w, state)
        for pdn in pdns:
            evaluation = pdn.evaluate(conditions)
            records.append(
                {
                    "pdn": pdn.name,
                    "tdp_w": tdp_w,
                    "power_state": state.value,
                    "etee": evaluation.etee,
                    "supply_power_w": evaluation.supply_power_w,
                    "nominal_power_w": evaluation.nominal_power_w,
                }
            )
    return records


class TestStudyBuilder:
    def test_grid_order_is_workload_tdp_ar(self):
        study = (
            Study.builder("grid")
            .tdps(4.0, 18.0)
            .application_ratios(0.4, 0.8)
            .workload_types(WorkloadType.CPU_SINGLE_THREAD, WorkloadType.GRAPHICS)
            .build()
        )
        assert len(study.scenarios) == 8
        first, second = study.scenarios[0], study.scenarios[1]
        assert first.workload_type is WorkloadType.CPU_SINGLE_THREAD
        assert (first.tdp_w, first.application_ratio) == (4.0, 0.4)
        assert (second.tdp_w, second.application_ratio) == (4.0, 0.8)
        # Last scenario: second workload type, last TDP, last AR.
        last = study.scenarios[-1]
        assert last.workload_type is WorkloadType.GRAPHICS
        assert (last.tdp_w, last.application_ratio) == (18.0, 0.8)

    def test_power_states_appended_after_active_grid(self):
        study = (
            Study.builder("mixed")
            .tdps(18.0)
            .application_ratios(0.56)
            .power_states(PackageCState.C2, "C8")
            .build()
        )
        assert [s.power_state for s in study.scenarios] == [
            PackageCState.C0,
            PackageCState.C2,
            PackageCState.C8,
        ]
        assert study.scenarios[1].application_ratio is None

    def test_power_state_only_study_has_no_active_part(self):
        study = Study.over_power_states(18.0)
        assert len(study.scenarios) == len(BATTERY_LIFE_STATES)
        assert all(not s.is_active for s in study.scenarios)

    def test_defaults_fill_ar_and_workload(self):
        study = Study.builder("defaults").tdps(4.0).build()
        scenario = study.scenarios[0]
        assert scenario.application_ratio == pytest.approx(0.56)
        assert scenario.workload_type is WorkloadType.CPU_MULTI_THREAD

    def test_parameter_grid_crosses_scenarios(self):
        study = (
            Study.builder("what-if")
            .tdps(10.0)
            .parameter_grid({}, {"ivr_tolerance_band_v": 0.010})
            .build()
        )
        assert len(study.scenarios) == 2
        assert study.scenarios[0].overrides == ()
        assert study.scenarios[1].overrides == (("ivr_tolerance_band_v", 0.010),)

    def test_c0_rejected_as_power_state(self):
        with pytest.raises(ConfigurationError):
            Study.builder("bad").tdps(4.0).power_states(PackageCState.C0)

    def test_empty_study_rejected(self):
        with pytest.raises(ConfigurationError):
            Study.builder("empty").build()

    def test_axes_without_tdps_rejected(self):
        # Axes are crossed with TDPs; without any they would be dropped.
        builder = Study.builder("lost-axis").power_states("C2")
        builder.scenario(Scenario(tdp_w=4.0, power_state=PackageCState.C8))
        with pytest.raises(ConfigurationError):
            builder.build()

    def test_explicit_scenarios_alone_are_fine(self):
        study = (
            Study.builder("explicit")
            .scenario(Scenario(tdp_w=4.0, power_state=PackageCState.C8))
            .build()
        )
        assert len(study.scenarios) == 1

    def test_scenario_validation(self):
        with pytest.raises(ConfigurationError):
            Scenario(tdp_w=4.0, power_state=PackageCState.C0)  # missing AR/type
        with pytest.raises(ConfigurationError):
            Scenario(
                tdp_w=4.0,
                power_state=PackageCState.C8,
                application_ratio=0.5,
            )


class TestResultSet:
    @pytest.fixture()
    def resultset(self):
        return ResultSet.from_records(
            [
                {"pdn": "IVR", "tdp_w": 4.0, "etee": 0.5},
                {"pdn": "MBVR", "tdp_w": 4.0, "etee": 0.6},
                {"pdn": "IVR", "tdp_w": 18.0, "etee": 0.7, "power_state": "C2"},
            ],
            name="unit",
        )

    def test_ragged_records_round_trip(self, resultset):
        records = resultset.to_records()
        assert records[0] == {"pdn": "IVR", "tdp_w": 4.0, "etee": 0.5}
        # The power_state cell exists only on the row that provided it.
        assert "power_state" not in records[0]
        assert records[2]["power_state"] == "C2"
        assert ResultSet.from_records(records, name="unit") == resultset

    def test_filter_by_equality_and_predicate(self, resultset):
        assert len(resultset.filter(pdn="IVR")) == 2
        assert len(resultset.filter(pdn="IVR", tdp_w=4.0)) == 1
        assert len(resultset.filter(lambda row: row["etee"] > 0.55)) == 2
        # Rows missing a constrained column never match.
        assert len(resultset.filter(power_state="C2")) == 1

    def test_filter_rejects_unknown_column(self, resultset):
        # A typo'd keyword should fail loudly, not silently match nothing.
        with pytest.raises(ConfigurationError):
            resultset.filter(pdn_name="IVR")

    def test_unique_and_column(self, resultset):
        assert resultset.unique("pdn") == ["IVR", "MBVR"]
        assert resultset.column("power_state")[0] is MISSING
        with pytest.raises(ConfigurationError):
            resultset.column("nope")

    def test_pivot(self, resultset):
        table = resultset.pivot("tdp_w", "pdn", "etee")
        assert table[4.0]["MBVR"] == pytest.approx(0.6)
        assert table[18.0] == {"IVR": 0.7}

    def test_normalize_to_baseline(self):
        resultset = ResultSet.from_records(
            [
                {"pdn": "IVR", "tdp_w": 4.0, "etee": 0.5},
                {"pdn": "MBVR", "tdp_w": 4.0, "etee": 0.6},
                {"pdn": "IVR", "tdp_w": 18.0, "etee": 0.8},
                {"pdn": "MBVR", "tdp_w": 18.0, "etee": 0.4},
            ]
        )
        normalised = resultset.normalize_to("IVR", value_columns=("etee",))
        assert normalised.column("etee") == pytest.approx([1.0, 1.2, 1.0, 0.5])

    def test_normalize_missing_baseline_rejected(self):
        resultset = ResultSet.from_records([{"pdn": "MBVR", "tdp_w": 4.0, "etee": 0.6}])
        with pytest.raises(ConfigurationError):
            resultset.normalize_to("IVR", value_columns=("etee",))

    def test_normalize_missing_baseline_cell_rejected(self):
        # A baseline row lacking the value column must not silently leave
        # absolute values mixed in with ratios.
        resultset = ResultSet.from_records(
            [
                {"pdn": "IVR", "tdp_w": 4.0},
                {"pdn": "MBVR", "tdp_w": 4.0, "etee": 0.6},
            ]
        )
        with pytest.raises(ConfigurationError):
            resultset.normalize_to("IVR", value_columns=("etee",))

    def test_json_round_trip(self, resultset):
        text = resultset.to_json(indent=2)
        rebuilt = ResultSet.from_json(text)
        assert rebuilt == resultset
        assert rebuilt.name == "unit"
        payload = json.loads(text)
        assert payload["columns"] == ["pdn", "tdp_w", "etee", "power_state"]
        # Missing cells serialise as null.
        assert payload["rows"][0][-1] is None

    def test_from_json_rejects_non_resultset_payloads(self):
        with pytest.raises(ConfigurationError):
            ResultSet.from_json('{"foo": 1}')

    def test_csv_layout(self, resultset):
        lines = resultset.to_csv().splitlines()
        assert lines[0] == "pdn,tdp_w,etee,power_state"
        assert lines[1] == "IVR,4.0,0.5,"
        assert lines[3].endswith(",C2")

    def test_concat_and_ragged_guard(self, resultset):
        doubled = ResultSet.concat([resultset, resultset])
        assert len(doubled) == 2 * len(resultset)
        with pytest.raises(ConfigurationError):
            ResultSet({"a": [1, 2], "b": [1]})


class TestSeedEquivalence:
    """PdnSpot.run / the shims reproduce the seed sweep records exactly."""

    def test_run_matches_seed_tdp_sweep(self, spot):
        pdns = [build_pdn(name) for name in spot.pdns]
        expected = seed_sweep_tdp(pdns, (4.0, 18.0, 50.0))
        actual = spot.run(Study.over_tdps((4.0, 18.0, 50.0))).to_records()
        assert actual == expected

    def test_run_matches_seed_application_ratio_sweep(self, spot):
        pdns = [build_pdn(name) for name in spot.pdns]
        expected = seed_sweep_tdp(pdns, (18.0,), 0.4)
        grid = Study.over_application_ratios((0.4,), 18.0)
        assert spot.run(grid).to_records() == expected

    def test_run_matches_seed_power_state_sweep(self, spot):
        pdns = [build_pdn(name) for name in spot.pdns]
        expected = seed_sweep_power_states(pdns, 18.0)
        actual = spot.run(Study.over_power_states(18.0)).to_records()
        assert actual == expected

    @pytest.mark.parametrize(
        "name", ["sweep_tdp", "sweep_application_ratio", "sweep_power_states"]
    )
    def test_removed_shims_raise_with_study_replacement(self, name):
        # Both historical import spellings must fail with the same guidance.
        with pytest.raises(ImportError, match="was removed") as excinfo:
            getattr(__import__("repro.analysis.sweep", fromlist=[name]), name)
        assert "Study" in str(excinfo.value)
        import repro.analysis

        with pytest.raises(ImportError, match="was removed"):
            getattr(repro.analysis, name)

    def test_removal_error_names_the_docs_page(self):
        from repro.analysis.sweep import MIGRATION_GUIDE

        with pytest.raises(ImportError) as excinfo:
            from repro.analysis.sweep import sweep_tdp  # noqa: F401
        message = str(excinfo.value)
        assert MIGRATION_GUIDE in message
        assert "docs/guides/migration.md" in message
        assert "to_records()" in message

    def test_pdn_restriction(self, spot):
        study = Study.builder("subset").tdps(4.0).pdns("IVR", "FlexWatts").build()
        records = spot.run(study).to_records()
        assert [record["pdn"] for record in records] == ["IVR", "FlexWatts"]

    def test_unknown_pdn_rejected(self, spot):
        study = Study.builder("bad").tdps(4.0).pdns("NOPE").build()
        with pytest.raises(ConfigurationError):
            spot.run(study)

    def test_evaluate_study_rejects_overrides(self):
        study = (
            Study.builder("what-if")
            .tdps(4.0)
            .parameter_grid({"ivr_tolerance_band_v": 0.01})
            .build()
        )
        with pytest.raises(ModelDomainError):
            evaluate_study(study, [build_pdn("IVR")])


def _count_evaluations(spot):
    """Wrap every PDN instance's evaluate with a shared call counter."""
    counter = {"calls": 0}
    for pdn in spot.pdns.values():
        original = pdn.evaluate

        def counting(conditions, _original=original):
            counter["calls"] += 1
            return _original(conditions)

        pdn.evaluate = counting
    return counter


class TestEvaluationCache:
    def test_same_point_evaluated_once(self):
        spot = PdnSpot(pdn_names=["IVR", "MBVR"])
        counter = _count_evaluations(spot)
        conditions = OperatingConditions.for_active_workload(
            4.0, 0.56, WorkloadType.CPU_MULTI_THREAD
        )
        points = [("IVR", conditions), ("IVR", conditions), ("MBVR", conditions)]
        first = spot.evaluate_batch(points)
        second = spot.evaluate_batch(points)
        assert counter["calls"] == 2  # one per distinct (pdn, conditions)
        assert first[0] == first[1] == second[0]
        info = spot.cache_info()
        assert info.misses == 2
        assert info.hits == 4
        assert info.size == 2
        assert 0.0 < info.hit_rate < 1.0

    def test_equal_conditions_built_separately_share_a_cache_entry(self):
        spot = PdnSpot(pdn_names=["IVR"])
        counter = _count_evaluations(spot)
        first = OperatingConditions.for_active_workload(
            18.0, 0.56, WorkloadType.CPU_MULTI_THREAD
        )
        second = OperatingConditions.for_active_workload(
            18.0, 0.56, WorkloadType.CPU_MULTI_THREAD
        )
        spot.evaluate_cached("IVR", first)
        spot.evaluate_cached("IVR", second)
        assert counter["calls"] == 1

    def test_caller_mutation_does_not_corrupt_the_cache(self):
        spot = PdnSpot(pdn_names=["IVR"])
        conditions = OperatingConditions.for_active_workload(
            4.0, 0.56, WorkloadType.CPU_MULTI_THREAD
        )
        first = spot.evaluate_cached("IVR", conditions)
        first.breakdown.other_w += 99.0
        first.rail_voltages_v["injected"] = 1.0
        second = spot.evaluate_cached("IVR", conditions)
        assert second.breakdown.other_w == pytest.approx(first.breakdown.other_w - 99.0)
        assert "injected" not in second.rail_voltages_v

    def test_clear_cache(self):
        spot = PdnSpot(pdn_names=["IVR"])
        conditions = OperatingConditions.for_power_state(18.0, PackageCState.C8)
        spot.evaluate_cached("IVR", conditions)
        spot.clear_cache()
        info = spot.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)

    def test_disabled_cache_reevaluates(self):
        spot = PdnSpot(pdn_names=["IVR"], enable_cache=False)
        counter = _count_evaluations(spot)
        conditions = OperatingConditions.for_power_state(18.0, PackageCState.C8)
        spot.evaluate_cached("IVR", conditions)
        spot.evaluate_cached("IVR", conditions)
        assert counter["calls"] == 2

    def test_cached_and_uncached_results_identical(self):
        cached = PdnSpot(pdn_names=["IVR", "MBVR"])
        uncached = PdnSpot(pdn_names=["IVR", "MBVR"], enable_cache=False)
        study = Study.over_tdps((4.0, 18.0))
        assert cached.run(study) == uncached.run(study)

    def test_parameter_override_variants(self):
        spot = PdnSpot(pdn_names=["IVR"])
        study = (
            Study.builder("what-if")
            .tdps(10.0)
            .parameter_grid({}, {"ivr_tolerance_band_v": 0.040})
            .build()
        )
        records = spot.run(study).to_records()
        assert len(records) == 2
        assert "parameters" not in records[0]
        assert records[1]["parameters"] == {"ivr_tolerance_band_v": 0.040}
        # A 2x tolerance band costs the IVR PDN efficiency.
        assert records[1]["etee"] < records[0]["etee"]

    def test_override_resultsets_support_normalize_and_unique(self):
        # Dict-valued 'parameters' cells must not break hashable-key helpers.
        spot = PdnSpot(pdn_names=["IVR", "MBVR"])
        study = (
            Study.builder("what-if")
            .tdps(10.0)
            .parameter_grid({}, {"ivr_tolerance_band_v": 0.040})
            .build()
        )
        results = spot.run(study)
        normalised = results.normalize_to("IVR", value_columns=("etee",))
        assert normalised.filter(pdn="IVR").column("etee") == pytest.approx([1.0, 1.0])
        assert results.unique("parameters") == [{"ivr_tolerance_band_v": 0.040}]


class TestFig8CachedRegeneration:
    """The acceptance criterion: regenerating the Fig. 8 grid through the
    cached engine performs strictly fewer PowerDeliveryNetwork.evaluate calls
    than the seed (uncached) path."""

    @staticmethod
    def _regenerate(spot):
        from repro.experiments import fig8_evaluation as fig8

        tdps = (4.0, 18.0, 50.0)
        fig8.spec_performance_sweep(tdps_w=tdps, spot=spot)
        fig8.graphics_performance_sweep(tdps_w=tdps, spot=spot)
        fig8.battery_life_power(spot=spot)

    def test_cached_engine_makes_strictly_fewer_evaluate_calls(self):
        cached = PdnSpot()
        uncached = PdnSpot(enable_cache=False)
        cached_counter = _count_evaluations(cached)
        uncached_counter = _count_evaluations(uncached)
        self._regenerate(cached)
        self._regenerate(uncached)
        assert cached_counter["calls"] < uncached_counter["calls"]
        # The cache removes at least the duplicated baseline evaluations.
        assert cached.cache_info().hits > 0

    def test_cached_and_seed_paths_agree(self):
        from repro.experiments import fig8_evaluation as fig8

        cached = PdnSpot()
        uncached = PdnSpot(enable_cache=False)
        assert fig8.battery_life_power(spot=cached) == fig8.battery_life_power(
            spot=uncached
        )
        assert fig8.spec_performance_sweep(
            tdps_w=(4.0,), spot=cached
        ) == fig8.spec_performance_sweep(tdps_w=(4.0,), spot=uncached)
