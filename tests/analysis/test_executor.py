"""Executor semantics: identical results, deterministic order, cache merge.

The parallel backends must be *invisible* in every observable except wall
clock: the same :class:`Study` produces the same :class:`ResultSet` through
every backend, chunk completion order must not leak into row order, and the
shared :class:`PdnSpot` cache must end a parallel run exactly as warm -- with
exactly the same hit/miss accounting -- as a serial run would leave it.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis.executor import (
    EXECUTORS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    parallel_requested,
    shard,
)
from repro.analysis.pdnspot import PdnSpot
from repro.analysis.study import Study
from repro.pdn.base import OperatingConditions
from repro.power.domains import WorkloadType
from repro.util.errors import ConfigurationError

BACKENDS = sorted(EXECUTORS)


def _grid_study() -> Study:
    """A small but heterogeneous grid: active + idle + parameter overrides."""
    return (
        Study.builder("executor-grid")
        .tdps(4.0, 18.0)
        .application_ratios(0.4, 0.56)
        .power_states("C2", "C8")
        .parameter_grid({}, {"ivr_tolerance_band_v": 0.010})
        .build()
    )


def _active_point(tdp_w: float = 4.0) -> OperatingConditions:
    return OperatingConditions.for_active_workload(
        tdp_w, 0.56, WorkloadType.CPU_MULTI_THREAD
    )


# --------------------------------------------------------------------------- #
# Sharding
# --------------------------------------------------------------------------- #
class TestShard:
    def test_concatenation_is_input_and_sizes_balanced(self):
        items = list(range(13))
        chunks = shard(items, 4)
        assert [x for chunk in chunks for x in chunk] == items
        sizes = {len(chunk) for chunk in chunks}
        assert max(sizes) - min(sizes) <= 1

    def test_is_deterministic(self):
        items = list(range(50))
        assert shard(items, 7) == shard(items, 7)

    def test_more_shards_than_items(self):
        assert shard([1, 2], 8) == [[1], [2]]

    def test_empty_items(self):
        assert shard([], 4) == []

    def test_invalid_shard_count(self):
        with pytest.raises(ConfigurationError):
            shard([1], 0)


# --------------------------------------------------------------------------- #
# Backend equivalence
# --------------------------------------------------------------------------- #
class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def serial_reference(self):
        spot = PdnSpot()
        resultset = spot.run(_grid_study())
        return resultset, spot.cache_info()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cold_run_matches_serial(self, backend, serial_reference):
        reference, reference_info = serial_reference
        spot = PdnSpot()
        resultset = spot.run(_grid_study(), executor=backend, jobs=4)
        assert resultset == reference
        info = spot.cache_info()
        assert (info.hits, info.misses, info.size) == (
            reference_info.hits,
            reference_info.misses,
            reference_info.size,
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_warm_run_is_all_hits_and_equal(self, backend, serial_reference):
        reference, _ = serial_reference
        spot = PdnSpot()
        spot.run(_grid_study())  # warm serially
        cold_info = spot.cache_info()
        resultset = spot.run(_grid_study(), executor=backend, jobs=4)
        assert resultset == reference
        warm_info = spot.cache_info()
        assert warm_info.misses == cold_info.misses  # nothing recomputed
        assert warm_info.hits == cold_info.hits + len(reference)
        assert warm_info.size == cold_info.size

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cache_disabled_matches_cached_results(self, backend, serial_reference):
        reference, _ = serial_reference
        spot = PdnSpot(enable_cache=False)
        resultset = spot.run(_grid_study(), executor=backend, jobs=3)
        assert resultset == reference
        assert spot.cache_info().size == 0

    def test_executor_instance_and_jobs_shortcut(self, serial_reference):
        reference, _ = serial_reference
        assert PdnSpot().run(_grid_study(), executor=ThreadExecutor(jobs=2)) == reference
        assert PdnSpot().run(_grid_study(), jobs=2) == reference  # process shortcut


# --------------------------------------------------------------------------- #
# Deterministic reassembly under out-of-order completion
# --------------------------------------------------------------------------- #
class _ReversedCompletionExecutor(SerialExecutor):
    """Completes chunks strictly in reverse submission order."""

    name = "reversed"

    def _run_chunks(self, spot, chunks):
        results = [
            [
                (slot, spot.evaluate_uncached(name, conditions, overrides))
                for slot, name, conditions, overrides in chunk
            ]
            for chunk in chunks
        ]
        yield from reversed(results)


class TestDeterministicOrdering:
    def test_reversed_chunk_completion_preserves_grid_order(self):
        study = _grid_study()
        reference = PdnSpot().run(study)
        spot = PdnSpot()
        resultset = spot.run(study, executor=_ReversedCompletionExecutor(jobs=5))
        assert resultset == reference
        assert resultset.to_records() == reference.to_records()

    def test_batch_order_follows_points_not_completion(self):
        points = [("LDO", _active_point()), ("IVR", _active_point()), ("MBVR", _active_point(18.0))]
        spot = PdnSpot()
        evaluations = spot.evaluate_batch(points, executor=_ReversedCompletionExecutor(jobs=3))
        assert [e.pdn_name for e in evaluations] == ["LDO", "IVR", "MBVR"]


# --------------------------------------------------------------------------- #
# Cache merge-back
# --------------------------------------------------------------------------- #
class TestCacheMergeBack:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_parallel_cold_run_warms_the_shared_cache(self, backend):
        study = _grid_study()
        spot = PdnSpot()
        spot.run(study, executor=backend, jobs=4)
        info = spot.cache_info()
        assert info.misses == info.size > 0
        # A follow-up serial evaluation of any grid point is a pure hit.
        spot.evaluate_cached("IVR", _active_point())
        after = spot.cache_info()
        assert after.misses == info.misses
        assert after.hits == info.hits + 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_duplicate_points_counted_like_serial(self, backend):
        # Serial accounting for 3 identical points: 1 miss + 2 hits.
        points = [("IVR", _active_point())] * 3
        serial_spot = PdnSpot()
        serial_spot.evaluate_batch(points)
        serial_info = serial_spot.cache_info()
        spot = PdnSpot()
        evaluations = spot.evaluate_batch(points, executor=backend, jobs=2)
        info = spot.cache_info()
        assert (info.hits, info.misses, info.size) == (
            serial_info.hits,
            serial_info.misses,
            serial_info.size,
        )
        assert len({e.etee for e in evaluations}) == 1

    def test_merged_entries_are_caller_isolated(self):
        # Mutating a returned evaluation must not corrupt later cache hits
        # (the merge-back must store masters, not caller-visible objects).
        spot = PdnSpot()
        first = spot.evaluate_batch(
            [("IVR", _active_point())], executor="thread", jobs=2
        )[0]
        first.rail_voltages_v.clear()
        second = spot.evaluate_cached("IVR", _active_point())
        assert second.rail_voltages_v  # unaffected by the caller's mutation


# --------------------------------------------------------------------------- #
# Concurrent evaluate_cached accounting (the CacheInfo lock)
# --------------------------------------------------------------------------- #
class TestThreadSafeAccounting:
    def test_concurrent_lookups_lose_no_counter_updates(self):
        spot = PdnSpot()
        conditions = _active_point()
        spot.evaluate_cached("IVR", conditions)  # 1 miss, cache warm
        calls_per_thread, thread_count = 50, 8
        barrier = threading.Barrier(thread_count)

        def hammer():
            barrier.wait()
            for _ in range(calls_per_thread):
                spot.evaluate_cached("IVR", conditions)

        threads = [threading.Thread(target=hammer) for _ in range(thread_count)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        info = spot.cache_info()
        assert info.hits == calls_per_thread * thread_count
        assert info.misses == 1
        assert info.size == 1


# --------------------------------------------------------------------------- #
# The factory
# --------------------------------------------------------------------------- #
class TestMakeExecutor:
    def test_none_is_engine_default(self):
        assert make_executor(None) is None
        assert make_executor(None, jobs=1) is None

    def test_jobs_over_one_selects_process(self):
        backend = make_executor(None, jobs=3)
        assert isinstance(backend, ProcessExecutor)
        assert backend.jobs == 3

    @pytest.mark.parametrize("name", BACKENDS)
    def test_names_resolve(self, name):
        backend = make_executor(name, jobs=2)
        assert backend.name == name
        assert backend.jobs == 2

    def test_instance_passes_through(self):
        backend = ThreadExecutor(jobs=2)
        assert make_executor(backend) is backend
        assert make_executor(backend, jobs=2) is backend

    def test_conflicting_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            make_executor(ThreadExecutor(jobs=2), jobs=3)

    def test_defaulted_instance_adopts_explicit_jobs(self):
        # ProcessExecutor() leaves jobs to the machine default; an explicit
        # jobs= must win regardless of the CPU count, never conflict.
        backend = make_executor(ProcessExecutor(), jobs=7)
        assert isinstance(backend, ProcessExecutor)
        assert backend.jobs == 7

    def test_defaulted_subclass_adopts_jobs_keeping_state(self):
        # Adoption must preserve subclass state (copy, not reconstruction).
        class TaggedExecutor(SerialExecutor):
            def __init__(self, tag, jobs=None):
                super().__init__(jobs=jobs)
                self.tag = tag

        backend = make_executor(TaggedExecutor("audit"), jobs=5)
        assert backend.jobs == 5
        assert backend.tag == "audit"

    def test_parallel_requested_gate(self):
        assert parallel_requested() is False
        assert parallel_requested(jobs=1) is False
        assert parallel_requested(jobs=2) is True
        assert parallel_requested("serial") is True
        with pytest.raises(ConfigurationError):
            parallel_requested(jobs=0)  # invalid jobs raises, never serial-fallback

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_executor("distributed")

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            make_executor("thread", jobs=0)
        with pytest.raises(ConfigurationError):
            ThreadExecutor(jobs=-1)

    def test_executor_must_be_known_type(self):
        with pytest.raises(ConfigurationError):
            make_executor(42)  # type: ignore[arg-type]

    def test_empty_units_short_circuit(self):
        assert SerialExecutor().evaluate_units(PdnSpot(), []) == []
