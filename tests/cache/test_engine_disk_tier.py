"""The disk store as the second cache tier of the evaluation engines.

Covers the cross-run warm-start contract of ISSUE 5: a cache directory
populated by one engine (or one process) makes an identical run in a *fresh*
engine (or another process) serve every unit from disk, with results
bit-identical to a cache-less run, for the sweep, simulate and optimize
paths; concurrent writers leave a valid store behind.
"""

from concurrent import futures

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.analysis.study import Study
from repro.cache import DiskCache
from repro.optimize import DesignSpace, run_optimization
from repro.sim.study import SimEngine, SimStudy, run_sim
from repro.util.errors import ConfigurationError


def sweep_study() -> Study:
    return (
        Study.builder("disk-tier")
        .tdps(4.0, 18.0)
        .application_ratios(0.4, 0.56)
        .power_states("C2", "C8")
        .build()
    )


def sim_study() -> SimStudy:
    return SimStudy.over_scenarios(
        ["duty-cycled-background"], tdps_w=[18.0], name="disk-tier-sim"
    )


# --------------------------------------------------------------------------- #
# Worker functions for the cross-process tests (must be module-level to pickle)
# --------------------------------------------------------------------------- #
def _put_same_key(root: str, worker: int) -> bool:
    """One process-pool worker writing the contested key."""
    cache = DiskCache(root, namespace="race", fingerprint="fp")
    return cache.put(("shared", "key"), {"worker": worker, "value": 42.0})


def _sweep_in_subprocess(cache_dir: str) -> str:
    """Run the sweep grid against a warm directory in another process."""
    spot = PdnSpot(disk_cache=cache_dir)
    resultset = spot.run(sweep_study())
    info = spot.cache_info()
    disk = spot.disk_cache.stats()
    assert info.misses == 0, "warm directory: nothing may be recomputed"
    assert disk.hits == disk.entries == info.hits
    return resultset.to_json()


class TestPdnSpotDiskTier:
    def test_disk_requires_memo_cache(self, tmp_path):
        with pytest.raises(ConfigurationError, match="enable_cache"):
            PdnSpot(enable_cache=False, disk_cache=tmp_path)

    def test_cold_run_writes_through(self, tmp_path):
        spot = PdnSpot(disk_cache=tmp_path)
        resultset = spot.run(sweep_study())
        stats = spot.disk_cache.stats()
        assert stats.writes == spot.cache_info().misses == stats.entries
        assert len(resultset) > 0

    def test_fresh_engine_serves_every_unit_from_disk(self, tmp_path):
        study = sweep_study()
        baseline = PdnSpot().run(study)  # cache-less reference
        PdnSpot(disk_cache=tmp_path).run(study)  # populate

        warm = PdnSpot(disk_cache=tmp_path)
        served = warm.run(study)
        info = warm.cache_info()
        disk = warm.disk_cache.stats()
        assert info.misses == 0
        assert disk.hits == disk.entries
        assert disk.writes == 0
        assert served == baseline  # bit-identical to the cache-less run

    def test_prebuilt_bare_store_still_invalidates_on_parameter_change(
        self, tmp_path
    ):
        """The code-review repro: DiskCache(d) with no fingerprint must not
        serve one technology's results to an engine built with another."""
        study = sweep_study()
        PdnSpot(disk_cache=DiskCache(tmp_path)).run(study)
        perturbed_parameters = PdnSpot().parameters.with_overrides(
            supply_voltage_v=PdnSpot().parameters.supply_voltage_v * 1.5
        )
        truth = PdnSpot(parameters=perturbed_parameters).run(study)
        perturbed = PdnSpot(
            parameters=perturbed_parameters, disk_cache=DiskCache(tmp_path)
        )
        assert perturbed.run(study) == truth
        assert perturbed.disk_cache.stats().hits == 0  # nothing stale served

    def test_parameter_change_invalidates_directory(self, tmp_path):
        study = sweep_study()
        PdnSpot(disk_cache=tmp_path).run(study)
        perturbed = PdnSpot(
            parameters=PdnSpot().parameters.with_overrides(
                ivr_tolerance_band_v=0.015
            ),
            disk_cache=tmp_path,
        )
        perturbed.run(study)
        assert perturbed.disk_cache.stats().hits == 0  # nothing stale served
        assert perturbed.cache_info().misses > 0

    def test_wrong_typed_payload_is_discarded_loudly(self, tmp_path, caplog):
        """A valid entry holding the wrong payload class heals like corruption
        and is reclassified from hit to miss in the store's counters."""
        import logging

        spot = PdnSpot(disk_cache=tmp_path)
        study = sweep_study()
        baseline = spot.run(study)
        # Overwrite every entry with a structurally valid but foreign payload.
        store = spot.disk_cache
        keys = [
            spot.cache_key(name, scenario.conditions(), scenario.overrides)
            for scenario in study.scenarios
            for name in spot.pdns
        ]
        for key in keys:
            store.put(key, {"not": "a PdnEvaluation"})
        warm = PdnSpot(disk_cache=tmp_path)
        with caplog.at_level(logging.WARNING, logger="repro.cache"):
            assert warm.run(study) == baseline  # recomputed, never served
        assert "discarding entry" in caplog.text
        stats = warm.disk_cache.stats()
        assert stats.hits == 0  # discards reclassified the hits
        assert stats.corrupt == len(set(keys))
        assert warm.cache_info().misses == len(set(keys))

    def test_corrupt_entries_recompute_identically(self, tmp_path):
        study = sweep_study()
        spot = PdnSpot(disk_cache=tmp_path)
        baseline = spot.run(study)
        # Corrupt every stored entry behind the engine's back.
        entries = list((tmp_path / "pdnspot").glob("*/*.pkl"))
        assert entries
        for path in entries:
            path.write_bytes(b"\x00 torn write \xff")
        warm = PdnSpot(disk_cache=tmp_path)
        assert warm.run(study) == baseline  # recomputed, never raised
        assert warm.disk_cache.stats().corrupt == len(entries)
        assert warm.cache_info().misses == len(entries)

    def test_warm_directory_parallel_equals_cold_serial(self, tmp_path):
        study = sweep_study()
        baseline = PdnSpot().run(study)
        PdnSpot(disk_cache=tmp_path).run(study)
        warm = PdnSpot(disk_cache=tmp_path)
        parallel = warm.run(study, executor="process", jobs=2)
        assert parallel == baseline
        assert warm.cache_info().misses == 0  # all served before dispatch

    def test_cold_parallel_run_populates_store(self, tmp_path):
        study = sweep_study()
        spot = PdnSpot(disk_cache=tmp_path)
        parallel = spot.run(study, executor="process", jobs=2)
        stats = spot.disk_cache.stats()
        assert stats.entries == spot.cache_info().misses  # merge-back wrote through
        warm = PdnSpot(disk_cache=tmp_path)
        assert warm.run(study) == parallel
        assert warm.cache_info().misses == 0


class TestSimEngineDiskTier:
    def test_disk_requires_memo_cache(self, tmp_path):
        with pytest.raises(ConfigurationError, match="enable_cache"):
            SimEngine(enable_cache=False, disk_cache=tmp_path)

    def test_fresh_engine_replays_simulations_from_disk(self, tmp_path):
        study = sim_study()
        baseline = SimEngine().run(study)
        SimEngine(disk_cache=tmp_path).run(study)

        warm = SimEngine(disk_cache=tmp_path)
        served = warm.run(study)
        assert served == baseline
        info = warm.cache_info()
        disk = warm.disk_cache.stats()
        assert info.misses == 0
        assert disk.hits == disk.entries == info.hits
        # The phase-level tier persisted too (static-PDN operating points).
        assert (tmp_path / "pdnspot").is_dir()

    def test_run_sim_cache_dir_round_trip(self, tmp_path):
        study = sim_study()
        baseline = run_sim(study)
        first = run_sim(study, cache_dir=tmp_path)
        second = run_sim(study, cache_dir=tmp_path)
        assert first == baseline
        assert second == baseline

    def test_run_sim_rejects_engine_plus_cache_dir(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cache_dir"):
            run_sim(sim_study(), engine=SimEngine(), cache_dir=tmp_path)

    def test_reregistered_scenario_generator_is_not_served_stale(self, tmp_path):
        """The disk address digests trace content, not just the scenario name."""
        from repro.power.power_states import PackageCState
        from repro.workloads.base import WorkloadPhase, WorkloadTrace
        from repro.workloads.scenarios import ScenarioSpec, register_scenario

        def make_trace(idle_fraction):
            def build(rng):
                return WorkloadTrace(
                    name="mutable",
                    phases=(
                        WorkloadPhase(
                            power_state=PackageCState.C0_MIN,
                            residency=1.0 - idle_fraction,
                            duration_s=(1.0 - idle_fraction),
                        ),
                        WorkloadPhase(
                            power_state=PackageCState.C8,
                            residency=idle_fraction,
                            duration_s=idle_fraction,
                        ),
                    ),
                )

            return build

        name = "test-mutable-scenario"
        register_scenario(
            ScenarioSpec(name, "v1", make_trace(0.5)), replace=True
        )
        try:
            study = SimStudy.over_scenarios([name], tdps_w=[18.0], name="mutable")
            SimEngine(disk_cache=tmp_path).run(study)  # populate under v1

            register_scenario(
                ScenarioSpec(name, "v2", make_trace(0.9)), replace=True
            )
            truth = SimEngine().run(study)  # what v2 must produce
            warm = SimEngine(disk_cache=tmp_path)
            assert warm.run(study) == truth  # recomputed, not v1 replayed
            assert warm.disk_cache.stats().hits == 0
        finally:
            from repro.workloads.scenarios import _SCENARIOS

            _SCENARIOS.pop(name, None)

    def test_prebuilt_store_attaches_sim_tier_only(self, tmp_path):
        store = DiskCache(tmp_path, namespace="sim", fingerprint="custom")
        engine = SimEngine(disk_cache=store)
        assert engine.disk_cache is store
        assert engine.spot.disk_cache is None

    def test_prebuilt_bare_store_lands_in_sim_namespace(self, tmp_path):
        """A bare DiskCache bound by SimEngine must not pollute 'pdnspot'."""
        store = DiskCache(tmp_path)
        engine = SimEngine(disk_cache=store)
        engine.run(sim_study())
        assert store.namespace == "sim"
        assert (tmp_path / "sim").is_dir()
        assert not (tmp_path / "pdnspot").exists()  # spot tier not attached
        stats = store.stats()  # the caller's instance records the traffic
        assert stats.writes == stats.entries > 0


class TestOptimizeDiskTier:
    def test_warm_directory_search_is_bit_identical(self, tmp_path):
        space = DesignSpace.over_pdns(["IVR", "LDO", "FlexWatts"])
        baseline = run_optimization(space, objectives=["etee", "bom"])
        cold = run_optimization(
            space, objectives=["etee", "bom"], cache_dir=tmp_path
        )
        warm = run_optimization(
            space, objectives=["etee", "bom"], cache_dir=tmp_path
        )
        assert cold.results == baseline.results
        assert warm.results == baseline.results
        assert warm.front == baseline.front
        assert warm.knee == baseline.knee

    def test_prebuilt_evaluator_rejects_cache_dir(self, tmp_path):
        from repro.optimize import CandidateEvaluator, resolve_objectives

        evaluator = CandidateEvaluator(resolve_objectives(["etee", "bom"]))
        with pytest.raises(ConfigurationError, match="cache_dir"):
            run_optimization(
                DesignSpace.over_pdns(["IVR"]),
                objectives=["etee", "bom"],
                evaluator=evaluator,
                cache_dir=tmp_path,
            )

    def test_evaluator_rejects_prebuilt_store_instance(self, tmp_path):
        """One store cannot serve both owned engines; fail at construction,
        not mid-search when a sim objective lazily builds the SimEngine."""
        from repro.optimize import CandidateEvaluator, resolve_objectives

        with pytest.raises(ConfigurationError, match="directory path"):
            CandidateEvaluator(
                resolve_objectives(["etee", "energy"]),
                cache_dir=DiskCache(tmp_path),
            )


class TestConcurrency:
    """Satellite: concurrent disk-cache access across processes."""

    def test_two_process_workers_writing_the_same_key(self, tmp_path):
        root = str(tmp_path)
        with futures.ProcessPoolExecutor(max_workers=2) as pool:
            outcomes = list(pool.map(_put_same_key, [root] * 2, range(2)))
        assert all(outcomes)
        cache = DiskCache(root, namespace="race", fingerprint="fp")
        payload = cache.get(("shared", "key"))
        assert payload is not None and payload["value"] == 42.0  # one valid winner
        assert cache.stats().entries == 1
        assert cache.stats().corrupt == 0

    def test_warm_directory_in_another_process_is_bit_identical(self, tmp_path):
        study = sweep_study()
        cold_serial = PdnSpot().run(study)  # the cache-less reference
        PdnSpot(disk_cache=tmp_path).run(study)  # this process populates
        with futures.ProcessPoolExecutor(max_workers=1) as pool:
            warm_json = pool.submit(_sweep_in_subprocess, str(tmp_path)).result()
        assert warm_json == cold_serial.to_json()  # byte-for-byte identical
