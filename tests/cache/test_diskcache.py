"""Unit tests for the on-disk evaluation store (``repro.cache``)."""

import pickle

import pytest

from repro.cache import (
    CACHE_FORMAT_VERSION,
    DiskCache,
    cache_dir_summary,
    canonical_key,
    parameters_fingerprint,
    prune_cache_dir,
    resolve_disk_cache,
)
from repro.power.parameters import default_parameters
from repro.util.errors import ConfigurationError


KEY = ((), "IVR", (4.0, 0.56))
OTHER_KEY = ((), "LDO", (4.0, 0.56))


def make_cache(tmp_path, **kwargs) -> DiskCache:
    kwargs.setdefault("namespace", "test")
    kwargs.setdefault("fingerprint", "fp")
    return DiskCache(tmp_path / "cache", **kwargs)


class TestGetPut:
    def test_miss_then_hit(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.get(KEY) is None
        assert cache.put(KEY, {"value": 42})
        assert cache.get(KEY) == {"value": 42}
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.writes) == (1, 1, 1)
        assert stats.entries == 1
        assert stats.size_bytes > 0

    def test_distinct_keys_do_not_collide(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(KEY, "a")
        cache.put(OTHER_KEY, "b")
        assert cache.get(KEY) == "a"
        assert cache.get(OTHER_KEY) == "b"

    def test_payload_round_trips_fresh_objects(self, tmp_path):
        cache = make_cache(tmp_path)
        payload = {"nested": [1.5, "x"]}
        cache.put(KEY, payload)
        first = cache.get(KEY)
        second = cache.get(KEY)
        assert first == payload
        assert first is not payload
        assert first is not second  # unpickled per get: no shared mutable state

    def test_put_leaves_no_lock_litter(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(KEY, 1)
        cache.put(OTHER_KEY, 2)
        shard_files = list((cache.root / "test").glob("*/*"))
        assert [path.suffix for path in shard_files] == [".pkl", ".pkl"]

    def test_overwrite_same_key(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(KEY, "old")
        cache.put(KEY, "new")
        assert cache.get(KEY) == "new"
        assert cache.stats().entries == 1

    def test_hit_rate(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.get(KEY)
        cache.put(KEY, 1)
        cache.get(KEY)
        assert cache.stats().hit_rate == pytest.approx(0.5)

    def test_unpicklable_payload_degrades_to_noop(self, tmp_path):
        cache = make_cache(tmp_path)
        assert not cache.put(KEY, lambda: None)  # local lambdas cannot pickle
        assert cache.get(KEY) is None
        assert cache.stats().writes == 0


class TestInvalidation:
    """Stale entries are invisible, never served."""

    def test_fingerprint_mismatch_is_a_miss(self, tmp_path):
        make_cache(tmp_path, fingerprint="old").put(KEY, "stale")
        fresh = make_cache(tmp_path, fingerprint="new")
        assert fresh.get(KEY) is None
        assert fresh.stats().corrupt == 0  # address differs: a clean miss

    def test_version_bump_is_a_miss(self, tmp_path):
        make_cache(tmp_path, version=CACHE_FORMAT_VERSION).put(KEY, "v1")
        bumped = make_cache(tmp_path, version=CACHE_FORMAT_VERSION + 1)
        assert bumped.get(KEY) is None

    def test_namespace_isolation(self, tmp_path):
        make_cache(tmp_path, namespace="sim").put(KEY, "sim result")
        assert make_cache(tmp_path, namespace="pdnspot").get(KEY) is None

    def test_parameters_fingerprint_tracks_any_field(self):
        base = default_parameters()
        assert parameters_fingerprint(base) == parameters_fingerprint(
            default_parameters()
        )
        perturbed = base.with_overrides(ivr_tolerance_band_v=0.021)
        assert parameters_fingerprint(base) != parameters_fingerprint(perturbed)

    def test_version_mismatched_header_treated_as_corrupt_miss(self, tmp_path):
        """A crafted entry whose *header* disagrees is detected and healed."""
        cache = make_cache(tmp_path)
        cache.put(KEY, "good")
        path = cache.entry_path(KEY)
        entry = pickle.loads(path.read_bytes())
        entry["format"] = CACHE_FORMAT_VERSION + 7
        path.write_bytes(pickle.dumps(entry))
        assert cache.get(KEY) is None
        assert cache.stats().corrupt == 1
        assert not path.exists()  # self-healed: bad entry removed


class TestCorruption:
    """Corrupted entries are logged misses, never exceptions (satellite)."""

    @pytest.mark.parametrize(
        "blob",
        [
            b"",  # empty file
            b"garbage bytes that are not a pickle at all",
            pickle.dumps(["not", "a", "dict"]),  # valid pickle, wrong shape
            pickle.dumps({"format": CACHE_FORMAT_VERSION}),  # missing fields
        ],
        ids=["empty", "garbage", "wrong-shape", "missing-fields"],
    )
    def test_garbage_entry_is_a_miss(self, tmp_path, blob):
        cache = make_cache(tmp_path)
        cache.put(KEY, "good")
        cache.entry_path(KEY).write_bytes(blob)
        assert cache.get(KEY) is None
        stats = cache.stats()
        assert stats.corrupt == 1
        assert stats.misses == 1

    def test_truncated_entry_is_a_miss_and_recompute_heals(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(KEY, {"value": 7})
        path = cache.entry_path(KEY)
        path.write_bytes(path.read_bytes()[:-10])  # simulate a torn write
        assert cache.get(KEY) is None  # never raises
        cache.put(KEY, {"value": 7})  # the caller recomputes and re-stores
        assert cache.get(KEY) == {"value": 7}

    def test_unreadable_root_degrades_to_noop(self, tmp_path):
        cache = DiskCache(tmp_path / "file-not-dir", namespace="n", fingerprint="f")
        (tmp_path / "file-not-dir").write_text("i am a file")
        assert not cache.put(KEY, 1)  # cannot mkdir below a file
        assert cache.get(KEY) is None


class TestPrune:
    def test_prune_all(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(KEY, 1)
        cache.put(OTHER_KEY, 2)
        assert cache.prune() == 2
        assert cache.stats().entries == 0
        assert cache.get(KEY) is None

    def test_prune_older_than_keeps_fresh_entries(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(KEY, 1)
        assert cache.prune(older_than_s=3600.0) == 0
        assert cache.get(KEY) == 1

    def test_prune_missing_directory_is_zero(self, tmp_path):
        assert make_cache(tmp_path).prune() == 0

    def test_prune_never_touches_foreign_files(self, tmp_path):
        """A mistyped --cache-dir must not delete the user's files."""
        cache = make_cache(tmp_path)
        cache.put(KEY, 1)
        root = cache.root
        # Foreign files at every level a buggy prune could reach.
        (root / "test" / "notes.txt").write_text("keep me")
        (root / "test" / "ab").mkdir(exist_ok=True)
        (root / "test" / "ab" / "data.json").write_text("keep me too")
        shard = next(path for path in (root / "test").iterdir() if len(path.name) == 2 and path.is_dir() and list(path.glob("*.pkl")))
        (shard / "report.csv").write_text("also keep")
        assert prune_cache_dir(root) == 1  # only the one real entry
        assert (root / "test" / "notes.txt").exists()
        assert (root / "test" / "ab" / "data.json").exists()
        assert (shard / "report.csv").exists()

    def test_directory_helpers(self, tmp_path):
        root = tmp_path / "cache"
        DiskCache(root, namespace="a", fingerprint="f").put(KEY, 1)
        DiskCache(root, namespace="b", fingerprint="f").put(KEY, 2)
        summary = cache_dir_summary(root)
        assert set(summary) == {"a", "b"}
        assert summary["a"][0] == 1 and summary["a"][1] > 0
        assert prune_cache_dir(root) == 2
        assert cache_dir_summary(root) == {"a": (0, 0), "b": (0, 0)}
        assert prune_cache_dir(tmp_path / "absent") == 0

    def test_summary_ignores_foreign_directories(self, tmp_path):
        """`repro cache stats` on a mistyped root must not render the
        user's unrelated folders as cache namespaces."""
        root = tmp_path / "cache"
        DiskCache(root, namespace="real", fingerprint="f").put(KEY, 1)
        (root / "photos").mkdir()
        (root / "photos" / "holiday.jpg").write_text("not a cache")
        summary = cache_dir_summary(root)
        assert set(summary) == {"real"}


class TestCanonicalKey:
    def test_dict_order_does_not_matter(self):
        assert canonical_key({"a": 1, "b": 2}) == canonical_key({"b": 2, "a": 1})

    def test_container_types_are_distinguished(self):
        values = [(1, 2), [1, 2], {1: 2}, "(ated)"]
        encodings = {canonical_key(value) for value in values}
        assert len(encodings) == len(values)

    def test_engine_shaped_keys_are_stable(self):
        from repro.analysis.pdnspot import PdnSpot
        from repro.pdn.base import OperatingConditions
        from repro.power.domains import WorkloadType

        def build_key():
            conditions = OperatingConditions.for_active_workload(
                4.0, 0.56, WorkloadType.CPU_MULTI_THREAD
            )
            return PdnSpot().cache_key("IVR", conditions, ())

        assert canonical_key(build_key()) == canonical_key(build_key())


class TestResolve:
    def test_none_stays_none(self):
        assert resolve_disk_cache(None, "n", "f") is None

    def test_tilde_root_expands_to_home(self, monkeypatch, tmp_path):
        """The docs' `~/.cache/...` spelling must not create a literal ./~."""
        monkeypatch.setenv("HOME", str(tmp_path))
        cache = DiskCache("~/cache", namespace="n", fingerprint="f")
        assert cache.root == tmp_path / "cache"
        cache.put(KEY, 1)
        from repro.cache import cache_dir_summary

        assert cache_dir_summary("~/cache") == {"n": cache_dir_summary(cache.root)["n"]}
        assert prune_cache_dir("~/cache") == 1

    def test_path_builds_store(self, tmp_path):
        cache = resolve_disk_cache(tmp_path, "n", "f")
        assert isinstance(cache, DiskCache)
        assert cache.namespace == "n" and cache.fingerprint == "f"

    def test_instance_with_explicit_fingerprint_passes_through(self, tmp_path):
        cache = make_cache(tmp_path)  # fingerprint="fp": an expert override
        assert resolve_disk_cache(cache, "other", "other") is cache

    def test_instance_without_fingerprint_is_bound_in_place(self, tmp_path):
        """An unfingerprinted prebuilt store must not dodge invalidation --
        and the caller's instance must keep recording traffic."""
        bare = DiskCache(tmp_path / "cache", namespace="mine")
        resolved = resolve_disk_cache(bare, "ignored", "engine-fp")
        assert resolved is bare  # same object: stats() stays meaningful
        assert resolved.fingerprint == "engine-fp"
        assert resolved.namespace == "mine"  # the caller's namespace survives

    def test_explicit_empty_fingerprint_survives_bind(self, tmp_path):
        """fingerprint=\"\" is the expert 'no fingerprinting' choice, not unset."""
        store = DiskCache(tmp_path / "cache", fingerprint="")
        resolved = resolve_disk_cache(store, "pdnspot", "engine-fp")
        assert resolved is store
        assert resolved.fingerprint == ""

    def test_fully_bare_instance_adopts_engine_namespace(self, tmp_path):
        bare = DiskCache(tmp_path / "cache")
        resolved = resolve_disk_cache(bare, "sim", "engine-fp")
        assert resolved is bare
        assert resolved.namespace == "sim"
        assert resolved.fingerprint == "engine-fp"

    def test_bare_instance_rejects_conflicting_second_engine(self, tmp_path):
        bare = DiskCache(tmp_path / "cache")
        resolve_disk_cache(bare, "pdnspot", "fp-one")
        # Re-binding with the same identity is idempotent ...
        assert resolve_disk_cache(bare, "pdnspot", "fp-one") is bare
        # ... but a conflicting engine identity must not silently share.
        with pytest.raises(ConfigurationError, match="conflicting"):
            resolve_disk_cache(bare, "pdnspot", "fp-two")
        with pytest.raises(ConfigurationError, match="conflicting"):
            resolve_disk_cache(bare, "sim", "fp-one")
