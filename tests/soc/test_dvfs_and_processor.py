"""Tests for the DVFS curves and the processor model (Table 1)."""

import pytest

from repro.power.domains import DomainKind, WorkloadType
from repro.power.power_states import PackageCState
from repro.soc.dvfs import (
    CORE_VF_CURVE,
    GFX_VF_CURVE,
    compute_voltage_for_tdp,
    gfx_voltage_for_tdp,
    sustained_core_frequency_ghz,
    sustained_gfx_frequency_ghz,
)
from repro.soc.processor import Processor, ProcessorConfiguration
from repro.util.errors import ConfigurationError, ModelDomainError


class TestVoltageFrequencyCurves:
    def test_core_curve_spans_table1_range(self):
        assert CORE_VF_CURVE.min_frequency_ghz == pytest.approx(0.8)
        assert CORE_VF_CURVE.max_frequency_ghz == pytest.approx(4.0)

    def test_gfx_curve_spans_table1_range(self):
        assert GFX_VF_CURVE.min_frequency_ghz == pytest.approx(0.1)
        assert GFX_VF_CURVE.max_frequency_ghz == pytest.approx(1.2)

    def test_voltage_monotone_in_frequency(self):
        voltages = [CORE_VF_CURVE.voltage_for_frequency(f / 10.0) for f in range(8, 41)]
        assert voltages == sorted(voltages)

    def test_voltage_clamped_at_curve_ends(self):
        assert CORE_VF_CURVE.voltage_for_frequency(0.1) == CORE_VF_CURVE.min_voltage_v
        assert CORE_VF_CURVE.voltage_for_frequency(10.0) == CORE_VF_CURVE.max_voltage_v

    def test_frequency_for_voltage_inverts_voltage_for_frequency(self):
        for frequency in (1.0, 2.0, 3.0):
            voltage = CORE_VF_CURVE.voltage_for_frequency(frequency)
            assert CORE_VF_CURVE.frequency_for_voltage(voltage) == pytest.approx(frequency, rel=1e-6)


class TestSustainedOperatingPoints:
    def test_4w_sustains_the_paper_frequency(self):
        # Sec. 7.1: the 4 W SPEC evaluation runs at the maximum allowed 0.9 GHz.
        assert sustained_core_frequency_ghz(4.0) == pytest.approx(0.9)

    def test_sustained_frequency_monotone_in_tdp(self):
        tdps = (4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0)
        core = [sustained_core_frequency_ghz(t) for t in tdps]
        gfx = [sustained_gfx_frequency_ghz(t) for t in tdps]
        assert core == sorted(core)
        assert gfx == sorted(gfx)

    def test_turbo_headroom_exists_at_every_tdp(self):
        for tdp in (4.0, 18.0, 50.0):
            assert sustained_core_frequency_ghz(tdp) < CORE_VF_CURVE.max_frequency_ghz
            assert sustained_gfx_frequency_ghz(tdp) < GFX_VF_CURVE.max_frequency_ghz

    def test_compute_voltage_within_operational_range(self):
        for tdp in (4.0, 10.0, 25.0, 50.0):
            assert 0.55 <= compute_voltage_for_tdp(tdp) <= 1.1

    def test_gfx_voltage_depends_on_workload_type(self):
        graphics = gfx_voltage_for_tdp(50.0, WorkloadType.GRAPHICS)
        cpu = gfx_voltage_for_tdp(50.0, WorkloadType.CPU_MULTI_THREAD)
        assert graphics > cpu


class TestProcessor:
    def test_default_configuration(self):
        processor = Processor()
        assert processor.configuration.core_count == 2
        assert processor.tdp_w == pytest.approx(15.0)

    def test_loads_cover_all_domains(self):
        processor = Processor(ProcessorConfiguration(tdp_w=18.0))
        loads = processor.loads_for_workload(WorkloadType.CPU_MULTI_THREAD)
        assert {load.kind for load in loads} == set(DomainKind)

    def test_cpu_workload_keeps_graphics_near_idle(self):
        processor = Processor(ProcessorConfiguration(tdp_w=18.0))
        loads = {load.kind: load for load in processor.loads_for_workload(WorkloadType.CPU_MULTI_THREAD)}
        assert loads[DomainKind.GFX].nominal_power_w < loads[DomainKind.CORE0].nominal_power_w

    def test_graphics_workload_shifts_budget_to_gfx(self):
        processor = Processor(ProcessorConfiguration(tdp_w=18.0))
        loads = {load.kind: load for load in processor.loads_for_workload(WorkloadType.GRAPHICS)}
        assert loads[DomainKind.GFX].nominal_power_w > loads[DomainKind.CORE0].nominal_power_w

    def test_nominal_power_scales_with_tdp(self):
        small = Processor(ProcessorConfiguration(tdp_w=4.0)).nominal_power_w(
            WorkloadType.CPU_MULTI_THREAD
        )
        large = Processor(ProcessorConfiguration(tdp_w=50.0)).nominal_power_w(
            WorkloadType.CPU_MULTI_THREAD
        )
        assert large > 5.0 * small

    def test_power_state_loads_delegate_to_profiles(self):
        processor = Processor()
        loads = processor.loads_for_power_state(PackageCState.C8)
        active = [load for load in loads if load.active]
        assert {load.kind for load in active} == {DomainKind.SA, DomainKind.IO}

    def test_c0_power_state_loads_rejected(self):
        with pytest.raises(ModelDomainError):
            Processor().loads_for_power_state(PackageCState.C0)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessorConfiguration(core_count=0)
