"""Tests for the activity sensors, the PMU and the Turbo model."""

import pytest

from repro.power.domains import DomainKind, WorkloadType
from repro.power.power_states import PackageCState
from repro.soc.activity_sensors import ActivityEvent, ActivityMonitor, ActivitySensor
from repro.soc.pmu import (
    PACKAGE_C6_ENTRY_LATENCY_S,
    PACKAGE_C6_EXIT_LATENCY_S,
    PowerManagementUnit,
)
from repro.soc.turbo import TurboBoostModel
from repro.util.errors import ConfigurationError, ModelDomainError


class TestActivitySensors:
    def test_reading_normalised_against_power_virus(self):
        sensor = ActivitySensor(domain=DomainKind.CORE0, reference_events_per_interval=100.0)
        reading = sensor.reading({ActivityEvent.SCALAR_INSTRUCTION: 100.0})
        assert reading == pytest.approx(0.4)

    def test_reading_saturates_at_one(self):
        sensor = ActivitySensor(domain=DomainKind.CORE0, reference_events_per_interval=10.0)
        assert sensor.reading({ActivityEvent.VECTOR_512_INSTRUCTION: 1000.0}) == 1.0

    def test_wider_vectors_weigh_more(self):
        sensor = ActivitySensor(domain=DomainKind.CORE0)
        narrow = sensor.reading({ActivityEvent.VECTOR_128_INSTRUCTION: 100.0})
        wide = sensor.reading({ActivityEvent.VECTOR_512_INSTRUCTION: 100.0})
        assert wide > narrow

    def test_monitor_power_weighted_aggregation(self):
        monitor = ActivityMonitor()
        monitor.record(DomainKind.CORE0, 1.0)
        monitor.record(DomainKind.GFX, 0.0)
        ar = monitor.package_application_ratio(
            {DomainKind.CORE0: 3.0, DomainKind.GFX: 1.0}
        )
        assert ar == pytest.approx(0.75)

    def test_monitor_zero_power_is_zero_ar(self):
        monitor = ActivityMonitor()
        assert monitor.package_application_ratio({DomainKind.CORE0: 0.0}) == 0.0

    def test_duplicate_sensor_rejected(self):
        with pytest.raises(ConfigurationError):
            ActivityMonitor(
                [ActivitySensor(domain=DomainKind.CORE0), ActivitySensor(domain=DomainKind.CORE0)]
            )


class TestPmu:
    def _active_pmu(self, graphics=False):
        pmu = PowerManagementUnit(tdp_w=18.0)
        pmu.update_domain(DomainKind.CORE0, True, 3.0, 0.6)
        pmu.update_domain(DomainKind.CORE1, True, 3.0, 0.6)
        if graphics:
            pmu.update_domain(DomainKind.GFX, True, 5.0, 0.7)
        return pmu

    def test_workload_classification_multi_thread(self):
        assert self._active_pmu().classify_workload() is WorkloadType.CPU_MULTI_THREAD

    def test_workload_classification_graphics_takes_priority(self):
        assert self._active_pmu(graphics=True).classify_workload() is WorkloadType.GRAPHICS

    def test_workload_classification_single_thread_and_idle(self):
        pmu = PowerManagementUnit(tdp_w=18.0)
        assert pmu.classify_workload() is WorkloadType.IDLE
        pmu.update_domain(DomainKind.CORE0, True, 3.0, 0.6)
        assert pmu.classify_workload() is WorkloadType.CPU_SINGLE_THREAD

    def test_telemetry_contains_algorithm_inputs(self):
        pmu = self._active_pmu()
        telemetry = pmu.telemetry()
        assert telemetry.tdp_w == pytest.approx(18.0)
        assert telemetry.workload_type is WorkloadType.CPU_MULTI_THREAD
        assert 0.0 < telemetry.application_ratio <= 1.0
        assert telemetry.power_state is PackageCState.C0

    def test_c6_entry_and_exit_latencies(self):
        pmu = PowerManagementUnit(tdp_w=18.0)
        entry = pmu.enter_power_state(PackageCState.C6)
        assert entry == pytest.approx(PACKAGE_C6_ENTRY_LATENCY_S)
        exit_latency = pmu.enter_power_state(PackageCState.C0)
        assert exit_latency == pytest.approx(PACKAGE_C6_EXIT_LATENCY_S)
        assert pmu.time_s == pytest.approx(entry + exit_latency)

    def test_same_state_transition_is_free(self):
        pmu = PowerManagementUnit(tdp_w=18.0)
        assert pmu.enter_power_state(PackageCState.C0) == 0.0

    def test_ctdp_reconfiguration(self):
        pmu = PowerManagementUnit(tdp_w=18.0)
        pmu.configure_tdp(25.0)
        assert pmu.tdp_w == pytest.approx(25.0)

    def test_require_idle_compute_guard(self):
        pmu = self._active_pmu()
        with pytest.raises(ModelDomainError):
            pmu.require_idle_compute()
        pmu.enter_power_state(PackageCState.C6)
        pmu.require_idle_compute()  # no exception once in package C6


class TestTurbo:
    def test_credit_accumulates_below_tdp(self):
        turbo = TurboBoostModel.for_tdp(15.0)
        turbo.accumulate(package_power_w=10.0, interval_s=1.0)
        assert turbo.credit_j == pytest.approx(5.0)

    def test_credit_capped_at_capacity(self):
        turbo = TurboBoostModel.for_tdp(15.0)
        turbo.accumulate(package_power_w=0.0, interval_s=1000.0)
        assert turbo.credit_j == pytest.approx(turbo.credit_capacity_j)

    def test_turbo_power_available_with_credit(self):
        turbo = TurboBoostModel.for_tdp(15.0)
        assert turbo.available_power_w() == pytest.approx(15.0)
        turbo.accumulate(10.0, 1.0)
        assert turbo.available_power_w() == pytest.approx(turbo.turbo_power_w)

    def test_turbo_duration_finite_above_tdp(self):
        turbo = TurboBoostModel.for_tdp(15.0)
        turbo.accumulate(10.0, 2.0)
        assert turbo.turbo_duration_s(20.0) == pytest.approx(2.0)
        assert turbo.turbo_duration_s(10.0) == float("inf")

    def test_invalid_turbo_limit_rejected(self):
        with pytest.raises(ModelDomainError):
            TurboBoostModel(tdp_w=15.0, turbo_power_w=10.0)
