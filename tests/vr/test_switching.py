"""Tests for the switching (buck) regulator model."""

import pytest

from repro.util.errors import ConfigurationError, UnsupportedOperatingPointError
from repro.vr.base import RegulatorOperatingPoint
from repro.vr.efficiency_curves import default_board_vr, default_input_vr
from repro.vr.switching import (
    PhaseConfiguration,
    SwitchingRegulator,
    SwitchingRegulatorDesign,
    VRPowerState,
)


@pytest.fixture
def board_vr():
    return default_board_vr("V_TEST", iccmax_a=20.0)


def _point(vout, iout, vin=7.2):
    return RegulatorOperatingPoint(
        input_voltage_v=vin, output_voltage_v=vout, output_current_a=iout
    )


class TestEfficiencySurface:
    def test_efficiency_within_physical_bounds(self, board_vr):
        for iout in (0.1, 0.5, 1.0, 5.0, 10.0):
            for vout in (0.6, 1.0, 1.8):
                eta = board_vr.efficiency(_point(vout, iout))
                assert 0.0 < eta <= 0.93

    def test_efficiency_improves_with_current_at_light_load(self, board_vr):
        light = board_vr.efficiency(_point(0.6, 0.1))
        heavy = board_vr.efficiency(_point(0.6, 2.0))
        assert heavy > light

    def test_higher_output_voltage_is_more_efficient(self, board_vr):
        low_vout = board_vr.efficiency(_point(0.6, 2.0))
        high_vout = board_vr.efficiency(_point(1.8, 2.0))
        assert high_vout > low_vout

    def test_mid_load_efficiency_in_published_range(self, board_vr):
        # Table 2: off-chip VR efficiency 72-93 % over the operational range.
        for iout in (1.0, 2.0, 5.0, 10.0):
            for vout in (0.6, 0.7, 1.0, 1.8):
                assert 0.70 <= board_vr.efficiency(_point(vout, iout)) <= 0.93

    def test_ps1_beats_ps0_at_light_load_and_loses_at_heavy_load(self, board_vr):
        point_light = _point(0.6, 0.1)
        point_heavy = _point(0.6, 8.0)
        board_vr.set_power_state(VRPowerState.PS0)
        ps0_light = board_vr.efficiency(point_light)
        ps0_heavy = board_vr.efficiency(point_heavy)
        board_vr.set_power_state(VRPowerState.PS1)
        ps1_light = board_vr.efficiency(point_light)
        ps1_heavy = board_vr.efficiency(point_heavy)
        assert ps1_light > ps0_light
        assert ps1_heavy < ps0_heavy

    def test_zero_load_has_zero_efficiency(self, board_vr):
        assert board_vr.efficiency(_point(0.6, 0.0)) == 0.0


class TestPowerAccounting:
    def test_input_power_exceeds_output_power(self, board_vr):
        point = _point(1.0, 3.0)
        assert board_vr.input_power_w(point) > point.output_power_w

    def test_loss_matches_input_minus_output(self, board_vr):
        point = _point(1.0, 3.0)
        loss = board_vr.loss_w(point)
        assert loss == pytest.approx(board_vr.input_power_w(point) - point.output_power_w)

    def test_loss_breakdown_sums_to_total_loss(self, board_vr):
        point = _point(0.7, 4.0)
        breakdown = board_vr.loss_breakdown_w(point)
        eta = board_vr.efficiency(point)
        # When the efficiency cap is not hit the breakdown must equal the loss.
        if eta < board_vr.design.max_efficiency:
            assert sum(breakdown.values()) == pytest.approx(board_vr.loss_w(point))

    def test_idle_power_is_quiescent_power(self, board_vr):
        board_vr.set_power_state(VRPowerState.PS0)
        ps0_idle = board_vr.idle_power_w()
        board_vr.set_power_state(VRPowerState.PS4)
        assert board_vr.idle_power_w() < ps0_idle


class TestOperatingLimits:
    def test_exceeding_iccmax_raises(self, board_vr):
        with pytest.raises(UnsupportedOperatingPointError):
            board_vr.efficiency(_point(0.6, board_vr.iccmax_a + 1.0))

    def test_insufficient_headroom_raises(self, board_vr):
        with pytest.raises(UnsupportedOperatingPointError):
            board_vr.efficiency(_point(7.0, 1.0, vin=7.2))

    def test_unknown_power_state_raises(self, board_vr):
        with pytest.raises(ConfigurationError):
            board_vr.set_power_state(VRPowerState.PS2)

    def test_best_power_state_prefers_light_state_at_light_load(self, board_vr):
        assert board_vr.best_power_state_for(_point(0.6, 0.05)) != VRPowerState.PS0
        assert board_vr.best_power_state_for(_point(0.6, 9.0)) == VRPowerState.PS0


class TestDesignValidation:
    def test_design_requires_ps0(self):
        with pytest.raises(ConfigurationError):
            SwitchingRegulatorDesign(
                name="bad",
                iccmax_a=10.0,
                phase_configs={
                    VRPowerState.PS1: PhaseConfiguration(0.01, 0.001, 0.001, 0.001)
                },
            )

    def test_design_requires_phase_configs(self):
        with pytest.raises(ConfigurationError):
            SwitchingRegulatorDesign(name="bad", iccmax_a=10.0, phase_configs={})

    def test_regulator_rejects_missing_initial_state(self):
        design = default_input_vr("V_IN").design
        with pytest.raises(ConfigurationError):
            SwitchingRegulator(design, power_state=VRPowerState.PS2)

    def test_input_vr_supports_deep_power_states(self):
        regulator = default_input_vr("V_IN")
        for state in (VRPowerState.PS0, VRPowerState.PS1, VRPowerState.PS3, VRPowerState.PS4):
            regulator.set_power_state(state)
            assert regulator.power_state is state
