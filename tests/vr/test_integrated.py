"""Tests for the integrated (on-chip) voltage-regulator model."""

import pytest

from repro.util.errors import UnsupportedOperatingPointError
from repro.vr.base import RegulatorOperatingPoint
from repro.vr.efficiency_curves import default_ivr
from repro.vr.integrated import IntegratedVoltageRegulator, IntegratedVrDesign


def _point(vout, iout, vin=1.8):
    return RegulatorOperatingPoint(
        input_voltage_v=vin, output_voltage_v=vout, output_current_a=iout
    )


class TestEfficiencySurface:
    def test_heavy_load_efficiency_within_table2_range(self):
        ivr = default_ivr("ivr", iccmax_a=30.0)
        for iout in (3.0, 10.0, 20.0):
            for vout in (0.7, 0.9, 1.1):
                assert 0.81 <= ivr.efficiency(_point(vout, iout)) <= 0.88

    def test_light_load_penalty(self):
        ivr = default_ivr("ivr")
        light = ivr.efficiency(_point(1.0, 0.2))
        heavy = ivr.efficiency(_point(1.0, 5.0))
        assert heavy > light

    def test_lower_output_voltage_is_less_efficient(self):
        ivr = default_ivr("ivr")
        assert ivr.efficiency(_point(0.6, 5.0)) < ivr.efficiency(_point(1.1, 5.0))

    def test_efficiency_never_exceeds_peak(self):
        ivr = default_ivr("ivr")
        peak = ivr.design.peak_efficiency
        for iout in (0.1, 1.0, 10.0, 24.0):
            assert ivr.efficiency(_point(1.1, iout)) <= peak

    def test_zero_load_is_zero_efficiency(self):
        ivr = default_ivr("ivr")
        assert ivr.efficiency(_point(1.0, 0.0)) == 0.0


class TestOperatingLimits:
    def test_exceeding_iccmax_raises(self):
        ivr = default_ivr("ivr", iccmax_a=10.0)
        with pytest.raises(UnsupportedOperatingPointError):
            ivr.efficiency(_point(1.0, 11.0))

    def test_output_above_input_raises(self):
        ivr = default_ivr("ivr")
        with pytest.raises(UnsupportedOperatingPointError):
            ivr.efficiency(_point(1.9, 1.0, vin=1.8))

    def test_idle_power_is_quiescent(self):
        design = IntegratedVrDesign(name="ivr", iccmax_a=10.0, quiescent_w=0.02)
        ivr = IntegratedVoltageRegulator(design)
        assert ivr.idle_power_w() == pytest.approx(0.02)


class TestPowerAccounting:
    def test_input_power_follows_efficiency(self):
        ivr = default_ivr("ivr")
        point = _point(0.9, 6.0)
        eta = ivr.efficiency(point)
        assert ivr.input_power_w(point) == pytest.approx(point.output_power_w / eta)

    def test_two_stage_conversion_is_less_efficient_than_either_stage(self):
        # The core of Observation 1: IVR efficiency times board-VR efficiency
        # is meaningfully below the single-stage board-VR efficiency.
        from repro.vr.efficiency_curves import default_board_vr

        ivr = default_ivr("ivr")
        board = default_board_vr("board", iccmax_a=20.0)
        ivr_eta = ivr.efficiency(_point(0.65, 1.0))
        board_eta = board.efficiency(
            RegulatorOperatingPoint(7.2, 1.8, 1.0 * 0.65 / 1.8 / ivr_eta)
        )
        assert ivr_eta * board_eta < board.efficiency(RegulatorOperatingPoint(7.2, 0.65, 1.0))
