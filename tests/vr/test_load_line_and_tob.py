"""Tests for the load-line and tolerance-band models (Sec. 2.4)."""

import pytest

from repro.util.errors import ModelDomainError
from repro.vr.load_line import LoadLine
from repro.vr.tolerance_band import ToleranceBand


class TestLoadLine:
    def test_no_impedance_means_no_guardband(self):
        result = LoadLine(0.0).apply(1.0, 10.0, 0.5)
        assert result.rail_voltage_v == 1.0
        assert result.rail_power_w == 10.0
        assert result.conduction_loss_w == 0.0

    def test_equation_3_and_4(self):
        # V_LL = V + (Ppeak / V) * R ; P_LL = V_LL * (P / V)
        load_line = LoadLine(2.5e-3)
        result = load_line.apply(rail_voltage_v=1.0, rail_power_w=10.0, application_ratio=0.5)
        peak_current = (10.0 / 0.5) / 1.0
        expected_voltage = 1.0 + 2.5e-3 * peak_current
        assert result.rail_voltage_v == pytest.approx(expected_voltage)
        assert result.rail_power_w == pytest.approx(expected_voltage * 10.0)
        assert result.conduction_loss_w == pytest.approx(expected_voltage * 10.0 - 10.0)

    def test_lower_application_ratio_needs_more_guardband(self):
        load_line = LoadLine(2.5e-3)
        low_ar = load_line.apply(1.0, 10.0, 0.4)
        high_ar = load_line.apply(1.0, 10.0, 0.9)
        assert low_ar.conduction_loss_w > high_ar.conduction_loss_w

    def test_zero_power_rail(self):
        result = LoadLine(2.5e-3).apply(1.0, 0.0, 0.5)
        assert result.rail_power_w == 0.0
        assert result.rail_current_a == 0.0

    def test_invalid_application_ratio_raises(self):
        with pytest.raises(ModelDomainError):
            LoadLine(1e-3).apply(1.0, 5.0, 0.0)
        with pytest.raises(ModelDomainError):
            LoadLine(1e-3).apply(1.0, 5.0, 1.5)

    def test_scaled_load_line(self):
        base = LoadLine(1e-3)
        scaled = base.scaled(1.12)
        assert scaled.impedance_ohm == pytest.approx(1.12e-3)
        assert scaled.apply(1.0, 10.0, 0.5).conduction_loss_w > base.apply(
            1.0, 10.0, 0.5
        ).conduction_loss_w

    def test_voltage_droop(self):
        assert LoadLine(2e-3).voltage_droop_v(10.0) == pytest.approx(0.02)


class TestToleranceBand:
    def test_total_is_sum_of_components(self):
        tob = ToleranceBand(controller_v=0.010, current_sense_v=0.006, ripple_v=0.004)
        assert tob.total_v == pytest.approx(0.020)

    def test_from_total_preserves_total(self):
        tob = ToleranceBand.from_total(0.018)
        assert tob.total_v == pytest.approx(0.018)

    def test_scaled(self):
        tob = ToleranceBand.from_total(0.020).scaled(0.5)
        assert tob.total_v == pytest.approx(0.010)

    def test_table2_ranges(self):
        # IVR 18-22 mV, MBVR 18-20 mV, LDO 16-18 mV: the defaults used by the
        # parameter set must sit inside those ranges.
        from repro.power.parameters import default_parameters

        params = default_parameters()
        assert 0.018 <= params.ivr_tolerance_band_v <= 0.022
        assert 0.018 <= params.mbvr_tolerance_band_v <= 0.020
        assert 0.016 <= params.ldo_tolerance_band_v <= 0.018
