"""Tests for the on-chip power-gate model."""

import pytest

from repro.vr.base import RegulatorOperatingPoint
from repro.vr.power_gate import PowerGate


def _point(vout, iout):
    return RegulatorOperatingPoint(
        input_voltage_v=vout + 0.05, output_voltage_v=vout, output_current_a=iout
    )


class TestVoltageDrop:
    def test_drop_scales_with_current_and_impedance(self):
        gate = PowerGate("pg", impedance_ohm=0.002)
        assert gate.voltage_drop_v(5.0) == pytest.approx(0.010)
        assert gate.voltage_drop_v(10.0) == pytest.approx(0.020)

    def test_open_gate_has_no_drop(self):
        gate = PowerGate("pg", impedance_ohm=0.002, closed=False)
        assert gate.voltage_drop_v(5.0) == 0.0


class TestEfficiency:
    def test_closed_gate_efficiency_below_unity(self):
        gate = PowerGate("pg", impedance_ohm=0.002)
        eta = gate.efficiency(_point(0.6, 10.0))
        assert 0.9 < eta < 1.0

    def test_lower_impedance_is_more_efficient(self):
        low = PowerGate("pg", impedance_ohm=0.001).efficiency(_point(0.6, 10.0))
        high = PowerGate("pg", impedance_ohm=0.002).efficiency(_point(0.6, 10.0))
        assert low > high

    def test_open_gate_blocks_power(self):
        gate = PowerGate("pg", impedance_ohm=0.002, closed=False)
        assert gate.efficiency(_point(0.6, 10.0)) == 0.0
        assert gate.input_power_w(_point(0.6, 10.0)) == 0.0


class TestStateTransitions:
    def test_open_and_close(self):
        gate = PowerGate("pg")
        assert gate.closed
        gate.open()
        assert not gate.closed
        gate.close()
        assert gate.closed

    def test_input_power_exceeds_output_power_when_closed(self):
        gate = PowerGate("pg", impedance_ohm=0.0015)
        point = _point(0.6, 8.0)
        assert gate.input_power_w(point) > point.output_power_w
