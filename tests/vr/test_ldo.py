"""Tests for the low-dropout regulator model (Eq. 10)."""

import pytest

from repro.util.errors import UnsupportedOperatingPointError
from repro.vr.base import RegulatorOperatingPoint
from repro.vr.efficiency_curves import default_ldo
from repro.vr.ldo import LdoMode, LowDropoutRegulator


def _point(vin, vout, iout):
    return RegulatorOperatingPoint(
        input_voltage_v=vin, output_voltage_v=vout, output_current_a=iout
    )


class TestRegulationMode:
    def test_efficiency_matches_equation_10(self):
        ldo = default_ldo("ldo")
        point = _point(1.0, 0.5, 2.0)
        assert ldo.efficiency(point) == pytest.approx(0.5 * 0.991)

    def test_efficiency_near_unity_when_voltages_match(self):
        ldo = default_ldo("ldo")
        point = _point(0.905, 0.9, 2.0)
        # Within the dropout voltage the natural mode is bypass, but in forced
        # regulation the efficiency is still ~Vout/Vin.
        assert ldo.efficiency(point) == pytest.approx((0.9 / 0.905) * 0.991, rel=1e-6)

    def test_graphics_scenario_core_ldo_is_inefficient(self):
        # Observation 2: a 0.5 V core behind a 0.9 V graphics-driven rail has
        # ~55 % conversion efficiency.
        ldo = default_ldo("ldo")
        point = _point(0.9, 0.5, 3.0)
        assert ldo.efficiency(point) == pytest.approx(0.55, abs=0.01)

    def test_step_up_raises(self):
        ldo = default_ldo("ldo")
        with pytest.raises(UnsupportedOperatingPointError):
            ldo.efficiency(_point(0.6, 0.9, 1.0))


class TestBypassAndPowerGateModes:
    def test_mode_for_selects_bypass_near_dropout(self):
        ldo = default_ldo("ldo")
        assert ldo.mode_for(_point(0.61, 0.60, 1.0)) is LdoMode.BYPASS

    def test_mode_for_selects_power_gate_with_no_load(self):
        ldo = default_ldo("ldo")
        assert ldo.mode_for(_point(1.0, 0.6, 0.0)) is LdoMode.POWER_GATE

    def test_mode_for_selects_regulation_otherwise(self):
        ldo = default_ldo("ldo")
        assert ldo.mode_for(_point(1.8, 0.6, 1.0)) is LdoMode.REGULATION

    def test_bypass_efficiency_close_to_current_efficiency(self):
        ldo = default_ldo("ldo")
        ldo.set_mode(LdoMode.BYPASS)
        eta = ldo.efficiency(_point(0.9, 0.9, 1.0))
        assert 0.97 < eta <= 0.991

    def test_power_gate_mode_draws_nothing(self):
        ldo = default_ldo("ldo")
        ldo.set_mode(LdoMode.POWER_GATE)
        assert ldo.input_power_w(_point(0.9, 0.6, 1.0)) == 0.0
        assert ldo.efficiency(_point(0.9, 0.6, 1.0)) == 0.0


class TestInputPower:
    def test_input_power_follows_efficiency(self):
        ldo = LowDropoutRegulator("ldo", current_efficiency=0.99)
        point = _point(1.0, 0.8, 5.0)
        expected = point.output_power_w / (0.8 * 0.99)
        assert ldo.input_power_w(point) == pytest.approx(expected)

    def test_zero_load_draws_nothing(self):
        ldo = default_ldo("ldo")
        assert ldo.input_power_w(_point(1.0, 0.8, 0.0)) == 0.0
