"""Protocol validation: schema pointers, defaults, CLI builder parity."""

from __future__ import annotations

import pytest

from repro.power.domains import WorkloadType
from repro.power.power_states import PackageCState
from repro.serve.protocol import (
    ProtocolError,
    parse_optimize_request,
    parse_simulate_request,
    parse_sweep_request,
)
from repro.workloads.scenarios import DEFAULT_SEED


def pointer_of(excinfo) -> str:
    return excinfo.value.pointer


class TestSweepParsing:
    def test_minimal_body(self):
        request = parse_sweep_request({"tdps": [4, 18.0]})
        assert request.tdps == (4.0, 18.0)
        assert request.ars is None
        assert request.allow_partial is False
        assert request.timeout_s is None

    def test_full_body(self):
        request = parse_sweep_request(
            {
                "tdps": [4],
                "ars": [0.4, 0.56],
                "workloads": ["graphics"],
                "power_states": ["C8"],
                "pdns": ["FlexWatts"],
                "timeout_s": 2.5,
                "allow_partial": True,
            }
        )
        assert request.workloads == (WorkloadType.GRAPHICS,)
        assert request.power_states == (PackageCState.C8,)
        assert request.timeout_s == 2.5
        assert request.allow_partial is True

    def test_non_object_body_points_at_body(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_sweep_request([1, 2, 3])
        assert pointer_of(excinfo) == "body"

    def test_missing_tdps_points_at_field(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_sweep_request({})
        assert pointer_of(excinfo) == "body/tdps"

    def test_bad_element_points_at_index(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_sweep_request({"tdps": [4.0, "x", 18.0]})
        assert pointer_of(excinfo) == "body/tdps/1"

    def test_boolean_is_not_a_number(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_sweep_request({"tdps": [True]})
        assert pointer_of(excinfo) == "body/tdps/0"

    def test_unknown_field_is_rejected(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_sweep_request({"tdps": [4.0], "tpds": [18.0]})
        assert pointer_of(excinfo) == "body/tpds"

    def test_unknown_workload_lists_choices(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_sweep_request({"tdps": [4.0], "workloads": ["mining"]})
        assert pointer_of(excinfo) == "body/workloads/0"
        assert "choose from" in str(excinfo.value)

    def test_c0_power_state_is_not_acceptable(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_sweep_request({"tdps": [4.0], "power_states": ["C0"]})
        assert pointer_of(excinfo) == "body/power_states/0"

    def test_non_positive_timeout(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_sweep_request({"tdps": [4.0], "timeout_s": 0})
        assert pointer_of(excinfo) == "body/timeout_s"


class TestSimulateParsing:
    def test_defaults_match_the_cli(self):
        request = parse_simulate_request({})
        assert request.scenarios is None  # all registered scenarios
        assert request.tdps == (18.0,)
        assert request.seed == DEFAULT_SEED

    def test_unknown_scenario_points_at_index(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_simulate_request({"scenarios": ["office_day"]})
        assert pointer_of(excinfo) == "body/scenarios/0"

    def test_seed_must_be_an_integer(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_simulate_request({"seed": 1.5})
        assert pointer_of(excinfo) == "body/seed"


class TestOptimizeParsing:
    def test_defaults(self):
        request = parse_optimize_request({})
        assert request.strategy == "grid"
        assert request.seed == 0
        assert request.budget is None
        assert request.params == ()

    def test_params_axes_round_trip(self):
        request = parse_optimize_request(
            {"params": {"ivr_tolerance_band_v": [0.015, 0.02]}}
        )
        assert request.params == (("ivr_tolerance_band_v", (0.015, 0.02)),)
        space = request.space()
        assert len(space.points()) > 0

    def test_unknown_strategy(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_optimize_request({"strategy": "annealing"})
        assert pointer_of(excinfo) == "body/strategy"

    def test_non_positive_budget(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_optimize_request({"budget": 0})
        assert pointer_of(excinfo) == "body/budget"

    def test_bad_param_value_points_into_the_axis(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_optimize_request(
                {"params": {"ivr_tolerance_band_v": [0.015, "wide"]}}
            )
        assert pointer_of(excinfo) == "body/params/ivr_tolerance_band_v/1"

    def test_unknown_objective(self):
        with pytest.raises(ProtocolError) as excinfo:
            parse_optimize_request({"objectives": ["happiness"]})
        assert pointer_of(excinfo) == "body/objectives/0"


class TestCliBuilderParity:
    """The CLI re-exports the protocol's builders -- the same functions build
    a ``repro sweep`` grid and a ``POST /v1/sweep`` grid, which is what makes
    server responses bit-identical to local runs."""

    def test_builders_are_the_same_objects(self):
        from repro import cli
        from repro.serve import protocol

        assert cli.build_sweep_study is protocol.build_sweep_study
        assert cli.build_simulate_study is protocol.build_simulate_study
        assert cli.build_optimize_space is protocol.build_optimize_space

    def test_request_study_equals_cli_study(self):
        from repro.serve.protocol import build_sweep_study

        request = parse_sweep_request(
            {"tdps": [4, 18], "ars": [0.4], "pdns": ["FlexWatts", "LDO"]}
        )
        assert request.study() == build_sweep_study(
            [4.0, 18.0], [0.4], pdns=["FlexWatts", "LDO"]
        )
