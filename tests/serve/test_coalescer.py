"""Coalescer semantics: single-flight, per-tick batching, canonical order.

The contract under test is the daemon's headline guarantee: concurrent
requests over overlapping grids cost exactly one evaluation per *distinct*
cache key -- keys already in flight are awaited, never recomputed -- and
every caller gets its results back in its own unit order.
"""

from __future__ import annotations

import asyncio
import threading
from collections import Counter
from typing import Optional, Tuple

import pytest

from repro.serve.coalescer import Coalescer


class CountingEngine:
    """A minimal :class:`EvaluationEngine` that counts every real evaluation.

    ``gates[name]`` holds a :class:`threading.Event` an evaluation of that
    PDN name blocks on, so tests can hold a key in flight deterministically.
    """

    def __init__(self):
        self._cache = {}
        self._lock = threading.Lock()
        self.eval_counts = Counter()
        self.gates = {}

    @property
    def cache_enabled(self) -> bool:
        return True

    def cache_key(self, name, point, overrides) -> Tuple[object, ...]:
        return (name, point, overrides)

    def cache_lookup(self, key) -> Optional[object]:
        with self._lock:
            return self._cache.get(key)

    def cache_install(self, key, result):
        with self._lock:
            self._cache[key] = result
            return result

    def evaluate_uncached(self, name, point, overrides):
        gate = self.gates.get(name)
        if gate is not None:
            assert gate.wait(timeout=30.0), "test gate never released"
        with self._lock:
            self.eval_counts[(name, point, overrides)] += 1
        return ("result", name, point, overrides)

    def prime_for_execution(self, units) -> None:
        pass

    def worker_config(self):  # pragma: no cover - no process backend in tests
        raise NotImplementedError


def units_for(name: str, points) -> list:
    return [(name, point, ()) for point in points]


class TestSingleFlight:
    def test_overlapping_concurrent_requests_evaluate_each_key_once(self):
        """Two simultaneous requests over overlapping grids: one evaluation
        per distinct key, both requests see correct results in their order."""
        engine = CountingEngine()

        async def main():
            coalescer = Coalescer(engine)
            request_a = units_for("A", range(4))       # keys 0..3
            request_b = units_for("A", range(2, 6))    # keys 2..5 (overlap 2,3)
            results_a, results_b = await asyncio.gather(
                coalescer.evaluate(request_a), coalescer.evaluate(request_b)
            )
            await coalescer.drain()
            return coalescer, results_a, results_b

        coalescer, results_a, results_b = asyncio.run(main())
        assert results_a == [("result", "A", point, ()) for point in range(4)]
        assert results_b == [("result", "A", point, ()) for point in range(2, 6)]
        # 6 distinct keys, each evaluated exactly once.
        assert len(engine.eval_counts) == 6
        assert set(engine.eval_counts.values()) == {1}
        # The two overlapping keys attached to in-flight futures.
        assert coalescer.stats.units_requested == 8
        assert coalescer.stats.keys_coalesced == 2
        assert coalescer.stats.keys_dispatched == 6

    def test_same_tick_requests_share_one_dispatch(self):
        """Requests decomposed in the same scheduling tick batch into one
        executor dispatch, not one per request."""
        engine = CountingEngine()

        async def main():
            coalescer = Coalescer(engine)
            await asyncio.gather(
                coalescer.evaluate(units_for("A", range(3))),
                coalescer.evaluate(units_for("B", range(3))),
                coalescer.evaluate(units_for("C", range(3))),
            )
            await coalescer.drain()
            return coalescer

        coalescer = asyncio.run(main())
        assert coalescer.stats.batches_dispatched == 1
        assert coalescer.stats.largest_batch == 9

    def test_slow_inflight_key_is_awaited_not_recomputed(self):
        """A request arriving while a key is mid-evaluation attaches to the
        in-flight future; when the evaluation lands, both requests get the
        same result and the engine ran exactly once."""
        engine = CountingEngine()
        engine.gates["slow"] = threading.Event()

        async def main():
            coalescer = Coalescer(engine)
            first = asyncio.ensure_future(coalescer.evaluate(units_for("slow", [0])))
            # Let the first request dispatch and block inside the worker.
            for _ in range(10):
                await asyncio.sleep(0.01)
                if coalescer.in_flight:
                    break
            second = asyncio.ensure_future(coalescer.evaluate(units_for("slow", [0])))
            await asyncio.sleep(0.05)
            assert not first.done() and not second.done()
            engine.gates["slow"].set()
            results = await asyncio.gather(first, second)
            await coalescer.drain()
            return coalescer, results

        coalescer, (first, second) = asyncio.run(main())
        assert first == second == [("result", "slow", 0, ())]
        assert engine.eval_counts[("slow", 0, ())] == 1
        assert coalescer.stats.keys_coalesced == 1
        assert coalescer.stats.keys_dispatched == 1

    def test_completed_keys_are_served_by_the_engine_cache(self):
        """A key evaluated by an earlier batch is re-requested through the
        engine's own cache (no second real evaluation, no tracking here)."""
        engine = CountingEngine()

        async def main():
            coalescer = Coalescer(engine)
            await coalescer.evaluate(units_for("A", range(2)))
            await coalescer.drain()
            assert coalescer.in_flight == 0
            return await coalescer.evaluate(units_for("A", range(2)))

        results = asyncio.run(main())
        assert results == [("result", "A", point, ()) for point in range(2)]
        assert set(engine.eval_counts.values()) == {1}


class TestFailurePropagation:
    def test_dispatch_error_reaches_every_awaiting_request(self):
        class ExplodingEngine(CountingEngine):
            def evaluate_uncached(self, name, point, overrides):
                raise ValueError("boom")

        engine = ExplodingEngine()

        async def main():
            coalescer = Coalescer(engine)
            first = asyncio.ensure_future(coalescer.evaluate(units_for("A", [0])))
            second = asyncio.ensure_future(coalescer.evaluate(units_for("A", [0])))
            outcomes = await asyncio.gather(first, second, return_exceptions=True)
            await coalescer.drain()
            return coalescer, outcomes

        coalescer, outcomes = asyncio.run(main())
        assert all(isinstance(outcome, ValueError) for outcome in outcomes)
        # The failed key left the in-flight index: a retry can dispatch anew.
        assert coalescer.in_flight == 0

    def test_abandoning_a_shared_future_does_not_cancel_it(self):
        """A caller timing out (``wait_for`` cancels its await) must not kill
        the shared future other requests still wait on."""
        engine = CountingEngine()
        engine.gates["slow"] = threading.Event()

        async def main():
            coalescer = Coalescer(engine)
            survivor = asyncio.ensure_future(
                coalescer.evaluate(units_for("slow", [0]))
            )
            await asyncio.sleep(0.05)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(
                    coalescer.evaluate(units_for("slow", [0])), timeout=0.01
                )
            engine.gates["slow"].set()
            result = await survivor
            await coalescer.drain()
            return result

        result = asyncio.run(main())
        assert result == [("result", "slow", 0, ())]
        assert engine.eval_counts[("slow", 0, ())] == 1


class TestDrain:
    def test_drain_waits_for_dispatched_batches(self):
        engine = CountingEngine()
        engine.gates["slow"] = threading.Event()

        async def main():
            coalescer = Coalescer(engine)
            futures = coalescer.scatter(units_for("slow", [0]))
            await asyncio.sleep(0.05)
            engine.gates["slow"].set()
            await coalescer.drain()
            # After drain every scattered future has settled.
            assert all(future.done() for future in futures)
            return futures[0].result()

        assert asyncio.run(main()) == ("result", "slow", 0, ())

    def test_drain_on_idle_coalescer_returns_immediately(self):
        async def main():
            coalescer = Coalescer(CountingEngine())
            await coalescer.drain()
            return coalescer.in_flight

        assert asyncio.run(main()) == 0
