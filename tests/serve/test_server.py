"""End-to-end daemon tests: bit-identity, failure paths, graceful shutdown.

These run a real :class:`EvaluationServer` on a background thread and speak
real HTTP through :class:`ServeClient` (and raw sockets for the malformed
cases), covering the serving contract:

* server responses rebuild into result sets **bit-identical** to local
  engine runs (sweep, simulate, optimize);
* failures are well-formed JSON with the documented status codes (400 with
  a schema pointer, 404/405, 408 read timeout, 413 budget, 504 deadline,
  and 200/``partial`` when the request allows it);
* a graceful shutdown finishes in-flight evaluations while refusing new
  ones, and overlapping HTTP requests single-flight per cache key.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.optimize import run_optimization
from repro.serve import ServeClient, ServerError, ServerUnavailable, start_in_thread
from repro.serve.protocol import (
    build_optimize_space,
    build_simulate_study,
    build_sweep_study,
)
from repro.sim.study import SimEngine


@pytest.fixture(scope="module")
def server_cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("serve-cache"))


@pytest.fixture(scope="module")
def warm_server(server_cache_dir):
    """One daemon shared by the happy-path tests (module-scoped: stays warm)."""
    with start_in_thread(cache_dir=server_cache_dir) as handle:
        yield handle


@pytest.fixture(scope="module")
def client(warm_server):
    return ServeClient(warm_server.base_url)


def gate_tdp50(server):
    """Make the server's analytic engine block on every 50 W evaluation.

    Returns ``(gate, counts)``: release the gate to let the evaluations
    land; ``counts`` tallies real evaluations per ``(pdn, tdp)``.
    """
    gate = threading.Event()
    counts = Counter()
    original = server._spot.evaluate_uncached

    def gated(name, point, overrides):
        if getattr(point, "tdp_w", None) == 50.0:
            assert gate.wait(timeout=30.0), "test gate never released"
        counts[(name, getattr(point, "tdp_w", None))] += 1
        return original(name, point, overrides)

    server._spot.evaluate_uncached = gated
    return gate, counts


def wait_until(predicate, timeout_s: float = 10.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError("condition not reached in time")


# --------------------------------------------------------------------------- #
# Bit-identity with local engines
# --------------------------------------------------------------------------- #
class TestBitIdentity:
    def test_sweep_matches_local_engine(self, client):
        response = client.sweep(
            tdps=[4.0, 18.0], ars=[0.4, 0.8], pdns=["FlexWatts", "LDO"]
        )
        local = PdnSpot().run(
            build_sweep_study([4.0, 18.0], [0.4, 0.8], pdns=["FlexWatts", "LDO"])
        )
        assert response.status == "ok"
        assert response.resultset == local
        assert response.resultset.to_json() == local.to_json()

    def test_simulate_matches_local_engine(self, client):
        response = client.simulate(
            scenarios=["bursty-interactive"], tdps=[18.0], pdns=["FlexWatts", "IVR"]
        )
        local = SimEngine().run(
            build_simulate_study(
                ["bursty-interactive"], [18.0], pdns=["FlexWatts", "IVR"]
            )
        )
        assert response.resultset.to_json() == local.to_json()

    def test_optimize_matches_local_runner(self, client):
        response = client.optimize(pdns=["FlexWatts", "LDO", "MBVR"], budget=6)
        local = run_optimization(
            build_optimize_space(["FlexWatts", "LDO", "MBVR"]), budget=6, seed=0
        )
        assert response.strategy == local.strategy == "grid"
        assert response.resultset.to_json() == local.results.to_json()
        # The marker columns reconstruct the front and knee exactly.
        front = response.resultset.filter(pareto=True)
        assert front.to_json() == local.front.to_json()
        knee_rows = response.resultset.filter(knee=True).to_records()
        assert len(knee_rows) == 1
        assert knee_rows[0] == local.knee

    def test_repeated_request_is_served_from_cache(self, client, warm_server):
        first = client.sweep(tdps=[4.0], pdns=["IVR", "LDO"])
        spot_info = warm_server.server._spot.cache_info()
        second = client.sweep(tdps=[4.0], pdns=["IVR", "LDO"])
        assert first.resultset.to_json() == second.resultset.to_json()
        after = warm_server.server._spot.cache_info()
        assert after.misses == spot_info.misses  # nothing recomputed
        assert after.hits >= spot_info.hits + 2


# --------------------------------------------------------------------------- #
# Introspection
# --------------------------------------------------------------------------- #
class TestIntrospection:
    def test_healthz(self, client):
        from repro import __version__

        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["draining"] is False
        assert payload["version"] == __version__

    def test_stats_document_shape(self, client):
        client.sweep(tdps=[4.0], pdns=["IVR"])
        stats = client.stats()
        assert set(stats) == {"server", "endpoints", "coalescer", "cache"}
        assert stats["server"]["uptime_s"] > 0
        sweep_stats = stats["endpoints"]["sweep"]
        assert sweep_stats["requests"] >= 1
        histogram = sweep_stats["latency"]
        assert histogram["count"] == sweep_stats["requests"]
        assert sum(histogram["buckets"].values()) == histogram["count"]
        coalescer = stats["coalescer"]["sweep"]
        assert coalescer["keys_dispatched"] >= 1
        memory = stats["cache"]["memory"]
        assert {"pdnspot", "sim", "sim_phases"} <= set(memory)
        assert {"hits", "misses", "hit_rate", "size"} == set(memory["pdnspot"])

    def test_disk_stats_schema_is_shared_with_cache_cli(
        self, client, server_cache_dir
    ):
        """Satellite contract: GET /v1/stats "disk" and `repro cache stats
        --json` emit the same document through the same helper."""
        from repro.cli import run_cache_command

        client.sweep(tdps=[4.0], pdns=["IVR"])  # ensure the disk tier exists
        stats = client.stats()
        cli_payload = json.loads(
            run_cache_command("stats", server_cache_dir, as_json=True)
        )
        assert stats["cache"]["disk"] == cli_payload
        assert set(stats["cache"]["disk"]) == {
            "schema_version",
            "cache_dir",
            "namespaces",
            "io",
        }
        assert set(stats["cache"]["disk"]["io"]) == {"get", "put", "self_heal"}


# --------------------------------------------------------------------------- #
# Failure paths: well-formed JSON errors
# --------------------------------------------------------------------------- #
class TestFailurePaths:
    def test_schema_violation_is_400_with_pointer(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.sweep(tdps=[4.0], workloads=["mining"])
        assert excinfo.value.code == 400
        assert excinfo.value.pointer == "body/workloads/0"

    def test_missing_required_field_is_400_with_pointer(self, warm_server):
        raw = _raw_post(warm_server, "/v1/sweep", b"{}")
        assert raw.status == 400
        payload = json.loads(raw.body)
        assert payload["status"] == "error"
        assert payload["code"] == 400
        assert payload["pointer"] == "body/tdps"

    def test_malformed_json_body_is_400(self, warm_server):
        raw = _raw_post(warm_server, "/v1/sweep", b"{not json")
        assert raw.status == 400
        payload = json.loads(raw.body)
        assert payload["pointer"] == "body"
        assert "not valid JSON" in payload["error"]

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._exchange("GET", "/v1/nope")
        assert excinfo.value.code == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._exchange("GET", "/v1/sweep")
        assert excinfo.value.code == 405

    def test_unknown_pdn_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.sweep(tdps=[4.0], pdns=["NotAPdn"])
        assert excinfo.value.code == 400

    def test_over_budget_request_is_413(self):
        with start_in_thread(max_units=3) as handle:
            client = ServeClient(handle.base_url)
            with pytest.raises(ServerError) as excinfo:
                client.sweep(tdps=[4.0, 18.0], pdns=["IVR", "LDO"])  # 4 units
            assert excinfo.value.code == 413
            assert excinfo.value.payload["budget"] == 3
            assert excinfo.value.payload["units"] == 4
            # A within-budget request still works.
            ok = client.sweep(tdps=[4.0], pdns=["IVR"])
            assert ok.status == "ok"

    def test_stalled_request_body_is_408(self):
        with start_in_thread(read_timeout_s=0.2) as handle:
            with socket.create_connection(
                ("127.0.0.1", handle.server.port), timeout=10.0
            ) as stalled:
                stalled.sendall(b"POST /v1/sweep HTTP/1.1\r\n")  # never finishes
                raw = stalled.makefile("rb").read()
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"408" in head.split(b"\r\n", 1)[0]
        payload = json.loads(body)
        assert payload["code"] == 408
        assert payload["status"] == "error"


def _raw_post(handle, path: str, body: bytes):
    """POST a raw (possibly invalid) body, bypassing the client's encoder."""
    connection = http.client.HTTPConnection("127.0.0.1", handle.server.port, timeout=30)
    try:
        connection.request(
            "POST", path, body=body, headers={"Content-Type": "application/json"}
        )
        response = connection.getresponse()

        class Raw:
            status = response.status
            body = response.read()

        return Raw
    finally:
        connection.close()


# --------------------------------------------------------------------------- #
# Deadlines: 504, partial results, and single-flight across real HTTP
# --------------------------------------------------------------------------- #
class TestDeadlines:
    def test_timeout_is_504_and_partial_returns_completed_units(self):
        with start_in_thread() as handle:
            gate, counts = gate_tdp50(handle.server)
            client = ServeClient(handle.base_url)
            try:
                with ThreadPoolExecutor(max_workers=1) as pool:
                    blocked = pool.submit(
                        client.sweep, tdps=[50.0], pdns=["IVR"], timeout_s=60.0
                    )
                    wait_until(lambda: handle.server._sweep_coalescer.in_flight > 0)

                    # No allow_partial: the deadline is a hard 504.
                    with pytest.raises(ServerError) as excinfo:
                        client.sweep(tdps=[50.0], pdns=["IVR"], timeout_s=0.2)
                    assert excinfo.value.code == 504
                    assert excinfo.value.payload["timeout_s"] == 0.2

                    # allow_partial: the completed subset comes back as 200.
                    partial = client.sweep(
                        tdps=[4.0, 50.0],
                        pdns=["IVR"],
                        timeout_s=2.0,
                        allow_partial=True,
                    )
                    assert partial.partial
                    assert partial.status == "partial"
                    assert (partial.completed_units, partial.total_units) == (1, 2)
                    rows = partial.resultset.to_records()
                    assert [row["tdp_w"] for row in rows] == [4.0]

                    gate.set()
                    full = blocked.result(timeout=30.0)
                    assert full.status == "ok"
                    assert len(full.resultset.to_records()) == 1
            finally:
                gate.set()
            # Three requests wanted (IVR, 50 W); it was evaluated once.
            assert counts[("IVR", 50.0)] == 1


# --------------------------------------------------------------------------- #
# Graceful shutdown
# --------------------------------------------------------------------------- #
class TestGracefulShutdown:
    def test_drain_finishes_inflight_and_refuses_new_requests(self):
        handle = start_in_thread()
        gate, _ = gate_tdp50(handle.server)
        client = ServeClient(handle.base_url)
        try:
            with ThreadPoolExecutor(max_workers=1) as pool:
                blocked = pool.submit(
                    client.sweep, tdps=[50.0], pdns=["IVR"], timeout_s=60.0
                )
                wait_until(lambda: handle.server._sweep_coalescer.in_flight > 0)

                handle.server.request_shutdown()
                wait_until(lambda: client.healthz()["draining"] is True)
                assert client.healthz()["status"] == "draining"

                # New evaluation requests are refused while draining...
                with pytest.raises(ServerError) as excinfo:
                    client.sweep(tdps=[4.0], pdns=["IVR"])
                assert excinfo.value.code == 503
                # ...but the observability surface keeps answering.
                assert client.stats()["server"]["draining"] is True

                # The in-flight request completes, then the server exits.
                gate.set()
                response = blocked.result(timeout=30.0)
                assert response.status == "ok"
                assert len(response.resultset.to_records()) == 1
        finally:
            gate.set()
        handle.thread.join(timeout=30.0)
        assert not handle.thread.is_alive()
        with pytest.raises(ServerUnavailable):
            client.healthz()
