"""CLI ``--server`` routing: identical output, clean fallback, error surfacing."""

from __future__ import annotations

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.cli import main, run_optimize, run_simulate, run_sweep
from repro.serve import start_in_thread

DEAD_SERVER = "http://127.0.0.1:1"  # reserved port: connection always refused


@pytest.fixture(scope="module")
def warm_server():
    with start_in_thread() as handle:
        yield handle


class TestServerRouting:
    @pytest.mark.parametrize("output_format", ["table", "json", "csv"])
    def test_sweep_output_is_identical(self, warm_server, output_format):
        kwargs = dict(
            tdps=[4.0, 18.0], ars=[0.4], pdns=["FlexWatts", "LDO"],
            output_format=output_format,
        )
        local = run_sweep(PdnSpot(), **kwargs)
        remote = run_sweep(PdnSpot(), server=warm_server.base_url, **kwargs)
        assert remote == local

    def test_simulate_output_is_identical(self, warm_server):
        kwargs = dict(
            scenarios=["bursty-interactive"], tdps=[18.0], pdns=["IVR"],
            output_format="csv",
        )
        local = run_simulate(**kwargs)
        remote = run_simulate(server=warm_server.base_url, **kwargs)
        assert remote == local

    def test_optimize_output_is_identical_including_footer(self, warm_server):
        kwargs = dict(pdns=["FlexWatts", "LDO", "MBVR"], budget=6)
        local = run_optimize(**kwargs)
        remote = run_optimize(server=warm_server.base_url, **kwargs)
        assert remote == local
        assert "Knee point (balanced pick):" in remote

    def test_main_routes_through_server(self, warm_server, capsys):
        argv_local = ["sweep", "--tdps", "4", "--pdns", "IVR", "--format", "csv"]
        assert main(argv_local) == 0
        local = capsys.readouterr().out
        assert (
            main(argv_local + ["--server", warm_server.base_url]) == 0
        )
        remote = capsys.readouterr().out
        assert remote == local


class TestServerFallback:
    def test_unreachable_server_falls_back_to_local(self, capsys):
        local = run_sweep(PdnSpot(), tdps=[4.0], pdns=["IVR"], output_format="csv")
        capsys.readouterr()
        fallback = run_sweep(
            PdnSpot(), tdps=[4.0], pdns=["IVR"], output_format="csv",
            server=DEAD_SERVER,
        )
        captured = capsys.readouterr()
        assert fallback == local
        assert "falling back to local evaluation" in captured.err

    def test_fallback_exit_code_is_success(self, capsys):
        rc = main(
            ["simulate", "--scenario", "bursty-interactive", "--pdns", "IVR",
             "--format", "csv", "--server", DEAD_SERVER]
        )
        captured = capsys.readouterr()
        assert rc == 0
        assert "falling back to local evaluation" in captured.err

    def test_server_side_request_error_propagates(self, warm_server, capsys):
        """Server *errors* (vs unreachability) must not silently fall back."""
        rc = main(
            ["sweep", "--tdps", "4", "--pdns", "NotAPdn",
             "--server", warm_server.base_url]
        )
        captured = capsys.readouterr()
        assert rc == 1
        assert captured.err.startswith("error: server answered 400")
        assert "falling back" not in captured.err
