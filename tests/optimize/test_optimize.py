"""Tests for the design-space exploration subsystem (repro.optimize)."""

import json

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.cli import main, parse_parameter_axes, run_optimize
from repro.cost.board_area import BoardAreaModel
from repro.cost.bom import BomModel
from repro.optimize import (
    DEFAULT_OBJECTIVES,
    CandidateEvaluator,
    DesignPoint,
    DesignSpace,
    EvaluationSettings,
    EvolutionarySearch,
    GridSearch,
    RandomSearch,
    make_strategy,
    resolve_objectives,
    run_optimization,
)
from repro.util.errors import ConfigurationError
from repro.workloads.spec_cpu2006 import SPEC_CPU2006_BENCHMARKS

#: Small, fast evaluation settings shared by the engine-heavy tests.
FAST_SETTINGS = EvaluationSettings(
    tdps_w=(4.0, 50.0),
    benchmarks=tuple(SPEC_CPU2006_BENCHMARKS[:4]),
)


def sizing_space() -> DesignSpace:
    return (
        DesignSpace.builder("sizing")
        .pdns("IVR", "LDO", "FlexWatts")
        .parameter("ivr_tolerance_band_v", 0.015, 0.020)
        .parameter("ldo_tolerance_band_v", 0.013, 0.017)
        .build()
    )


class TestDesignSpace:
    def test_grid_order_is_deterministic(self):
        space = sizing_space()
        assert space.grid_size == 12
        points = space.points()
        assert points == space.points()
        assert points[0].pdn == "IVR"
        assert dict(points[0].overrides) == {
            "ivr_tolerance_band_v": 0.015,
            "ldo_tolerance_band_v": 0.013,
        }
        # Topology varies fastest, first parameter axis slowest.
        assert [p.pdn for p in points[:3]] == ["IVR", "LDO", "FlexWatts"]

    def test_default_space_covers_every_registered_pdn(self):
        space = DesignSpace.over_pdns()
        assert {p.pdn for p in space.points()} == {
            "IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts",
        }

    def test_constraints_filter_points(self):
        space = (
            DesignSpace.builder("constrained")
            .pdns("IVR", "LDO")
            .parameter("ivr_tolerance_band_v", 0.015, 0.020)
            .constraint(lambda point: point.pdn != "LDO")
            .build()
        )
        assert {p.pdn for p in space.points()} == {"IVR"}
        assert space.grid_size == 4  # constraints do not shrink the raw grid

    def test_fully_constrained_space_rejected(self):
        space = (
            DesignSpace.builder("empty")
            .pdns("IVR")
            .constraint(lambda point: False)
            .build()
        )
        with pytest.raises(ConfigurationError):
            space.points()

    def test_duplicate_parameter_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            (
                DesignSpace.builder("dup")
                .pdns("IVR")
                .parameter("ivr_tolerance_band_v", 0.015)
                .parameter("ivr_tolerance_band_v", 0.020)
                .build()
            )

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            (
                DesignSpace.builder("empty-axis")
                .pdns("IVR")
                .parameter("ivr_tolerance_band_v")
                .build()
            )

    def test_unknown_parameter_axis_rejected(self):
        with pytest.raises(ConfigurationError, match="bogus_field"):
            (
                DesignSpace.builder("typo")
                .pdns("IVR")
                .parameter("bogus_field", 1.0, 2.0)
                .build()
            )

    def test_point_labels_and_records(self):
        point = DesignPoint("IVR", (("ivr_tolerance_band_v", 0.015),))
        assert point.label() == "IVR(ivr_tolerance_band_v=0.015)"
        assert point.record_fields() == {
            "pdn": "IVR",
            "parameters": {"ivr_tolerance_band_v": 0.015},
        }
        assert DesignPoint("IVR").record_fields() == {"pdn": "IVR"}

    def test_point_overrides_normalised_to_sorted_order(self):
        shuffled = DesignPoint(
            "IVR", (("ldo_tolerance_band_v", 0.013), ("ivr_tolerance_band_v", 0.015))
        )
        ordered = DesignPoint(
            "IVR", (("ivr_tolerance_band_v", 0.015), ("ldo_tolerance_band_v", 0.013))
        )
        assert shuffled == ordered
        assert hash(shuffled) == hash(ordered)


class TestObjectives:
    def test_default_objective_set(self):
        objectives = resolve_objectives()
        assert tuple(o.name for o in objectives) == DEFAULT_OBJECTIVES

    def test_unknown_objective_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_objectives(["etee", "nope"])

    def test_duplicate_objective_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_objectives(["etee", "etee"])

    def test_evaluator_matches_the_facade_comparisons(self):
        objectives = resolve_objectives(["etee", "bom", "area", "iccmax"])
        settings = EvaluationSettings(tdps_w=(18.0,))
        evaluator = CandidateEvaluator(objectives, settings=settings)
        (record,) = evaluator.evaluate_batch([DesignPoint("MBVR")])
        spot = evaluator.spot
        conditions_etee = spot.compare_etee(18.0)["MBVR"]
        assert record["etee"] == pytest.approx(conditions_etee)
        bom = BomModel().estimate(spot.pdn("MBVR"), 18.0).total_cost
        area = BoardAreaModel().estimate(spot.pdn("MBVR"), 18.0).total_area_mm2
        assert record["bom_cost"] == pytest.approx(bom)
        assert record["board_area_mm2"] == pytest.approx(area)
        assert record["iccmax_total_a"] > 0.0

    def test_unknown_pdn_fails_fast(self):
        evaluator = CandidateEvaluator(resolve_objectives(["bom"]))
        with pytest.raises(ConfigurationError):
            evaluator.evaluate_batch([DesignPoint("NOPE")])

    def test_empty_batch(self):
        evaluator = CandidateEvaluator(resolve_objectives(["bom"]))
        assert evaluator.evaluate_batch([]) == []

    def test_sim_objectives_report_power_and_energy(self):
        objectives = resolve_objectives(["power", "energy"])
        settings = EvaluationSettings(
            tdps_w=(18.0,), scenarios=("duty-cycled-background",)
        )
        evaluator = CandidateEvaluator(objectives, settings=settings)
        records = evaluator.evaluate_batch(
            [DesignPoint("IVR"), DesignPoint("FlexWatts")]
        )
        for record in records:
            assert record["average_power_w"] > 0.0
            assert record["total_energy_j"] > 0.0

    def test_performance_yardstick_is_the_nominal_baseline(self):
        """Candidate overrides must not degrade their own baseline.

        With a per-candidate baseline, a worse sizing would score *higher*
        because its yardstick degraded with it; against the fixed nominal
        baseline, the better sizing must win on both etee and performance.
        """
        objectives = resolve_objectives(["etee", "performance"])
        evaluator = CandidateEvaluator(objectives, settings=FAST_SETTINGS)
        better, worse = evaluator.evaluate_batch(
            [
                DesignPoint("FlexWatts", (("ivr_tolerance_band_v", 0.015),)),
                DesignPoint("FlexWatts", (("ivr_tolerance_band_v", 0.025),)),
            ]
        )
        assert better["etee"] > worse["etee"]
        assert better["performance"] > worse["performance"]

    def test_baseline_topology_candidates_are_scored_against_nominal(self):
        """A sized IVR candidate must not trivially score performance 1.0."""
        objectives = resolve_objectives(["performance"])
        evaluator = CandidateEvaluator(objectives, settings=FAST_SETTINGS)
        nominal, tightened = evaluator.evaluate_batch(
            [
                DesignPoint("IVR"),
                DesignPoint("IVR", (("ivr_tolerance_band_v", 0.010),)),
            ]
        )
        assert nominal["performance"] == pytest.approx(1.0)
        assert tightened["performance"] > 1.0

    def test_overrides_change_the_candidate_model(self):
        objectives = resolve_objectives(["etee"])
        evaluator = CandidateEvaluator(objectives, settings=FAST_SETTINGS)
        nominal, tightened = evaluator.evaluate_batch(
            [
                DesignPoint("IVR"),
                DesignPoint("IVR", (("ivr_tolerance_band_v", 0.010),)),
            ]
        )
        assert tightened["etee"] > nominal["etee"]


class TestStrategies:
    def test_grid_budget_truncates_deterministically(self):
        space = sizing_space()
        evaluated = GridSearch(budget=5).search(
            space, lambda pts: [{"etee": 1.0} for _ in pts], ()
        )
        assert [point for point, _ in evaluated] == list(space.points()[:5])

    def test_random_is_seeded_and_within_the_space(self):
        space = sizing_space()
        calls = []

        def fake(points):
            calls.append(list(points))
            return [{"etee": 1.0} for _ in points]

        first = RandomSearch(budget=6, seed=11).search(space, fake, ())
        second = RandomSearch(budget=6, seed=11).search(space, fake, ())
        assert [p for p, _ in first] == [p for p, _ in second]
        assert len({p for p, _ in first}) == 6
        assert set(p for p, _ in first) <= set(space.points())

    def test_random_budget_capped_at_space_size(self):
        space = DesignSpace.over_pdns(["IVR", "LDO"])
        evaluated = RandomSearch(budget=50, seed=0).search(
            space, lambda pts: [{"etee": 1.0} for _ in pts], ()
        )
        assert len(evaluated) == 2

    def test_evolutionary_respects_budget_and_seed(self):
        space = sizing_space()
        objectives = resolve_objectives(["etee", "bom"])

        def fake(points):
            # A deterministic synthetic landscape: tighter tolerance bands
            # score higher, FlexWatts cheaper than LDO.
            return [
                {
                    "etee": 1.0 - dict(p.overrides)["ivr_tolerance_band_v"],
                    "bom_cost": {"IVR": 1.0, "LDO": 3.0, "FlexWatts": 1.5}[p.pdn],
                }
                for p in points
            ]

        first = EvolutionarySearch(budget=8, seed=5).search(
            space, fake, objectives
        )
        second = EvolutionarySearch(budget=8, seed=5).search(
            space, fake, objectives
        )
        assert [p for p, _ in first] == [p for p, _ in second]
        points = [p for p, _ in first]
        assert len(points) == len(set(points)) <= 8

    def test_evolutionary_exhausts_budget_on_large_axes(self):
        """Random mutation misses must not end the search below budget.

        With a 20-value axis and a small population, random single-axis
        mutation quickly stops finding unseen values; the deterministic
        neighbourhood fallback must keep the generational loop fed until
        the budget (here: the whole space) is exhausted.
        """
        space = (
            DesignSpace.builder("wide")
            .pdns("IVR")
            .parameter("ivr_tolerance_band_v", *[0.010 + i * 0.001 for i in range(20)])
            .build()
        )
        objectives = resolve_objectives(["etee", "bom"])

        def fake(points):
            return [
                {
                    "etee": dict(p.overrides)["ivr_tolerance_band_v"],
                    "bom_cost": 1.0,
                }
                for p in points
            ]

        evaluated = EvolutionarySearch(budget=20, seed=0, population=4).search(
            space, fake, objectives
        )
        assert len(evaluated) == 20  # the entire space, despite misses

    def test_make_strategy_resolution(self):
        assert isinstance(make_strategy(None), GridSearch)
        assert isinstance(make_strategy("random", budget=4, seed=1), RandomSearch)
        assert isinstance(make_strategy("evolutionary"), EvolutionarySearch)
        instance = GridSearch()
        assert make_strategy(instance) is instance
        with pytest.raises(ConfigurationError):
            make_strategy("nope")
        with pytest.raises(ConfigurationError):
            make_strategy(instance, budget=4)
        with pytest.raises(ConfigurationError, match="seed"):
            make_strategy(RandomSearch(budget=4, seed=0), seed=7)
        with pytest.raises(ConfigurationError):
            make_strategy("random", budget=0)


class TestRunOptimization:
    def test_paper_conclusion_hybrid_on_front_and_knee(self):
        """The acceptance claim: FlexWatts is Pareto-optimal and the knee."""
        outcome = run_optimization(DesignSpace.over_pdns())
        front_pdns = set(outcome.front.unique("pdn"))
        assert "FlexWatts" in front_pdns
        assert outcome.knee_pdn == "FlexWatts"
        # The single-stage baselines are dominated...
        assert "MBVR" not in front_pdns
        assert "LDO" not in front_pdns
        # ...while the cheap IVR baseline anchors the cost corner.
        assert "IVR" in front_pdns

    @pytest.mark.parametrize("strategy", ["grid", "random", "evolutionary"])
    def test_parallel_search_bit_identical_to_serial(self, strategy):
        """Every strategy: serial == --jobs 2 --executor process, fixed seed."""
        space = sizing_space()
        serial = run_optimization(
            space, strategy=strategy, budget=6, seed=3, settings=FAST_SETTINGS
        )
        parallel = run_optimization(
            space,
            strategy=strategy,
            budget=6,
            seed=3,
            settings=FAST_SETTINGS,
            executor="process",
            jobs=2,
        )
        assert serial.results == parallel.results
        assert serial.front == parallel.front
        assert serial.knee == parallel.knee

    def test_thread_backend_matches_too(self):
        space = DesignSpace.over_pdns(["IVR", "FlexWatts"])
        serial = run_optimization(space, settings=FAST_SETTINGS)
        threaded = run_optimization(
            space, settings=FAST_SETTINGS, executor="thread", jobs=2
        )
        assert serial.results == threaded.results

    def test_single_candidate_space(self):
        outcome = run_optimization(
            DesignSpace.over_pdns(["FlexWatts"]), settings=FAST_SETTINGS
        )
        assert len(outcome.results) == 1
        assert outcome.front == outcome.results
        assert outcome.knee_pdn == "FlexWatts"
        assert outcome.results.column("pareto") == [True]
        assert outcome.results.column("knee") == [True]

    def test_shared_evaluator_caches_across_searches(self):
        evaluator = CandidateEvaluator(
            resolve_objectives(), settings=FAST_SETTINGS
        )
        space = DesignSpace.over_pdns(["IVR", "FlexWatts"])
        first = run_optimization(space, evaluator=evaluator)
        misses = evaluator.spot.cache_info().misses
        second = run_optimization(space, evaluator=evaluator)
        assert evaluator.spot.cache_info().misses == misses  # all hits
        assert first.results == second.results

    def test_evaluator_objective_mismatch_rejected(self):
        evaluator = CandidateEvaluator(resolve_objectives(["bom"]))
        with pytest.raises(ConfigurationError):
            run_optimization(
                DesignSpace.over_pdns(["IVR"]),
                objectives=["area"],
                evaluator=evaluator,
            )

    def test_experiment_section_shares_the_runner_cache(self):
        from repro.experiments.optimize_pdn import optimize_outcome

        spot = PdnSpot()
        first = optimize_outcome(spot=spot)
        misses = spot.cache_info().misses
        assert misses > 0  # the search ran on the shared engine
        second = optimize_outcome(spot=spot)
        assert spot.cache_info().misses == misses  # warm re-run: all hits
        assert first.results == second.results

    def test_iccmax_objective_flows_through(self):
        outcome = run_optimization(
            DesignSpace.over_pdns(["IVR", "MBVR"]),
            objectives=["iccmax", "bom"],
            settings=FAST_SETTINGS,
        )
        assert "iccmax_total_a" in outcome.results.columns
        ivr = outcome.results.filter(pdn="IVR").column("iccmax_total_a")[0]
        mbvr = outcome.results.filter(pdn="MBVR").column("iccmax_total_a")[0]
        # Rail sharing gives IVR a lower total Iccmax (Sec. 3.2).
        assert ivr < mbvr


class TestCostModelEdgeCases:
    def test_zero_iccmax_rail_costs_only_the_adders(self):
        model = BomModel()
        assert model.rail_cost(0.0, 4.0) == pytest.approx(model.pmic_rail_adder)
        area = BoardAreaModel()
        assert area.rail_area_mm2(0.0, 50.0) == pytest.approx(
            area.vrm_rail_adder_mm2
        )

    def test_zero_area_reference_rejected_with_value_error(self):
        model = BoardAreaModel(
            pmic_rail_adder_mm2=0.0,
            pmic_area_per_amp_mm2=0.0,
            pmic_base_area_mm2=0.0,
        )
        spot = PdnSpot(pdn_names=["IVR", "LDO"])
        zero = model.estimate(spot.pdn("IVR"), 4.0)
        assert zero.total_area_mm2 == pytest.approx(0.0)
        other = model.estimate(spot.pdn("LDO"), 4.0)
        with pytest.raises(ValueError):
            other.normalised_to(zero)


class TestOptimizeCli:
    def test_table_output_reports_front_and_knee(self):
        text = run_optimize()
        assert "Pareto front:" in text
        assert "Knee point (balanced pick): FlexWatts" in text

    def test_json_output_round_trips(self, capsys):
        assert main(["optimize", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "pareto" in payload["columns"]
        assert len(payload["rows"]) == 5

    def test_csv_output_uses_shared_writer(self, capsys):
        assert (
            main(
                [
                    "optimize",
                    "--strategy", "random",
                    "--budget", "3",
                    "--seed", "1",
                    "--pdns", "IVR", "FlexWatts",
                    "--format", "csv",
                ]
            )
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("pdn,")
        assert len(lines) == 3  # header + 2 candidates

    def test_param_axis_flag(self, capsys):
        assert (
            main(
                [
                    "optimize",
                    "--pdns", "IVR",
                    "--param", "ivr_tolerance_band_v=0.015,0.020",
                    "--objectives", "etee", "bom",
                    "--format", "json",
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["rows"]) == 2

    def test_parse_parameter_axes(self):
        axes = parse_parameter_axes(["a=1,2", "b=0.5"])
        assert axes == [("a", [1.0, 2.0]), ("b", [0.5])]
        with pytest.raises(ConfigurationError):
            parse_parameter_axes(["missing-separator"])
        with pytest.raises(ConfigurationError):
            parse_parameter_axes(["a="])
        with pytest.raises(ConfigurationError, match="not a number"):
            parse_parameter_axes(["a=0.015a"])

    def test_malformed_param_is_a_clean_cli_error(self, capsys):
        assert main(["optimize", "--param", "bad"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")
        assert out.split()[1][0].isdigit()

    def test_unknown_objective_is_a_clean_cli_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["optimize", "--objectives", "nope"])
