"""Property-style tests of the Pareto utilities (and normalisation errors)."""

import itertools
import json
import random

import pytest

from repro.analysis.resultset import ResultSet
from repro.optimize.objectives import Objective
from repro.optimize.pareto import (
    annotate,
    dominates,
    knee_point,
    pareto_front,
    pareto_indices,
    scalarize,
)
from repro.util.errors import ConfigurationError, NormalizationError

#: A three-objective mix of directions (max, min, min).
OBJECTIVES = (
    Objective("etee", "etee", "max"),
    Objective("bom", "bom_cost", "min"),
    Objective("area", "board_area_mm2", "min"),
)


def make_resultset(rows):
    return ResultSet.from_records(
        [
            {
                "pdn": f"cand-{index}",
                "etee": row[0],
                "bom_cost": row[1],
                "board_area_mm2": row[2],
            }
            for index, row in enumerate(rows)
        ],
        name="pareto-test",
    )


@pytest.fixture(scope="module")
def random_rows():
    """A deterministic pseudo-random candidate population."""
    rng = random.Random(42)
    return [
        (rng.uniform(0.5, 1.0), rng.uniform(1.0, 5.0), rng.uniform(100, 700))
        for _ in range(25)
    ]


class TestDominance:
    def test_irreflexive(self, random_rows):
        resultset = make_resultset(random_rows)
        for record in resultset.to_records():
            assert not dominates(record, record, OBJECTIVES)

    def test_asymmetric(self, random_rows):
        resultset = make_resultset(random_rows)
        records = resultset.to_records()
        for a, b in itertools.combinations(records, 2):
            assert not (
                dominates(a, b, OBJECTIVES) and dominates(b, a, OBJECTIVES)
            )

    def test_transitive(self, random_rows):
        resultset = make_resultset(random_rows)
        records = resultset.to_records()
        for a, b, c in itertools.permutations(records[:10], 3):
            if dominates(a, b, OBJECTIVES) and dominates(b, c, OBJECTIVES):
                assert dominates(a, c, OBJECTIVES)

    def test_strict_improvement_required(self):
        a = {"etee": 0.7, "bom_cost": 2.0, "board_area_mm2": 200.0}
        assert not dominates(a, dict(a), OBJECTIVES)
        better = dict(a, etee=0.8)
        assert dominates(better, a, OBJECTIVES)
        assert not dominates(a, better, OBJECTIVES)

    def test_direction_respected(self):
        low_cost = {"etee": 0.7, "bom_cost": 1.0, "board_area_mm2": 200.0}
        high_cost = {"etee": 0.7, "bom_cost": 3.0, "board_area_mm2": 200.0}
        assert dominates(low_cost, high_cost, OBJECTIVES)

    def test_missing_column_rejected(self):
        with pytest.raises(ConfigurationError):
            dominates({"etee": 1.0}, {"etee": 0.5}, OBJECTIVES)

    def test_no_objectives_rejected(self):
        with pytest.raises(ConfigurationError):
            dominates({}, {}, ())

    def test_nan_record_rejected(self):
        a = {"etee": float("nan"), "bom_cost": 1.0, "board_area_mm2": 1.0}
        b = {"etee": 0.9, "bom_cost": 1.0, "board_area_mm2": 1.0}
        with pytest.raises(ConfigurationError, match="NaN"):
            dominates(a, b, OBJECTIVES)


class TestParetoFront:
    def test_front_is_subset_of_inputs(self, random_rows):
        resultset = make_resultset(random_rows)
        front = pareto_front(resultset, OBJECTIVES)
        inputs = {tuple(sorted(r.items())) for r in resultset.to_records()}
        assert len(front) >= 1
        for record in front.to_records():
            assert tuple(sorted(record.items())) in inputs

    def test_front_members_are_mutually_non_dominated(self, random_rows):
        front = pareto_front(make_resultset(random_rows), OBJECTIVES).to_records()
        for a, b in itertools.permutations(front, 2):
            assert not dominates(a, b, OBJECTIVES)

    def test_every_non_front_row_is_dominated(self, random_rows):
        resultset = make_resultset(random_rows)
        keep = set(pareto_indices(resultset, OBJECTIVES))
        records = resultset.to_records()
        front = [records[i] for i in keep]
        for index, record in enumerate(records):
            if index in keep:
                continue
            assert any(dominates(member, record, OBJECTIVES) for member in front)

    def test_front_invariant_under_objective_permutation(self, random_rows):
        resultset = make_resultset(random_rows)
        reference = pareto_indices(resultset, OBJECTIVES)
        for permutation in itertools.permutations(OBJECTIVES):
            assert pareto_indices(resultset, permutation) == reference

    def test_duplicate_optima_all_kept(self):
        resultset = make_resultset(
            [(0.9, 1.0, 100.0), (0.9, 1.0, 100.0), (0.5, 4.0, 600.0)]
        )
        assert pareto_indices(resultset, OBJECTIVES) == [0, 1]

    def test_unknown_objective_column_rejected(self):
        resultset = make_resultset([(0.9, 1.0, 100.0)])
        bogus = (Objective("x", "nope", "max"),)
        with pytest.raises(ConfigurationError):
            pareto_front(resultset, bogus)

    def test_non_numeric_cell_rejected(self):
        resultset = ResultSet.from_records(
            [{"etee": "high", "bom_cost": 1.0, "board_area_mm2": 1.0}]
        )
        with pytest.raises(ConfigurationError):
            pareto_indices(resultset, OBJECTIVES)

    def test_nan_cell_rejected_instead_of_corrupting_the_front(self):
        """NaN compares false everywhere, so it would never be dominated."""
        resultset = make_resultset(
            [(0.9, 1.0, 100.0), (float("nan"), 1.0, 100.0)]
        )
        with pytest.raises(ConfigurationError, match="NaN"):
            pareto_indices(resultset, OBJECTIVES)
        with pytest.raises(ConfigurationError, match="NaN"):
            knee_point(resultset, OBJECTIVES)


class TestScalarize:
    def test_scores_bounded_and_best_is_one(self):
        resultset = make_resultset(
            [(1.0, 1.0, 100.0), (0.5, 5.0, 700.0), (0.75, 3.0, 400.0)]
        )
        scored = scalarize(resultset, OBJECTIVES)
        scores = scored.column("score")
        assert all(0.0 <= s <= 1.0 for s in scores)
        assert scores[0] == pytest.approx(1.0)  # best on every axis
        assert scores[1] == pytest.approx(0.0)  # worst on every axis

    def test_weights_reorder_the_ranking(self, random_rows):
        resultset = make_resultset(
            [(0.9, 5.0, 700.0), (0.5, 1.0, 100.0)]
        )
        efficiency_heavy = scalarize(
            resultset, OBJECTIVES, weights={"etee": 10.0}
        ).column("score")
        cost_heavy = scalarize(
            resultset, OBJECTIVES, weights={"bom": 10.0, "area": 10.0}
        ).column("score")
        assert efficiency_heavy[0] > efficiency_heavy[1]
        assert cost_heavy[1] > cost_heavy[0]

    def test_unknown_weight_name_rejected(self):
        resultset = make_resultset([(0.9, 1.0, 100.0)])
        with pytest.raises(ConfigurationError):
            scalarize(resultset, OBJECTIVES, weights={"nope": 1.0})

    def test_all_zero_weights_rejected(self):
        resultset = make_resultset([(0.9, 1.0, 100.0)])
        with pytest.raises(ConfigurationError):
            scalarize(
                resultset,
                OBJECTIVES,
                weights={"etee": 0.0, "bom": 0.0, "area": 0.0},
            )

    def test_negative_weight_rejected(self):
        resultset = make_resultset([(0.9, 1.0, 100.0)])
        with pytest.raises(ConfigurationError):
            scalarize(resultset, OBJECTIVES, weights={"etee": -1.0})


class TestKneePoint:
    def test_single_candidate_space(self):
        resultset = make_resultset([(0.7, 2.0, 300.0)])
        assert pareto_indices(resultset, OBJECTIVES) == [0]
        assert knee_point(resultset, OBJECTIVES) == 0

    def test_knee_is_on_the_front(self, random_rows):
        resultset = make_resultset(random_rows)
        assert knee_point(resultset, OBJECTIVES) in pareto_indices(
            resultset, OBJECTIVES
        )

    def test_balanced_candidate_beats_corner_candidates(self):
        # Two corners and one near-ideal compromise: the compromise wins.
        resultset = make_resultset(
            [(1.0, 5.0, 700.0), (0.5, 1.0, 100.0), (0.95, 1.5, 160.0)]
        )
        assert knee_point(resultset, OBJECTIVES) == 2

    def test_zero_range_objective_contributes_nothing(self):
        # A degenerate axis (every candidate identical, e.g. zero area for
        # all) must not divide by zero nor sway the pick.
        resultset = make_resultset(
            [(1.0, 5.0, 0.0), (0.5, 1.0, 0.0), (0.95, 1.5, 0.0)]
        )
        assert knee_point(resultset, OBJECTIVES) == 2

    def test_tie_breaks_towards_earlier_row(self):
        resultset = make_resultset(
            [(0.9, 1.0, 100.0), (0.9, 1.0, 100.0)]
        )
        assert knee_point(resultset, OBJECTIVES) == 0

    def test_empty_result_set_rejected_cleanly(self):
        empty = make_resultset([(0.9, 1.0, 100.0)]).filter(pdn="nope")
        assert pareto_indices(empty, OBJECTIVES) == []
        with pytest.raises(ConfigurationError):
            knee_point(empty, OBJECTIVES)
        with pytest.raises(ConfigurationError):
            scalarize(empty, OBJECTIVES)
        with pytest.raises(ConfigurationError):
            annotate(empty, OBJECTIVES)


class TestAnnotate:
    def test_markers_match_the_utilities(self, random_rows):
        resultset = make_resultset(random_rows)
        annotated = annotate(resultset, OBJECTIVES)
        front = set(pareto_indices(resultset, OBJECTIVES))
        knee = knee_point(resultset, OBJECTIVES)
        assert annotated.column("pareto") == [
            index in front for index in range(len(resultset))
        ]
        assert annotated.column("knee").count(True) == 1
        assert annotated.column("knee")[knee] is True

    def test_annotated_set_serialises(self, random_rows):
        annotated = annotate(make_resultset(random_rows[:5]), OBJECTIVES)
        payload = json.loads(annotated.to_json())
        assert "pareto" in payload["columns"]
        assert ResultSet.from_json(annotated.to_json()) == annotated
        assert "pareto" in annotated.to_csv().splitlines()[0]


class TestNormalizeToErrors:
    """The normalize_to satellite: clear ValueError naming the offending key."""

    def records(self, baseline_etee):
        return ResultSet.from_records(
            [
                {"pdn": "IVR", "tdp_w": 4.0, "etee": baseline_etee},
                {"pdn": "LDO", "tdp_w": 4.0, "etee": 0.7},
            ]
        )

    def test_zero_baseline_raises_value_error_naming_key(self):
        with pytest.raises(ValueError, match="pdn='IVR'") as excinfo:
            self.records(0.0).normalize_to("IVR", value_columns=("etee",))
        assert "etee" in str(excinfo.value)
        assert isinstance(excinfo.value, NormalizationError)
        assert isinstance(excinfo.value, ConfigurationError)

    def test_nan_baseline_raises_instead_of_propagating(self):
        with pytest.raises(ValueError, match="NaN"):
            self.records(float("nan")).normalize_to(
                "IVR", value_columns=("etee",)
            )

    def test_missing_baseline_cell_names_key_and_column(self):
        resultset = ResultSet.from_records(
            [
                {"pdn": "IVR", "tdp_w": 4.0},
                {"pdn": "LDO", "tdp_w": 4.0, "etee": 0.7},
            ]
        )
        with pytest.raises(ValueError, match="'etee'"):
            resultset.normalize_to("IVR", value_columns=("etee",))

    def test_missing_baseline_row_is_value_error_too(self):
        resultset = ResultSet.from_records(
            [{"pdn": "LDO", "tdp_w": 4.0, "etee": 0.7}]
        )
        with pytest.raises(ValueError, match="IVR"):
            resultset.normalize_to("IVR", value_columns=("etee",))

    def test_valid_normalisation_still_works(self):
        normalised = self.records(0.5).normalize_to(
            "IVR", value_columns=("etee",)
        )
        assert normalised.column("etee") == pytest.approx([1.0, 1.4])
