"""Tests for the frequency-sensitivity, budget-breakdown and performance models."""

import pytest

from repro.pdn.ivr import IvrPdn
from repro.pdn.ldo import LdoPdn
from repro.pdn.mbvr import MbvrPdn
from repro.perf.budget_breakdown import budget_breakdown_for_tdp, worst_case_pdn_loss
from repro.perf.frequency_sensitivity import (
    FrequencySensitivityModel,
    power_for_frequency_increase_w,
)
from repro.perf.model import PerformanceModel
from repro.power.domains import DomainKind, WorkloadType
from repro.workloads.spec_cpu2006 import SPEC_CPU2006_BENCHMARKS
from repro.workloads.graphics import THREEDMARK06_BENCHMARKS


class TestFrequencySensitivity:
    def test_4w_cost_is_single_digit_milliwatts(self):
        # Fig. 2(a): ~9 mW per +1 % frequency at a 4 W TDP.
        cost_w = FrequencySensitivityModel().cpu_power_for_one_percent_w(4.0)
        assert 0.004 <= cost_w <= 0.015

    def test_cost_grows_monotonically_with_tdp(self):
        model = FrequencySensitivityModel()
        costs = [model.cpu_power_for_one_percent_w(t) for t in (4.0, 8.0, 18.0, 36.0, 50.0)]
        assert costs == sorted(costs)

    def test_50w_cost_is_hundreds_of_milliwatts(self):
        cost_w = FrequencySensitivityModel().cpu_power_for_one_percent_w(50.0)
        assert 0.2 <= cost_w <= 1.0

    def test_gfx_and_cpu_domains_both_supported(self):
        assert power_for_frequency_increase_w(18.0, DomainKind.CORE0) > 0.0
        assert power_for_frequency_increase_w(18.0, DomainKind.GFX) > 0.0

    def test_frequency_increase_inverts_power_cost(self):
        model = FrequencySensitivityModel()
        budget_w = model.power_for_frequency_increase_w(18.0, 0.05, DomainKind.CORE0)
        recovered = model.frequency_increase_for_power(18.0, budget_w, DomainKind.CORE0)
        assert recovered == pytest.approx(0.05, rel=1e-3)

    def test_frequency_increase_capped_at_max_frequency(self):
        model = FrequencySensitivityModel()
        increase = model.frequency_increase_for_power(4.0, 100.0, DomainKind.CORE0)
        # 0.9 GHz sustained -> at most 4.0 GHz, i.e. +344 %.
        assert increase == pytest.approx(4.0 / 0.9 - 1.0, rel=1e-6)

    def test_zero_budget_means_zero_increase(self):
        model = FrequencySensitivityModel()
        assert model.frequency_increase_for_power(18.0, 0.0) == 0.0


class TestBudgetBreakdown:
    def test_worst_pdn_is_ivr_at_low_tdp_and_mbvr_at_high_tdp(self):
        assert worst_case_pdn_loss(4.0)["worst"] == "IVR"
        assert worst_case_pdn_loss(50.0)["worst"] == "MBVR"

    def test_cpu_share_grows_with_tdp(self):
        low = budget_breakdown_for_tdp(4.0).cpu_fraction
        high = budget_breakdown_for_tdp(50.0).cpu_fraction
        assert high > low

    def test_pdn_loss_at_least_a_fifth_of_the_budget(self):
        # Fig. 2(b): PDN loss is 25 % or more at every TDP for the worst PDN.
        for tdp in (4.0, 18.0, 50.0):
            assert budget_breakdown_for_tdp(tdp).pdn_loss_fraction > 0.20


class TestPerformanceModel:
    @pytest.fixture(scope="class")
    def model(self):
        return PerformanceModel(baseline_pdn=IvrPdn())

    def test_baseline_performance_is_unity(self, model):
        benchmark = SPEC_CPU2006_BENCHMARKS[-1]
        result = model.evaluate(IvrPdn(), benchmark, 4.0)
        assert result.relative_performance == pytest.approx(1.0)

    def test_mbvr_and_ldo_beat_ivr_significantly_at_4w(self, model):
        # Fig. 7: >22 % average improvement at 4 W.
        for pdn in (MbvrPdn(), LdoPdn()):
            average = model.average_relative_performance(pdn, SPEC_CPU2006_BENCHMARKS, 4.0)
            assert average > 1.15

    def test_low_scalability_benchmarks_gain_less(self, model):
        low_scal = SPEC_CPU2006_BENCHMARKS[0]   # 433.milc
        high_scal = SPEC_CPU2006_BENCHMARKS[-1]  # 416.gamess
        low = model.evaluate(MbvrPdn(), low_scal, 4.0).relative_performance
        high = model.evaluate(MbvrPdn(), high_scal, 4.0).relative_performance
        assert high > low

    def test_mbvr_loses_to_ivr_at_50w(self, model):
        average = model.average_relative_performance(MbvrPdn(), SPEC_CPU2006_BENCHMARKS, 50.0)
        assert average < 1.0

    def test_graphics_suite_uses_gfx_domain(self, model):
        result = model.evaluate(MbvrPdn(), THREEDMARK06_BENCHMARKS[0], 4.0)
        assert result.relative_performance > 1.0

    def test_compare_pdns_returns_all_names(self, model):
        table = model.compare_pdns(
            [IvrPdn(), MbvrPdn(), LdoPdn()], SPEC_CPU2006_BENCHMARKS[:5], 18.0
        )
        assert set(table) == {"IVR", "MBVR", "LDO"}

    def test_idle_benchmark_rejected(self, model):
        from repro.util.errors import ModelDomainError
        from repro.workloads.base import Benchmark

        idle = Benchmark("idle", WorkloadType.IDLE, 0.1, 0.1)
        with pytest.raises(ModelDomainError):
            model.evaluate(MbvrPdn(), idle, 4.0)
