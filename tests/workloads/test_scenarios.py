"""Tests for the scenario trace-generator registry."""

import pytest

from repro.power.power_states import PackageCState
from repro.util.errors import ConfigurationError
from repro.workloads.base import WorkloadTrace
from repro.sim.engine import telemetry_profile
from repro.workloads.scenarios import (
    DEFAULT_SEED,
    ScenarioSpec,
    available_scenarios,
    build_scenario_trace,
    get_scenario,
    register_scenario,
)

EXPECTED_SCENARIOS = (
    "bursty-interactive",
    "idle-heavy-mobile",
    "sustained-compute",
    "mixed-compute-graphics",
    "thermally-throttled",
    "race-to-idle",
    "dvfs-ladder",
    "duty-cycled-background",
)


class TestRegistry:
    def test_builtin_scenarios_registered_in_order(self):
        assert available_scenarios() == EXPECTED_SCENARIOS

    def test_get_scenario_has_summary(self):
        for name in available_scenarios():
            spec = get_scenario(name)
            assert spec.name == name
            assert spec.summary

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("quantum-annealing")

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("race-to-idle")
        with pytest.raises(ConfigurationError, match="already registered"):
            register_scenario(spec)

    def test_custom_registration_and_replace(self):
        def build(rng):
            return build_scenario_trace("race-to-idle")

        spec = ScenarioSpec(name="custom-test", summary="test only", build=build)
        try:
            register_scenario(spec)
            assert "custom-test" in available_scenarios()
            register_scenario(spec, replace=True)  # idempotent with replace
        finally:
            from repro.workloads import scenarios

            scenarios._SCENARIOS.pop("custom-test", None)


class TestTraceGeneration:
    @pytest.mark.parametrize("name", EXPECTED_SCENARIOS)
    def test_traces_are_valid_and_timed(self, name):
        trace = build_scenario_trace(name)
        assert isinstance(trace, WorkloadTrace)
        assert trace.name == name
        total_residency = sum(phase.residency for phase in trace.phases)
        assert total_residency == pytest.approx(1.0)
        # Every phase carries an explicit duration (the simulator never needs
        # the residency fallback for scenario traces).
        assert all(phase.duration_s is not None for phase in trace.phases)
        assert all(phase.duration_s > 0.0 for phase in trace.phases)

    @pytest.mark.parametrize("name", EXPECTED_SCENARIOS)
    def test_same_seed_reproduces_the_trace_exactly(self, name):
        assert build_scenario_trace(name, seed=7) == build_scenario_trace(name, seed=7)

    def test_different_seeds_differ(self):
        first = build_scenario_trace("bursty-interactive", seed=1)
        second = build_scenario_trace("bursty-interactive", seed=2)
        assert first != second

    def test_default_seed_is_stable_constant(self):
        assert build_scenario_trace("race-to-idle") == build_scenario_trace(
            "race-to-idle", seed=DEFAULT_SEED
        )

    def test_duty_cycled_background_has_three_distinct_operating_points(self):
        trace = build_scenario_trace("duty-cycled-background")
        distinct = {
            (phase.power_state, phase.benchmark, phase.duration_s)
            for phase in trace.phases
        }
        assert len(distinct) == 3

    def test_dvfs_ladder_revisits_every_operating_point(self):
        trace = build_scenario_trace("dvfs-ladder")
        active = [p.benchmark for p in trace.phases if p.benchmark is not None]
        assert len(active) == 18  # 9 steps up + 9 down
        assert active == active[:9] + list(reversed(active[:9]))


class TestTelemetryProfile:
    def test_one_snapshot_per_nonzero_phase(self):
        trace = build_scenario_trace("idle-heavy-mobile")
        snapshots = telemetry_profile(trace, tdp_w=18.0)
        assert len(snapshots) == len(trace.phases)
        assert all(snapshot.tdp_w == 18.0 for snapshot in snapshots)

    def test_active_snapshots_carry_benchmark_features(self):
        trace = build_scenario_trace("sustained-compute")
        snapshots = telemetry_profile(trace, tdp_w=18.0)
        for phase, snapshot in zip(trace.phases, snapshots):
            assert snapshot.power_state is phase.power_state
            if phase.benchmark is not None:
                assert snapshot.application_ratio == pytest.approx(
                    phase.benchmark.application_ratio
                )
                assert snapshot.workload_type is phase.benchmark.workload_type

    def test_matches_the_simulator_emissions(self):
        """The profile helper predicts exactly what the PMU hook emits."""
        from repro.pdn.ivr import IvrPdn
        from repro.sim.engine import IntervalSimulator
        from repro.soc.pmu import PowerManagementUnit

        trace = build_scenario_trace("bursty-interactive")
        pmu = PowerManagementUnit(tdp_w=18.0)
        emitted = []
        pmu.add_telemetry_listener(emitted.append)
        IntervalSimulator(tdp_w=18.0).run(trace, IvrPdn(), pmu=pmu)
        assert emitted == telemetry_profile(trace, tdp_w=18.0)

    def test_idle_phases_use_power_state_profile(self):
        trace = build_scenario_trace("idle-heavy-mobile")
        snapshots = telemetry_profile(trace, tdp_w=18.0)
        deep_idle = [
            snapshot
            for snapshot in snapshots
            if snapshot.power_state is PackageCState.C8
        ]
        assert deep_idle
