"""Tests for the workload substrate (suites, traces, generators)."""

import pytest

from repro.pdn.ivr import IvrPdn
from repro.pdn.mbvr import MbvrPdn
from repro.power.domains import WorkloadType
from repro.power.power_states import PackageCState
from repro.util.errors import ConfigurationError
from repro.workloads.base import Benchmark, WorkloadPhase, WorkloadTrace
from repro.workloads.battery_life import BATTERY_LIFE_WORKLOADS, battery_life_suite
from repro.workloads.graphics import THREEDMARK06_BENCHMARKS
from repro.workloads.spec_cpu2006 import (
    SPEC_CPU2006_BENCHMARKS,
    average_performance_scalability,
    spec_cpu2006_suite,
)
from repro.workloads.synthetic import SyntheticTraceGenerator, power_virus_benchmark


class TestBenchmarkAndTrace:
    def test_benchmark_validation(self):
        with pytest.raises(ConfigurationError):
            Benchmark("", WorkloadType.CPU_SINGLE_THREAD, 0.5, 0.5)
        with pytest.raises(ConfigurationError):
            Benchmark("x", WorkloadType.CPU_SINGLE_THREAD, 1.5, 0.5)
        with pytest.raises(ConfigurationError):
            Benchmark("x", WorkloadType.CPU_SINGLE_THREAD, 0.5, 0.0)

    def test_active_c0_phase_requires_a_benchmark(self):
        with pytest.raises(ConfigurationError):
            WorkloadPhase(power_state=PackageCState.C0, residency=1.0)

    def test_trace_residencies_must_sum_to_one(self):
        phase = WorkloadPhase(power_state=PackageCState.C8, residency=0.5)
        with pytest.raises(ConfigurationError):
            WorkloadTrace(name="bad", phases=(phase,))

    def test_steady_state_trace(self):
        benchmark = SPEC_CPU2006_BENCHMARKS[0]
        trace = WorkloadTrace.steady_state(benchmark)
        assert trace.active_residency == pytest.approx(1.0)
        assert trace.phases[0].benchmark is benchmark

    def test_phase_workload_type_and_ar(self):
        idle = WorkloadPhase(power_state=PackageCState.C6, residency=1.0)
        assert idle.workload_type is WorkloadType.IDLE
        assert idle.application_ratio == 0.0


class TestSpecSuite:
    def test_suite_has_29_benchmarks(self):
        assert len(SPEC_CPU2006_BENCHMARKS) == 29

    def test_fig7_ordering_is_ascending_scalability(self):
        scalabilities = [b.performance_scalability for b in SPEC_CPU2006_BENCHMARKS]
        assert scalabilities == sorted(scalabilities)
        assert SPEC_CPU2006_BENCHMARKS[0].name == "433.milc"
        assert SPEC_CPU2006_BENCHMARKS[-1].name == "416.gamess"

    def test_application_ratios_in_validation_range(self):
        for benchmark in SPEC_CPU2006_BENCHMARKS:
            assert 0.40 <= benchmark.application_ratio <= 0.80

    def test_multi_threaded_variant(self):
        rate = spec_cpu2006_suite(multi_threaded=True)
        assert all(b.workload_type is WorkloadType.CPU_MULTI_THREAD for b in rate)
        assert len(rate) == 29

    def test_average_scalability_reasonable(self):
        assert 0.5 < average_performance_scalability() < 0.8


class TestGraphicsSuite:
    def test_all_graphics_type(self):
        assert all(b.workload_type is WorkloadType.GRAPHICS for b in THREEDMARK06_BENCHMARKS)

    def test_high_scalability(self):
        assert all(b.performance_scalability >= 0.7 for b in THREEDMARK06_BENCHMARKS)


class TestBatteryLifeWorkloads:
    def test_four_workloads_with_paper_residencies(self):
        suite = battery_life_suite()
        assert len(suite) == 4
        residencies = {
            workload.name: workload.residencies[PackageCState.C0_MIN] for workload in suite
        }
        assert residencies["video_playback"] == pytest.approx(0.10)
        assert residencies["video_conferencing"] == pytest.approx(0.20)
        assert residencies["web_browsing"] == pytest.approx(0.30)
        assert residencies["light_gaming"] == pytest.approx(0.40)

    def test_residencies_sum_to_one(self):
        for workload in BATTERY_LIFE_WORKLOADS:
            assert sum(workload.residencies.values()) == pytest.approx(1.0)

    def test_average_power_is_positive_and_pdn_dependent(self):
        video = BATTERY_LIFE_WORKLOADS[0]
        ivr_power = video.average_power_w(IvrPdn())
        mbvr_power = video.average_power_w(MbvrPdn())
        assert ivr_power > 0.0
        assert mbvr_power < ivr_power  # Observation 3

    def test_trace_conversion(self):
        trace = BATTERY_LIFE_WORKLOADS[0].trace()
        assert trace.active_residency == pytest.approx(0.10)


class TestSyntheticGenerator:
    def test_generation_is_deterministic_per_seed(self):
        first = SyntheticTraceGenerator(seed=3).benchmarks(10)
        second = SyntheticTraceGenerator(seed=3).benchmarks(10)
        assert [b.application_ratio for b in first] == [b.application_ratio for b in second]

    def test_different_seeds_differ(self):
        first = SyntheticTraceGenerator(seed=3).benchmarks(10)
        second = SyntheticTraceGenerator(seed=4).benchmarks(10)
        assert [b.application_ratio for b in first] != [b.application_ratio for b in second]

    def test_ars_within_requested_range(self):
        population = SyntheticTraceGenerator(seed=1, ar_range=(0.4, 0.8)).benchmarks(50)
        assert all(0.4 <= b.application_ratio <= 0.8 for b in population)

    def test_mixed_population_covers_three_types(self):
        population = SyntheticTraceGenerator(seed=1).mixed_population(5)
        types = {b.workload_type for b in population}
        assert types == {
            WorkloadType.CPU_SINGLE_THREAD,
            WorkloadType.CPU_MULTI_THREAD,
            WorkloadType.GRAPHICS,
        }

    def test_power_virus_has_unit_ar(self):
        assert power_virus_benchmark().application_ratio == 1.0

    def test_bursty_trace_structure(self):
        generator = SyntheticTraceGenerator(seed=1)
        benchmark = generator.benchmarks(1)[0]
        trace = generator.bursty_trace("bursty", benchmark, active_residency=0.4, phase_count=10)
        assert trace.active_residency == pytest.approx(0.4)
        assert len(trace.phases) == 10

    def test_bursty_trace_validation(self):
        generator = SyntheticTraceGenerator(seed=1)
        benchmark = generator.benchmarks(1)[0]
        with pytest.raises(ConfigurationError):
            generator.bursty_trace("bad", benchmark, active_residency=0.4, phase_count=3)
        with pytest.raises(ConfigurationError):
            generator.bursty_trace("bad", benchmark, active_residency=1.5)
