"""Benchmark E-FIG5: regenerate the Fig. 5 loss-breakdown bars."""

from repro.experiments import fig5_loss_breakdown as fig5


def test_bench_fig5_loss_breakdown(benchmark):
    records = benchmark(fig5.loss_breakdown)
    by_key = {(r["pdn"], r["tdp_w"]): r for r in records}
    # VR inefficiency dominates at 4 W and is largest for the IVR PDN.
    assert by_key[("IVR", 4.0)]["vr_inefficiency"] > by_key[("MBVR", 4.0)]["vr_inefficiency"]
    assert by_key[("IVR", 4.0)]["vr_inefficiency"] > by_key[("LDO", 4.0)]["vr_inefficiency"]
    # Compute-rail conduction loss grows with TDP much faster for MBVR/LDO
    # than for IVR (Fig. 5's key message).
    for pdn in ("MBVR", "LDO"):
        assert (
            by_key[(pdn, 50.0)]["conduction_compute"]
            > 3.0 * by_key[(pdn, 4.0)]["conduction_compute"]
        )
        assert (
            by_key[(pdn, 50.0)]["conduction_compute"]
            > by_key[("IVR", 50.0)]["conduction_compute"]
        )
    # Line plots: MBVR/LDO chip input current well above IVR's; load-lines
    # match Table 2 (2.5x and 1.25x the IVR input rail).
    assert by_key[("MBVR", 50.0)]["normalised_input_current"] > 1.3
    assert by_key[("LDO", 50.0)]["normalised_input_current"] > 1.3
    assert by_key[("MBVR", 18.0)]["compute_loadline_mohm"] == 2.5
    assert by_key[("LDO", 18.0)]["compute_loadline_mohm"] == 1.25
