"""Benchmark E-FIG4: regenerate the Fig. 4 validation grid and accuracy table."""

from repro.experiments import fig4_validation as fig4


def test_bench_fig4_etee_grid(benchmark):
    records = benchmark(fig4.etee_grid)
    by_key = {
        (r["pdn"], r["workload_type"], r["tdp_w"], r["application_ratio"]): r["etee"]
        for r in records
    }
    cpu = "cpu_multi_thread"
    # Panel (d) vs (f): IVR worst at 4 W, best of the three at 50 W.
    assert by_key[("IVR", cpu, 4.0, 0.6)] < by_key[("MBVR", cpu, 4.0, 0.6)]
    assert by_key[("IVR", cpu, 50.0, 0.6)] > by_key[("MBVR", cpu, 50.0, 0.6)]
    # MBVR ETEE increases with AR (the load-line effect).
    assert by_key[("MBVR", cpu, 18.0, 0.8)] > by_key[("MBVR", cpu, 18.0, 0.4)]


def test_bench_fig4_power_states(benchmark):
    records = benchmark(fig4.power_state_grid)
    by_key = {(r["pdn"], r["power_state"]) for r in records}
    assert ("IVR", "C0_MIN") in by_key and ("LDO", "C8") in by_key
    ivr = {r["power_state"]: r["etee"] for r in records if r["pdn"] == "IVR"}
    mbvr = {r["power_state"]: r["etee"] for r in records if r["pdn"] == "MBVR"}
    # Observation 3: IVR trails MBVR in every battery-life state.
    assert all(ivr[state] < mbvr[state] for state in ivr)


def test_bench_fig4_model_accuracy(benchmark):
    accuracy = benchmark(fig4.model_accuracy, trace_count_per_type=10)
    # Paper (Sec. 4.3): ~99 % average accuracy per PDN; the synthetic measured
    # reference adds parameter jitter, so >= 95 % is required here.
    for stats in accuracy.values():
        assert stats["average_accuracy"] > 0.95
