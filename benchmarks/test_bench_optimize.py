"""Benchmark E-OPT: the design-space exploration subsystem.

Three benchmark columns track the optimizer's perf trajectory:

* ``optimize`` / cold grid serial -- an exhaustive grid search over a
  figure-scale space (5 topologies x 3 tolerance-band sizings, ~2600
  analytic evaluation units through the default four objectives) with the
  memo caches disabled: the seed-equivalent cost of one full search.
* ``optimize`` / cold grid process -- the same search through the process
  backend with 4 jobs; the outcome is asserted bit-identical.
* ``optimize`` / warm random search -- a seeded random search against a
  pre-warmed evaluator: every candidate resolves from the memo caches.
  Gated by ``tools/check_bench_regression.py`` relative to the cold serial
  column from the same run, so the gate tracks the search overhead on top
  of the caches rather than the runner's absolute speed.
"""

import pytest

from repro.optimize import (
    CandidateEvaluator,
    DesignSpace,
    resolve_objectives,
    run_optimization,
)

#: The figure-scale search space: every topology x tolerance-band sizing.
SPACE_PDNS = ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
TOLERANCE_BANDS_V = (0.015, 0.020, 0.025)

#: Candidates of the space (and rows of the grid-search result set).
CANDIDATES = len(SPACE_PDNS) * len(TOLERANCE_BANDS_V)

#: Budget and seed of the warm random-search column.
RANDOM_BUDGET = 10
SEED = 0

#: Worker count of the parallel benchmark column (the acceptance point).
PARALLEL_JOBS = 4


def _space() -> DesignSpace:
    return (
        DesignSpace.builder("bench-optimize")
        .pdns(*SPACE_PDNS)
        .parameter("ivr_tolerance_band_v", *TOLERANCE_BANDS_V)
        .build()
    )


@pytest.fixture(scope="module")
def grid_reference():
    """The cached-engine grid outcome the cold runs must reproduce."""
    return run_optimization(_space())


@pytest.mark.benchmark(group="optimize")
def test_bench_optimize_grid_cold_serial(benchmark, grid_reference):
    evaluator = CandidateEvaluator(resolve_objectives(), enable_cache=False)
    evaluator.spot.pdn("FlexWatts").predictor  # calibrate outside the timing
    outcome = benchmark.pedantic(
        run_optimization,
        args=(_space(),),
        kwargs={"evaluator": evaluator},
        rounds=1,
        iterations=1,
    )
    assert len(outcome.results) == CANDIDATES
    assert outcome.results == grid_reference.results
    assert outcome.knee_pdn == "FlexWatts"


@pytest.mark.benchmark(group="optimize")
def test_bench_optimize_grid_cold_process(benchmark, grid_reference):
    """The parallel cold search: units sharded across 4 worker processes.

    Worker start-up (fork plus predictor calibration) is part of the timed
    section -- the real cost of ``optimize --jobs 4`` -- so the comparison
    against the serial column is honest; the outcome is asserted
    bit-identical regardless.
    """
    evaluator = CandidateEvaluator(resolve_objectives(), enable_cache=False)
    outcome = benchmark.pedantic(
        run_optimization,
        args=(_space(),),
        kwargs={
            "evaluator": evaluator,
            "executor": "process",
            "jobs": PARALLEL_JOBS,
        },
        rounds=1,
        iterations=1,
    )
    assert len(outcome.results) == CANDIDATES
    assert outcome.results == grid_reference.results


@pytest.mark.benchmark(group="optimize")
def test_bench_optimize_random_warm(benchmark, grid_reference):
    """The memo-cached search: every candidate served as cache hits.

    A full grid run warms the shared evaluator first, so the timed random
    search measures pure search/Pareto overhead on top of the caches --
    the quantity the CI regression gate tracks.
    """
    evaluator = CandidateEvaluator(resolve_objectives())
    run_optimization(_space(), evaluator=evaluator)  # warm every candidate
    outcome = benchmark(
        run_optimization,
        _space(),
        strategy="random",
        budget=RANDOM_BUDGET,
        seed=SEED,
        evaluator=evaluator,
    )
    assert len(outcome.results) == RANDOM_BUDGET
    assert evaluator.spot.cache_info().hits > 0
    front_pdns = set(grid_reference.front.unique("pdn"))
    assert "FlexWatts" in front_pdns
