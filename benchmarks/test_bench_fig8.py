"""Benchmark E-FIG8: regenerate the five panels of the headline evaluation."""

from repro.experiments import fig8_evaluation as fig8


def test_bench_fig8a_spec_sweep(benchmark, spot):
    records = benchmark(fig8.spec_performance_sweep, spot=spot)
    by_tdp = {record["tdp_w"]: record for record in records}
    # FlexWatts ~+22 % over IVR at 4 W, never below IVR, and it tracks IVR's
    # advantage over MBVR at high TDPs.
    assert by_tdp[4.0]["FlexWatts"] > 1.18
    assert all(record["FlexWatts"] >= record["IVR"] - 1e-9 for record in records)
    assert by_tdp[50.0]["FlexWatts"] > by_tdp[50.0]["MBVR"]


def test_bench_fig8b_graphics_sweep(benchmark, spot):
    records = benchmark(fig8.graphics_performance_sweep, spot=spot)
    by_tdp = {record["tdp_w"]: record for record in records}
    # Paper: up to ~25 % improvement over IVR at low TDPs for 3DMark06.
    assert by_tdp[4.0]["FlexWatts"] > 1.20
    assert by_tdp[50.0]["FlexWatts"] >= by_tdp[50.0]["LDO"]


def test_bench_fig8c_battery_life(benchmark, spot):
    table = benchmark(fig8.battery_life_power, spot=spot)
    video = table["video_playback"]
    # Paper: ~11 % lower video-playback power than IVR; MBVR/LDO similar.
    assert 0.80 < video["FlexWatts"] < 0.95
    assert video["MBVR"] < 0.95
    assert all(powers["FlexWatts"] <= powers["LDO"] + 0.02 for powers in table.values())


def test_bench_fig8d_bom(benchmark, spot):
    records = benchmark(fig8.bom_sweep, spot=spot)
    for record in records:
        # MBVR/LDO several times the IVR BOM; FlexWatts/I+MBVR comparable.
        assert record["MBVR"] > 1.8
        assert record["LDO"] > 1.4
        assert record["FlexWatts"] < 1.6
        assert abs(record["FlexWatts"] - record["I+MBVR"]) < 0.05


def test_bench_fig8e_board_area(benchmark, spot):
    records = benchmark(fig8.board_area_sweep, spot=spot)
    for record in records:
        assert record["MBVR"] > 1.8
        assert record["LDO"] > 1.4
        assert record["FlexWatts"] < 1.6
