"""Benchmark E-DISK: the persistent on-disk evaluation store.

The ``disk-cache`` group tracks the cost trajectory of the two-tier cache
(ISSUE 5): the same study grid evaluated

* **cold** -- a fresh engine writing through to an empty cache directory
  (model evaluation plus the pickling/fsync overhead of populating disk);
* **disk-warm** -- a *fresh* engine (empty memory tier, as every new
  process starts) against the directory the cold run populated: every unit
  must be served from disk without recomputation;
* both repeated through the process backend, where a warm directory lets
  the parent serve the whole grid before any worker is spawned.

``tools/check_bench_regression.py`` gates the warm column relative to the
cold column from the same run, so CI catches a disk tier whose hits start
costing like misses (lost promotion into the memory tier, per-hit
re-validation, lock contention) independent of runner speed.
"""

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.analysis.study import Study

GRID_TDPS_W = (4.0, 8.0, 18.0, 50.0)
GRID_ARS = (0.40, 0.56, 0.80)
GRID_POWER_STATES = ("C0_MIN", "C2", "C8")

#: rows = (TDPs x ARs active + TDPs x states idle) x 5 PDNs
GRID_ROWS = (
    len(GRID_TDPS_W) * len(GRID_ARS) + len(GRID_TDPS_W) * len(GRID_POWER_STATES)
) * 5

#: Worker count of the parallel benchmark columns.
PARALLEL_JOBS = 4


def _grid_study() -> Study:
    return (
        Study.builder("disk-cache-grid")
        .tdps(*GRID_TDPS_W)
        .application_ratios(*GRID_ARS)
        .power_states(*GRID_POWER_STATES)
        .build()
    )


@pytest.fixture(scope="module")
def grid_reference():
    """The cache-less ResultSet every disk-backed run must reproduce."""
    return PdnSpot().run(_grid_study())


@pytest.fixture(scope="module")
def warm_cache_dir(tmp_path_factory, grid_reference):
    """A cache directory fully populated by one cold run."""
    directory = tmp_path_factory.mktemp("disk-warm")
    spot = PdnSpot(disk_cache=directory)
    assert spot.run(_grid_study()) == grid_reference
    assert spot.disk_cache.stats().entries == GRID_ROWS
    return directory


@pytest.mark.benchmark(group="disk-cache")
def test_bench_disk_cache_cold(benchmark, tmp_path_factory, grid_reference):
    """Cold serial grid writing through to an empty directory."""
    study = _grid_study()

    def setup():
        spot = PdnSpot(disk_cache=tmp_path_factory.mktemp("disk-cold"))
        _ = spot.pdn("FlexWatts").predictor  # calibrate outside the timing
        return (spot,), {}

    def run(spot):
        return spot.run(study)

    resultset = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert resultset == grid_reference


@pytest.mark.benchmark(group="disk-cache")
def test_bench_disk_cache_warm(benchmark, warm_cache_dir, grid_reference):
    """A fresh engine serving the whole grid from the warm directory."""
    study = _grid_study()

    def setup():
        # A fresh engine per round: cold memory tier, exactly like a new
        # process attaching the warm directory.
        return (PdnSpot(disk_cache=warm_cache_dir),), {}

    def run(spot):
        resultset = spot.run(study)
        assert spot.cache_info().misses == 0  # nothing recomputed
        return resultset

    resultset = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert resultset == grid_reference


@pytest.mark.benchmark(group="disk-cache-parallel")
def test_bench_disk_cache_cold_process(benchmark, tmp_path_factory, grid_reference):
    """Cold process-parallel grid: workers compute, merge-back populates disk."""
    study = _grid_study()

    spots = []

    def setup():
        spots.append(PdnSpot(disk_cache=tmp_path_factory.mktemp("disk-cold-proc")))
        return (spots[-1],), {}

    def run(spot):
        return spot.run(study, executor="process", jobs=PARALLEL_JOBS)

    resultset = benchmark.pedantic(run, setup=setup, rounds=1, iterations=1)
    assert resultset == grid_reference
    # Outside the timed region: the merge-back populated the whole store.
    assert spots[-1].disk_cache.stats().entries == GRID_ROWS


@pytest.mark.benchmark(group="disk-cache-parallel")
def test_bench_disk_cache_warm_process(benchmark, warm_cache_dir, grid_reference):
    """Warm directory + process backend: served before any worker spawns."""
    study = _grid_study()

    def setup():
        return (PdnSpot(disk_cache=warm_cache_dir),), {}

    def run(spot):
        resultset = spot.run(study, executor="process", jobs=PARALLEL_JOBS)
        assert spot.cache_info().misses == 0  # no dispatch, no pool start-up
        return resultset

    resultset = benchmark.pedantic(run, setup=setup, rounds=3, iterations=1)
    assert resultset == grid_reference
