"""Benchmark E-FIG3: regenerate the Fig. 3 off-chip VR efficiency curves."""

from repro.experiments import fig3_vr_efficiency as fig3


def _lookup(records, power_state, vout, iout):
    return next(
        r["efficiency"]
        for r in records
        if r["power_state"] == power_state and r["vout_v"] == vout and r["iout_a"] == iout
    )


def test_bench_fig3_vr_efficiency_curves(benchmark):
    records = benchmark(fig3.vr_efficiency_curves)
    # Shape 1: efficiency rises from light load to the multi-amp plateau.
    assert _lookup(records, "PS0", 0.6, 5.0) > _lookup(records, "PS0", 0.6, 0.1)
    # Shape 2: higher output voltages are uniformly more efficient.
    assert _lookup(records, "PS0", 1.8, 2.0) > _lookup(records, "PS0", 0.6, 2.0)
    # Shape 3: PS1 wins at light load, PS0 wins at heavy load.
    assert _lookup(records, "PS1", 0.6, 0.1) > _lookup(records, "PS0", 0.6, 0.1)
    assert _lookup(records, "PS0", 0.6, 10.0) > _lookup(records, "PS1", 0.6, 10.0)
    # Shape 4: everything stays inside the measured 45-93 % envelope.
    assert all(0.4 <= r["efficiency"] <= 0.93 for r in records)
