"""Ablation benchmarks for the design choices called out in DESIGN.md.

These go beyond the paper's figures: they quantify how much each FlexWatts
design ingredient contributes, using the same models.

* **Load-line sharing penalty** -- FlexWatts' hybrid regulator shares routing
  between its two modes, raising the effective load-line; the ablation sweeps
  the penalty factor to confirm the <1-2 % sensitivity claimed in Sec. 7.1.
* **Predictor versus oracle** -- Algorithm 1 uses firmware tables instead of
  evaluating both modes exactly; the ablation measures the ETEE given up.
* **Dedicated SA/IO rails** -- the difference between FlexWatts' IVR-Mode
  (I+MBVR topology) and the plain IVR PDN isolates key idea #2.
"""

from repro.core.flexwatts import FlexWattsPdn
from repro.core.hybrid_vr import PdnMode
from repro.pdn.base import OperatingConditions
from repro.pdn.ivr import IvrPdn
from repro.power.domains import WorkloadType
from repro.power.parameters import default_parameters


def _conditions(tdp_w, workload=WorkloadType.CPU_MULTI_THREAD, ar=0.56):
    return OperatingConditions.for_active_workload(tdp_w, ar, workload)


def _loadline_sensitivity():
    """ETEE at 4 W / 50 W for a sweep of the shared-routing load-line penalty."""
    results = {}
    for scale in (1.0, 1.12, 1.25, 1.5):
        params = default_parameters().with_overrides(flexwatts_loadline_scale=scale)
        pdn = FlexWattsPdn(params)
        results[scale] = {
            4.0: pdn.evaluate_in_mode(_conditions(4.0), PdnMode.LDO_MODE).etee,
            50.0: pdn.evaluate_in_mode(_conditions(50.0), PdnMode.IVR_MODE).etee,
        }
    return results


def test_bench_ablation_loadline_sharing_penalty(benchmark):
    results = benchmark(_loadline_sensitivity)
    # The shared-routing penalty costs well under 2 % ETEE even at a 1.5x
    # load-line, supporting the paper's "<1 % performance loss" claim for the
    # actual (much smaller) penalty.
    for tdp in (4.0, 50.0):
        assert results[1.0][tdp] - results[1.5][tdp] < 0.02
        assert results[1.0][tdp] >= results[1.12][tdp] >= results[1.5][tdp]


def _predictor_vs_oracle(flexwatts):
    """ETEE forfeited by the table-driven predictor relative to an oracle."""
    worst_gap = 0.0
    for tdp in (4.0, 10.0, 18.0, 25.0, 36.0, 50.0):
        for workload in (WorkloadType.CPU_MULTI_THREAD, WorkloadType.GRAPHICS):
            conditions = _conditions(tdp, workload)
            chosen = flexwatts.evaluate(conditions).etee
            best = max(
                flexwatts.evaluate_in_mode(conditions, PdnMode.IVR_MODE).etee,
                flexwatts.evaluate_in_mode(conditions, PdnMode.LDO_MODE).etee,
            )
            worst_gap = max(worst_gap, best - chosen)
    return worst_gap


def test_bench_ablation_predictor_vs_oracle(benchmark, spot):
    flexwatts = spot.pdn("FlexWatts")
    worst_gap = benchmark(_predictor_vs_oracle, flexwatts)
    # The firmware-table predictor gives up at most half an ETEE point
    # anywhere on the evaluation grid.
    assert worst_gap < 0.005


def _sa_io_rail_contribution():
    """ETEE gain of dedicated SA/IO rails (FlexWatts IVR-Mode vs plain IVR)."""
    flexwatts = FlexWattsPdn()
    ivr = IvrPdn()
    gains = {}
    for tdp in (4.0, 18.0, 50.0):
        conditions = _conditions(tdp)
        gains[tdp] = (
            flexwatts.evaluate_in_mode(conditions, PdnMode.IVR_MODE).etee
            - ivr.evaluate(conditions).etee
        )
    return gains


def test_bench_ablation_dedicated_sa_io_rails(benchmark):
    gains = benchmark(_sa_io_rail_contribution)
    # Removing the SA/IO two-stage conversion helps at every TDP and helps
    # most at low TDP, where SA/IO are a large share of the package power.
    assert all(gain > 0.0 for gain in gains.values())
    assert gains[4.0] > gains[50.0]
