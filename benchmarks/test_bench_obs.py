"""Benchmark ``obs-overhead``: what the observability layer costs.

Two columns over the same fig7-scale cold batch as the ``vectorized-eval``
group (16 TDPs x 20 ARs x 3 workload types x 5 PDNs = 4800 evaluation
units, cache disabled, units built outside the timed section):

* ``tracing_disabled`` -- the production default: every layer is
  instrumented through :mod:`repro.obs` but no tracer is installed, so
  span call sites take the shared no-op path and only bound counters tick.
* ``tracing_enabled`` -- the ``--trace`` configuration: a live tracer
  records every span/instant the batch emits.

CI gates the enabled/disabled mean ratio against the committed baseline
with ``tools/check_bench_regression.py --threshold 1.05``: live tracing's
relative cost may not regress by more than 5%, and the disabled column's
committed mean documents that the no-op path stays indistinguishable from
the uninstrumented ``vectorized-eval`` columns (compare the two groups in
the gate's shared-benchmark printout).
"""

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.analysis.study import Study
from repro.obs.trace import install_tracer, tracing_enabled, uninstall_tracer

#: The fig7-scale grid (keep in sync with ``test_bench_vectorized.py``).
TDPS_W = tuple(4.0 + index * (46.0 / 15.0) for index in range(16))
ARS = tuple(0.40 + index * 0.02 for index in range(20))
WORKLOADS = ("cpu_single_thread", "cpu_multi_thread", "graphics")
ROWS = len(TDPS_W) * len(ARS) * len(WORKLOADS) * 5


def _study() -> Study:
    return (
        Study.builder("obs-overhead-grid")
        .tdps(*TDPS_W)
        .application_ratios(*ARS)
        .workload_types(*WORKLOADS)
        .build()
    )


@pytest.fixture(scope="module")
def obs_fig7_units():
    """The 4800 ``(pdn_name, conditions, overrides)`` units, built once."""
    spot = PdnSpot()
    return [
        (name, scenario.conditions(), scenario.overrides)
        for scenario in _study().scenarios
        for name in spot.pdns
    ]


@pytest.fixture(scope="module")
def obs_reference(obs_fig7_units):
    """Reference evaluations (also primes the pure-function memos)."""
    return PdnSpot().evaluate_units(obs_fig7_units)


@pytest.mark.benchmark(group="obs-overhead")
def test_bench_obs_tracing_disabled(benchmark, obs_fig7_units, obs_reference):
    """The instrumented cold batch with tracing off (the no-op span path)."""
    spot = PdnSpot(enable_cache=False)
    _ = spot.pdn("FlexWatts").predictor  # calibrate outside the timing
    assert not tracing_enabled()
    evaluations = benchmark.pedantic(
        spot.evaluate_units,
        args=(obs_fig7_units,),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert len(evaluations) == ROWS
    assert evaluations == obs_reference


@pytest.mark.benchmark(group="obs-overhead")
def test_bench_obs_tracing_enabled(benchmark, obs_fig7_units, obs_reference):
    """The same cold batch with a live tracer recording every span."""
    spot = PdnSpot(enable_cache=False)
    _ = spot.pdn("FlexWatts").predictor  # calibrate outside the timing
    tracer = install_tracer()
    try:
        evaluations = benchmark.pedantic(
            spot.evaluate_units,
            args=(obs_fig7_units,),
            rounds=3,
            iterations=1,
            warmup_rounds=1,
        )
    finally:
        uninstall_tracer()
    assert len(evaluations) == ROWS
    assert evaluations == obs_reference
    assert len(tracer) > 0  # the batch actually recorded spans
