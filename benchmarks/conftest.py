"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` module regenerates one figure/table of the paper using
``pytest-benchmark`` so that both the *result* (asserted shapes, recorded in
EXPERIMENTS.md) and the *cost* of regenerating it are tracked.
"""

from __future__ import annotations

import pytest

from repro.analysis.pdnspot import PdnSpot


@pytest.fixture(scope="session")
def spot():
    """A PDNspot instance shared by all benchmarks (predictor built once)."""
    instance = PdnSpot()
    # Force the FlexWatts predictor calibration outside the timed sections.
    _ = instance.pdn("FlexWatts").predictor
    return instance
