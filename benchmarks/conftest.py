"""Shared fixtures for the benchmark harness.

Each ``test_bench_*`` module regenerates one figure/table of the paper using
``pytest-benchmark`` so that both the *result* (asserted shapes, recorded in
EXPERIMENTS.md) and the *cost* of regenerating it are tracked.
``test_bench_sweep`` additionally tracks the cached-vs-uncached cost of a
full study grid through ``PdnSpot.run``.
"""

from __future__ import annotations

import pytest

from repro.analysis.pdnspot import PdnSpot


@pytest.fixture(scope="session")
def spot():
    """A PDNspot instance shared by all benchmarks (predictor built once).

    The shared instance also shares its evaluation cache across benchmark
    rounds, which is representative of real figure regeneration; benchmarks
    that need cold-cache numbers build their own ``PdnSpot(enable_cache=False)``.
    """
    instance = PdnSpot()
    # Force the FlexWatts predictor calibration outside the timed sections.
    _ = instance.pdn("FlexWatts").predictor
    return instance
