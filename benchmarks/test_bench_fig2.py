"""Benchmark E-FIG2: regenerate Fig. 2(a) and Fig. 2(b)."""

from repro.experiments import fig2_performance_model as fig2


def test_bench_fig2a_frequency_sensitivity(benchmark):
    records = benchmark(fig2.frequency_sensitivity_table)
    costs = {record["tdp_w"]: record["cpu_mw_per_percent"] for record in records}
    # Paper: ~9 mW per +1 % frequency at 4 W, growing monotonically with TDP.
    assert 4.0 <= costs[4.0] <= 15.0
    assert costs[50.0] > 20.0 * costs[4.0]
    assert list(costs.values()) == sorted(costs.values())


def test_bench_fig2b_budget_breakdown(benchmark):
    records = benchmark(fig2.budget_breakdown_table)
    by_tdp = {record["tdp_w"]: record for record in records}
    # CPU share of the budget grows with TDP; PDN loss stays above ~20 %.
    assert by_tdp[50.0]["cpu_fraction"] > by_tdp[4.0]["cpu_fraction"]
    assert all(record["pdn_loss_fraction"] > 0.2 for record in records)
    # The worst-loss PDN flips from IVR at low TDP to MBVR at high TDP.
    assert by_tdp[4.0]["worst_pdn"] == "IVR"
    assert by_tdp[50.0]["worst_pdn"] == "MBVR"
