"""Benchmark E-FIG7: regenerate the per-benchmark SPEC CPU2006 figure at 4 W."""

from repro.experiments import fig7_spec_4w as fig7


def test_bench_fig7_spec_performance(benchmark):
    records = benchmark(fig7.spec_performance_at_4w)
    averages = fig7.average_performance(records)
    # Paper: MBVR/LDO/FlexWatts average >22 % over IVR at 4 W; FlexWatts within
    # ~1 % of the best static PDN; I+MBVR a ~6 % improvement.
    assert averages["IVR"] == 1.0
    assert averages["MBVR"] > 1.18
    assert averages["LDO"] > 1.18
    assert averages["FlexWatts"] > 1.18
    assert averages["FlexWatts"] > max(averages["MBVR"], averages["LDO"]) - 0.015
    assert 1.0 < averages["I+MBVR"] < averages["FlexWatts"]
    # Per-benchmark: gains correlate with performance scalability (Fig. 7's
    # sort order), so the most scalable benchmark gains more than the least.
    first, last = records[0], records[-1]
    assert last["FlexWatts"] > first["FlexWatts"]
