"""Benchmark E-SWEEP: the pdnspot-cache study grid.

Runs a full TDP x AR x power-state study through ``PdnSpot.run`` twice --
once with the evaluation cache disabled (the seed-equivalent cost of
regenerating the grid from scratch) and once warm -- so the cache's speedup
is tracked in the perf trajectory alongside the figure benchmarks.
"""

from repro.analysis.pdnspot import PdnSpot
from repro.analysis.study import Study

GRID_TDPS_W = (4.0, 8.0, 18.0, 50.0)
GRID_ARS = (0.40, 0.56, 0.80)
GRID_POWER_STATES = ("C0_MIN", "C2", "C8")

#: rows = (TDPs x ARs active + TDPs x states idle) x 5 PDNs
GRID_ROWS = (len(GRID_TDPS_W) * len(GRID_ARS) + len(GRID_TDPS_W) * len(GRID_POWER_STATES)) * 5


def _grid_study() -> Study:
    return (
        Study.builder("pdnspot-cache-grid")
        .tdps(*GRID_TDPS_W)
        .application_ratios(*GRID_ARS)
        .power_states(*GRID_POWER_STATES)
        .build()
    )


def test_bench_sweep_grid_uncached(benchmark):
    spot = PdnSpot(enable_cache=False)
    study = _grid_study()
    spot.run(study)  # pay the FlexWatts predictor calibration outside the timing
    resultset = benchmark(spot.run, study)
    assert len(resultset) == GRID_ROWS


def test_bench_sweep_grid_cached(benchmark):
    spot = PdnSpot()
    study = _grid_study()
    spot.run(study)  # warm the cache (and calibrate the predictor) once
    resultset = benchmark(spot.run, study)
    assert len(resultset) == GRID_ROWS
    info = spot.cache_info()
    assert info.hits > 0
    assert info.size == GRID_ROWS  # one entry per distinct (pdn, conditions)
