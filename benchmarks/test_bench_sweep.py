"""Benchmark E-SWEEP: the pdnspot-cache study grid and the executor backends.

Four benchmark groups track the sweep engine's perf trajectory:

* ``sweep-grid`` -- the original TDP x AR x power-state study through
  ``PdnSpot.run`` with the cache disabled (seed-equivalent cost) and warm
  (the cached-grid benchmark gated by ``tools/check_bench_regression.py``).
* ``sweep-warm-parallel`` -- the same warm grid through the thread and
  process backends, asserting the parallel ``ResultSet`` equals serial.
* ``sweep-cold-fig7-scale`` -- a figure-regeneration-scale grid (~4800
  evaluation units) cold, serial versus the process backend with 4 jobs; on
  a multi-core runner the process column should be measurably faster, and
  the results are asserted identical either way.
* ``sim-scenarios`` -- the trace-driven scenario grid of the ``sim``
  experiment (8 scenarios x 2 TDPs x 5 PDNs, ~3000 simulated phases) through
  ``SimEngine.run``: cold serial versus the process backend, plus the warm
  (memo-cached) run gated against the cold serial column by
  ``tools/check_bench_regression.py``.
"""

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.analysis.study import Study
from repro.experiments.sim_scenarios import scenario_study
from repro.sim.study import SimEngine

GRID_TDPS_W = (4.0, 8.0, 18.0, 50.0)
GRID_ARS = (0.40, 0.56, 0.80)
GRID_POWER_STATES = ("C0_MIN", "C2", "C8")

#: rows = (TDPs x ARs active + TDPs x states idle) x 5 PDNs
GRID_ROWS = (len(GRID_TDPS_W) * len(GRID_ARS) + len(GRID_TDPS_W) * len(GRID_POWER_STATES)) * 5

#: The figure-regeneration-scale cold grid: 16 TDPs x 20 ARs x 3 workload
#: types = 960 scenarios, 4800 evaluation units across the five PDNs.
FIG7_SCALE_TDPS_W = tuple(4.0 + index * (46.0 / 15.0) for index in range(16))
FIG7_SCALE_ARS = tuple(0.40 + index * 0.02 for index in range(20))
FIG7_SCALE_WORKLOADS = ("cpu_single_thread", "cpu_multi_thread", "graphics")
FIG7_SCALE_ROWS = len(FIG7_SCALE_TDPS_W) * len(FIG7_SCALE_ARS) * len(FIG7_SCALE_WORKLOADS) * 5

#: Worker count of the parallel benchmark columns (the acceptance point).
PARALLEL_JOBS = 4


def _grid_study() -> Study:
    return (
        Study.builder("pdnspot-cache-grid")
        .tdps(*GRID_TDPS_W)
        .application_ratios(*GRID_ARS)
        .power_states(*GRID_POWER_STATES)
        .build()
    )


def _fig7_scale_study() -> Study:
    return (
        Study.builder("fig7-scale-grid")
        .tdps(*FIG7_SCALE_TDPS_W)
        .application_ratios(*FIG7_SCALE_ARS)
        .workload_types(*FIG7_SCALE_WORKLOADS)
        .build()
    )


@pytest.fixture(scope="module")
def fig7_scale_reference():
    """The serial fig7-scale ResultSet the parallel runs must reproduce."""
    return PdnSpot().run(_fig7_scale_study())


@pytest.mark.benchmark(group="sweep-grid")
def test_bench_sweep_grid_uncached(benchmark):
    spot = PdnSpot(enable_cache=False)
    study = _grid_study()
    spot.run(study)  # pay the FlexWatts predictor calibration outside the timing
    resultset = benchmark(spot.run, study)
    assert len(resultset) == GRID_ROWS


@pytest.mark.benchmark(group="sweep-grid")
def test_bench_sweep_grid_cached(benchmark):
    spot = PdnSpot()
    study = _grid_study()
    spot.run(study)  # warm the cache (and calibrate the predictor) once
    resultset = benchmark(spot.run, study)
    assert len(resultset) == GRID_ROWS
    info = spot.cache_info()
    assert info.hits > 0
    assert info.size == GRID_ROWS  # one entry per distinct (pdn, conditions)


@pytest.mark.benchmark(group="sweep-warm-parallel")
@pytest.mark.parametrize("backend", ["thread", "process"])
def test_bench_sweep_grid_cached_parallel(benchmark, backend):
    """A warm grid through a parallel backend equals the serial result."""
    spot = PdnSpot()
    study = _grid_study()
    serial = spot.run(study)  # warm the cache serially
    resultset = benchmark(spot.run, study, executor=backend, jobs=PARALLEL_JOBS)
    assert resultset == serial


@pytest.mark.benchmark(group="sweep-cold-fig7-scale")
def test_bench_sweep_fig7_scale_cold_serial(benchmark, fig7_scale_reference):
    spot = PdnSpot(enable_cache=False)
    study = _fig7_scale_study()
    _ = spot.pdn("FlexWatts").predictor  # calibrate outside the timing
    resultset = benchmark.pedantic(spot.run, args=(study,), rounds=1, iterations=1)
    assert len(resultset) == FIG7_SCALE_ROWS
    assert resultset == fig7_scale_reference


#: rows of the scenario benchmark grid = 8 scenarios x 2 TDPs x 5 PDNs.
SIM_SCENARIO_ROWS = 8 * 2 * 5


@pytest.fixture(scope="module")
def sim_scenario_reference():
    """The serial scenario ResultSet the parallel run must reproduce."""
    return SimEngine().run(scenario_study())


@pytest.mark.benchmark(group="sim-scenarios")
def test_bench_sim_scenarios_cold_serial(benchmark, sim_scenario_reference):
    engine = SimEngine(enable_cache=False)
    study = scenario_study()
    engine.prime_for_execution([("FlexWatts", study.points[0], ())])
    resultset = benchmark.pedantic(engine.run, args=(study,), rounds=1, iterations=1)
    assert len(resultset) == SIM_SCENARIO_ROWS
    assert resultset == sim_scenario_reference


@pytest.mark.benchmark(group="sim-scenarios")
def test_bench_sim_scenarios_cold_process(benchmark, sim_scenario_reference):
    """The parallel cold run: simulations sharded across 4 worker processes.

    As with the fig7-scale column, worker start-up (fork plus predictor
    calibration) is part of the timed section -- the real cost of
    ``simulate --jobs 4`` -- so the comparison against the serial column is
    honest; the results are asserted bit-identical regardless.
    """
    engine = SimEngine(enable_cache=False)
    study = scenario_study()
    resultset = benchmark.pedantic(
        engine.run,
        args=(study,),
        kwargs={"executor": "process", "jobs": PARALLEL_JOBS},
        rounds=1,
        iterations=1,
    )
    assert len(resultset) == SIM_SCENARIO_ROWS
    assert resultset == sim_scenario_reference


@pytest.mark.benchmark(group="sim-scenarios")
def test_bench_sim_scenarios_warm(benchmark, sim_scenario_reference):
    """The memo-cached grid: every simulation served as a cache hit.

    Gated by ``tools/check_bench_regression.py`` relative to the cold serial
    column from the same run, so the gate tracks the simulation memo's
    efficiency rather than the runner's absolute speed.
    """
    engine = SimEngine()
    study = scenario_study()
    engine.run(study)  # warm the simulation memo (and the phase cache) once
    resultset = benchmark(engine.run, study)
    assert resultset == sim_scenario_reference
    info = engine.cache_info()
    assert info.hits > 0
    assert info.size == SIM_SCENARIO_ROWS


@pytest.mark.benchmark(group="sweep-cold-fig7-scale")
def test_bench_sweep_fig7_scale_cold_process(benchmark, fig7_scale_reference):
    """The parallel cold run: sharded across 4 worker processes.

    Worker start-up (fork plus predictor calibration) is part of the timed
    section -- that is the real cost a user pays for ``--jobs 4`` -- so the
    speedup over the serial column is honest; on a single-CPU runner this
    column is expected to be slower, on multi-core CI measurably faster.
    """
    spot = PdnSpot(enable_cache=False)
    study = _fig7_scale_study()
    resultset = benchmark.pedantic(
        spot.run,
        args=(study,),
        kwargs={"executor": "process", "jobs": PARALLEL_JOBS},
        rounds=1,
        iterations=1,
    )
    assert len(resultset) == FIG7_SCALE_ROWS
    assert resultset == fig7_scale_reference
