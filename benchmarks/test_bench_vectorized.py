"""Benchmark ``vectorized-eval``: the columnar core versus the per-point oracle.

Three columns over the same figure-regeneration-scale cold batch (16 TDPs x
20 ARs x 3 workload types x 5 PDNs = 4800 evaluation units, cache disabled,
units built outside the timed section so the columns measure the evaluation
core, not grid materialisation):

* ``columnar_serial`` -- the redesigned batch path: one vectorized NumPy
  pass per ``(pdn, conditions-batch)`` through ``PdnSpot.evaluate_units``.
* ``per_point_serial`` -- the scalar reference oracle (``columnar=False``),
  i.e. the pre-redesign cost of the same batch.
* ``columnar_process`` -- the columnar path sharded across 4 worker
  processes, whole column blocks per chunk.

Every column is asserted bit-identical to the default engine's evaluations;
the columnar/per-point ratio is gated in CI by
``tools/check_bench_regression.py --max-ratio 0.1`` (the columnar path must
stay at least 10x faster).
"""

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.analysis.study import Study

#: The fig7-scale grid (keep in sync with ``test_bench_sweep.py``).
TDPS_W = tuple(4.0 + index * (46.0 / 15.0) for index in range(16))
ARS = tuple(0.40 + index * 0.02 for index in range(20))
WORKLOADS = ("cpu_single_thread", "cpu_multi_thread", "graphics")
ROWS = len(TDPS_W) * len(ARS) * len(WORKLOADS) * 5

PARALLEL_JOBS = 4


def _study() -> Study:
    return (
        Study.builder("vectorized-eval-grid")
        .tdps(*TDPS_W)
        .application_ratios(*ARS)
        .workload_types(*WORKLOADS)
        .build()
    )


@pytest.fixture(scope="module")
def fig7_scale_units():
    """The 4800 ``(pdn_name, conditions, overrides)`` units, built once."""
    spot = PdnSpot()
    return [
        (name, scenario.conditions(), scenario.overrides)
        for scenario in _study().scenarios
        for name in spot.pdns
    ]


@pytest.fixture(scope="module")
def vectorized_reference(fig7_scale_units):
    """The default-engine evaluations every timed column must reproduce.

    Building it also primes the module-level pure-function memos (peak
    powers, exact pow/exp tables, calibration conditions), so the timed
    columns measure steady-state engine cost, not first-import warm-up.
    """
    return PdnSpot().evaluate_units(fig7_scale_units)


@pytest.mark.benchmark(group="vectorized-eval")
def test_bench_vectorized_columnar_serial(
    benchmark, fig7_scale_units, vectorized_reference
):
    spot = PdnSpot(enable_cache=False)
    _ = spot.pdn("FlexWatts").predictor  # calibrate outside the timing
    evaluations = benchmark.pedantic(
        spot.evaluate_units,
        args=(fig7_scale_units,),
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert spot.columnar_enabled
    assert len(evaluations) == ROWS
    assert evaluations == vectorized_reference


@pytest.mark.benchmark(group="vectorized-eval")
def test_bench_vectorized_per_point_serial(
    benchmark, fig7_scale_units, vectorized_reference
):
    """The scalar oracle: what the same cold batch cost before the redesign."""
    spot = PdnSpot(enable_cache=False, columnar=False)
    _ = spot.pdn("FlexWatts").predictor  # calibrate outside the timing
    evaluations = benchmark.pedantic(
        spot.evaluate_units, args=(fig7_scale_units,), rounds=1, iterations=1
    )
    assert not spot.columnar_enabled
    assert len(evaluations) == ROWS
    assert evaluations == vectorized_reference


@pytest.mark.benchmark(group="vectorized-eval")
def test_bench_vectorized_columnar_process(
    benchmark, fig7_scale_units, vectorized_reference
):
    """Columnar sharding: whole column blocks per worker-process chunk.

    Worker start-up (fork plus predictor calibration) is part of the timed
    section, as in the other cold process columns; on a single-CPU runner
    this is expected to trail the serial columnar column.
    """
    spot = PdnSpot(enable_cache=False)
    evaluations = benchmark.pedantic(
        spot.evaluate_units,
        args=(fig7_scale_units,),
        kwargs={"executor": "process", "jobs": PARALLEL_JOBS},
        rounds=1,
        iterations=1,
    )
    assert len(evaluations) == ROWS
    assert evaluations == vectorized_reference
