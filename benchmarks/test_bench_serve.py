"""Benchmark SERVE: concurrent coalesced load against independent cold runs.

The daemon's value proposition is quantified here: ``N`` clients requesting
the *same* sweep grid at the same time should cost roughly **one** grid
evaluation (plus HTTP overhead), not ``N`` -- the coalescer single-flights
every distinct cache key and the engines' caches serve the overlap.

Two benchmark columns track this in the ``serve-coalescing`` group:

* ``test_bench_serve_independent_cold_runs`` -- the counterfactual: the
  same grid evaluated ``N`` times by ``N`` independent cold engines (what
  ``N`` separate CLI invocations without a daemon would pay).
* ``test_bench_serve_concurrent_coalesced`` -- ``N`` concurrent HTTP
  clients against one fresh daemon.

``tools/check_bench_regression.py`` gates the coalesced column relative to
the independent column from the same run (their ratio cancels machine
speed), and ``test_serve_coalescing_beats_independent_runs`` asserts
in-suite that the coalesced burst is outright faster than the independent
runs on the same machine.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis.pdnspot import PdnSpot
from repro.serve import ServeClient, start_in_thread
from repro.serve.protocol import build_sweep_study

#: Simultaneous clients of the coalesced columns.
N_CLIENTS = 4

#: The shared grid every client requests: 3 TDPs x 2 ARs x 5 PDNs.
SERVE_TDPS = (4.0, 18.0, 50.0)
SERVE_ARS = (0.40, 0.56)
SERVE_ROWS = len(SERVE_TDPS) * len(SERVE_ARS) * 5


def _cold_run():
    """One full cold evaluation of the shared grid (fresh engine, no cache)."""
    return PdnSpot(enable_cache=False).run(build_sweep_study(SERVE_TDPS, SERVE_ARS))


def _concurrent_burst(handle):
    """Fire the same grid from ``N_CLIENTS`` threads against one daemon."""
    client = ServeClient(handle.base_url, timeout_s=300.0)
    with ThreadPoolExecutor(max_workers=N_CLIENTS) as pool:
        futures = [
            pool.submit(
                client.sweep, tdps=list(SERVE_TDPS), ars=list(SERVE_ARS)
            )
            for _ in range(N_CLIENTS)
        ]
        return [future.result() for future in futures]


@pytest.fixture(scope="module")
def serve_reference():
    """The grid ResultSet every client (local or remote) must reproduce."""
    return PdnSpot().run(build_sweep_study(SERVE_TDPS, SERVE_ARS))


@pytest.mark.benchmark(group="serve-coalescing")
def test_bench_serve_independent_cold_runs(benchmark, serve_reference):
    """The no-daemon counterfactual: N separate cold evaluations.

    Each iteration pays N full engine builds, predictor calibrations and
    grid evaluations -- the real cost of N clients without a shared warm
    process.
    """
    results = benchmark.pedantic(
        lambda: [_cold_run() for _ in range(N_CLIENTS)], rounds=1, iterations=1
    )
    assert len(results) == N_CLIENTS
    for resultset in results:
        assert resultset == serve_reference


@pytest.mark.benchmark(group="serve-coalescing")
def test_bench_serve_concurrent_coalesced(benchmark, serve_reference):
    """N concurrent clients against one fresh daemon: one evaluation per key.

    Gated by ``tools/check_bench_regression.py`` relative to the
    independent column from the same run; the coalescer counters prove the
    single-flight (every key dispatched once, the other ``N-1`` requests
    per key attached to in-flight futures).
    """
    handles = []

    def setup():
        handle = start_in_thread()
        handles.append(handle)
        return (handle,), {}

    responses = benchmark.pedantic(_concurrent_burst, setup=setup, rounds=1, iterations=1)
    try:
        assert len(responses) == N_CLIENTS
        for response in responses:
            assert response.status == "ok"
            assert response.resultset == serve_reference
        stats = handles[-1].server._sweep_coalescer.stats
        assert stats.units_requested == SERVE_ROWS * N_CLIENTS
        assert stats.keys_dispatched == SERVE_ROWS
        assert stats.keys_coalesced == SERVE_ROWS * (N_CLIENTS - 1)
    finally:
        for handle in handles:
            handle.stop()


def test_serve_coalescing_beats_independent_runs(serve_reference):
    """The headline claim, asserted outright on this machine.

    A coalesced N-client burst must beat N independent cold runs -- the
    daemon evaluates the grid once while the counterfactual pays it N
    times, so the margin is expected to be several-fold, far above timer
    noise.
    """
    started = time.monotonic()
    independent = [_cold_run() for _ in range(N_CLIENTS)]
    independent_s = time.monotonic() - started
    for resultset in independent:
        assert resultset == serve_reference

    with start_in_thread() as handle:
        started = time.monotonic()
        responses = _concurrent_burst(handle)
        coalesced_s = time.monotonic() - started
        for response in responses:
            assert response.resultset == serve_reference

    assert coalesced_s < independent_s, (
        f"coalesced burst ({coalesced_s:.2f} s) should beat "
        f"{N_CLIENTS} independent cold runs ({independent_s:.2f} s)"
    )
