#!/usr/bin/env python3
"""Quickstart: compare the five PDN architectures with PDNspot.

Builds the default PDNspot instance (Table 2 parameters), evaluates the five
PDN architectures at a low-TDP and a high-TDP operating point, and prints the
end-to-end efficiency (ETEE), the SPEC CPU2006 performance comparison and the
cost comparison -- the condensed version of the paper's headline results.

Run with::

    python examples/quickstart.py
"""

from repro import PdnSpot, Study
from repro.analysis.reporting import format_table
from repro.workloads.spec_cpu2006 import SPEC_CPU2006_BENCHMARKS

PDN_ORDER = ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")


def main() -> None:
    spot = PdnSpot()

    # 1. End-to-end power-conversion efficiency at a tablet-class and a
    #    desktop-class TDP (CPU-intensive workload, AR = 56 %), as one
    #    declarative study run through the cached engine.
    results = spot.run(Study.over_tdps((4.0, 18.0, 50.0)))
    rows = [
        [tdp_w] + [etee[name] for name in PDN_ORDER]
        for tdp_w, etee in results.pivot("tdp_w", "pdn", "etee").items()
    ]
    print(format_table(["TDP (W)"] + list(PDN_ORDER), rows, title="ETEE (CPU workload)"))
    print()

    # 2. SPEC CPU2006 performance, normalised to the IVR PDN (Fig. 7 / 8a).
    rows = []
    for tdp_w in (4.0, 18.0, 50.0):
        performance = spot.compare_performance(SPEC_CPU2006_BENCHMARKS, tdp_w)
        rows.append([tdp_w] + [performance[name] for name in PDN_ORDER])
    print(
        format_table(
            ["TDP (W)"] + list(PDN_ORDER),
            rows,
            title="SPEC CPU2006 average performance (normalised to IVR)",
        )
    )
    print()

    # 3. Battery life: average power of a video-playback workload (Fig. 8c).
    battery = spot.compare_battery_life_power()["video_playback"]
    reference = battery["IVR"]
    rows = [[name, battery[name], battery[name] / reference] for name in PDN_ORDER]
    print(
        format_table(
            ["PDN", "avg power (W)", "vs IVR"],
            rows,
            title="Video playback average power",
        )
    )
    print()

    # 4. Cost and area at 18 W (Fig. 8d-e).
    bom = spot.compare_bom(18.0)
    area = spot.compare_board_area(18.0)
    rows = [[name, bom[name], area[name]] for name in PDN_ORDER]
    print(
        format_table(
            ["PDN", "BOM vs IVR", "area vs IVR"], rows, title="Cost and board area at 18 W"
        )
    )


if __name__ == "__main__":
    main()
