#!/usr/bin/env python3
"""Scenario sweep: trace-driven simulation as a first-class study.

This example runs a :class:`~repro.sim.study.SimStudy` -- a grid of
registered scenario traces x TDPs -- through the executor engine, then uses
the :class:`~repro.analysis.resultset.ResultSet` toolkit on the simulation
output:

1. simulate every registered scenario on every PDN at a tablet-class and a
   desktop-class TDP, in parallel, and check the parallel run is
   bit-identical to the serial one (the PR guarantee),
2. normalise the total energy to the IVR baseline and pivot it into a
   scenario x PDN table, and
3. drill into one adaptive run's per-phase records to show where FlexWatts
   switches modes.

Run with::

    python examples/scenario_sweep.py
"""

from repro.analysis.reporting import format_table
from repro.sim import SIM_METRIC_COLUMNS, SimEngine, SimStudy, phases_to_resultset
from repro.sim.study import SimPoint
from repro.workloads.scenarios import available_scenarios

PDN_ORDER = ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
TDPS_W = (4.0, 50.0)


def build_study() -> SimStudy:
    """Every registered scenario at a low and a high TDP, all five PDNs."""
    return (
        SimStudy.builder("scenario-sweep")
        .scenarios(*available_scenarios())
        .tdps(*TDPS_W)
        .pdns(*PDN_ORDER)
        .build()
    )


def main() -> None:
    """Run the sweep and print the normalised-energy and mode-switch tables."""
    engine = SimEngine()
    study = build_study()

    # 1. Parallel simulation, checked bit-identical against serial.  The
    #    executor deduplicates, shards and reassembles in canonical order, so
    #    only the wall clock may differ.
    results = engine.run(study, executor="thread", jobs=4)
    assert engine.run(study) == results, "parallel must equal serial"

    # 2. Energy normalised to the IVR PDN, one row per scenario x TDP.
    normalised = results.normalize_to(
        "IVR", value_columns=("total_energy_j",), metric_columns=SIM_METRIC_COLUMNS
    )
    table = {}
    for record in normalised.to_records():
        key = (record["scenario"], record["tdp_w"])
        table.setdefault(key, {})[record["pdn"]] = record["total_energy_j"]
    rows = [
        [scenario, tdp_w] + [cells[pdn] for pdn in PDN_ORDER]
        for (scenario, tdp_w), cells in table.items()
    ]
    print(
        format_table(
            ["scenario", "TDP (W)"] + list(PDN_ORDER),
            rows,
            title="Total energy normalised to IVR",
        )
    )
    print()

    # 3. Inside one adaptive run: per-phase power and the mode trajectory.
    point = SimPoint(scenario="bursty-interactive", tdp_w=50.0)
    run = engine.evaluate("FlexWatts", point)
    phases = phases_to_resultset(run)
    switches = phases.filter(mode_switched=True)
    print(
        f"FlexWatts on {point.scenario!r} at {point.tdp_w:g} W: "
        f"{run.mode_switch_count} mode switches, "
        f"{1e6 * run.mode_switch_time_s:.0f} us total switch time, "
        f"{1e3 * run.mode_switch_energy_j:.2f} mJ switch energy"
    )
    rows = [
        [
            record["phase_index"],
            record["power_state"],
            record["pdn_mode"],
            record["supply_power_w"],
        ]
        for record in switches.to_records()[:10]
    ]
    print(
        format_table(
            ["phase", "power state", "new mode", "supply power (W)"],
            rows,
            title="First ten phases that switched mode",
        )
    )


if __name__ == "__main__":
    main()
