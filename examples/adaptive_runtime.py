#!/usr/bin/env python3
"""FlexWatts' adaptive behaviour over a time-varying workload.

This example runs the interval simulator on a bursty workload -- alternating
between a compute-heavy SPEC phase and deep package idle -- at a high TDP, and
compares:

* the static IVR, MBVR and LDO PDNs,
* FlexWatts with its Algorithm-1 predictor (paying the 94 us mode-switch flow
  whenever the selected mode changes), and
* FlexWatts pinned to each mode, to show what the adaptivity buys.

Run with::

    python examples/adaptive_runtime.py
"""

from repro import FlexWattsPdn, PdnMode, build_pdn
from repro.analysis.reporting import format_table
from repro.core.mode_switching import ModeSwitchController
from repro.sim.engine import IntervalSimulator
from repro.workloads.spec_cpu2006 import SPEC_CPU2006_BENCHMARKS
from repro.workloads.synthetic import SyntheticTraceGenerator

TDP_W = 36.0


def build_trace():
    """A bursty trace: 60 % heavy compute, 40 % deep idle, 50 ms phases."""
    generator = SyntheticTraceGenerator(seed=42)
    benchmark = SPEC_CPU2006_BENCHMARKS[-1]  # 416.gamess: highly scalable
    return generator.bursty_trace(
        "bursty_gamess",
        benchmark,
        active_residency=0.6,
        phase_duration_s=50e-3,
        phase_count=40,
    )


def main() -> None:
    trace = build_trace()
    simulator = IntervalSimulator(tdp_w=TDP_W)

    # Static baselines.
    results = {
        name: simulator.run(trace, build_pdn(name)) for name in ("IVR", "MBVR", "LDO")
    }

    # Adaptive FlexWatts (boots in IVR-Mode, switches as the predictor sees fit).
    adaptive = FlexWattsPdn(
        switch_controller=ModeSwitchController(initial_mode=PdnMode.IVR_MODE, min_residency_s=10e-3)
    )
    results["FlexWatts (adaptive)"] = simulator.run(trace, adaptive)

    # FlexWatts pinned to each mode, for reference.  A trivial predictor that
    # always returns the pinned mode keeps the hybrid PDN from ever switching.
    class _PinnedPredictor:
        def __init__(self, mode: PdnMode):
            self._mode = mode

        def predict(self, telemetry) -> PdnMode:
            return self._mode

    for mode in (PdnMode.IVR_MODE, PdnMode.LDO_MODE):
        pinned = FlexWattsPdn(
            predictor=_PinnedPredictor(mode),
            switch_controller=ModeSwitchController(initial_mode=mode),
        )
        results[f"FlexWatts ({mode.value})"] = simulator.run(trace, pinned)

    reference_energy = results["IVR"].total_energy_j
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                result.average_power_w,
                result.total_energy_j,
                result.total_energy_j / reference_energy,
                result.mode_switch_count,
                result.mode_switch_time_s * 1e6,
            ]
        )
    print(
        format_table(
            ["PDN", "avg power (W)", "energy (J)", "vs IVR", "switches", "switch time (us)"],
            rows,
            title=f"Bursty workload at {TDP_W:.0f} W TDP ({trace.name})",
        )
    )
    adaptive_result = results["FlexWatts (adaptive)"]
    print()
    print(
        "Adaptive FlexWatts spent "
        f"{adaptive_result.time_in_mode_s(PdnMode.IVR_MODE) * 1e3:.0f} ms in IVR-Mode and "
        f"{adaptive_result.time_in_mode_s(PdnMode.LDO_MODE) * 1e3:.0f} ms in LDO-Mode, "
        f"switching {adaptive_result.mode_switch_count} times "
        f"({adaptive_result.mode_switch_time_s * 1e6:.0f} us of switch-flow time, "
        f"{adaptive_result.mode_switch_energy_j * 1e3:.2f} mJ of switch energy)."
    )


if __name__ == "__main__":
    main()
