#!/usr/bin/env python3
"""Battery-life study: average power of light workloads on each PDN.

Reproduces the Fig. 8(c) analysis in more detail: for each of the four
battery-life workloads (video playback, video conferencing, web browsing,
light gaming) the average platform power is computed for every PDN, the
per-power-state contributions are broken down, and an estimated battery life
is derived for a typical 50 Wh notebook battery.

Run with::

    python examples/battery_life_study.py
"""

from repro import PdnSpot, OperatingConditions
from repro.analysis.reporting import format_table
from repro.workloads.battery_life import BATTERY_LIFE_WORKLOADS

PDN_ORDER = ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
BATTERY_CAPACITY_WH = 50.0
#: Platform power drawn outside the processor PDN (display, storage, Wi-Fi),
#: assumed PDN-independent.  Used only for the battery-life translation.
REST_OF_PLATFORM_W = 1.5


def average_power_table(spot: PdnSpot) -> None:
    rows = []
    for workload in BATTERY_LIFE_WORKLOADS:
        powers = {name: workload.average_power_w(spot.pdn(name)) for name in PDN_ORDER}
        rows.append([workload.name] + [powers[name] for name in PDN_ORDER])
    print(
        format_table(
            ["workload"] + list(PDN_ORDER),
            rows,
            title="Average processor-side power (W)",
        )
    )
    print()


def per_state_breakdown(spot: PdnSpot) -> None:
    video = BATTERY_LIFE_WORKLOADS[0]
    rows = []
    for state, residency in video.residencies.items():
        conditions = OperatingConditions.for_power_state(18.0, state)
        row = [state.value, residency]
        for name in PDN_ORDER:
            row.append(spot.pdn(name).evaluate(conditions).supply_power_w * residency)
        rows.append(row)
    print(
        format_table(
            ["state", "residency"] + list(PDN_ORDER),
            rows,
            title="Video playback: per-power-state contribution to average power (W)",
        )
    )
    print()


def battery_life_table(spot: PdnSpot) -> None:
    rows = []
    for workload in BATTERY_LIFE_WORKLOADS:
        row = [workload.name]
        for name in PDN_ORDER:
            total_power = workload.average_power_w(spot.pdn(name)) + REST_OF_PLATFORM_W
            row.append(BATTERY_CAPACITY_WH / total_power)
        rows.append(row)
    print(
        format_table(
            ["workload"] + list(PDN_ORDER),
            rows,
            float_format=".1f",
            title=f"Estimated battery life (hours, {BATTERY_CAPACITY_WH:.0f} Wh battery)",
        )
    )
    print()


def main() -> None:
    spot = PdnSpot()
    average_power_table(spot)
    per_state_breakdown(spot)
    battery_life_table(spot)
    video = BATTERY_LIFE_WORKLOADS[0]
    ivr = video.average_power_w(spot.pdn("IVR"))
    flexwatts = video.average_power_w(spot.pdn("FlexWatts"))
    print(
        f"FlexWatts reduces video-playback processor power by {(1 - flexwatts / ivr) * 100:.1f}% "
        "relative to the IVR PDN (the paper reports ~11%)."
    )


if __name__ == "__main__":
    main()
