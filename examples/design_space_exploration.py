#!/usr/bin/env python3
"""Design-space exploration with PDNspot.

This example exercises the multi-dimensional exploration the paper built
PDNspot for:

1. sweep the TDP and locate the ETEE crossover point between the IVR PDN and
   the single-stage PDNs (Observation 1),
2. sweep the application ratio to show the load-line effect (Observation 2),
3. run a what-if study on a technology parameter (the regulator tolerance
   band) to see how sensitive each PDN's efficiency is to it, and
4. print the Iccmax requirements that drive the BOM/area differences.

Run with::

    python examples/design_space_exploration.py
"""

from repro import PdnSpot, Study
from repro.analysis.reporting import format_table
from repro.cost.iccmax import pdn_iccmax_summary
from repro.power.domains import WorkloadType

PDN_ORDER = ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
TDP_GRID_W = (4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0)


def tdp_sweep(spot: PdnSpot) -> None:
    """ETEE versus TDP and the IVR/MBVR crossover point."""
    results = spot.run(Study.over_tdps(TDP_GRID_W))
    etee_by_tdp = results.pivot("tdp_w", "pdn", "etee")
    rows = [
        [tdp_w] + [etee[name] for name in PDN_ORDER]
        for tdp_w, etee in etee_by_tdp.items()
    ]
    crossover = None
    previous_gap = None
    for tdp_w, etee in etee_by_tdp.items():
        gap = etee["IVR"] - etee["MBVR"]
        if previous_gap is not None and previous_gap < 0.0 <= gap:
            crossover = tdp_w
        previous_gap = gap
    print(format_table(["TDP (W)"] + list(PDN_ORDER), rows, title="ETEE vs TDP (CPU workload)"))
    if crossover is not None:
        print(f"IVR overtakes MBVR between {crossover - 10:.0f} W and {crossover:.0f} W.")
    print()


def application_ratio_sweep(spot: PdnSpot) -> None:
    """ETEE versus application ratio at 18 W (the load-line effect)."""
    results = spot.run(
        Study.over_application_ratios((0.40, 0.50, 0.60, 0.70, 0.80), 18.0)
    )
    rows = [
        [ar] + [etee[name] for name in PDN_ORDER]
        for ar, etee in results.pivot("application_ratio", "pdn", "etee").items()
    ]
    print(format_table(["AR"] + list(PDN_ORDER), rows, title="ETEE vs application ratio (18 W)"))
    print()


def tolerance_band_what_if(spot: PdnSpot) -> None:
    """What-if: halve every regulator tolerance band (one study, two variants)."""
    halved = {
        "ivr_tolerance_band_v": 0.010,
        "mbvr_tolerance_band_v": 0.010,
        "ldo_tolerance_band_v": 0.009,
    }
    study = (
        Study.builder("tolerance-band-what-if")
        .tdps(10.0)
        .parameter_grid({}, halved)
        .build()
    )
    results = spot.run(study)
    nominal = results.filter(lambda row: "parameters" not in row)
    tightened = results.filter(lambda row: "parameters" in row)
    rows = []
    for name in PDN_ORDER:
        before = nominal.filter(pdn=name).column("etee")[0]
        after = tightened.filter(pdn=name).column("etee")[0]
        rows.append([name, before, after, after - before])
    print(
        format_table(
            ["PDN", "nominal TOB", "half TOB", "delta"],
            rows,
            title="What-if: halving the regulator tolerance bands (10 W)",
        )
    )
    print()


def iccmax_requirements(spot: PdnSpot) -> None:
    """Per-rail Iccmax requirements at 50 W (the Fig. 8d-e driver)."""
    summary = pdn_iccmax_summary(spot.pdns.values(), 50.0)
    rows = []
    for pdn_name, rails in summary.items():
        for rail, iccmax in sorted(rails.items()):
            rows.append([pdn_name, rail, iccmax])
    print(
        format_table(
            ["PDN", "rail", "Iccmax (A)"],
            rows,
            float_format=".1f",
            title="Off-chip regulator Iccmax requirements at 50 W",
        )
    )


def main() -> None:
    spot = PdnSpot()
    tdp_sweep(spot)
    application_ratio_sweep(spot)
    tolerance_band_what_if(spot)
    iccmax_requirements(spot)
    graphics = spot.compare_etee(tdp_w=18.0, workload_type=WorkloadType.GRAPHICS)
    cpu = spot.compare_etee(tdp_w=18.0, workload_type=WorkloadType.CPU_MULTI_THREAD)
    print(
        "Workload-type effect at 18 W: LDO loses "
        f"{(cpu['LDO'] - graphics['LDO']) * 100:.1f} ETEE points on graphics workloads, "
        f"MBVR only {(cpu['MBVR'] - graphics['MBVR']) * 100:.1f}."
    )


if __name__ == "__main__":
    main()
