#!/usr/bin/env python3
"""Multi-objective design-space search with ``repro.optimize``.

This example walks the full optimisation workflow the subsystem provides:

1. recover the paper's design conclusion -- an exhaustive grid search over
   the five PDN topologies places the hybrid FlexWatts design on the Pareto
   front and makes it the knee-point (balanced) pick,
2. widen the space with component-sizing axes (regulator tolerance bands)
   and compare the exhaustive search against a seeded random sample and a
   seeded evolutionary refinement under a fixed candidate budget,
3. rank the evaluated candidates with a weighted scalarisation (cost-heavy
   weights pull the cheap IVR baseline ahead of the expensive MBVR/LDO
   designs while the hybrid keeps the lead), and
4. show the parallel-determinism guarantee: the same search through the
   process backend returns a bit-identical result set.

Run with::

    python examples/design_space_search.py
"""

from repro.analysis.reporting import format_table
from repro.optimize import DesignSpace, run_optimization, scalarize

#: Candidate budget shared by the sampling strategies in step 2.
BUDGET = 12
SEED = 7


def paper_conclusion() -> None:
    """Step 1: the topology-only search behind the paper's conclusion."""
    outcome = run_optimization(DesignSpace.over_pdns())
    rows = [
        [
            record["pdn"],
            record["etee"],
            record["performance"],
            record["bom_cost"],
            record["board_area_mm2"],
            "yes" if record["pareto"] else "",
        ]
        for record in outcome.results.to_records()
    ]
    print(
        format_table(
            ["PDN", "ETEE", "perf", "BOM", "area (mm^2)", "Pareto"],
            rows,
            title="Topology comparison (mean over TDPs 4/18/50 W)",
        )
    )
    print(f"Knee point (balanced pick): {outcome.knee_pdn}")
    print()


def sizing_space() -> DesignSpace:
    """The widened space of step 2: topologies x tolerance-band sizing."""
    return (
        DesignSpace.builder("tolerance-band-sizing")
        .pdns("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")
        .parameter("ivr_tolerance_band_v", 0.015, 0.020, 0.025)
        .parameter("ldo_tolerance_band_v", 0.013, 0.017)
        .build()
    )


def strategy_comparison() -> None:
    """Step 2: three strategies on the same space under one budget."""
    space = sizing_space()
    rows = []
    for strategy in ("grid", "random", "evolutionary"):
        outcome = run_optimization(
            space, strategy=strategy, budget=BUDGET, seed=SEED
        )
        rows.append(
            [
                strategy,
                len(outcome.results),
                len(outcome.front),
                outcome.knee_pdn,
            ]
        )
    print(
        format_table(
            ["strategy", "evaluated", "front size", "knee PDN"],
            rows,
            title=f"Search strategies on {space.grid_size} candidates "
            f"(budget {BUDGET}, seed {SEED})",
        )
    )
    print()


def weighted_ranking() -> None:
    """Step 3: scalarised ranking under cost-heavy weights."""
    outcome = run_optimization(DesignSpace.over_pdns())
    objectives = outcome.objectives
    scored = scalarize(
        outcome.results,
        objectives,
        weights={"bom": 3.0, "area": 3.0},
    )
    ranked = sorted(
        scored.to_records(), key=lambda record: -float(record["score"])
    )
    rows = [[record["pdn"], record["score"]] for record in ranked]
    print(
        format_table(
            ["PDN", "score"],
            rows,
            title="Cost-weighted scalarisation (BOM/area weighted 3x)",
        )
    )
    print()
    print("Default objectives:", ", ".join(o.name for o in objectives))


def parallel_determinism() -> None:
    """Step 4: the process backend reproduces the serial search bit for bit."""
    space = sizing_space()
    serial = run_optimization(space, strategy="random", budget=BUDGET, seed=SEED)
    parallel = run_optimization(
        space,
        strategy="random",
        budget=BUDGET,
        seed=SEED,
        executor="process",
        jobs=4,
    )
    print(
        "Parallel (process, 4 jobs) result set identical to serial:",
        serial.results == parallel.results,
    )


def main() -> None:
    paper_conclusion()
    strategy_comparison()
    weighted_ranking()
    parallel_determinism()


if __name__ == "__main__":
    main()
