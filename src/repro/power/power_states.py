"""Package power states (C-states) and their load profiles.

Modern client processors spend most of their time, for light workloads, in
package C-states: the compute domains are clock- or power-gated, the system
agent keeps the display and memory alive, and the board regulators drop into
their light-load power states.  The paper evaluates the PDNs in:

* ``C0_MIN`` -- active, but with the compute domains at their lowest frequency
  (the state in which a video-playback workload prepares each frame),
* ``C2`` / ``C3`` -- compute domains idle, the display controller fetching
  frame data from memory,
* ``C6`` / ``C7`` / ``C8`` -- progressively deeper idle states; in C8 only the
  display controller's local buffer is active and memory is in self-refresh.

The per-state nominal powers below follow the video-playback example of
Sec. 5 (C0_MIN = 2.5 W, C2 = 1.2 W, C8 = 0.13 W) with interpolated values for
the intermediate states, and are the same at every TDP (Sec. 7.1: battery-life
workloads have nearly the same average power regardless of TDP).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from repro.power.domains import DomainKind, DomainLoad, DEFAULT_DOMAINS
from repro.util.validation import require_fraction, require_non_negative
from repro.vr.switching import VRPowerState


class PackageCState(enum.Enum):
    """Package power states modelled by PDNspot."""

    C0 = "C0"
    C0_MIN = "C0_MIN"
    C2 = "C2"
    C3 = "C3"
    C6 = "C6"
    C7 = "C7"
    C8 = "C8"

    @property
    def is_active(self) -> bool:
        """Whether the compute domains are executing instructions."""
        return self in (PackageCState.C0, PackageCState.C0_MIN)

    @property
    def is_idle(self) -> bool:
        """Whether this is a package idle state (C2 and deeper)."""
        return not self.is_active


@dataclass(frozen=True)
class PowerStateProfile:
    """Per-domain nominal power and PDN behaviour of one package C-state.

    Attributes
    ----------
    state:
        Which package C-state this profile describes.
    domain_power_w:
        Nominal power of each domain in this state; domains absent from the
        mapping are power-gated.
    compute_voltage_v:
        Supply voltage of the compute domains while in this state (their
        minimum functional voltage when active, irrelevant when gated).
    board_vr_state:
        Power state the board regulators drop into while the package is in
        this C-state.
    application_ratio:
        Effective application ratio used for load-line guardbanding in this
        state (idle states have a low but non-zero AR because the guardband
        must still cover the wake-up current).
    """

    state: PackageCState
    domain_power_w: Dict[DomainKind, float]
    compute_voltage_v: float
    board_vr_state: VRPowerState
    application_ratio: float

    def __post_init__(self) -> None:
        for kind, power in self.domain_power_w.items():
            require_non_negative(power, f"domain_power_w[{kind}]")
        require_fraction(self.application_ratio, "application_ratio")

    @property
    def total_nominal_power_w(self) -> float:
        """Sum of the nominal power of all powered domains."""
        return sum(self.domain_power_w.values())

    def loads(self) -> List[DomainLoad]:
        """Build the six :class:`DomainLoad` objects for this power state."""
        loads: List[DomainLoad] = []
        for kind in DomainKind:
            domain = DEFAULT_DOMAINS[kind]
            power_w = self.domain_power_w.get(kind, 0.0)
            if kind in (DomainKind.SA, DomainKind.IO):
                voltage = domain.fixed_voltage_v
            else:
                voltage = self.compute_voltage_v
            loads.append(
                DomainLoad(
                    kind=kind,
                    nominal_power_w=power_w,
                    voltage_v=voltage,
                    leakage_fraction=domain.leakage_fraction,
                    active=power_w > 0.0,
                )
            )
        return loads


#: Default profiles for each package C-state, shared across TDPs.
POWER_STATE_PROFILES: Dict[PackageCState, PowerStateProfile] = {
    PackageCState.C0_MIN: PowerStateProfile(
        state=PackageCState.C0_MIN,
        domain_power_w={
            DomainKind.CORE0: 0.30,
            DomainKind.CORE1: 0.20,
            DomainKind.LLC: 0.30,
            DomainKind.GFX: 0.40,
            DomainKind.SA: 0.85,
            DomainKind.IO: 0.45,
        },
        compute_voltage_v=0.60,
        board_vr_state=VRPowerState.PS0,
        application_ratio=0.30,
    ),
    PackageCState.C2: PowerStateProfile(
        state=PackageCState.C2,
        domain_power_w={DomainKind.SA: 0.80, DomainKind.IO: 0.40},
        compute_voltage_v=0.60,
        board_vr_state=VRPowerState.PS1,
        application_ratio=0.25,
    ),
    PackageCState.C3: PowerStateProfile(
        state=PackageCState.C3,
        domain_power_w={DomainKind.SA: 0.60, DomainKind.IO: 0.30},
        compute_voltage_v=0.60,
        board_vr_state=VRPowerState.PS1,
        application_ratio=0.25,
    ),
    PackageCState.C6: PowerStateProfile(
        state=PackageCState.C6,
        domain_power_w={DomainKind.SA: 0.30, DomainKind.IO: 0.15},
        compute_voltage_v=0.60,
        board_vr_state=VRPowerState.PS3,
        application_ratio=0.20,
    ),
    PackageCState.C7: PowerStateProfile(
        state=PackageCState.C7,
        domain_power_w={DomainKind.SA: 0.17, DomainKind.IO: 0.08},
        compute_voltage_v=0.60,
        board_vr_state=VRPowerState.PS3,
        application_ratio=0.20,
    ),
    PackageCState.C8: PowerStateProfile(
        state=PackageCState.C8,
        domain_power_w={DomainKind.SA: 0.09, DomainKind.IO: 0.04},
        compute_voltage_v=0.60,
        board_vr_state=VRPowerState.PS4,
        application_ratio=0.20,
    ),
}

#: Package C-states evaluated by the battery-life / validation experiments
#: (Fig. 4(j) of the paper), in order of increasing depth.
BATTERY_LIFE_STATES = (
    PackageCState.C0_MIN,
    PackageCState.C2,
    PackageCState.C3,
    PackageCState.C6,
    PackageCState.C7,
    PackageCState.C8,
)
