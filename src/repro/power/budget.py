"""TDP power-budget management.

PDNspot assumes the system operates within a thermal-design-power limit and
that the power-management unit allocates (Sec. 3.4):

1. a power budget to the SA and IO domains, whose power is nearly constant
   across TDPs, and
2. the remaining budget to the compute domains (cores and graphics), split
   according to the running workload.

Because the budget is defined at the *package input* (what the platform can
cool), the PDN's end-to-end power-conversion efficiency (ETEE) determines how
much of the budget actually reaches the domains: a PDN with a higher ETEE
leaves more nominal power available for the compute domains, which translates
into a higher sustained frequency and more performance (Sec. 3.3).
:class:`PowerBudgetManager` implements that accounting and produces the
power-budget breakdown of Fig. 2(b).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.domains import NominalPowerCurves, WorkloadType
from repro.util.errors import ModelDomainError
from repro.util.validation import require_fraction, require_positive


@dataclass(frozen=True)
class PowerBudgetSplit:
    """How a package power budget is divided at one TDP.

    All values are in watts of *nominal* (load) power except
    ``pdn_loss_w``, which is the power dissipated inside the PDN itself.
    The identity ``sa_io_w + llc_w + compute_w + pdn_loss_w == tdp_w`` holds
    (the whole TDP is spent).
    """

    tdp_w: float
    sa_io_w: float
    llc_w: float
    compute_w: float
    pdn_loss_w: float

    @property
    def cpu_fraction(self) -> float:
        """Fraction of the TDP allocated to the compute domains (Fig. 2b)."""
        return self.compute_w / self.tdp_w

    @property
    def pdn_loss_fraction(self) -> float:
        """Fraction of the TDP lost inside the PDN (Fig. 2b)."""
        return self.pdn_loss_w / self.tdp_w

    def as_fractions(self) -> dict:
        """Return the breakdown as fractions of the TDP, keyed like Fig. 2(b)."""
        return {
            "sa_io": self.sa_io_w / self.tdp_w,
            "cpu": self.compute_w / self.tdp_w,
            "llc": self.llc_w / self.tdp_w,
            "pdn_loss": self.pdn_loss_w / self.tdp_w,
        }


class PowerBudgetManager:
    """Splits a package TDP between domains given a PDN efficiency.

    Parameters
    ----------
    curves:
        The nominal-power-versus-TDP curves used for the fixed allocations
        (SA, IO, LLC).  Defaults to the Table 2 curves.
    """

    def __init__(self, curves: NominalPowerCurves = None):
        self._curves = curves if curves is not None else NominalPowerCurves()

    @property
    def curves(self) -> NominalPowerCurves:
        """The nominal-power curves used by this manager."""
        return self._curves

    def split(
        self,
        tdp_w: float,
        etee: float,
        workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
    ) -> PowerBudgetSplit:
        """Split ``tdp_w`` of package budget under a PDN with efficiency ``etee``.

        The total nominal power the domains may consume is ``tdp_w * etee``
        (the rest is PDN loss); the SA, IO and LLC allocations are taken from
        the nominal-power curves and whatever remains goes to the compute
        domains (cores for CPU workloads, mostly graphics for graphics
        workloads).
        """
        require_positive(tdp_w, "tdp_w")
        require_fraction(etee, "etee")
        if etee == 0.0:
            raise ModelDomainError("etee must be > 0 to split a power budget")
        sa_w, io_w = self._curves.uncore_power_w(tdp_w)
        llc_w = self._curves.llc_power_w(tdp_w, workload_type)
        nominal_budget_w = tdp_w * etee
        compute_w = nominal_budget_w - sa_w - io_w - llc_w
        if compute_w < 0.0:
            raise ModelDomainError(
                f"TDP of {tdp_w} W cannot cover the fixed domains at ETEE {etee:.2f}"
            )
        pdn_loss_w = tdp_w - nominal_budget_w
        return PowerBudgetSplit(
            tdp_w=tdp_w,
            sa_io_w=sa_w + io_w,
            llc_w=llc_w,
            compute_w=compute_w,
            pdn_loss_w=pdn_loss_w,
        )

    def compute_budget_gain_w(
        self,
        tdp_w: float,
        baseline_etee: float,
        improved_etee: float,
        workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD,
    ) -> float:
        """Extra compute-domain budget unlocked by a higher-ETEE PDN.

        This is the quantity the performance model converts into a frequency
        (and hence performance) increase: the Sec. 3.3 example shows a 5 %
        ETEE improvement at 4 W freeing 250 mW for the cores.
        """
        baseline = self.split(tdp_w, baseline_etee, workload_type)
        improved = self.split(tdp_w, improved_etee, workload_type)
        return improved.compute_w - baseline.compute_w
