"""Leakage and dynamic power scaling with voltage and temperature.

Sec. 3.1 of the paper: when a domain's supply voltage is raised from its
nominal value ``V_NOM`` to ``V_NOM + V_GB`` (to cover a tolerance band, a
power-gate drop or a load-line droop), the dynamic and leakage components of
its power scale differently:

* dynamic power scales with the square of the voltage ratio, and
* leakage power scales approximately polynomially with the voltage ratio,
  with an exponent of ~2.8 measured on a Skylake part (Sec. 3.1).

Leakage also depends exponentially on temperature; the paper's models assume a
fixed junction temperature per scenario (80/100 deg C for the performance
studies, 50 deg C for battery-life studies), which we expose through a simple
temperature scaling factor used by :class:`repro.power.thermal.ThermalModel`.
"""

from __future__ import annotations

import math

from repro.util.errors import ModelDomainError
from repro.util.validation import require_fraction, require_positive

#: Voltage exponent of the leakage power fit (Sec. 3.1, delta ~= 2.8).
LEAKAGE_VOLTAGE_EXPONENT = 2.8

#: Exponential temperature coefficient of leakage (per deg C).  Calibrated so
#: leakage roughly doubles between 50 deg C and 100 deg C, a typical figure
#: for a 14 nm process.
LEAKAGE_TEMPERATURE_COEFFICIENT = 0.014

#: Reference junction temperature at which the nominal leakage fractions of
#: Table 2 were extracted.
REFERENCE_JUNCTION_TEMPERATURE_C = 80.0


def scale_power_with_voltage(
    nominal_power_w: float,
    nominal_voltage_v: float,
    guardband_v: float,
    leakage_fraction: float,
    leakage_exponent: float = LEAKAGE_VOLTAGE_EXPONENT,
) -> float:
    """Scale a domain's power for a supply-voltage increase (Eq. 2).

    Returns the power drawn when the supply voltage is raised from
    ``nominal_voltage_v`` to ``nominal_voltage_v + guardband_v``::

        P = P_NOM * [ F_L * ((V + Vgb) / V)^delta + (1 - F_L) * ((V + Vgb) / V)^2 ]

    Parameters
    ----------
    nominal_power_w:
        The domain's power at its nominal voltage.
    nominal_voltage_v:
        The nominal supply voltage ``V_NOM``.
    guardband_v:
        The voltage increase ``V_GB`` (tolerance band, power-gate drop, ...).
    leakage_fraction:
        The leakage fraction ``F_L`` of the domain.
    leakage_exponent:
        The polynomial exponent of the leakage fit (default 2.8).
    """
    require_positive(nominal_voltage_v, "nominal_voltage_v")
    require_fraction(leakage_fraction, "leakage_fraction")
    if nominal_power_w < 0:
        raise ModelDomainError(f"nominal_power_w must be >= 0, got {nominal_power_w!r}")
    if guardband_v < 0:
        raise ModelDomainError(f"guardband_v must be >= 0, got {guardband_v!r}")
    ratio = (nominal_voltage_v + guardband_v) / nominal_voltage_v
    leakage_term = leakage_fraction * ratio**leakage_exponent
    dynamic_term = (1.0 - leakage_fraction) * ratio**2
    return nominal_power_w * (leakage_term + dynamic_term)


def leakage_temperature_factor(
    junction_temperature_c: float,
    reference_temperature_c: float = REFERENCE_JUNCTION_TEMPERATURE_C,
    coefficient: float = LEAKAGE_TEMPERATURE_COEFFICIENT,
) -> float:
    """Multiplicative leakage scaling for a junction temperature change.

    Leakage grows exponentially with temperature; dynamic power is unaffected
    (Sec. 4.2, the thermal-conditioning technique relies on exactly this).
    """
    return math.exp(coefficient * (junction_temperature_c - reference_temperature_c))


def split_power(
    nominal_power_w: float, leakage_fraction: float
) -> tuple:
    """Split a domain's nominal power into (leakage_w, dynamic_w)."""
    require_fraction(leakage_fraction, "leakage_fraction")
    if nominal_power_w < 0:
        raise ModelDomainError(f"nominal_power_w must be >= 0, got {nominal_power_w!r}")
    leakage = nominal_power_w * leakage_fraction
    return leakage, nominal_power_w - leakage
