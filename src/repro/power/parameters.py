"""The central PDNspot parameter set (Table 2 of the paper).

Every PDN model in :mod:`repro.pdn` and the FlexWatts model in
:mod:`repro.core` is constructed from a :class:`PdnTechnologyParameters`
instance.  The defaults reproduce the main parameters of Table 2:

===========================  ==========================================
Parameter                    Default
===========================  ==========================================
Load-line impedance (mOhm)   IVR: IN = 1;
                             MBVR: cores, GFX, SA, IO = 2.5, 2.5, 7, 4;
                             LDO: IN, SA, IO = 1.25, 7, 4
VR tolerance band (mV)       IVR 20, MBVR 19, LDO 17 (mid-range values)
On-chip VR efficiency        IVR 81--88 %; LDO (Vout/Vin) x 99.1 %
Off-chip VR efficiency       72--93 % (function of Vin, Vout, Iout, PS)
Leakage fraction             45 % graphics, 22 % elsewhere
Power-gate impedance (mOhm)  1--2 depending on the domain
===========================  ==========================================

Experiments that explore the parameter space (one of PDNspot's design goals)
construct perturbed copies via :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.power.domains import DomainKind
from repro.util.validation import require_fraction, require_non_negative, require_positive


@dataclass(frozen=True)
class PdnTechnologyParameters:
    """Technology parameters shared by all PDN models."""

    # ------------------------------------------------------------------ #
    # Platform supply and first-stage voltages
    # ------------------------------------------------------------------ #
    #: Voltage delivered by the power supply unit or battery to the board VRs.
    supply_voltage_v: float = 7.2
    #: Output of the first-stage V_IN regulator when the second stage is an
    #: IVR (Sec. 2.3 quotes "typically less than 2 V, e.g. 1.8 V").
    ivr_input_voltage_v: float = 1.8

    # ------------------------------------------------------------------ #
    # Load-line impedances (ohms) -- Table 2 quotes milliohms
    # ------------------------------------------------------------------ #
    ivr_input_loadline_ohm: float = 1.0e-3
    mbvr_loadline_ohm: Dict[DomainKind, float] = field(
        default_factory=lambda: {
            DomainKind.CORE0: 2.5e-3,
            DomainKind.CORE1: 2.5e-3,
            DomainKind.LLC: 2.5e-3,
            DomainKind.GFX: 2.5e-3,
            DomainKind.SA: 7.0e-3,
            DomainKind.IO: 4.0e-3,
        }
    )
    ldo_input_loadline_ohm: float = 1.25e-3
    #: SA/IO board-rail load-lines used by the LDO, I+MBVR and FlexWatts PDNs.
    uncore_loadline_ohm: Dict[DomainKind, float] = field(
        default_factory=lambda: {
            DomainKind.SA: 7.0e-3,
            DomainKind.IO: 4.0e-3,
        }
    )
    #: FlexWatts' hybrid regulator shares routing between its IVR and LDO
    #: modes, which slightly raises its effective load-line over a dedicated
    #: design (Sec. 7.1: "<1 % performance loss due to the higher load-line").
    flexwatts_loadline_scale: float = 1.12

    # ------------------------------------------------------------------ #
    # Tolerance bands (volts)
    # ------------------------------------------------------------------ #
    ivr_tolerance_band_v: float = 20e-3
    mbvr_tolerance_band_v: float = 19e-3
    ldo_tolerance_band_v: float = 17e-3

    # ------------------------------------------------------------------ #
    # On-chip power gates
    # ------------------------------------------------------------------ #
    power_gate_impedance_ohm: Dict[DomainKind, float] = field(
        default_factory=lambda: {
            DomainKind.CORE0: 1.0e-3,
            DomainKind.CORE1: 1.0e-3,
            DomainKind.LLC: 1.5e-3,
            DomainKind.GFX: 1.5e-3,
            DomainKind.SA: 2.0e-3,
            DomainKind.IO: 2.0e-3,
        }
    )

    # ------------------------------------------------------------------ #
    # Leakage model
    # ------------------------------------------------------------------ #
    leakage_exponent: float = 2.8

    # ------------------------------------------------------------------ #
    # LDO regulator
    # ------------------------------------------------------------------ #
    ldo_current_efficiency: float = 0.991

    def __post_init__(self) -> None:
        require_positive(self.supply_voltage_v, "supply_voltage_v")
        require_positive(self.ivr_input_voltage_v, "ivr_input_voltage_v")
        require_non_negative(self.ivr_input_loadline_ohm, "ivr_input_loadline_ohm")
        require_non_negative(self.ldo_input_loadline_ohm, "ldo_input_loadline_ohm")
        require_positive(self.flexwatts_loadline_scale, "flexwatts_loadline_scale")
        require_non_negative(self.ivr_tolerance_band_v, "ivr_tolerance_band_v")
        require_non_negative(self.mbvr_tolerance_band_v, "mbvr_tolerance_band_v")
        require_non_negative(self.ldo_tolerance_band_v, "ldo_tolerance_band_v")
        require_positive(self.leakage_exponent, "leakage_exponent")
        require_fraction(self.ldo_current_efficiency, "ldo_current_efficiency")

    def with_overrides(self, **overrides) -> "PdnTechnologyParameters":
        """Return a copy with the given fields replaced (for sweeps/what-ifs)."""
        return replace(self, **overrides)


def default_parameters() -> PdnTechnologyParameters:
    """Return the default Table 2 parameter set."""
    return PdnTechnologyParameters()
