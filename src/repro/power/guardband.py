"""Voltage-guardband power models (Eq. 2 and the power-gate term).

Every PDN raises its regulator set points above a domain's nominal voltage to
cover the regulator tolerance band, and -- for domains that sit behind an
on-chip power gate -- the resistive drop across the gate.  The extra voltage
turns into extra power according to Eq. 2 of the paper, implemented by
:func:`repro.power.leakage.scale_power_with_voltage`.

This module provides the two guardband steps used by all PDN models in
:mod:`repro.pdn`:

* :func:`guardband_power_w` -- ``P_GB``: nominal power after the tolerance-band
  guardband.
* :func:`power_gate_power_w` -- ``P_PG``: power after additionally covering the
  power-gate voltage drop (applied on top of ``P_GB``; the paper notes the
  same equation is reused with ``V_PG, P_GB, V_NOM + V_GB`` substituted for
  ``V_GB, P_NOM, V_NOM``).
"""

from __future__ import annotations

from repro.power.domains import DomainLoad
from repro.power.leakage import scale_power_with_voltage
from repro.util.validation import require_non_negative


def guardband_power_w(
    load: DomainLoad,
    tolerance_band_v: float,
    leakage_exponent: float = 2.8,
) -> float:
    """Power of ``load`` after applying the tolerance-band guardband (Eq. 2)."""
    require_non_negative(tolerance_band_v, "tolerance_band_v")
    if not load.active or load.nominal_power_w == 0.0:
        return 0.0
    return scale_power_with_voltage(
        nominal_power_w=load.nominal_power_w,
        nominal_voltage_v=load.voltage_v,
        guardband_v=tolerance_band_v,
        leakage_fraction=load.leakage_fraction,
        leakage_exponent=leakage_exponent,
    )


def power_gate_power_w(
    load: DomainLoad,
    guardbanded_power_w: float,
    tolerance_band_v: float,
    power_gate_impedance_ohm: float,
    leakage_exponent: float = 2.8,
) -> float:
    """Power of ``load`` after additionally covering the power-gate drop.

    The power-gate drop ``V_PG`` is the gate impedance times the current the
    domain draws at its guardbanded voltage.  Eq. 2 is reapplied with the
    already-guardbanded power and voltage as the starting point.
    """
    require_non_negative(power_gate_impedance_ohm, "power_gate_impedance_ohm")
    require_non_negative(guardbanded_power_w, "guardbanded_power_w")
    if not load.active or guardbanded_power_w == 0.0:
        return 0.0
    if not load.power_gated_rail or power_gate_impedance_ohm == 0.0:
        return guardbanded_power_w
    guardbanded_voltage_v = load.voltage_v + tolerance_band_v
    current_a = guardbanded_power_w / guardbanded_voltage_v
    power_gate_drop_v = power_gate_impedance_ohm * current_a
    return scale_power_with_voltage(
        nominal_power_w=guardbanded_power_w,
        nominal_voltage_v=guardbanded_voltage_v,
        guardband_v=power_gate_drop_v,
        leakage_fraction=load.leakage_fraction,
        leakage_exponent=leakage_exponent,
    )
