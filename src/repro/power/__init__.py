"""Power-physics substrate shared by every PDN model.

Contents:

* :mod:`repro.power.domains` -- the processor domains (CPU cores, LLC,
  graphics, system agent, IO), the :class:`~repro.power.domains.DomainLoad`
  dataclass consumed by the PDN models, and the nominal-power-versus-TDP
  curves of Table 2.
* :mod:`repro.power.guardband` -- the voltage-guardband power model (Eq. 2).
* :mod:`repro.power.leakage` -- leakage/dynamic voltage and temperature
  scaling used by the guardband model.
* :mod:`repro.power.power_states` -- package power states (C0, C0_MIN, C2,
  C3, C6, C7, C8) and their typical residencies/power levels.
* :mod:`repro.power.parameters` -- the central parameter set of Table 2.
* :mod:`repro.power.budget` -- the TDP power-budget manager that splits the
  package budget between compute domains and converts spared PDN loss into
  extra compute budget.
* :mod:`repro.power.thermal` -- junction-temperature model used to scale
  leakage with the evaluation scenarios of Sec. 7.
"""

from repro.power.domains import (
    COMPUTE_DOMAINS,
    Domain,
    DomainKind,
    DomainLoad,
    NominalPowerCurves,
    WorkloadType,
)
from repro.power.guardband import guardband_power_w, power_gate_power_w
from repro.power.leakage import scale_power_with_voltage, leakage_temperature_factor
from repro.power.parameters import PdnTechnologyParameters, default_parameters
from repro.power.power_states import PackageCState, POWER_STATE_PROFILES
from repro.power.budget import PowerBudgetManager, PowerBudgetSplit
from repro.power.thermal import ThermalModel

__all__ = [
    "DomainKind",
    "Domain",
    "DomainLoad",
    "WorkloadType",
    "COMPUTE_DOMAINS",
    "NominalPowerCurves",
    "guardband_power_w",
    "power_gate_power_w",
    "scale_power_with_voltage",
    "leakage_temperature_factor",
    "PdnTechnologyParameters",
    "default_parameters",
    "PackageCState",
    "POWER_STATE_PROFILES",
    "PowerBudgetManager",
    "PowerBudgetSplit",
    "ThermalModel",
]
