"""Processor domains and their nominal-power models.

The modelled processor (Table 1 of the paper) has six loads:

* two CPU cores (``CORE0``, ``CORE1``) sharing one clock/voltage domain,
* a last-level cache (``LLC``) whose size/frequency scales with the cores,
* the graphics engines (``GFX``),
* the system agent (``SA``: memory controller, display controller, IO fabric),
* the IO domain (``IO``: DDR IO, display IO), which runs at fixed frequency.

Each PDN model consumes a list of :class:`DomainLoad` objects -- one per
domain -- describing the domain's nominal power, nominal voltage, leakage
fraction and whether it is power-gated.  The loads are produced either by the
:class:`repro.soc.processor.Processor` model (for full-system studies) or
directly by the workload generators (for the validation sweeps of Fig. 4).

The nominal-power-versus-TDP curves follow the ranges of Table 2:
cores 0.6--30 W, LLC 0.5--4 W, graphics 0.58--29.4 W across the 4--50 W TDP
range, with the SA and IO domains nearly flat across TDPs (Sec. 6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Tuple

from repro.util.errors import ConfigurationError
from repro.util.interpolate import LinearTable1D
from repro.util.validation import require_fraction, require_non_negative, require_positive


class DomainKind(enum.Enum):
    """The six voltage domains of the modelled client processor."""

    CORE0 = "core0"
    CORE1 = "core1"
    LLC = "llc"
    GFX = "gfx"
    SA = "sa"
    IO = "io"


#: Domains with a wide power-consumption range; FlexWatts attaches its hybrid
#: regulators to these (Sec. 6).
COMPUTE_DOMAINS: Tuple[DomainKind, ...] = (
    DomainKind.CORE0,
    DomainKind.CORE1,
    DomainKind.LLC,
    DomainKind.GFX,
)

#: Domains with a low and narrow power range; FlexWatts (and the LDO and
#: I+MBVR PDNs) place these on dedicated off-chip regulators.
UNCORE_DOMAINS: Tuple[DomainKind, ...] = (DomainKind.SA, DomainKind.IO)


class WorkloadType(enum.Enum):
    """Workload classes distinguished by the models and the mode predictor."""

    CPU_SINGLE_THREAD = "cpu_single_thread"
    CPU_MULTI_THREAD = "cpu_multi_thread"
    GRAPHICS = "graphics"
    IDLE = "idle"


@dataclass(frozen=True)
class Domain:
    """Static description of one processor domain.

    Attributes
    ----------
    kind:
        Which of the six domains this is.
    leakage_fraction:
        Fraction of the domain's nominal power that is leakage (``F_L`` in
        Eq. 2).  The paper uses 45 % for graphics and 22 % elsewhere.
    min_voltage_v / max_voltage_v:
        Operational voltage range of the domain.
    fixed_voltage_v:
        For fixed-frequency domains (SA, IO) the single operating voltage;
        ``None`` for DVFS domains.
    """

    kind: DomainKind
    leakage_fraction: float
    min_voltage_v: float
    max_voltage_v: float
    fixed_voltage_v: float = None

    def __post_init__(self) -> None:
        require_fraction(self.leakage_fraction, "leakage_fraction")
        require_positive(self.min_voltage_v, "min_voltage_v")
        require_positive(self.max_voltage_v, "max_voltage_v")
        if self.max_voltage_v < self.min_voltage_v:
            raise ConfigurationError(
                f"{self.kind}: max_voltage_v below min_voltage_v"
            )


@dataclass(frozen=True)
class DomainLoad:
    """The electrical load one domain presents to its PDN at one instant.

    Attributes
    ----------
    kind:
        Which domain this load belongs to.
    nominal_power_w:
        The domain's nominal power ``P_NOM`` (Sec. 3.1): the power the domain
        would draw at exactly its nominal voltage with no guardbands.
    voltage_v:
        The domain's nominal supply voltage ``V_NOM``.
    leakage_fraction:
        Fraction of ``nominal_power_w`` that is leakage.
    active:
        ``False`` when the domain is power-gated (idle); a gated domain draws
        no power from the PDN.
    power_gated_rail:
        ``True`` when the domain sits behind an on-chip power gate in PDNs that
        use them (MBVR: cores and LLC; LDO/FlexWatts: SA/IO do not).
    """

    kind: DomainKind
    nominal_power_w: float
    voltage_v: float
    leakage_fraction: float
    active: bool = True
    power_gated_rail: bool = True

    def __post_init__(self) -> None:
        require_non_negative(self.nominal_power_w, "nominal_power_w")
        require_positive(self.voltage_v, "voltage_v")
        require_fraction(self.leakage_fraction, "leakage_fraction")

    @property
    def effective_power_w(self) -> float:
        """Nominal power if active, zero if power-gated."""
        return self.nominal_power_w if self.active else 0.0

    @property
    def current_a(self) -> float:
        """Nominal current drawn by the domain (``P_NOM / V_NOM``)."""
        if not self.active:
            return 0.0
        return self.nominal_power_w / self.voltage_v

    def scaled(self, factor: float) -> "DomainLoad":
        """Return a copy of this load with the nominal power scaled by ``factor``."""
        require_non_negative(factor, "factor")
        return replace(self, nominal_power_w=self.nominal_power_w * factor)


#: Default static domain descriptions (Table 1 / Table 2 of the paper).
DEFAULT_DOMAINS: Dict[DomainKind, Domain] = {
    DomainKind.CORE0: Domain(DomainKind.CORE0, leakage_fraction=0.22, min_voltage_v=0.55, max_voltage_v=1.10),
    DomainKind.CORE1: Domain(DomainKind.CORE1, leakage_fraction=0.22, min_voltage_v=0.55, max_voltage_v=1.10),
    DomainKind.LLC: Domain(DomainKind.LLC, leakage_fraction=0.22, min_voltage_v=0.55, max_voltage_v=1.10),
    DomainKind.GFX: Domain(DomainKind.GFX, leakage_fraction=0.45, min_voltage_v=0.55, max_voltage_v=1.00),
    DomainKind.SA: Domain(DomainKind.SA, leakage_fraction=0.22, min_voltage_v=0.80, max_voltage_v=0.80, fixed_voltage_v=0.80),
    DomainKind.IO: Domain(DomainKind.IO, leakage_fraction=0.22, min_voltage_v=1.00, max_voltage_v=1.00, fixed_voltage_v=1.00),
}

#: TDP breakpoints used by every nominal-power curve (watts).  These are the
#: TDP levels the paper evaluates (Fig. 2, Fig. 8).
TDP_BREAKPOINTS_W: Tuple[float, ...] = (4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0)


@dataclass(frozen=True)
class NominalPowerCurves:
    """Nominal power of each domain as a function of TDP.

    Two scenarios are captured: the power a domain consumes when it is the
    *primary* consumer of the compute budget (e.g. cores during a
    CPU-intensive workload) and when it is *secondary* (e.g. cores during a
    graphics workload, which the paper says receive only 10--20 % of the
    compute budget).
    """

    cores_primary_w: LinearTable1D = field(
        default_factory=lambda: LinearTable1D(
            TDP_BREAKPOINTS_W, (0.60, 2.00, 2.70, 8.30, 12.00, 18.40, 26.00)
        )
    )
    cores_secondary_w: LinearTable1D = field(
        default_factory=lambda: LinearTable1D(
            TDP_BREAKPOINTS_W, (0.20, 0.45, 0.60, 1.40, 2.00, 2.90, 4.00)
        )
    )
    gfx_primary_w: LinearTable1D = field(
        default_factory=lambda: LinearTable1D(
            TDP_BREAKPOINTS_W, (0.58, 1.90, 2.60, 7.50, 11.00, 17.00, 24.00)
        )
    )
    llc_w: LinearTable1D = field(
        default_factory=lambda: LinearTable1D(
            TDP_BREAKPOINTS_W, (0.50, 0.70, 0.80, 1.50, 2.00, 3.00, 4.00)
        )
    )
    sa_w: LinearTable1D = field(
        default_factory=lambda: LinearTable1D(
            TDP_BREAKPOINTS_W, (0.70, 0.75, 0.80, 0.90, 1.00, 1.10, 1.20)
        )
    )
    io_w: LinearTable1D = field(
        default_factory=lambda: LinearTable1D(
            TDP_BREAKPOINTS_W, (0.35, 0.40, 0.40, 0.50, 0.55, 0.60, 0.65)
        )
    )
    #: Power drawn by an idle (clock-gated but not power-gated) compute domain.
    idle_compute_w: float = 0.05

    def cores_power_w(self, tdp_w: float, workload_type: WorkloadType) -> float:
        """Total two-core nominal power at ``tdp_w`` for ``workload_type``."""
        require_positive(tdp_w, "tdp_w")
        if workload_type in (WorkloadType.CPU_SINGLE_THREAD, WorkloadType.CPU_MULTI_THREAD):
            total = self.cores_primary_w(tdp_w)
            if workload_type is WorkloadType.CPU_SINGLE_THREAD:
                # A single-threaded workload keeps the second core mostly idle;
                # the active core receives the bulk of the budget (Turbo).
                return 0.80 * total
            return total
        if workload_type is WorkloadType.GRAPHICS:
            return self.cores_secondary_w(tdp_w)
        return self.idle_compute_w

    def gfx_power_w(self, tdp_w: float, workload_type: WorkloadType) -> float:
        """Graphics nominal power at ``tdp_w`` for ``workload_type``."""
        require_positive(tdp_w, "tdp_w")
        if workload_type is WorkloadType.GRAPHICS:
            return self.gfx_primary_w(tdp_w)
        return self.idle_compute_w

    def llc_power_w(self, tdp_w: float, workload_type: WorkloadType) -> float:
        """LLC nominal power at ``tdp_w`` for ``workload_type``."""
        require_positive(tdp_w, "tdp_w")
        if workload_type is WorkloadType.IDLE:
            return self.idle_compute_w
        return self.llc_w(tdp_w)

    def uncore_power_w(self, tdp_w: float) -> Tuple[float, float]:
        """(SA, IO) nominal power at ``tdp_w`` -- nearly flat across TDPs."""
        require_positive(tdp_w, "tdp_w")
        return self.sa_w(tdp_w), self.io_w(tdp_w)


def total_nominal_power_w(loads: Iterable[DomainLoad]) -> float:
    """Sum of the nominal power of all *active* domains in ``loads``."""
    return sum(load.effective_power_w for load in loads)


def loads_by_kind(loads: Iterable[DomainLoad]) -> Dict[DomainKind, DomainLoad]:
    """Index a load list by domain kind, checking for duplicates."""
    indexed: Dict[DomainKind, DomainLoad] = {}
    for load in loads:
        if load.kind in indexed:
            raise ConfigurationError(f"duplicate load for domain {load.kind}")
        indexed[load.kind] = load
    return indexed


def validate_load_set(loads: Iterable[DomainLoad]) -> List[DomainLoad]:
    """Validate that ``loads`` contains each of the six domains exactly once."""
    load_list = list(loads)
    indexed = loads_by_kind(load_list)
    missing = [kind for kind in DomainKind if kind not in indexed]
    if missing:
        raise ConfigurationError(
            "a PDN evaluation needs a load for every domain; missing: "
            + ", ".join(kind.value for kind in missing)
        )
    return load_list
