"""Thermal model: junction temperature scenarios and TDP enforcement.

The paper evaluates performance workloads on a fan-less system with a junction
temperature (Tj) of 80 deg C for TDPs of 4--8 W and 100 deg C above that, and
battery-life workloads at 50 deg C (Sec. 7).  Temperature affects the models
through leakage (leakage grows exponentially with temperature) and through the
TDP limit itself (the package may not dissipate more than the TDP on average).

PDNspot treats the processor and the off-chip regulators as one thermal domain
(Sec. 3.4), so PDN losses count against the same TDP as the silicon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power.leakage import leakage_temperature_factor
from repro.util.errors import ModelDomainError
from repro.util.validation import require_positive


@dataclass(frozen=True)
class ThermalModel:
    """Junction-temperature scenario used by an evaluation.

    Attributes
    ----------
    tdp_w:
        The package thermal design power.
    junction_temperature_c:
        The assumed steady-state junction temperature.
    """

    tdp_w: float
    junction_temperature_c: float

    def __post_init__(self) -> None:
        require_positive(self.tdp_w, "tdp_w")
        if not -40.0 <= self.junction_temperature_c <= 125.0:
            raise ModelDomainError(
                "junction_temperature_c outside the commercial silicon range "
                f"[-40, 125]: {self.junction_temperature_c!r}"
            )

    @classmethod
    def for_performance_workload(cls, tdp_w: float) -> "ThermalModel":
        """Fan-less performance scenario: Tj 80 C up to 8 W, 100 C above."""
        require_positive(tdp_w, "tdp_w")
        junction_c = 80.0 if tdp_w <= 8.0 else 100.0
        return cls(tdp_w=tdp_w, junction_temperature_c=junction_c)

    @classmethod
    def for_battery_life_workload(cls, tdp_w: float) -> "ThermalModel":
        """Battery-life scenario: Tj 50 C (Sec. 7.1)."""
        return cls(tdp_w=tdp_w, junction_temperature_c=50.0)

    @property
    def leakage_factor(self) -> float:
        """Leakage scaling relative to the reference temperature (80 C)."""
        return leakage_temperature_factor(self.junction_temperature_c)

    def within_budget(self, package_power_w: float) -> bool:
        """Whether ``package_power_w`` respects the TDP limit."""
        return package_power_w <= self.tdp_w + 1e-9

    def headroom_w(self, package_power_w: float) -> float:
        """Remaining thermal headroom (negative when over budget)."""
        return self.tdp_w - package_power_w
