"""Interval-based system simulation.

PDNspot's analytic models evaluate one operating point at a time (Sec. 3.4
notes that time-varying workloads are handled by evaluating each interval
separately).  The :class:`~repro.sim.engine.IntervalSimulator` automates
exactly that: it replays a :class:`~repro.workloads.base.WorkloadTrace`
phase by phase against a processor + PDN combination, drives the PMU's
power-state machine, and -- when the PDN is FlexWatts -- runs the Algorithm-1
predictor every evaluation interval and pays the mode-switch flow's latency
and energy whenever the selected mode changes.

On top of the engine, :mod:`repro.sim.study` makes simulation a first-class
grid workload: a :class:`~repro.sim.study.SimStudy` crosses the registered
scenario generators (:mod:`repro.workloads.scenarios`) with TDPs, seeds and
parameter overrides, and :func:`~repro.sim.study.run_sim` dispatches the
grid through the same serial/thread/process executors as the analytic
engine, returning a :class:`~repro.analysis.resultset.ResultSet` built by
the adapters in :mod:`repro.sim.adapters`.
"""

from repro.sim.adapters import (
    SIM_METRIC_COLUMNS,
    phases_to_resultset,
    results_to_resultset,
    simulation_record,
)
from repro.sim.engine import (
    IntervalSimulator,
    PhaseRecord,
    SimulationResult,
    phase_conditions,
    phase_duration,
    telemetry_profile,
)
from repro.sim.study import (
    SimEngine,
    SimPoint,
    SimStudy,
    SimStudyBuilder,
    run_sim,
)

__all__ = [
    "IntervalSimulator",
    "SimulationResult",
    "PhaseRecord",
    "phase_conditions",
    "phase_duration",
    "telemetry_profile",
    "SimEngine",
    "SimPoint",
    "SimStudy",
    "SimStudyBuilder",
    "run_sim",
    "SIM_METRIC_COLUMNS",
    "simulation_record",
    "results_to_resultset",
    "phases_to_resultset",
]
