"""Interval-based system simulation.

PDNspot's analytic models evaluate one operating point at a time (Sec. 3.4
notes that time-varying workloads are handled by evaluating each interval
separately).  The :class:`~repro.sim.engine.IntervalSimulator` automates
exactly that: it replays a :class:`~repro.workloads.base.WorkloadTrace`
phase by phase against a processor + PDN combination, drives the PMU's
power-state machine, and -- when the PDN is FlexWatts -- runs the Algorithm-1
predictor every evaluation interval and pays the mode-switch flow's latency
and energy whenever the selected mode changes.
"""

from repro.sim.engine import IntervalSimulator, PhaseRecord, SimulationResult

__all__ = ["IntervalSimulator", "SimulationResult", "PhaseRecord"]
