"""Declarative trace-driven simulation studies on the executor engine.

The analytic half of the library evaluates :class:`~repro.analysis.study.Study`
grids through :meth:`PdnSpot.run`; this module gives the *dynamic* half the
same shape.  A :class:`SimStudy` is a grid of :class:`SimPoint` operating
points -- ``scenario x TDP x seed``, optionally crossed with
technology-parameter overrides -- and :func:`run_sim` (or
:meth:`SimEngine.run`) evaluates it into a
:class:`~repro.analysis.resultset.ResultSet`, one summary row per
``(scenario, pdn)`` simulation.

:class:`SimEngine` implements the same execution-engine protocol as
:class:`~repro.analysis.pdnspot.PdnSpot` (see
:mod:`repro.analysis.executor`), so simulation grids dispatch through the
unchanged ``SerialExecutor`` / ``ThreadExecutor`` / ``ProcessExecutor``
backends: work units are picklable ``(pdn name, SimPoint, overrides)``
references (workers rebuild traces from the scenario registry and the PDN
models from the parameter set), results are memo-cached and merged back, and
the :class:`ResultSet` is reassembled in canonical grid order -- a parallel
run is bit-identical to the serial one, matching the analytic engine's
guarantee.

Example
-------
>>> from repro.sim.study import SimStudy, run_sim
>>> study = SimStudy.over_scenarios(["duty-cycled-background"], tdps_w=[18.0])
>>> serial = run_sim(study)
>>> parallel = run_sim(study, executor="thread", jobs=2)
>>> serial == parallel
True
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.analysis.executor import ExecutorLike, TwoTierCacheMixin, make_executor
from repro.analysis.pdnspot import CacheInfo, PdnSpot
from repro.cache import (
    DiskCache,
    DiskCacheLike,
    canonical_key,
    parameters_fingerprint,
    resolve_disk_cache,
)
from repro.analysis.resultset import Record, ResultSet
from repro.analysis.study import OverrideKey, _flatten, _freeze_overrides
from repro.core.flexwatts import FlexWattsPdn
from repro.core.hybrid_vr import PdnMode
from repro.core.mode_switching import ModeSwitchController
from repro.obs import trace as obs_trace
from repro.obs.runstats import RunStats, executor_label
from repro.pdn.base import OperatingConditions, PdnEvaluation, conditions_key
from repro.power.parameters import PdnTechnologyParameters
from repro.sim.adapters import simulation_record
from repro.sim.engine import IntervalSimulator, SimulationResult
from repro.util.errors import ConfigurationError
from repro.workloads.scenarios import DEFAULT_SEED, build_scenario_trace, get_scenario


@dataclass(frozen=True)
class SimPoint:
    """One simulation operating point of a :class:`SimStudy` grid.

    A point is a *reference*, not a trace: ``(scenario, seed)`` rebuilds the
    identical trace in any process through the scenario registry, which is
    what makes the point picklable and memo-cacheable.
    """

    scenario: str
    tdp_w: float
    seed: int = DEFAULT_SEED
    trace_period_s: float = 1.0
    overrides: OverrideKey = ()

    def __post_init__(self) -> None:
        """Validate the scenario name and the numeric axes fail-fast."""
        get_scenario(self.scenario)  # unknown names fail at build, not dispatch
        if self.tdp_w <= 0.0:
            raise ConfigurationError(f"tdp_w must be positive, got {self.tdp_w!r}")
        if self.trace_period_s <= 0.0:
            raise ConfigurationError(
                f"trace_period_s must be positive, got {self.trace_period_s!r}"
            )

    def record_fields(self) -> Record:
        """The point's identifying record fields (summary-row layout)."""
        fields: Record = {
            "scenario": self.scenario,
            "tdp_w": self.tdp_w,
            "seed": self.seed,
        }
        if self.trace_period_s != 1.0:
            fields["trace_period_s"] = self.trace_period_s
        if self.overrides:
            fields["parameters"] = dict(self.overrides)
        return fields


@dataclass(frozen=True)
class SimStudy:
    """A named, ordered grid of :class:`SimPoint` simulations.

    Attributes
    ----------
    name:
        Label carried into the produced :class:`ResultSet`.
    points:
        The grid points, in evaluation order.
    pdn_names:
        Optional restriction of the PDN architectures to simulate; ``None``
        means "every PDN the evaluating engine has".
    """

    name: str
    points: Tuple[SimPoint, ...]
    pdn_names: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        """Reject nameless or empty studies."""
        if not self.name:
            raise ConfigurationError("a simulation study needs a non-empty name")
        if not self.points:
            raise ConfigurationError(f"sim study {self.name!r} has no points")

    def __len__(self) -> int:
        """Number of grid points (simulations per PDN)."""
        return len(self.points)

    @staticmethod
    def builder(name: str = "sim-study") -> "SimStudyBuilder":
        """Start a fluent :class:`SimStudyBuilder`."""
        return SimStudyBuilder(name)

    @classmethod
    def over_scenarios(
        cls,
        scenarios: Sequence[str],
        tdps_w: Sequence[float] = (18.0,),
        seed: int = DEFAULT_SEED,
        name: str = "scenario-sweep",
    ) -> "SimStudy":
        """A scenario x TDP grid at one seed (the common CLI shape)."""
        return (
            cls.builder(name).scenarios(*scenarios).tdps(*tdps_w).seeds(seed).build()
        )


class SimStudyBuilder:
    """Fluent builder of :class:`SimStudy` grids.

    Grid order is deterministic -- parameter overrides, then scenario, then
    TDP, then seed -- mirroring the axis nesting of the analytic
    :class:`~repro.analysis.study.StudyBuilder`.
    """

    def __init__(self, name: str = "sim-study"):
        self._name = name
        self._scenarios: List[str] = []
        self._tdps_w: List[float] = []
        self._seeds: List[int] = []
        self._trace_period_s = 1.0
        self._parameter_grid: List[Dict[str, object]] = []
        self._pdn_names: Optional[List[str]] = None

    def scenarios(self, *names: Union[str, Sequence[str]]) -> "SimStudyBuilder":
        """Add scenario names (validated against the registry at build)."""
        self._scenarios.extend(str(name) for name in _flatten(names))
        return self

    def tdps(self, *tdps_w: Union[float, Sequence[float]]) -> "SimStudyBuilder":
        """Add TDP levels (watts) to the grid."""
        self._tdps_w.extend(float(value) for value in _flatten(tdps_w))
        return self

    def seeds(self, *seeds: Union[int, Sequence[int]]) -> "SimStudyBuilder":
        """Add trace seeds to the grid (one trace variant per seed)."""
        self._seeds.extend(int(value) for value in _flatten(seeds))
        return self

    def trace_period(self, trace_period_s: float) -> "SimStudyBuilder":
        """Set the residency period for phases without explicit durations."""
        self._trace_period_s = float(trace_period_s)
        return self

    def parameter_grid(self, *overrides: Mapping[str, object]) -> "SimStudyBuilder":
        """Cross the grid with technology-parameter override sets."""
        self._parameter_grid.extend(dict(override) for override in overrides)
        return self

    def pdns(self, *names: Union[str, Sequence[str]]) -> "SimStudyBuilder":
        """Restrict the study to the named PDN architectures."""
        if self._pdn_names is None:
            self._pdn_names = []
        self._pdn_names.extend(str(name) for name in _flatten(names))
        return self

    def build(self) -> SimStudy:
        """Materialise the grid into an immutable :class:`SimStudy`."""
        if not self._scenarios:
            raise ConfigurationError(
                f"sim study {self._name!r} needs at least one scenario"
            )
        tdps_w = self._tdps_w or [18.0]
        seeds = self._seeds or [DEFAULT_SEED]
        override_grid: List[OverrideKey] = [
            _freeze_overrides(overrides) for overrides in self._parameter_grid
        ] or [()]
        points: List[SimPoint] = []
        for overrides in override_grid:
            for scenario in self._scenarios:
                for tdp_w in tdps_w:
                    for seed in seeds:
                        points.append(
                            SimPoint(
                                scenario=scenario,
                                tdp_w=tdp_w,
                                seed=seed,
                                trace_period_s=self._trace_period_s,
                                overrides=overrides,
                            )
                        )
        return SimStudy(
            name=self._name,
            points=tuple(points),
            pdn_names=tuple(self._pdn_names) if self._pdn_names is not None else None,
        )


@dataclass(frozen=True)
class SimWorkerConfig:
    """A picklable recipe for rebuilding a :class:`SimEngine` in a worker."""

    parameters: PdnTechnologyParameters
    pdn_names: Tuple[str, ...]
    baseline_name: str

    def build_engine(self) -> "SimEngine":
        """Build the worker-local (uncached) simulation engine."""
        return SimEngine(
            parameters=self.parameters,
            pdn_names=list(self.pdn_names),
            baseline_name=self.baseline_name,
            enable_cache=False,
        )


def _copy_result(result: SimulationResult) -> SimulationResult:
    """A caller-owned copy of a cached simulation result.

    ``SimulationResult`` is mutable (its record list and counters); handing
    the cached master to callers would let one caller's mutation corrupt
    every later cache hit.  The records themselves are frozen, so a shallow
    list copy suffices.
    """
    return replace(result, phase_records=list(result.phase_records))


class SimEngine(TwoTierCacheMixin):
    """Memo-cached, executor-compatible trace-simulation engine.

    The engine owns a :class:`~repro.analysis.pdnspot.PdnSpot` (PDN models,
    technology parameters, and the *phase-level* evaluation cache that serves
    operating points repeated across traces and scenarios) plus a
    *simulation-level* memo cache keyed by
    ``(overrides, pdn name, SimPoint)``.  It implements the execution-engine
    protocol of :mod:`repro.analysis.executor`, so
    :meth:`run` accepts the same ``executor=``/``jobs=`` arguments as
    :meth:`PdnSpot.run` and parallel results are bit-identical to serial.

    Parameters
    ----------
    parameters:
        Technology parameters shared by every PDN model (Table 2 defaults).
    pdn_names:
        Which PDN architectures to simulate; defaults to all five.
    baseline_name:
        The PDN used for normalisation (IVR, the state of the art).
    enable_cache:
        Whether simulations (and phase evaluations) are memoised.  Worker
        processes disable it -- their units are already deduplicated.
    disk_cache:
        Optional second cache tier.  A cache-directory path attaches *two*
        stores rooted there: one for this engine's simulation results
        (namespace ``"sim"``) and one for the phase-level operating-point
        evaluations of the backing analytic engine (namespace
        ``"pdnspot"``), so a warm directory serves whole simulations and
        still accelerates partially overlapping grids.  Disk addresses
        additionally digest the trace *content* rebuilt from the scenario
        registry, so a re-registered generator (same name, different trace)
        invalidates its entries rather than replaying stale results.  A
        pre-built :class:`~repro.cache.DiskCache` instance attaches to the
        simulation tier only.  Requires ``enable_cache=True``.
    """

    def __init__(
        self,
        parameters: Optional[PdnTechnologyParameters] = None,
        pdn_names: Optional[Sequence[str]] = None,
        baseline_name: str = "IVR",
        enable_cache: bool = True,
        disk_cache: DiskCacheLike = None,
    ):
        if disk_cache is not None and not enable_cache:
            raise ConfigurationError(
                "disk_cache requires enable_cache=True: the disk tier sits "
                "behind the memo cache"
            )
        self._spot = PdnSpot(
            parameters=parameters,
            pdn_names=pdn_names,
            baseline_name=baseline_name,
            enable_cache=enable_cache,
            disk_cache=disk_cache if not isinstance(disk_cache, DiskCache) else None,
        )
        self._disk_cache = resolve_disk_cache(
            disk_cache,
            namespace="sim",
            fingerprint=parameters_fingerprint(self._spot.parameters),
        )
        #: Trace-content digests keyed by (scenario, seed): part of the
        #: *disk* address of every simulation, so a re-registered scenario
        #: generator (same name, different trace) can never replay another
        #: generator's persisted results.  In-memory keys stay name-based --
        #: the registry is fixed within a process.
        self._trace_digests: Dict[Tuple[str, int], str] = {}
        self._baseline_name = baseline_name
        self._cache_enabled = enable_cache
        self._cache: Dict[Tuple[object, ...], SimulationResult] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_lock = threading.Lock()
        #: Calibrated Algorithm-1 predictors, keyed by parameter overrides.
        #: Model state rather than an evaluation memo: kept even with the
        #: cache disabled (mirroring the analytic engine, whose primed PDN
        #: models survive ``enable_cache=False``) and across clear_cache().
        self._predictors: Dict[OverrideKey, object] = {}
        #: Mode-forced FlexWatts evaluations shared across runs, keyed by
        #: (overrides, mode, operating point).  The models are pure, so a
        #: racing double-compute is benign; setdefault keeps one master.
        #: Subject to ``enable_cache`` and dropped by :meth:`clear_cache`.
        self._mode_evaluations: Dict[Tuple[object, ...], PdnEvaluation] = {}

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def spot(self) -> PdnSpot:
        """The analytic engine backing the phase-level evaluations."""
        return self._spot

    @property
    def parameters(self) -> PdnTechnologyParameters:
        """The technology parameters shared by every PDN model."""
        return self._spot.parameters

    # ------------------------------------------------------------------ #
    # Execution-engine protocol (see repro.analysis.executor)
    # ------------------------------------------------------------------ #
    @property
    def cache_enabled(self) -> bool:
        """Whether simulations are memoised (fixed at construction)."""
        return self._cache_enabled

    def cache_info(self) -> CacheInfo:
        """Hit/miss statistics of the simulation memo cache."""
        with self._cache_lock:
            return CacheInfo(
                hits=self._cache_hits, misses=self._cache_misses, size=len(self._cache)
            )

    def clear_cache(self) -> None:
        """Drop every memoised simulation and phase evaluation.

        The simulation memo, its statistics, the cross-run mode-evaluation
        memo and the backing analytic engine's phase cache are all cleared;
        calibrated predictors are model state and survive (rebuild the engine
        to drop those).  Attached disk stores also survive -- use
        :meth:`DiskCache.prune` to reclaim them.
        """
        with self._cache_lock:
            self._cache.clear()
            self._cache_hits = 0
            self._cache_misses = 0
            self._mode_evaluations.clear()
        self._spot.clear_cache()

    def cache_key(
        self, pdn_name: str, point: SimPoint, overrides: OverrideKey = ()
    ) -> Tuple[object, ...]:
        """The memo-cache key of one simulation unit."""
        return (overrides, pdn_name, point)

    @property
    def disk_cache(self) -> Optional[DiskCache]:
        """The attached simulation-result store (second cache tier), if any."""
        return self._disk_cache

    def _disk_key(self, key: Tuple[object, ...]) -> Tuple[object, ...]:
        """The on-disk address of one simulation: the memo key + trace digest.

        The memo key references the trace by ``(scenario, seed)`` *name*,
        which is sound in-process (the registry cannot change under a run)
        but not across runs: a user can re-register a scenario generator
        and re-run against the same cache directory.  Digesting the actual
        trace content into the disk address makes such entries invisible
        instead of stale -- at the cost of one trace rebuild per
        ``(scenario, seed)`` per process, which is noise next to a
        simulation.
        """
        point = key[2]
        ident = (point.scenario, point.seed)
        with self._cache_lock:
            digest = self._trace_digests.get(ident)
        if digest is None:
            trace = build_scenario_trace(point.scenario, seed=point.seed)
            digest = hashlib.sha256(
                canonical_key(trace).encode("utf-8")
            ).hexdigest()[:16]
            with self._cache_lock:
                digest = self._trace_digests.setdefault(ident, digest)
        return (*key, ("trace", digest))

    # Two-tier cache_lookup / cache_install come from TwoTierCacheMixin
    # (with _disk_key above adding the trace digest to disk addresses).
    _payload_type = SimulationResult
    _copy_cached = staticmethod(_copy_result)

    def worker_config(self) -> SimWorkerConfig:
        """The picklable recipe process-pool workers rebuild this engine from."""
        return SimWorkerConfig(
            parameters=self.parameters,
            pdn_names=tuple(self._spot.pdns),
            baseline_name=self._baseline_name,
        )

    def prime_for_execution(self, units: Iterable[Tuple[str, SimPoint, OverrideKey]]) -> None:
        """Build every lazily built model the units need, up front.

        Thread-pool workers treat the engine as read-only apart from the
        locked caches; the expensive lazy state -- the FlexWatts Algorithm-1
        predictor calibration, per override set -- is forced here on the
        calling thread before any worker runs.
        """
        for name, _, overrides in units:
            if name == FlexWattsPdn.name:
                self._predictor_for(overrides)

    def evaluate_uncached(
        self, pdn_name: str, point: SimPoint, overrides: OverrideKey = ()
    ) -> SimulationResult:
        """Simulate one scenario on one PDN, bypassing the simulation memo.

        The trace is rebuilt from the scenario registry (deterministic for a
        given seed), the simulator batches its phases by operating point, and
        static-PDN phase evaluations route through the engine's analytic
        cache so operating points shared *between* scenarios are computed
        once.  FlexWatts runs get a fresh mode-switch controller per
        simulation -- adaptive state never leaks between grid points.
        """
        trace = build_scenario_trace(point.scenario, seed=point.seed)
        simulator = IntervalSimulator(
            tdp_w=point.tdp_w, trace_period_s=point.trace_period_s
        )
        if pdn_name == FlexWattsPdn.name:
            pdn = FlexWattsPdn(
                parameters=self._parameters_for(overrides),
                predictor=self._predictor_for(overrides),
                switch_controller=ModeSwitchController(),
            )
            return simulator.run(
                trace, pdn, evaluate_in_mode=self._make_mode_evaluator(overrides)
            )
        pdn = self._spot.pdn(pdn_name)

        def evaluate(
            instance: object, conditions: OperatingConditions
        ) -> PdnEvaluation:
            """Serve the phase through the shared analytic memo cache."""
            return self._spot.evaluate(pdn_name, conditions, overrides)

        return simulator.run(trace, pdn, evaluate=evaluate)

    @property
    def columnar_enabled(self) -> bool:
        """Always ``False``: simulations do not columnarise.

        A simulation unit is a stateful trace replay (mode-switch
        controllers, PMU telemetry, residency guards), not a pure function
        of column arrays; the vectorization this engine *does* get is
        inside each replay, where the interval simulator batches phase
        evaluations per operating point and the backing analytic engine
        evaluates them through the columnar core.
        """
        return False

    def evaluate_columns(
        self, units: Sequence[Tuple[str, SimPoint, OverrideKey]]
    ) -> Optional[List[SimulationResult]]:
        """Decline every batch (see :attr:`columnar_enabled`)."""
        return None

    def _evaluate_cached(
        self, pdn_name: str, point: SimPoint, overrides: OverrideKey = ()
    ) -> SimulationResult:
        """Simulate one scenario on one PDN through the memo cache."""
        if not self._cache_enabled:
            return self.evaluate_uncached(pdn_name, point, overrides)
        key = self.cache_key(pdn_name, point, overrides)
        cached = self.cache_lookup(key)
        if cached is not None:
            return cached
        result = self.evaluate_uncached(pdn_name, point, overrides)
        return self.cache_install(key, result)

    def evaluate(
        self, pdn_name: str, point: SimPoint, overrides: OverrideKey = ()
    ) -> SimulationResult:
        """Simulate one scenario on one PDN (cached).

        The public single-point entry, mirroring :meth:`PdnSpot.evaluate`;
        for many points use :meth:`evaluate_units`.
        """
        return self._evaluate_cached(pdn_name, point, overrides)

    def evaluate_cached(
        self, pdn_name: str, point: SimPoint, overrides: OverrideKey = ()
    ) -> SimulationResult:
        """Thin alias of :meth:`evaluate` (the historical spelling).

        Retained so pre-consolidation callers keep working; new code should
        call :meth:`evaluate` for one point or :meth:`evaluate_units` for a
        batch.
        """
        return self._evaluate_cached(pdn_name, point, overrides)

    # ------------------------------------------------------------------ #
    # Lazily built, override-keyed shared state
    # ------------------------------------------------------------------ #
    def _parameters_for(self, overrides: OverrideKey) -> PdnTechnologyParameters:
        if not overrides:
            return self.parameters
        return self.parameters.with_overrides(**dict(overrides))

    def _predictor_for(self, overrides: OverrideKey):
        with self._cache_lock:
            predictor = self._predictors.get(overrides)
        if predictor is not None:
            return predictor
        # The calibration is deterministic, so two racing builders produce
        # equivalent predictors; first one wins.  Without overrides the
        # analytic engine's own FlexWatts instance shares its calibration.
        if not overrides and FlexWattsPdn.name in self._spot.pdns:
            predictor = self._spot.pdn(FlexWattsPdn.name).predictor
        else:
            predictor = FlexWattsPdn(
                parameters=self._parameters_for(overrides)
            ).predictor
        with self._cache_lock:
            return self._predictors.setdefault(overrides, predictor)

    def _make_mode_evaluator(self, overrides: OverrideKey):
        """Mode-forced evaluation hook backed by the cross-run memo.

        With the engine cache disabled the hook computes directly (the
        seed-equivalent cost model the cold benchmarks rely on); the
        simulator's per-run memo still deduplicates repeats within a trace
        either way.
        """
        if not self._cache_enabled:
            return None  # IntervalSimulator falls back to direct evaluation

        def evaluate_in_mode(
            pdn: FlexWattsPdn, conditions: OperatingConditions, mode: PdnMode
        ) -> PdnEvaluation:
            """Serve one (point, mode) evaluation through the shared memo."""
            key = (overrides, mode, conditions_key(conditions))
            cached = self._mode_evaluations.get(key)
            if cached is None:
                cached = self._mode_evaluations.setdefault(
                    key, pdn.evaluate_in_mode(conditions, mode)
                )
            return cached

        return evaluate_in_mode

    # ------------------------------------------------------------------ #
    # Study execution
    # ------------------------------------------------------------------ #
    def evaluate_units(
        self,
        units: Iterable[Tuple[str, SimPoint, OverrideKey]],
        executor: ExecutorLike = None,
        jobs: Optional[int] = None,
    ) -> List[SimulationResult]:
        """Simulate ``(pdn_name, point, overrides)`` units, in order.

        Exactly the contract of :meth:`PdnSpot.evaluate_units` (the single
        public batch entry point of every engine): the default serial path
        memoises each unit on the calling thread; a parallel backend
        deduplicates, shards, merges worker results back into this engine's
        memo cache and returns the results in canonical unit order.
        """
        backend = make_executor(executor, jobs=jobs)
        if backend is None:
            return [
                self._evaluate_cached(name, point, overrides)
                for name, point, overrides in units
            ]
        return backend.evaluate_units(self, units)

    def run(
        self,
        study: SimStudy,
        executor: ExecutorLike = None,
        jobs: Optional[int] = None,
    ) -> ResultSet:
        """Execute a :class:`SimStudy` and return its summary results.

        Points are simulated in grid order against every instantiated PDN
        (or the study's ``pdn_names`` restriction); the returned
        :class:`ResultSet` holds one summary row per ``(point, pdn)``
        simulation, in canonical grid order regardless of the backend --
        a parallel run is bit-identical to the serial one.
        """
        started = time.perf_counter()
        before = self.cache_info()
        names = (
            study.pdn_names if study.pdn_names is not None else tuple(self._spot.pdns)
        )
        for name in names:
            self._spot.pdn(name)  # fail fast on unknown PDNs
        units = [
            (name, point, point.overrides)
            for point in study.points
            for name in names
        ]
        with obs_trace.span("engine.run", category="engine",
                            study=study.name, units=len(units)):
            results = self.evaluate_units(units, executor=executor, jobs=jobs)
        records: List[Record] = []
        cursor = 0
        for point in study.points:
            identity = point.record_fields()
            for _ in names:
                records.append(simulation_record(results[cursor], identity))
                cursor += 1
        resultset = ResultSet.from_records(records, name=study.name)
        after = self.cache_info()
        resultset.run_stats = RunStats(
            units=len(units),
            duration_s=time.perf_counter() - started,
            cache_hits=after.hits - before.hits,
            cache_misses=after.misses - before.misses,
            executor=executor_label(make_executor(executor, jobs=jobs)),
        )
        return resultset


def run_sim(
    study: SimStudy,
    engine: Optional[SimEngine] = None,
    parameters: Optional[PdnTechnologyParameters] = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: DiskCacheLike = None,
) -> ResultSet:
    """Execute ``study`` and return its summary :class:`ResultSet`.

    The convenience entry point behind the CLI ``simulate`` sub-command:
    builds a default :class:`SimEngine` (or uses the supplied one) and
    forwards ``executor``/``jobs`` to the execution backend.  ``cache_dir``
    attaches the persistent on-disk tier (see :mod:`repro.cache`): a warm
    directory serves every repeated simulation from disk.
    """
    if engine is not None and parameters is not None:
        raise ConfigurationError(
            "pass either a prebuilt engine or parameters, not both"
        )
    if engine is not None and cache_dir is not None:
        raise ConfigurationError(
            "pass either a prebuilt engine or cache_dir; attach the disk "
            "cache when building the engine instead"
        )
    if engine is None:
        engine = SimEngine(parameters=parameters, disk_cache=cache_dir)
    return engine.run(study, executor=executor, jobs=jobs)
