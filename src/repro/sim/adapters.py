"""Adapters from simulation outcomes to the columnar :class:`ResultSet`.

A :class:`~repro.sim.engine.SimulationResult` is a per-run object; the
analysis layer (filter/pivot/normalize_to, JSON/CSV export, the CLI) speaks
:class:`~repro.analysis.resultset.ResultSet`.  These adapters flatten
simulation outcomes into the same ragged-schema record layout the analytic
sweeps use: one *summary* row per ``(scenario, pdn)`` simulation, or one
*phase* row per simulated phase for fine-grained inspection.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.analysis.resultset import Record, ResultSet
from repro.core.hybrid_vr import PdnMode
from repro.sim.engine import SimulationResult

#: Columns of a summary row that vary per PDN and are therefore never part
#: of a scenario's identity -- pass to :meth:`ResultSet.normalize_to` as
#: ``metric_columns`` when normalising simulation output to a baseline PDN.
SIM_METRIC_COLUMNS: Tuple[str, ...] = (
    "total_time_s",
    "total_energy_j",
    "average_power_w",
    "mode_switch_count",
    "mode_switch_time_s",
    "mode_switch_energy_j",
    "ivr_mode_time_s",
    "ldo_mode_time_s",
)


def simulation_record(
    result: SimulationResult, identity: Optional[Record] = None
) -> Record:
    """Flatten one simulation outcome into a summary record.

    ``identity`` carries the scenario-identifying fields (scenario name,
    seed, parameter overrides, ...) that the :class:`SimulationResult` itself
    does not know; they are placed before the metric columns, mirroring the
    analytic sweep layout.  The per-mode residency columns are only present
    for adaptive (FlexWatts) runs -- static PDNs have no mode, and the absent
    cells stay :data:`~repro.analysis.resultset.MISSING`.
    """
    record: Record = {"pdn": result.pdn_name}
    if identity:
        record.update(identity)
    record.setdefault("scenario", result.trace_name)
    record.setdefault("tdp_w", result.tdp_w)
    record.update(
        total_time_s=result.total_time_s,
        total_energy_j=result.total_energy_j,
        average_power_w=result.average_power_w,
        mode_switch_count=result.mode_switch_count,
        mode_switch_time_s=result.mode_switch_time_s,
        mode_switch_energy_j=result.mode_switch_energy_j,
    )
    if any(r.pdn_mode is not None for r in result.phase_records):
        record["ivr_mode_time_s"] = result.time_in_mode_s(PdnMode.IVR_MODE)
        record["ldo_mode_time_s"] = result.time_in_mode_s(PdnMode.LDO_MODE)
    return record


def results_to_resultset(
    results: Iterable[Tuple[Optional[Record], SimulationResult]],
    name: str = "simulation",
) -> ResultSet:
    """Assemble ``(identity, result)`` pairs into a summary :class:`ResultSet`."""
    records = [simulation_record(result, identity) for identity, result in results]
    return ResultSet.from_records(records, name=name)


def phases_to_resultset(
    result: SimulationResult, identity: Optional[Record] = None
) -> ResultSet:
    """One row per simulated phase of one run (power, energy, mode, switches)."""
    records: List[Record] = []
    for phase in result.phase_records:
        record: Record = {"pdn": result.pdn_name}
        if identity:
            record.update(identity)
        record.setdefault("scenario", result.trace_name)
        record.update(
            phase_index=phase.phase_index,
            power_state=phase.power_state,
            workload_type=phase.workload_type,
            duration_s=phase.duration_s,
            supply_power_w=phase.supply_power_w,
            energy_j=phase.energy_j,
        )
        if phase.pdn_mode is not None:
            record["pdn_mode"] = phase.pdn_mode
            record["mode_switched"] = phase.mode_switched
        records.append(record)
    return ResultSet.from_records(records, name=f"{result.trace_name}-phases")
