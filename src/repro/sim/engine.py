"""The interval simulator.

The simulator models time explicitly but keeps the electrical models analytic:
each workload phase is one (or several) evaluation intervals during which the
operating point is constant, so the phase's energy is simply power x time.
What the simulator adds over the analytic sweeps is the *dynamic* behaviour of
FlexWatts: mode decisions are made from PMU telemetry at each interval, mode
switches cost the 94 us flow, and a minimum-residency guard prevents
thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.flexwatts import FlexWattsPdn
from repro.core.hybrid_vr import PdnMode
from repro.pdn.base import OperatingConditions, PowerDeliveryNetwork
from repro.power.domains import WorkloadType
from repro.power.power_states import PackageCState
from repro.soc.pmu import PowerManagementUnit
from repro.util.errors import ConfigurationError
from repro.util.validation import require_positive
from repro.workloads.base import WorkloadPhase, WorkloadTrace


@dataclass(frozen=True)
class PhaseRecord:
    """Simulation outcome of one workload phase."""

    phase_index: int
    power_state: str
    workload_type: str
    duration_s: float
    supply_power_w: float
    energy_j: float
    pdn_mode: Optional[str] = None
    mode_switched: bool = False


@dataclass
class SimulationResult:
    """Aggregate outcome of simulating one trace on one PDN."""

    pdn_name: str
    trace_name: str
    tdp_w: float
    phase_records: List[PhaseRecord] = field(default_factory=list)
    mode_switch_count: int = 0
    mode_switch_time_s: float = 0.0
    mode_switch_energy_j: float = 0.0

    @property
    def total_time_s(self) -> float:
        """Total simulated time, including mode-switch flows."""
        return sum(record.duration_s for record in self.phase_records) + self.mode_switch_time_s

    @property
    def total_energy_j(self) -> float:
        """Total energy drawn from the platform supply."""
        return (
            sum(record.energy_j for record in self.phase_records)
            + self.mode_switch_energy_j
        )

    @property
    def average_power_w(self) -> float:
        """Average supply power over the simulated trace."""
        total_time = self.total_time_s
        if total_time == 0.0:
            return 0.0
        return self.total_energy_j / total_time

    def time_in_mode_s(self, mode: PdnMode) -> float:
        """Time spent with the hybrid PDN in ``mode`` (FlexWatts runs only)."""
        return sum(
            record.duration_s
            for record in self.phase_records
            if record.pdn_mode == mode.value
        )


class IntervalSimulator:
    """Replays workload traces against a processor + PDN combination.

    Parameters
    ----------
    tdp_w:
        The processor's configured TDP.
    default_phase_duration_s:
        Duration assigned to phases that carry only a residency (battery-life
        traces); each phase then lasts ``residency * trace_period_s``.
    trace_period_s:
        The period over which residencies are defined (e.g. the length of one
        video frame times the number of frames simulated).
    """

    def __init__(
        self,
        tdp_w: float,
        trace_period_s: float = 1.0,
        evaluation_interval_s: float = 10e-3,
    ):
        require_positive(tdp_w, "tdp_w")
        require_positive(trace_period_s, "trace_period_s")
        require_positive(evaluation_interval_s, "evaluation_interval_s")
        self._tdp_w = tdp_w
        self._trace_period_s = trace_period_s
        self._evaluation_interval_s = evaluation_interval_s

    # ------------------------------------------------------------------ #
    # Operating-point construction
    # ------------------------------------------------------------------ #
    def _conditions_for_phase(self, phase: WorkloadPhase) -> OperatingConditions:
        if phase.power_state is PackageCState.C0 and phase.benchmark is not None:
            return OperatingConditions.for_active_workload(
                tdp_w=self._tdp_w,
                application_ratio=phase.benchmark.application_ratio,
                workload_type=phase.benchmark.workload_type,
            )
        if phase.power_state is PackageCState.C0:
            raise ConfigurationError("a C0 phase needs a benchmark")
        return OperatingConditions.for_power_state(self._tdp_w, phase.power_state)

    def _phase_duration_s(self, phase: WorkloadPhase) -> float:
        if phase.duration_s is not None:
            return phase.duration_s
        return phase.residency * self._trace_period_s

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #
    def run(
        self,
        trace: WorkloadTrace,
        pdn: PowerDeliveryNetwork,
        pmu: Optional[PowerManagementUnit] = None,
    ) -> SimulationResult:
        """Simulate ``trace`` on ``pdn``.

        For a :class:`FlexWattsPdn` the Algorithm-1 predictor is consulted for
        every phase, the mode-switch controller enforces the minimum mode
        residency, and every switch adds the flow's latency and energy.  Other
        PDNs are static, so their phases are evaluated directly.
        """
        if pmu is None:
            pmu = PowerManagementUnit(tdp_w=self._tdp_w)
        result = SimulationResult(
            pdn_name=pdn.name, trace_name=trace.name, tdp_w=self._tdp_w
        )
        adaptive = isinstance(pdn, FlexWattsPdn)
        for index, phase in enumerate(trace.phases):
            duration_s = self._phase_duration_s(phase)
            if duration_s == 0.0:
                continue
            conditions = self._conditions_for_phase(phase)
            switched = False
            mode_name: Optional[str] = None
            if adaptive:
                controller = pdn.switch_controller
                controller.advance_time(duration_s)
                desired_mode = pdn.predict_mode(conditions)
                if desired_mode is not controller.mode and controller.can_switch():
                    # The switch is performed at the phase boundary, while the
                    # compute domains are idle (the flow itself forces C6).
                    previous_power = pdn.evaluate_in_mode(
                        conditions, controller.mode
                    ).supply_power_w
                    latency_s = controller.switch_to(desired_mode, pmu=pmu)
                    result.mode_switch_count += 1
                    result.mode_switch_time_s += latency_s
                    result.mode_switch_energy_j += previous_power * latency_s
                    switched = True
                evaluation = pdn.evaluate_in_mode(conditions, controller.mode)
                mode_name = controller.mode.value
            else:
                evaluation = pdn.evaluate(conditions)
            pmu.advance_time(duration_s)
            pmu.enter_power_state(phase.power_state)
            result.phase_records.append(
                PhaseRecord(
                    phase_index=index,
                    power_state=phase.power_state.value,
                    workload_type=(
                        phase.benchmark.workload_type.value
                        if phase.benchmark is not None
                        else WorkloadType.IDLE.value
                    ),
                    duration_s=duration_s,
                    supply_power_w=evaluation.supply_power_w,
                    energy_j=evaluation.supply_power_w * duration_s,
                    pdn_mode=mode_name,
                    mode_switched=switched,
                )
            )
        return result

    def compare(
        self,
        trace: WorkloadTrace,
        pdns: Sequence[PowerDeliveryNetwork],
    ) -> Dict[str, SimulationResult]:
        """Simulate ``trace`` on several PDNs and return the results by name."""
        return {pdn.name: self.run(trace, pdn) for pdn in pdns}
