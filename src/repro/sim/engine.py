"""The interval simulator.

The simulator models time explicitly but keeps the electrical models analytic:
each workload phase is one (or several) evaluation intervals during which the
operating point is constant, so the phase's energy is simply power x time.
What the simulator adds over the analytic sweeps is the *dynamic* behaviour of
FlexWatts: mode decisions are made from PMU telemetry at each interval, mode
switches cost the 94 us flow, and a minimum-residency guard prevents
thrashing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.flexwatts import FlexWattsPdn
from repro.core.hybrid_vr import PdnMode
from repro.core.runtime_estimator import RuntimeInputEstimator
from repro.obs import trace as obs_trace
from repro.obs.metrics import METRICS
from repro.pdn.base import (
    OperatingConditions,
    PdnEvaluation,
    PowerDeliveryNetwork,
    conditions_key,
)
from repro.power.domains import WorkloadType
from repro.power.power_states import PackageCState
from repro.soc.pmu import PmuTelemetry, PowerManagementUnit
from repro.util.errors import ConfigurationError
from repro.util.validation import require_positive
from repro.workloads.base import WorkloadPhase, WorkloadTrace

# Simulator instruments, bound once at import time.
_SIM_PHASES = METRICS.counter("sim.phases")
_SIM_MODE_SWITCHES = METRICS.counter("sim.mode_switches")
_SIM_RESIDENCY_GUARD_HITS = METRICS.counter("sim.residency_guard_hits")
_SIM_PREFILL_BATCHES = METRICS.counter("sim.prefill_batches")

#: Evaluation hook for static PDNs: ``(pdn, conditions) -> PdnEvaluation``.
#: Lets an external memo cache (a :class:`repro.analysis.pdnspot.PdnSpot`)
#: serve operating points repeated across traces, scenarios and TDPs.
PhaseEvaluator = Callable[
    [PowerDeliveryNetwork, OperatingConditions], PdnEvaluation
]

#: Evaluation hook for the hybrid PDN's mode-forced evaluations:
#: ``(pdn, conditions, mode) -> PdnEvaluation``.
ModeEvaluator = Callable[
    [FlexWattsPdn, OperatingConditions, PdnMode], PdnEvaluation
]


def phase_conditions(phase: WorkloadPhase, tdp_w: float) -> OperatingConditions:
    """The operating point one workload phase is evaluated at.

    Active C0 phases carry their benchmark's application ratio and workload
    type; every other phase takes both from the package power-state profile.
    This is *the* phase-to-operating-point mapping -- the simulator, the
    telemetry profile and any external tooling must agree on it.
    """
    if phase.power_state is PackageCState.C0 and phase.benchmark is not None:
        return OperatingConditions.for_active_workload(
            tdp_w=tdp_w,
            application_ratio=phase.benchmark.application_ratio,
            workload_type=phase.benchmark.workload_type,
        )
    if phase.power_state is PackageCState.C0:
        raise ConfigurationError("a C0 phase needs a benchmark")
    return OperatingConditions.for_power_state(tdp_w, phase.power_state)


def phase_duration(phase: WorkloadPhase, trace_period_s: float) -> float:
    """One phase's wall-clock duration (residency fallback included)."""
    if phase.duration_s is not None:
        return phase.duration_s
    return phase.residency * trace_period_s


def telemetry_profile(
    trace: WorkloadTrace, tdp_w: float, trace_period_s: float = 1.0
) -> List[PmuTelemetry]:
    """Per-phase PMU telemetry snapshots a trace produces at ``tdp_w``.

    Exactly the snapshots the interval simulator emits through
    :meth:`~repro.soc.pmu.PowerManagementUnit.emit_telemetry` -- same
    phase-to-operating-point mapping (:func:`phase_conditions`), same
    zero-duration skipping, same oracle estimator -- without running a
    simulation (no PDN needed).
    """
    return [
        RuntimeInputEstimator.estimate_from_conditions(
            phase_conditions(phase, tdp_w)
        )
        for phase in trace.phases
        if phase_duration(phase, trace_period_s) > 0.0
    ]


@dataclass(frozen=True)
class PhaseRecord:
    """Simulation outcome of one workload phase."""

    phase_index: int
    power_state: str
    workload_type: str
    duration_s: float
    supply_power_w: float
    energy_j: float
    pdn_mode: Optional[str] = None
    mode_switched: bool = False


@dataclass
class SimulationResult:
    """Aggregate outcome of simulating one trace on one PDN."""

    pdn_name: str
    trace_name: str
    tdp_w: float
    phase_records: List[PhaseRecord] = field(default_factory=list)
    mode_switch_count: int = 0
    mode_switch_time_s: float = 0.0
    mode_switch_energy_j: float = 0.0

    @property
    def total_time_s(self) -> float:
        """Total simulated time, including mode-switch flows."""
        return sum(record.duration_s for record in self.phase_records) + self.mode_switch_time_s

    @property
    def total_energy_j(self) -> float:
        """Total energy drawn from the platform supply."""
        return (
            sum(record.energy_j for record in self.phase_records)
            + self.mode_switch_energy_j
        )

    @property
    def average_power_w(self) -> float:
        """Average supply power over the simulated trace."""
        total_time = self.total_time_s
        if total_time == 0.0:
            return 0.0
        return self.total_energy_j / total_time

    def time_in_mode_s(self, mode: PdnMode) -> float:
        """Time spent with the hybrid PDN in ``mode`` (FlexWatts runs only)."""
        return sum(
            (
                record.duration_s
                for record in self.phase_records
                if record.pdn_mode == mode.value
            ),
            0.0,
        )


class IntervalSimulator:
    """Replays workload traces against a processor + PDN combination.

    Parameters
    ----------
    tdp_w:
        The processor's configured TDP.
    trace_period_s:
        The period over which residencies are defined (e.g. the length of one
        video frame times the number of frames simulated); phases that carry
        only a residency last ``residency * trace_period_s``.
    evaluation_interval_s:
        How often the PMU re-evaluates its algorithms (FlexWatts uses 10 ms).
    """

    def __init__(
        self,
        tdp_w: float,
        trace_period_s: float = 1.0,
        evaluation_interval_s: float = 10e-3,
    ):
        require_positive(tdp_w, "tdp_w")
        require_positive(trace_period_s, "trace_period_s")
        require_positive(evaluation_interval_s, "evaluation_interval_s")
        self._tdp_w = tdp_w
        self._trace_period_s = trace_period_s
        self._evaluation_interval_s = evaluation_interval_s

    # ------------------------------------------------------------------ #
    # Operating-point construction
    # ------------------------------------------------------------------ #
    def _conditions_for_phase(self, phase: WorkloadPhase) -> OperatingConditions:
        """Delegate to the module-level mapping at this simulator's TDP."""
        return phase_conditions(phase, self._tdp_w)

    def _phase_duration_s(self, phase: WorkloadPhase) -> float:
        """Delegate to the module-level mapping at this simulator's period."""
        return phase_duration(phase, self._trace_period_s)

    # ------------------------------------------------------------------ #
    # Simulation
    # ------------------------------------------------------------------ #

    #: Distinct operating points a trace must reach before the phase batch
    #: is worth a vectorized pass; short traces stay on the scalar memo.
    _COLUMNAR_PREFILL_THRESHOLD = 8

    def _prefill_phase_batch(
        self,
        pdn: PowerDeliveryNetwork,
        trace: WorkloadTrace,
        durations_s: Sequence[float],
        evaluations: Dict[Tuple[object, ...], PdnEvaluation],
    ) -> None:
        """Seed the per-run memo with one vectorized pass over the phases.

        The phase loop batches evaluations by operating point already; for
        static PDNs on traces with many *distinct* points (DVFS ladders,
        randomized scenario storms) this computes the whole batch as column
        arrays instead of one Python call per point.  The columnar kernels
        are bit-identical to ``pdn.evaluate`` (they share the equivalence
        oracle), so seeding the memo never changes a simulation result; if
        the model or any point declines columnarisation, the memo is simply
        left empty and the loop evaluates per point as before.
        """
        distinct: Dict[Tuple[object, ...], OperatingConditions] = {}
        for index, phase in enumerate(trace.phases):
            if durations_s[index] == 0.0:
                continue
            try:
                conditions = self._conditions_for_phase(phase)
            except ConfigurationError:
                # A malformed phase must fail inside the loop, at its place
                # in the trace, so callers observe the same partial state a
                # per-point run would have produced.
                return
            distinct.setdefault((None, conditions_key(conditions)), conditions)
        if len(distinct) < self._COLUMNAR_PREFILL_THRESHOLD:
            return
        # Imported lazily: the columnar core lazily imports repro.core in
        # the other direction, and neither import may run at module load.
        from repro.pdn.columnar import evaluate_columns

        with obs_trace.span("sim.phase_batch", category="sim",
                            pdn=pdn.name, points=len(distinct)) as batch_span:
            results = evaluate_columns(pdn, list(distinct.values()))
            batch_span.set("columnar", results is not None)
        if results is not None:
            _SIM_PREFILL_BATCHES.inc()
            evaluations.update(zip(distinct.keys(), results))

    def run(
        self,
        trace: WorkloadTrace,
        pdn: PowerDeliveryNetwork,
        pmu: Optional[PowerManagementUnit] = None,
        evaluate: Optional[PhaseEvaluator] = None,
        evaluate_in_mode: Optional[ModeEvaluator] = None,
    ) -> SimulationResult:
        """Simulate ``trace`` on ``pdn``.

        For a :class:`FlexWattsPdn` the Algorithm-1 predictor is consulted for
        every phase, the mode-switch controller enforces the minimum mode
        residency, and every switch adds the flow's latency and energy.  Other
        PDNs are static, so their phases are evaluated directly.

        Phases are *batched by operating point*: because the electrical models
        are pure, every distinct ``(operating point, mode)`` pair is evaluated
        exactly once per run and repeated phases (duty-cycled traces, DVFS
        ladders) are served from a per-run memo.  The optional ``evaluate`` /
        ``evaluate_in_mode`` hooks route those one-per-point evaluations
        through an external cache (:class:`repro.sim.study.SimEngine` wires
        them to a shared :class:`~repro.analysis.pdnspot.PdnSpot`), so
        operating points repeated *across* traces are also computed once.

        A trace whose phases all resolve to zero duration is rejected: it has
        no simulable time, so every aggregate would silently be zero.
        """
        if pmu is None:
            pmu = PowerManagementUnit(tdp_w=self._tdp_w)
        if obs_trace.tracing_enabled():
            # Satellite bridge: mirror the PMU's telemetry emissions into
            # the trace so per-phase activity shows on the sim timeline.
            obs_trace.attach_pmu_tracing(pmu)
        durations_s = [self._phase_duration_s(phase) for phase in trace.phases]
        if not any(duration > 0.0 for duration in durations_s):
            raise ConfigurationError(
                f"trace {trace.name!r} has no phase with a non-zero duration; "
                "nothing to simulate"
            )
        result = SimulationResult(
            pdn_name=pdn.name, trace_name=trace.name, tdp_w=self._tdp_w
        )
        adaptive = isinstance(pdn, FlexWattsPdn)
        # Per-run memos: the models are pure, so evaluations and mode
        # predictions depend only on the operating point (plus the forced
        # mode), never on when in the trace they happen.
        evaluations: Dict[Tuple[object, ...], PdnEvaluation] = {}
        predictions: Dict[Tuple[object, ...], PdnMode] = {}
        if not adaptive and evaluate is None:
            self._prefill_phase_batch(pdn, trace, durations_s, evaluations)

        def evaluate_point(
            conditions: OperatingConditions, mode: Optional[PdnMode]
        ) -> PdnEvaluation:
            """One evaluation per distinct (operating point, mode) pair."""
            key = (mode, conditions_key(conditions))
            cached = evaluations.get(key)
            if cached is None:
                if mode is not None:
                    if evaluate_in_mode is not None:
                        cached = evaluate_in_mode(pdn, conditions, mode)
                    else:
                        cached = pdn.evaluate_in_mode(conditions, mode)
                elif evaluate is not None:
                    cached = evaluate(pdn, conditions)
                else:
                    cached = pdn.evaluate(conditions)
                evaluations[key] = cached
            return cached

        def predict_point(conditions: OperatingConditions) -> PdnMode:
            """One Algorithm-1 prediction per distinct operating point."""
            key = conditions_key(conditions)
            cached = predictions.get(key)
            if cached is None:
                cached = pdn.predict_mode(conditions)
                predictions[key] = cached
            return cached

        with obs_trace.span("sim.run", category="sim", trace=trace.name,
                            pdn=pdn.name, tdp_w=self._tdp_w) as run_span:
            for index, phase in enumerate(trace.phases):
                duration_s = durations_s[index]
                if duration_s == 0.0:
                    continue
                _SIM_PHASES.inc()
                conditions = self._conditions_for_phase(phase)
                switched = False
                mode_name: Optional[str] = None
                if adaptive:
                    controller = pdn.switch_controller
                    controller.advance_time(duration_s)
                    desired_mode = predict_point(conditions)
                    if desired_mode is not controller.mode:
                        if controller.can_switch():
                            # The switch is performed at the phase boundary,
                            # while the compute domains are idle (the flow
                            # itself forces C6).
                            previous_power = evaluate_point(
                                conditions, controller.mode
                            ).supply_power_w
                            latency_s = controller.switch_to(desired_mode, pmu=pmu)
                            result.mode_switch_count += 1
                            result.mode_switch_time_s += latency_s
                            result.mode_switch_energy_j += previous_power * latency_s
                            switched = True
                            _SIM_MODE_SWITCHES.inc()
                            obs_trace.instant(
                                "sim.mode_switch", category="sim",
                                phase=index, mode=desired_mode.value,
                                latency_s=latency_s,
                            )
                        else:
                            # The minimum-residency guard vetoed a wanted
                            # switch: the thrashing case the paper's flow
                            # is designed to suppress.
                            _SIM_RESIDENCY_GUARD_HITS.inc()
                            obs_trace.instant(
                                "sim.residency_guard_hit", category="sim",
                                phase=index, desired=desired_mode.value,
                            )
                    evaluation = evaluate_point(conditions, controller.mode)
                    mode_name = controller.mode.value
                else:
                    evaluation = evaluate_point(conditions, None)
                pmu.advance_time(duration_s)
                pmu.enter_power_state(phase.power_state)
                if pmu.has_telemetry_listeners:
                    pmu.emit_telemetry(
                        RuntimeInputEstimator.estimate_from_conditions(conditions)
                    )
                result.phase_records.append(
                    PhaseRecord(
                        phase_index=index,
                        power_state=phase.power_state.value,
                        workload_type=(
                            phase.benchmark.workload_type.value
                            if phase.benchmark is not None
                            else WorkloadType.IDLE.value
                        ),
                        duration_s=duration_s,
                        supply_power_w=evaluation.supply_power_w,
                        energy_j=evaluation.supply_power_w * duration_s,
                        pdn_mode=mode_name,
                        mode_switched=switched,
                    )
                )
            run_span.set("phases", len(result.phase_records))
            run_span.set("mode_switches", result.mode_switch_count)
        return result

    def compare(
        self,
        trace: WorkloadTrace,
        pdns: Sequence[PowerDeliveryNetwork],
    ) -> Dict[str, SimulationResult]:
        """Simulate ``trace`` on several PDNs and return the results by name."""
        return {pdn.name: self.run(trace, pdn) for pdn in pdns}
