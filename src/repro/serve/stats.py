"""Observability of the evaluation service: latency histograms and counters.

Everything ``GET /v1/stats`` reports is assembled here from three sources:

* per-endpoint request counters and fixed-bucket latency histograms
  (:class:`EndpointStats`, maintained by the server's request loop);
* the coalescers' traffic counters
  (:class:`~repro.serve.coalescer.CoalescerStats`);
* the engines' cache statistics -- memory-tier hit/miss/size from
  ``cache_info()`` and the on-disk footprint through
  :func:`repro.cache.cache_stats_payload`, the **same** schema helper
  behind ``repro cache stats --json``, so the two surfaces cannot drift.

Since the :mod:`repro.obs` layer landed, the instruments here are thin
wrappers over :mod:`repro.obs.metrics`: :class:`LatencyHistogram` is the
shared log-spaced :class:`~repro.obs.metrics.Histogram` serialized under
its historical ``sum_s`` key, and :class:`EndpointStats` additionally
mirrors its request/error tallies into the process-wide registry (the
``serve.requests`` / ``serve.errors`` counters of ``GET /v1/metrics``).
The ``/v1/stats`` document shape is unchanged byte for byte.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.metrics import DEFAULT_LATENCY_BOUNDS_S, METRICS, Histogram

#: Upper bucket bounds (seconds) of the request-latency histograms.  Fixed
#: and log-spaced so dashboards can diff histograms across processes; the
#: terminal bucket is unbounded.  Now an alias of the process-wide default
#: layout in :mod:`repro.obs.metrics`, which this module originated.
LATENCY_BUCKET_BOUNDS_S = DEFAULT_LATENCY_BOUNDS_S


class LatencyHistogram(Histogram):
    """A fixed-bucket latency histogram (cumulative-free, JSON-ready).

    A thin wrapper over the shared :class:`repro.obs.metrics.Histogram`:
    same bounds, same bucket labels, but serialized under the service's
    historical ``sum_s`` key so the ``/v1/stats`` document is byte-stable.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(bounds=LATENCY_BUCKET_BOUNDS_S)

    def as_dict(self) -> Dict[str, object]:
        """The histogram as a JSON-ready mapping (stable key order)."""
        return super().as_dict(sum_key="sum_s")


class EndpointStats:
    """Request counters of one endpoint (count, errors, latency).

    The per-endpoint tallies stay local to the instance (the ``/v1/stats``
    ``endpoints`` section is keyed by endpoint name), while the aggregate
    ``serve.requests`` / ``serve.errors`` counters in the process-wide
    registry tick alongside so ``GET /v1/metrics`` sees service traffic.
    """

    _TOTAL_REQUESTS = METRICS.counter("serve.requests")
    _TOTAL_ERRORS = METRICS.counter("serve.errors")

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.latency = LatencyHistogram()

    def observe(self, elapsed_s: float, error: bool) -> None:
        """Record one handled request and its outcome."""
        self.requests += 1
        self._TOTAL_REQUESTS.inc()
        if error:
            self.errors += 1
            self._TOTAL_ERRORS.inc()
        self.latency.observe(elapsed_s)

    def as_dict(self) -> Dict[str, object]:
        """The counters as a JSON-ready mapping (stable key order)."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "latency": self.latency.as_dict(),
        }


def memory_cache_section(engines: Dict[str, object]) -> Dict[str, object]:
    """The memory-tier cache section of the stats payload.

    One ``{"hits", "misses", "hit_rate", "size"}`` entry per named engine,
    read through the engines' ``cache_info()`` surface.
    """
    section: Dict[str, object] = {}
    for name, engine in engines.items():
        info = engine.cache_info()
        section[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "hit_rate": info.hit_rate,
            "size": info.size,
        }
    return section


def disk_cache_section(cache_dir: Optional[str]) -> Optional[Dict[str, object]]:
    """The on-disk cache section: the shared ``cache stats --json`` schema.

    ``None`` when the server runs without a persistent cache directory;
    otherwise exactly :func:`repro.cache.cache_stats_payload`, which is
    also what ``repro cache stats --json`` prints.
    """
    if cache_dir is None:
        return None
    from repro.cache import cache_stats_payload

    return cache_stats_payload(cache_dir)
