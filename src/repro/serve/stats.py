"""Observability of the evaluation service: latency histograms and counters.

Everything ``GET /v1/stats`` reports is assembled here from three sources:

* per-endpoint request counters and fixed-bucket latency histograms
  (:class:`EndpointStats`, maintained by the server's request loop);
* the coalescers' traffic counters
  (:class:`~repro.serve.coalescer.CoalescerStats`);
* the engines' cache statistics -- memory-tier hit/miss/size from
  ``cache_info()`` and the on-disk footprint through
  :func:`repro.cache.cache_stats_payload`, the **same** schema helper
  behind ``repro cache stats --json``, so the two surfaces cannot drift.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

#: Upper bucket bounds (seconds) of the request-latency histograms.  Fixed
#: and log-spaced so dashboards can diff histograms across processes; the
#: terminal bucket is unbounded.
LATENCY_BUCKET_BOUNDS_S: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, math.inf,
)


class LatencyHistogram:
    """A fixed-bucket latency histogram (cumulative-free, JSON-ready)."""

    def __init__(self) -> None:
        self._counts: List[int] = [0] * len(LATENCY_BUCKET_BOUNDS_S)
        self._count = 0
        self._sum_s = 0.0

    def observe(self, seconds: float) -> None:
        """Record one request latency."""
        for index, bound in enumerate(LATENCY_BUCKET_BOUNDS_S):
            if seconds <= bound:
                self._counts[index] += 1
                break
        self._count += 1
        self._sum_s += seconds

    @property
    def count(self) -> int:
        """Number of recorded observations."""
        return self._count

    def as_dict(self) -> Dict[str, object]:
        """The histogram as a JSON-ready mapping (stable key order)."""
        buckets = {
            ("inf" if math.isinf(bound) else f"{bound:g}"): count
            for bound, count in zip(LATENCY_BUCKET_BOUNDS_S, self._counts)
        }
        return {"count": self._count, "sum_s": self._sum_s, "buckets": buckets}


class EndpointStats:
    """Request counters of one endpoint (count, errors, latency)."""

    def __init__(self) -> None:
        self.requests = 0
        self.errors = 0
        self.latency = LatencyHistogram()

    def observe(self, elapsed_s: float, error: bool) -> None:
        """Record one handled request and its outcome."""
        self.requests += 1
        if error:
            self.errors += 1
        self.latency.observe(elapsed_s)

    def as_dict(self) -> Dict[str, object]:
        """The counters as a JSON-ready mapping (stable key order)."""
        return {
            "requests": self.requests,
            "errors": self.errors,
            "latency": self.latency.as_dict(),
        }


def memory_cache_section(engines: Dict[str, object]) -> Dict[str, object]:
    """The memory-tier cache section of the stats payload.

    One ``{"hits", "misses", "hit_rate", "size"}`` entry per named engine,
    read through the engines' ``cache_info()`` surface.
    """
    section: Dict[str, object] = {}
    for name, engine in engines.items():
        info = engine.cache_info()
        section[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "hit_rate": info.hit_rate,
            "size": info.size,
        }
    return section


def disk_cache_section(cache_dir: Optional[str]) -> Optional[Dict[str, object]]:
    """The on-disk cache section: the shared ``cache stats --json`` schema.

    ``None`` when the server runs without a persistent cache directory;
    otherwise exactly :func:`repro.cache.cache_stats_payload`, which is
    also what ``repro cache stats --json`` prints.
    """
    if cache_dir is None:
        return None
    from repro.cache import cache_stats_payload

    return cache_stats_payload(cache_dir)
