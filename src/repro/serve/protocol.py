"""Request and response protocol of the evaluation service.

The daemon speaks plain HTTP/1.1 + JSON (stdlib only, see
:mod:`repro.serve.server`); this module defines the *shape* of that traffic
independently of any transport:

* typed request dataclasses (:class:`SweepRequest`, :class:`SimulateRequest`,
  :class:`OptimizeRequest`) that know how to materialise themselves into the
  library's evaluation inputs (:class:`~repro.analysis.study.Study`,
  :class:`~repro.sim.study.SimStudy`,
  :class:`~repro.optimize.space.DesignSpace`);
* strict parsers from decoded JSON bodies that reject malformed input with a
  :class:`ProtocolError` carrying a *schema pointer* (``body/tdps/2``) so a
  client sees exactly which field failed validation;
* the study/space builders shared with the CLI -- ``repro sweep ...`` flags
  and a ``POST /v1/sweep`` body build the **same** grid through the same
  functions, which is what makes server responses bit-identical to local
  runs.

Every request also carries the optional execution-control fields
``timeout_s`` (server-capped per-request deadline) and ``allow_partial``
(return the completed subset with ``status: "partial"`` instead of a 504 on
deadline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.study import Study
from repro.optimize import DEFAULT_OBJECTIVES, OBJECTIVES, STRATEGIES, DesignSpace
from repro.power.domains import WorkloadType
from repro.power.power_states import PackageCState
from repro.sim.study import SimStudy
from repro.util.errors import ReproError
from repro.workloads.scenarios import DEFAULT_SEED, available_scenarios

#: The endpoint names of the evaluation (POST) API, in route order.
EVALUATION_ENDPOINTS = ("sweep", "simulate", "optimize")


class ProtocolError(ReproError):
    """A request body that does not match the endpoint's schema.

    Parameters
    ----------
    pointer:
        Slash-separated path into the JSON body naming the offending field
        (``body``, ``body/tdps``, ``body/params/ivr_tolerance_band_v/1``).
    message:
        What the schema expected at that location.
    """

    def __init__(self, pointer: str, message: str):
        self.pointer = pointer
        self.message = message
        super().__init__(f"{pointer}: {message}")


# --------------------------------------------------------------------------- #
# Study / space builders (shared verbatim with the CLI sub-commands)
# --------------------------------------------------------------------------- #
def build_sweep_study(
    tdps: Sequence[float],
    ars: Optional[Sequence[float]] = None,
    workloads: Optional[Sequence[WorkloadType]] = None,
    power_states: Optional[Sequence[PackageCState]] = None,
    pdns: Optional[Sequence[str]] = None,
) -> Study:
    """Assemble sweep axes (CLI flags or request fields) into a :class:`Study`."""
    builder = Study.builder("cli-sweep").tdps(*tdps)
    if ars:
        builder.application_ratios(*ars)
    if workloads:
        builder.workload_types(*workloads)
    if power_states:
        builder.power_states(*power_states)
    if pdns:
        builder.pdns(*pdns)
    return builder.build()


def build_simulate_study(
    scenarios: Optional[Sequence[str]] = None,
    tdps: Sequence[float] = (18.0,),
    seed: int = DEFAULT_SEED,
    pdns: Optional[Sequence[str]] = None,
) -> SimStudy:
    """Assemble simulate axes (CLI flags or request fields) into a :class:`SimStudy`."""
    builder = (
        SimStudy.builder("cli-simulate")
        .scenarios(*(scenarios if scenarios else available_scenarios()))
        .tdps(*tdps)
        .seeds(seed)
    )
    if pdns:
        builder.pdns(*pdns)
    return builder.build()


def build_optimize_space(
    pdns: Optional[Sequence[str]] = None,
    param_axes: Optional[Sequence[Tuple[str, Sequence[object]]]] = None,
) -> DesignSpace:
    """Assemble optimize axes (CLI flags or request fields) into a :class:`DesignSpace`."""
    builder = DesignSpace.builder("cli-optimize")
    if pdns:
        builder.pdns(*pdns)
    for name, values in param_axes or ():
        builder.parameter(name, *values)
    return builder.build()


# --------------------------------------------------------------------------- #
# Field validators (every reader reports failures by schema pointer)
# --------------------------------------------------------------------------- #
def _require_object(body: object) -> Mapping[str, object]:
    if not isinstance(body, Mapping):
        raise ProtocolError("body", "expected a JSON object")
    return body


def _reject_unknown_fields(
    body: Mapping[str, object], known: Sequence[str]
) -> None:
    for name in body:
        if name not in known:
            raise ProtocolError(
                f"body/{name}",
                f"unknown field; expected one of: {', '.join(known)}",
            )


def _read_number_list(
    body: Mapping[str, object], name: str, required: bool = False
) -> Optional[List[float]]:
    if name not in body or body[name] is None:
        if required:
            raise ProtocolError(f"body/{name}", "required field is missing")
        return None
    value = body[name]
    if not isinstance(value, (list, tuple)) or not value:
        raise ProtocolError(f"body/{name}", "expected a non-empty array of numbers")
    numbers: List[float] = []
    for index, item in enumerate(value):
        if isinstance(item, bool) or not isinstance(item, (int, float)):
            raise ProtocolError(f"body/{name}/{index}", "expected a number")
        numbers.append(float(item))
    return numbers


def _read_string_list(
    body: Mapping[str, object],
    name: str,
    choices: Optional[Sequence[str]] = None,
) -> Optional[List[str]]:
    if name not in body or body[name] is None:
        return None
    value = body[name]
    if not isinstance(value, (list, tuple)) or not value:
        raise ProtocolError(f"body/{name}", "expected a non-empty array of strings")
    strings: List[str] = []
    for index, item in enumerate(value):
        if not isinstance(item, str):
            raise ProtocolError(f"body/{name}/{index}", "expected a string")
        if choices is not None and item not in choices:
            raise ProtocolError(
                f"body/{name}/{index}",
                f"unknown value {item!r}; choose from: {', '.join(choices)}",
            )
        strings.append(item)
    return strings


def _read_int(
    body: Mapping[str, object], name: str, default: Optional[int] = None
) -> Optional[int]:
    if name not in body or body[name] is None:
        return default
    value = body[name]
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(f"body/{name}", "expected an integer")
    return value


def _read_bool(body: Mapping[str, object], name: str, default: bool = False) -> bool:
    if name not in body or body[name] is None:
        return default
    value = body[name]
    if not isinstance(value, bool):
        raise ProtocolError(f"body/{name}", "expected a boolean")
    return value


def _read_timeout(body: Mapping[str, object]) -> Optional[float]:
    if "timeout_s" not in body or body["timeout_s"] is None:
        return None
    value = body["timeout_s"]
    if isinstance(value, bool) or not isinstance(value, (int, float)) or value <= 0:
        raise ProtocolError("body/timeout_s", "expected a positive number of seconds")
    return float(value)


def _read_workloads(body: Mapping[str, object]) -> Optional[List[WorkloadType]]:
    names = _read_string_list(
        body, "workloads", choices=[member.value for member in WorkloadType]
    )
    if names is None:
        return None
    return [WorkloadType(name) for name in names]


def _read_power_states(body: Mapping[str, object]) -> Optional[List[PackageCState]]:
    choices = [
        member.value for member in PackageCState if member is not PackageCState.C0
    ]
    names = _read_string_list(body, "power_states", choices=choices)
    if names is None:
        return None
    return [PackageCState(name) for name in names]


def _read_param_axes(
    body: Mapping[str, object],
) -> List[Tuple[str, List[float]]]:
    if "params" not in body or body["params"] is None:
        return []
    value = body["params"]
    if not isinstance(value, Mapping) or not value:
        raise ProtocolError(
            "body/params", "expected a non-empty object of name -> number arrays"
        )
    axes: List[Tuple[str, List[float]]] = []
    for name, values in value.items():
        if not isinstance(values, (list, tuple)) or not values:
            raise ProtocolError(
                f"body/params/{name}", "expected a non-empty array of numbers"
            )
        parsed: List[float] = []
        for index, item in enumerate(values):
            if isinstance(item, bool) or not isinstance(item, (int, float)):
                raise ProtocolError(f"body/params/{name}/{index}", "expected a number")
            parsed.append(float(item))
        axes.append((str(name), parsed))
    return axes


# --------------------------------------------------------------------------- #
# Request dataclasses
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SweepRequest:
    """A ``POST /v1/sweep`` body: the axes of one analytic study grid."""

    tdps: Tuple[float, ...]
    ars: Optional[Tuple[float, ...]] = None
    workloads: Optional[Tuple[WorkloadType, ...]] = None
    power_states: Optional[Tuple[PackageCState, ...]] = None
    pdns: Optional[Tuple[str, ...]] = None
    timeout_s: Optional[float] = None
    allow_partial: bool = False

    def study(self) -> Study:
        """Materialise the request into the study the CLI would build."""
        return build_sweep_study(
            self.tdps, self.ars, self.workloads, self.power_states, self.pdns
        )


@dataclass(frozen=True)
class SimulateRequest:
    """A ``POST /v1/simulate`` body: the axes of one scenario-simulation grid."""

    scenarios: Optional[Tuple[str, ...]] = None
    tdps: Tuple[float, ...] = (18.0,)
    seed: int = DEFAULT_SEED
    pdns: Optional[Tuple[str, ...]] = None
    timeout_s: Optional[float] = None
    allow_partial: bool = False

    def study(self) -> SimStudy:
        """Materialise the request into the sim study the CLI would build."""
        return build_simulate_study(self.scenarios, self.tdps, self.seed, self.pdns)


@dataclass(frozen=True)
class OptimizeRequest:
    """A ``POST /v1/optimize`` body: one design-space search."""

    objectives: Tuple[str, ...] = tuple(DEFAULT_OBJECTIVES)
    strategy: str = "grid"
    budget: Optional[int] = None
    seed: int = 0
    pdns: Optional[Tuple[str, ...]] = None
    params: Tuple[Tuple[str, Tuple[float, ...]], ...] = field(default_factory=tuple)
    tdps: Optional[Tuple[float, ...]] = None
    scenarios: Optional[Tuple[str, ...]] = None
    timeout_s: Optional[float] = None

    def space(self) -> DesignSpace:
        """Materialise the request into the design space the CLI would build."""
        return build_optimize_space(
            self.pdns, [(name, list(values)) for name, values in self.params]
        )


_SWEEP_FIELDS = (
    "tdps", "ars", "workloads", "power_states", "pdns", "timeout_s", "allow_partial",
)
_SIMULATE_FIELDS = (
    "scenarios", "tdps", "seed", "pdns", "timeout_s", "allow_partial",
)
_OPTIMIZE_FIELDS = (
    "objectives", "strategy", "budget", "seed", "pdns", "params", "tdps",
    "scenarios", "timeout_s",
)


def parse_sweep_request(body: object) -> SweepRequest:
    """Validate a decoded ``/v1/sweep`` JSON body into a :class:`SweepRequest`."""
    mapping = _require_object(body)
    _reject_unknown_fields(mapping, _SWEEP_FIELDS)
    tdps = _read_number_list(mapping, "tdps", required=True)
    ars = _read_number_list(mapping, "ars")
    workloads = _read_workloads(mapping)
    power_states = _read_power_states(mapping)
    pdns = _read_string_list(mapping, "pdns")
    return SweepRequest(
        tdps=tuple(tdps),
        ars=tuple(ars) if ars is not None else None,
        workloads=tuple(workloads) if workloads is not None else None,
        power_states=tuple(power_states) if power_states is not None else None,
        pdns=tuple(pdns) if pdns is not None else None,
        timeout_s=_read_timeout(mapping),
        allow_partial=_read_bool(mapping, "allow_partial"),
    )


def parse_simulate_request(body: object) -> SimulateRequest:
    """Validate a decoded ``/v1/simulate`` JSON body into a :class:`SimulateRequest`."""
    mapping = _require_object(body)
    _reject_unknown_fields(mapping, _SIMULATE_FIELDS)
    scenarios = _read_string_list(mapping, "scenarios", choices=available_scenarios())
    tdps = _read_number_list(mapping, "tdps")
    pdns = _read_string_list(mapping, "pdns")
    return SimulateRequest(
        scenarios=tuple(scenarios) if scenarios is not None else None,
        tdps=tuple(tdps) if tdps is not None else (18.0,),
        seed=_read_int(mapping, "seed", default=DEFAULT_SEED),
        pdns=tuple(pdns) if pdns is not None else None,
        timeout_s=_read_timeout(mapping),
        allow_partial=_read_bool(mapping, "allow_partial"),
    )


def parse_optimize_request(body: object) -> OptimizeRequest:
    """Validate a decoded ``/v1/optimize`` JSON body into an :class:`OptimizeRequest`."""
    mapping = _require_object(body)
    _reject_unknown_fields(mapping, _OPTIMIZE_FIELDS)
    objectives = _read_string_list(mapping, "objectives", choices=sorted(OBJECTIVES))
    strategy = mapping.get("strategy", "grid")
    if strategy is None:
        strategy = "grid"
    if not isinstance(strategy, str) or strategy not in STRATEGIES:
        raise ProtocolError(
            "body/strategy",
            f"unknown strategy; choose from: {', '.join(sorted(STRATEGIES))}",
        )
    budget = _read_int(mapping, "budget")
    if budget is not None and budget < 1:
        raise ProtocolError("body/budget", "expected a positive integer")
    tdps = _read_number_list(mapping, "tdps")
    scenarios = _read_string_list(mapping, "scenarios", choices=available_scenarios())
    pdns = _read_string_list(mapping, "pdns")
    return OptimizeRequest(
        objectives=(
            tuple(objectives) if objectives is not None else tuple(DEFAULT_OBJECTIVES)
        ),
        strategy=strategy,
        budget=budget,
        seed=_read_int(mapping, "seed", default=0),
        pdns=tuple(pdns) if pdns is not None else None,
        params=tuple(
            (name, tuple(values)) for name, values in _read_param_axes(mapping)
        ),
        tdps=tuple(tdps) if tdps is not None else None,
        scenarios=tuple(scenarios) if scenarios is not None else None,
        timeout_s=_read_timeout(mapping),
    )


#: Endpoint name -> request parser, the dispatch table the server routes by.
REQUEST_PARSERS: Dict[str, object] = {
    "sweep": parse_sweep_request,
    "simulate": parse_simulate_request,
    "optimize": parse_optimize_request,
}
