"""The long-running evaluation daemon (stdlib asyncio + HTTP/1.1 + JSON).

:class:`EvaluationServer` owns one warm set of evaluation engines -- an
analytic :class:`~repro.analysis.pdnspot.PdnSpot`, a trace-driven
:class:`~repro.sim.study.SimEngine`, and lazily built
:class:`~repro.optimize.objectives.CandidateEvaluator` instances -- all
sharing one optional on-disk cache directory, and exposes the library's
grid workloads over five endpoints:

========================  ===================================================
``POST /v1/sweep``        An analytic study grid (the ``repro sweep`` axes).
``POST /v1/simulate``     A scenario-simulation grid (``repro simulate``).
``POST /v1/optimize``     A design-space search (``repro optimize``).
``GET /v1/stats``         Cache hit rates, coalescing counters, per-endpoint
                          latency histograms (:mod:`repro.serve.stats`).
``GET /v1/metrics``       The process-wide :mod:`repro.obs.metrics` snapshot
                          plus the tracing state.
``GET /v1/healthz``       Liveness plus the draining flag.
========================  ===================================================

Sweep and simulate requests are decomposed into engine cache keys and
routed through a per-engine :class:`~repro.serve.coalescer.Coalescer`:
overlapping concurrent requests cost one evaluation per distinct key and
fresh keys batch into one executor dispatch per scheduling tick.  Optimize
requests single-flight on their canonical request digest (identical
concurrent searches run once) and serialise per shared evaluator.

Responses are bit-identical to local engine runs: the ``resultset`` field
of an ``ok`` response is exactly ``ResultSet.to_json`` of what
``PdnSpot.run`` / ``run_sim`` / ``run_optimization`` would have returned
for the same request.

Operational semantics:

* **Budgets** -- a request that decomposes into more evaluation units (or
  search candidates) than ``max_units`` is rejected with ``413`` before any
  work is dispatched.
* **Timeouts** -- each request gets ``min(timeout_s, max_timeout_s)``
  seconds of evaluation time; on deadline the server answers ``504``, or --
  when the request set ``allow_partial`` -- ``200`` with
  ``status: "partial"`` and the completed rows in canonical order.  A
  client that stalls while sending its body gets ``408``.
* **Graceful shutdown** -- :meth:`EvaluationServer.shutdown` flips the
  draining flag (new evaluation requests get ``503``; health, stats and
  metrics keep answering), waits for in-flight requests and dispatched
  batches to finish, then closes the listener.

When a tracer is installed (``repro serve --trace``), every request is
wrapped in a ``serve.request`` span with ``serve.parse`` /
``serve.dispatch`` / ``serve.reassemble`` children, so a service trace
shows the full request lifecycle down to the executor chunks.
"""

from __future__ import annotations

import asyncio
import dataclasses
import functools
import json
import signal
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.analysis.executor import ExecutorLike
from repro.analysis.pdnspot import PdnSpot
from repro.analysis.resultset import ResultSet
from repro.analysis.study import scenario_records
from repro.cache import canonical_key
from repro.obs import trace as obs_trace
from repro.obs.metrics import METRICS, METRICS_SCHEMA_VERSION
from repro.optimize import run_optimization
from repro.optimize.objectives import (
    CandidateEvaluator,
    EvaluationSettings,
    resolve_objectives,
)
from repro.serve.coalescer import Coalescer
from repro.serve.protocol import (
    OptimizeRequest,
    ProtocolError,
    SimulateRequest,
    SweepRequest,
    parse_optimize_request,
    parse_simulate_request,
    parse_sweep_request,
)
from repro.serve.stats import EndpointStats, disk_cache_section, memory_cache_section
from repro.sim.adapters import simulation_record
from repro.sim.study import SimEngine
from repro.util.errors import ReproError

#: Default TCP port of the daemon (``0`` binds an ephemeral port).
DEFAULT_PORT = 8737

#: Reason phrases of the status codes the server emits.
_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _json_body(payload: object) -> bytes:
    """Encode one response payload as UTF-8 JSON."""
    return (json.dumps(payload, indent=2) + "\n").encode("utf-8")


def _error_payload(code: int, message: str, **extra: object) -> Dict[str, object]:
    """The uniform error envelope every non-200 response carries."""
    payload: Dict[str, object] = {"status": "error", "code": code, "error": message}
    payload.update(extra)
    return payload


class _HttpError(Exception):
    """An HTTP-level failure mapped straight to an error response."""

    def __init__(self, code: int, message: str, **extra: object):
        super().__init__(message)
        self.code = code
        self.payload = _error_payload(code, message, **extra)


class EvaluationServer:
    """The warm evaluation daemon behind ``repro serve``.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (read it back from
        :attr:`port` after :meth:`start`).
    cache_dir:
        Optional persistent cache directory (see :mod:`repro.cache`)
        attached to every owned engine, so the daemon starts warm from
        prior runs and its work persists across restarts.
    executor, jobs:
        Backend each coalesced batch dispatches through (forwarded to the
        executor seam); the default evaluates batches serially on the seam
        thread.
    timeout_s:
        Default per-request evaluation deadline (seconds).
    max_timeout_s:
        Hard cap on client-supplied ``timeout_s`` values.
    max_units:
        Per-request budget: the most evaluation units (or search
        candidates) one request may decompose into; larger requests are
        rejected with ``413``.
    batch_window_s:
        Coalescer batching window (``0``: flush every event-loop tick).
    read_timeout_s:
        How long a client may take to deliver its request head and body
        before the server answers ``408``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache_dir: Optional[str] = None,
        executor: ExecutorLike = None,
        jobs: Optional[int] = None,
        timeout_s: float = 60.0,
        max_timeout_s: float = 600.0,
        max_units: int = 50_000,
        batch_window_s: float = 0.0,
        read_timeout_s: float = 30.0,
        max_body_bytes: int = 8 * 1024 * 1024,
    ):
        self._host = host
        self._requested_port = port
        self._cache_dir = str(cache_dir) if cache_dir is not None else None
        self._executor = executor
        self._jobs = jobs
        self._timeout_s = timeout_s
        self._max_timeout_s = max_timeout_s
        self._max_units = max_units
        self._read_timeout_s = read_timeout_s
        self._max_body_bytes = max_body_bytes

        self._spot = PdnSpot(disk_cache=self._cache_dir)
        self._sim_engine = SimEngine(disk_cache=self._cache_dir)
        self._sweep_coalescer = Coalescer(
            self._spot, executor=executor, jobs=jobs, batch_window_s=batch_window_s
        )
        self._sim_coalescer = Coalescer(
            self._sim_engine,
            executor=executor,
            jobs=jobs,
            batch_window_s=batch_window_s,
        )
        #: Shared optimize evaluators keyed by (objectives, settings) digest.
        self._evaluators: Dict[str, CandidateEvaluator] = {}
        self._evaluator_locks: Dict[str, asyncio.Lock] = {}
        #: Single-flight index of in-flight optimize searches.
        self._optimize_inflight: Dict[str, "asyncio.Future[object]"] = {}
        self._optimize_coalesced = 0
        self._optimize_dispatched = 0

        self._endpoint_stats: Dict[str, EndpointStats] = {}
        self._started_monotonic: Optional[float] = None
        self._draining = False
        self._in_flight_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._connections: "set[asyncio.Task[None]]" = set()
        self._shutdown_requested = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._port: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def port(self) -> int:
        """The bound TCP port (only meaningful after :meth:`start`)."""
        if self._port is None:
            raise RuntimeError("server has not been started")
        return self._port

    @property
    def base_url(self) -> str:
        """The server's base URL (only meaningful after :meth:`start`)."""
        return f"http://{self._host}:{self.port}"

    @property
    def draining(self) -> bool:
        """Whether the server is refusing new evaluation requests."""
        return self._draining

    async def start(self) -> None:
        """Bind the listener and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._handle_connection, self._host, self._requested_port
        )
        self._port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()

    async def shutdown(self) -> None:
        """Drain in-flight work, then stop the server.

        New evaluation requests are refused with ``503`` the moment this is
        called; requests already being evaluated (and every dispatched
        coalescer batch) run to completion before the listener closes.
        """
        self._draining = True
        await self._idle.wait()
        await self._sweep_coalescer.drain()
        await self._sim_coalescer.drain()
        current = asyncio.current_task()
        while True:
            pending = [task for task in self._connections if task is not current]
            if not pending:
                break
            await asyncio.wait(pending, timeout=self._read_timeout_s)
            if any(not task.done() for task in pending):  # pragma: no cover
                break  # a stuck connection should not wedge shutdown forever
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def request_shutdown(self) -> None:
        """Ask the server loop to shut down (safe from any thread)."""
        if self._loop is None:
            self._shutdown_requested.set()
            return
        self._loop.call_soon_threadsafe(self._shutdown_requested.set)

    def run(self) -> int:
        """Blocking entry point of the ``repro serve`` CLI sub-command."""
        try:
            asyncio.run(self._serve_until_shutdown(announce=True))
        except KeyboardInterrupt:  # pragma: no cover - signal-handler fallback
            pass
        return 0

    async def _serve_until_shutdown(self, announce: bool = False) -> None:
        """Start, serve until a shutdown is requested, then drain and stop."""
        await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self._shutdown_requested.set)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-main thread or platform without signal support
        if announce:
            print(f"repro serve listening on {self.base_url}", flush=True)
        await self._shutdown_requested.wait()
        if announce:
            print("repro serve draining in-flight requests", flush=True)
        await self.shutdown()
        if announce:
            print("repro serve shutdown complete", flush=True)

    # ------------------------------------------------------------------ #
    # HTTP transport
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one ``Connection: close`` HTTP exchange."""
        task = asyncio.current_task()
        if task is not None:
            self._connections.add(task)
        try:
            try:
                method, path, body = await self._read_request(reader)
                status, payload = await self._route(method, path, body)
            except _HttpError as error:
                status, payload = error.code, error.payload
            except Exception as error:  # noqa: BLE001 - crash-proof transport
                status = 500
                payload = _error_payload(500, f"internal server error: {error}")
            await self._write_response(writer, status, payload)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing left to answer
        finally:
            if task is not None:
                self._connections.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:  # pragma: no cover - client reset
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Optional[bytes]]:
        """Parse one HTTP/1.1 request head and body from the stream."""
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), self._read_timeout_s
            )
        except asyncio.TimeoutError:
            raise _HttpError(408, "timed out waiting for the request line") from None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed HTTP request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            try:
                line = await asyncio.wait_for(reader.readline(), self._read_timeout_s)
            except asyncio.TimeoutError:
                raise _HttpError(408, "timed out reading request headers") from None
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        body: Optional[bytes] = None
        if method == "POST":
            try:
                length = int(headers.get("content-length", "0"))
            except ValueError:
                raise _HttpError(400, "invalid Content-Length header") from None
            if length > self._max_body_bytes:
                raise _HttpError(
                    413,
                    f"request body of {length} bytes exceeds the "
                    f"{self._max_body_bytes}-byte limit",
                )
            try:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self._read_timeout_s
                )
            except asyncio.TimeoutError:
                raise _HttpError(408, "timed out reading the request body") from None
            except asyncio.IncompleteReadError:
                raise _HttpError(400, "request body shorter than Content-Length") from None
        path = target.split("?", 1)[0]
        return method, path, body

    async def _write_response(
        self, writer: asyncio.StreamWriter, status: int, payload: object
    ) -> None:
        """Write one JSON response and flush it."""
        body = _json_body(payload)
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("ascii") + body)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    async def _route(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, object]:
        """Dispatch one parsed request to its endpoint handler."""
        if path == "/v1/healthz":
            if method != "GET":
                raise _HttpError(405, f"{path} only supports GET")
            return 200, self._healthz_payload()
        if path == "/v1/stats":
            if method != "GET":
                raise _HttpError(405, f"{path} only supports GET")
            return await self._observed(path, "stats", self._handle_stats, body)
        if path == "/v1/metrics":
            if method != "GET":
                raise _HttpError(405, f"{path} only supports GET")
            return await self._observed(path, "metrics", self._handle_metrics, body)
        handlers = {
            "/v1/sweep": ("sweep", self._handle_sweep),
            "/v1/simulate": ("simulate", self._handle_simulate),
            "/v1/optimize": ("optimize", self._handle_optimize),
        }
        if path not in handlers:
            raise _HttpError(
                404,
                f"unknown path {path!r}; endpoints: /v1/sweep /v1/simulate "
                "/v1/optimize /v1/stats /v1/metrics /v1/healthz",
            )
        endpoint, handler = handlers[path]
        if method != "POST":
            raise _HttpError(405, f"{path} only supports POST")
        if self._draining:
            raise _HttpError(
                503, "server is draining and not accepting new evaluation requests"
            )
        return await self._observed(path, endpoint, handler, body)

    async def _observed(
        self, path: str, endpoint: str, handler, body: Optional[bytes]
    ) -> Tuple[int, object]:
        """Run a handler with latency/error accounting and in-flight tracking."""
        stats = self._endpoint_stats.setdefault(endpoint, EndpointStats())
        self._in_flight_requests += 1
        self._idle.clear()
        started = time.monotonic()
        status = 500
        with obs_trace.span("serve.request", category="serve",
                            endpoint=endpoint) as span:
            try:
                status, payload = await handler(body)
                return status, payload
            except _HttpError as error:
                status = error.code
                raise
            finally:
                self._in_flight_requests -= 1
                if self._in_flight_requests == 0:
                    self._idle.set()
                stats.observe(time.monotonic() - started, error=status >= 400)
                span.set("status", status)

    def _decode_body(self, body: Optional[bytes]) -> object:
        """Decode a POST body into JSON, mapping failures to 400 errors."""
        if not body:
            raise _HttpError(
                400, "body: expected a JSON object request body", pointer="body"
            )
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _HttpError(
                400, f"body: request body is not valid JSON ({error})", pointer="body"
            ) from None

    def _parse(self, parser, body: Optional[bytes]):
        """Parse and validate one request body, mapping failures to 400."""
        with obs_trace.span("serve.parse", category="serve",
                            bytes=len(body) if body else 0):
            decoded = self._decode_body(body)
            try:
                return parser(decoded)
            except ProtocolError as error:
                raise _HttpError(400, str(error), pointer=error.pointer) from None

    def _effective_timeout(self, requested: Optional[float]) -> float:
        """The evaluation deadline of one request, capped by the server."""
        timeout = requested if requested is not None else self._timeout_s
        return min(timeout, self._max_timeout_s)

    def _check_budget(self, units: int) -> None:
        """Reject a request whose decomposition exceeds the unit budget."""
        if units > self._max_units:
            raise _HttpError(
                413,
                f"request decomposes into {units} evaluation units, over the "
                f"per-request budget of {self._max_units}",
                units=units,
                budget=self._max_units,
            )

    # ------------------------------------------------------------------ #
    # Evaluation endpoints
    # ------------------------------------------------------------------ #
    async def _handle_sweep(self, body: Optional[bytes]) -> Tuple[int, object]:
        """``POST /v1/sweep``: evaluate one analytic study grid."""
        request: SweepRequest = self._parse(parse_sweep_request, body)
        try:
            study = request.study()
            names = (
                study.pdn_names
                if study.pdn_names is not None
                else tuple(self._spot.pdns)
            )
            for name in names:
                self._spot.pdn(name)  # fail fast on unknown PDNs
            units: List[Tuple[str, object, tuple]] = []
            for scenario in study.scenarios:
                conditions = scenario.conditions()
                units.extend((name, conditions, scenario.overrides) for name in names)
        except ReproError as error:
            raise _HttpError(400, str(error)) from None
        self._check_budget(len(units))

        def assemble(results: List[Optional[object]]) -> ResultSet:
            """Rebuild rows exactly as :meth:`PdnSpot.run` would."""
            records = []
            cursor = 0
            for scenario in study.scenarios:
                paired = [
                    (name, results[cursor + offset])
                    for offset, name in enumerate(names)
                    if results[cursor + offset] is not None
                ]
                cursor += len(names)
                records.extend(scenario_records(scenario, paired))
            return ResultSet.from_records(records, name=study.name)

        return await self._coalesced_response(
            "sweep", self._sweep_coalescer, units, assemble, request
        )

    async def _handle_simulate(self, body: Optional[bytes]) -> Tuple[int, object]:
        """``POST /v1/simulate``: evaluate one scenario-simulation grid."""
        request: SimulateRequest = self._parse(parse_simulate_request, body)
        try:
            study = request.study()
            names = (
                study.pdn_names
                if study.pdn_names is not None
                else tuple(self._sim_engine.spot.pdns)
            )
            for name in names:
                self._sim_engine.spot.pdn(name)  # fail fast on unknown PDNs
            units = [
                (name, point, point.overrides)
                for point in study.points
                for name in names
            ]
        except ReproError as error:
            raise _HttpError(400, str(error)) from None
        self._check_budget(len(units))

        def assemble(results: List[Optional[object]]) -> ResultSet:
            """Rebuild rows exactly as :meth:`SimEngine.run` would."""
            records = []
            cursor = 0
            for point in study.points:
                identity = point.record_fields()
                for _ in names:
                    if results[cursor] is not None:
                        records.append(simulation_record(results[cursor], identity))
                    cursor += 1
            return ResultSet.from_records(records, name=study.name)

        return await self._coalesced_response(
            "simulate", self._sim_coalescer, units, assemble, request
        )

    async def _coalesced_response(
        self,
        endpoint: str,
        coalescer: Coalescer,
        units: List[tuple],
        assemble,
        request,
    ) -> Tuple[int, object]:
        """Scatter units, await them under the deadline, assemble the response.

        The deadline branch implements the explicit-status contract: with
        ``allow_partial`` the completed subset comes back as ``200`` /
        ``status: "partial"`` (canonical row order, incomplete rows
        dropped); otherwise the request fails with ``504``.  Either way the
        dispatched work keeps running and lands in the shared cache for the
        next request.
        """
        timeout = self._effective_timeout(request.timeout_s)
        with obs_trace.span("serve.dispatch", category="serve",
                            endpoint=endpoint, units=len(units)):
            futures = coalescer.scatter(units)
        try:
            results = await asyncio.wait_for(
                asyncio.gather(*(asyncio.shield(future) for future in futures)),
                timeout,
            )
        except asyncio.TimeoutError:
            completed: List[Optional[object]] = [
                future.result()
                if future.done() and future.exception() is None
                else None
                for future in futures
            ]
            done_count = sum(1 for result in completed if result is not None)
            if request.allow_partial and done_count:
                with obs_trace.span("serve.reassemble", category="serve",
                                    endpoint=endpoint, units=done_count,
                                    partial=True):
                    resultset = assemble(completed)
                payload = {
                    "status": "partial",
                    "endpoint": endpoint,
                    "completed_units": done_count,
                    "total_units": len(units),
                    "timeout_s": timeout,
                    "resultset": json.loads(resultset.to_json()),
                }
                return 200, payload
            raise _HttpError(
                504,
                f"evaluation exceeded the {timeout:g} s deadline "
                f"({done_count}/{len(units)} units completed; retry, raise "
                "timeout_s, or set allow_partial)",
                timeout_s=timeout,
            ) from None
        except ReproError as error:
            raise _HttpError(400, str(error)) from None
        with obs_trace.span("serve.reassemble", category="serve",
                            endpoint=endpoint, units=len(units)):
            resultset = assemble(list(results))
        payload = {
            "status": "ok",
            "endpoint": endpoint,
            "resultset": json.loads(resultset.to_json()),
        }
        return 200, payload

    async def _handle_optimize(self, body: Optional[bytes]) -> Tuple[int, object]:
        """``POST /v1/optimize``: run one design-space search (single-flight)."""
        request: OptimizeRequest = self._parse(parse_optimize_request, body)
        try:
            resolved = resolve_objectives(request.objectives)
            space = request.space()
            settings = self._optimize_settings(request)
            candidates = len(space.points())
            budget = request.budget
            effective = min(budget, candidates) if budget is not None else candidates
        except ReproError as error:
            raise _HttpError(400, str(error)) from None
        self._check_budget(effective * len(resolved))
        timeout = self._effective_timeout(request.timeout_s)
        digest = canonical_key(dataclasses.replace(request, timeout_s=None))
        future = self._optimize_inflight.get(digest)
        if future is not None:
            self._optimize_coalesced += 1
        else:
            loop = asyncio.get_running_loop()
            future = loop.create_task(
                self._run_optimize(digest, request, resolved, space, settings)
            )
            self._optimize_inflight[digest] = future
            future.add_done_callback(
                lambda _, digest=digest: self._optimize_inflight.pop(digest, None)
            )
        try:
            outcome = await asyncio.wait_for(asyncio.shield(future), timeout)
        except asyncio.TimeoutError:
            raise _HttpError(
                504,
                f"optimization exceeded the {timeout:g} s deadline "
                "(the search keeps warming the cache; retry or raise timeout_s)",
                timeout_s=timeout,
            ) from None
        except ReproError as error:
            raise _HttpError(400, str(error)) from None
        payload = {
            "status": "ok",
            "endpoint": "optimize",
            "strategy": outcome.strategy,
            "resultset": json.loads(outcome.results.to_json()),
        }
        return 200, payload

    def _optimize_settings(
        self, request: OptimizeRequest
    ) -> Optional[EvaluationSettings]:
        """The evaluation settings one optimize request selects, if any."""
        kwargs = {}
        if request.tdps:
            kwargs["tdps_w"] = tuple(request.tdps)
        if request.scenarios:
            kwargs["scenarios"] = tuple(request.scenarios)
        return EvaluationSettings(**kwargs) if kwargs else None

    async def _run_optimize(
        self, digest: str, request: OptimizeRequest, resolved, space, settings
    ) -> object:
        """Dispatch one search on the seam thread, one at a time per evaluator.

        Evaluators are shared by ``(objectives, settings)`` so repeated
        searches reuse warm caches; the per-evaluator lock serialises
        concurrent *distinct* requests on the same evaluator, whose lazily
        built auxiliary state is not re-entrant.
        """
        evaluator_key = canonical_key(
            ([objective.name for objective in resolved], settings)
        )
        evaluator = self._evaluators.get(evaluator_key)
        if evaluator is None:
            evaluator = CandidateEvaluator(
                resolved,
                settings=settings,
                spot=self._spot,
                cache_dir=self._cache_dir,
            )
            self._evaluators[evaluator_key] = evaluator
        lock = self._evaluator_locks.setdefault(evaluator_key, asyncio.Lock())
        self._optimize_dispatched += 1
        loop = asyncio.get_running_loop()
        async with lock:
            return await loop.run_in_executor(
                None,
                functools.partial(
                    run_optimization,
                    space,
                    objectives=[objective.name for objective in resolved],
                    strategy=request.strategy,
                    budget=request.budget,
                    seed=request.seed,
                    evaluator=evaluator,
                    executor=self._executor,
                    jobs=self._jobs,
                ),
            )

    # ------------------------------------------------------------------ #
    # Introspection endpoints
    # ------------------------------------------------------------------ #
    def _healthz_payload(self) -> Dict[str, object]:
        """The liveness document (kept answering while draining)."""
        from repro import __version__

        return {
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "draining": self._draining,
        }

    async def _handle_stats(self, body: Optional[bytes]) -> Tuple[int, object]:
        """``GET /v1/stats``: the full observability document."""
        return 200, self.stats_payload()

    async def _handle_metrics(self, body: Optional[bytes]) -> Tuple[int, object]:
        """``GET /v1/metrics``: the process-wide metrics snapshot."""
        return 200, self.metrics_payload()

    def metrics_payload(self) -> Dict[str, object]:
        """Assemble the ``/v1/metrics`` document.

        ``metrics`` is exactly :meth:`repro.obs.metrics.MetricsRegistry.snapshot`
        of the process-wide registry; ``tracing`` reports whether a tracer
        is installed and how many span records it currently holds.  Like
        ``/v1/stats``, this keeps answering while the server drains.
        """
        tracer = obs_trace.active_tracer()
        return {
            "schema_version": METRICS_SCHEMA_VERSION,
            "metrics": METRICS.snapshot(),
            "tracing": {
                "enabled": tracer is not None,
                "spans": len(tracer) if tracer is not None else 0,
            },
        }

    def stats_payload(self) -> Dict[str, object]:
        """Assemble the ``/v1/stats`` document (see :mod:`repro.serve.stats`)."""
        from repro import __version__

        uptime = (
            time.monotonic() - self._started_monotonic
            if self._started_monotonic is not None
            else 0.0
        )
        return {
            "server": {
                "version": __version__,
                "uptime_s": uptime,
                "draining": self._draining,
                "in_flight_requests": self._in_flight_requests,
            },
            "endpoints": {
                name: stats.as_dict()
                for name, stats in sorted(self._endpoint_stats.items())
            },
            "coalescer": {
                "sweep": self._sweep_coalescer.stats.as_dict(),
                "simulate": self._sim_coalescer.stats.as_dict(),
                "optimize": {
                    "requests_coalesced": self._optimize_coalesced,
                    "searches_dispatched": self._optimize_dispatched,
                },
            },
            "cache": {
                "memory": memory_cache_section(
                    {
                        "pdnspot": self._spot,
                        "sim": self._sim_engine,
                        "sim_phases": self._sim_engine.spot,
                    }
                ),
                "disk": disk_cache_section(self._cache_dir),
            },
        }


class RunningServer:
    """A server running on a background thread (tests, benchmarks, scripts).

    Use as a context manager::

        with start_in_thread(cache_dir=None) as handle:
            client = ServeClient(handle.base_url)
            ...

    On exit the server drains and the thread joins.
    """

    def __init__(self, server: EvaluationServer, thread: threading.Thread):
        self.server = server
        self.thread = thread

    @property
    def base_url(self) -> str:
        """The running server's base URL."""
        return self.server.base_url

    def stop(self, timeout_s: float = 30.0) -> None:
        """Request a graceful shutdown and join the server thread."""
        self.server.request_shutdown()
        self.thread.join(timeout=timeout_s)
        if self.thread.is_alive():  # pragma: no cover - hung shutdown
            raise RuntimeError("server thread did not shut down in time")

    def __enter__(self) -> "RunningServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def start_in_thread(**kwargs: object) -> RunningServer:
    """Start an :class:`EvaluationServer` on a daemon thread and wait for bind.

    Keyword arguments are forwarded to the :class:`EvaluationServer`
    constructor; ``port`` defaults to ``0`` (ephemeral) so parallel test
    runs never collide.  Raises whatever the server raised if it failed to
    start.
    """
    kwargs.setdefault("port", 0)
    server = EvaluationServer(**kwargs)  # type: ignore[arg-type]
    ready = threading.Event()
    failures: List[BaseException] = []

    async def main() -> None:
        """Start the server, signal readiness, serve until shutdown."""
        await server.start()
        ready.set()
        await server._shutdown_requested.wait()
        await server.shutdown()

    def target() -> None:
        """Thread body: run the server loop, capturing startup failures."""
        try:
            asyncio.run(main())
        except BaseException as error:  # noqa: BLE001 - reported to starter
            failures.append(error)
            ready.set()

    thread = threading.Thread(target=target, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout=60.0):  # pragma: no cover - hung startup
        raise RuntimeError("server did not start within 60 s")
    if failures:
        raise failures[0]
    return RunningServer(server, thread)
