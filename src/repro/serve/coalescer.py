"""Request coalescing over an evaluation engine's cache keys.

The daemon's reason to exist: N concurrent clients sweeping overlapping
grids must cost one evaluation per *distinct* grid point, not one per
request.  A :class:`Coalescer` wraps one
:class:`~repro.analysis.executor.EvaluationEngine` and gives every request
handler the same awaitable surface -- ``await coalescer.evaluate(units)`` --
while guaranteeing:

**Single-flight.**  Each evaluation unit is identified by its engine cache
key.  A key whose evaluation is already in flight (dispatched by any
request) is *awaited*, never re-dispatched: late requests attach to the
first request's future.

**Per-tick batching.**  Keys that are not in flight are appended to a
pending batch; a flush is scheduled with ``loop.call_soon``, so every
request decomposed within the same event-loop scheduling tick lands in
**one** :func:`~repro.analysis.executor.evaluate_units_async` dispatch
(optionally widened by ``batch_window_s``).  The engine's executor backend
then dedupes, shards, and merges results into the shared two-tier cache
exactly as a local batch run would.

**Canonical reassembly.**  ``evaluate`` returns results in the caller's
unit order regardless of which request computed them, so each handler can
rebuild its ResultSet rows exactly as the local engine would.

Previously *completed* keys are not tracked here -- they live in the
engine's own memory/disk cache, which the dispatched batch consults -- so
the coalescer stays a thin in-flight index, not a third cache tier.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.executor import (
    EvalResult,
    EvalUnit,
    EvaluationEngine,
    ExecutorLike,
    evaluate_units_async,
)
from repro.obs import trace as obs_trace

#: An engine cache key (opaque: whatever ``engine.cache_key`` returns).
CacheKey = Tuple[object, ...]


@dataclass
class CoalescerStats:
    """Traffic counters of one :class:`Coalescer` (monotonic, process-local).

    Attributes
    ----------
    units_requested:
        Evaluation units received across every ``evaluate`` call.
    keys_coalesced:
        Units that attached to an already-in-flight key instead of
        dispatching a new evaluation (the single-flight savings).
    keys_dispatched:
        Distinct keys handed to the executor seam.
    batches_dispatched:
        Executor dispatches issued (scheduling ticks that had work).
    largest_batch:
        Size of the largest single dispatch.
    """

    units_requested: int = 0
    keys_coalesced: int = 0
    keys_dispatched: int = 0
    batches_dispatched: int = 0
    largest_batch: int = 0

    def as_dict(self) -> Dict[str, int]:
        """The counters as a JSON-ready mapping (stable key order)."""
        return {
            "units_requested": self.units_requested,
            "keys_coalesced": self.keys_coalesced,
            "keys_dispatched": self.keys_dispatched,
            "batches_dispatched": self.batches_dispatched,
            "largest_batch": self.largest_batch,
        }


class Coalescer:
    """Single-flight, tick-batched evaluation front of one engine.

    Parameters
    ----------
    engine:
        The evaluation engine requests decompose onto.  Its cache keys
        define unit identity; its two-tier cache serves repeats.
    executor, jobs:
        Backend each dispatched batch runs on (forwarded to
        :func:`~repro.analysis.executor.evaluate_units_async`).
    batch_window_s:
        Extra time a scheduled flush waits before collecting the pending
        batch.  ``0`` (default) flushes on the next event-loop tick --
        requests decomposed in the same tick still share one dispatch;
        a positive window trades first-byte latency for larger batches.
    """

    def __init__(
        self,
        engine: EvaluationEngine,
        executor: ExecutorLike = None,
        jobs: Optional[int] = None,
        batch_window_s: float = 0.0,
    ):
        self._engine = engine
        self._executor = executor
        self._jobs = jobs
        self._batch_window_s = batch_window_s
        self._inflight: Dict[CacheKey, "asyncio.Future[EvalResult]"] = {}
        self._pending: List[Tuple[CacheKey, EvalUnit]] = []
        self._flush_scheduled = False
        self._dispatch_tasks: "set[asyncio.Task[None]]" = set()
        self.stats = CoalescerStats()

    @property
    def engine(self) -> EvaluationEngine:
        """The wrapped evaluation engine (shared cache owner)."""
        return self._engine

    @property
    def in_flight(self) -> int:
        """Number of cache keys currently being computed or pending dispatch."""
        return len(self._inflight)

    def scatter(self, units: Sequence[EvalUnit]) -> List["asyncio.Future[EvalResult]"]:
        """Register ``units`` and return one future per unit, in caller order.

        Each unit resolves to exactly one of: the future of an already
        in-flight key (counted as coalesced) or a fresh future backed by a
        slot in the next dispatched batch.  Futures are shared between
        requests -- abandoning one (e.g. on a request timeout) must not
        cancel it; await through :func:`asyncio.shield` or let it settle.
        """
        futures: List["asyncio.Future[EvalResult]"] = []
        loop = asyncio.get_running_loop()
        self.stats.units_requested += len(units)
        for unit in units:
            name, point, overrides = unit
            key = self._engine.cache_key(name, point, overrides)
            future = self._inflight.get(key)
            if future is not None:
                self.stats.keys_coalesced += 1
            else:
                future = loop.create_future()
                self._inflight[key] = future
                self._pending.append((key, unit))
            futures.append(future)
        if self._pending:
            self._schedule_flush(loop)
        return futures

    async def evaluate(self, units: Sequence[EvalUnit]) -> List[EvalResult]:
        """Evaluate ``units`` through the coalescer, in caller order.

        The awaitable convenience over :meth:`scatter`; a failed dispatch
        re-raises its error to every request that awaited one of its keys.
        """
        # shield(): a caller timing out (wait_for cancels) must not cancel
        # the shared future other requests are still awaiting.
        return [
            await asyncio.shield(future) for future in self.scatter(units)
        ]

    def _schedule_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        """Arrange for the pending batch to dispatch on a scheduling tick."""
        if self._flush_scheduled:
            return
        self._flush_scheduled = True
        if self._batch_window_s > 0:
            loop.call_later(self._batch_window_s, self._start_flush, loop)
        else:
            loop.call_soon(self._start_flush, loop)

    def _start_flush(self, loop: asyncio.AbstractEventLoop) -> None:
        """Collect the pending batch and dispatch it as one executor call."""
        self._flush_scheduled = False
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.stats.keys_dispatched += len(batch)
        self.stats.batches_dispatched += 1
        self.stats.largest_batch = max(self.stats.largest_batch, len(batch))
        task = loop.create_task(self._dispatch(batch))
        self._dispatch_tasks.add(task)
        task.add_done_callback(self._dispatch_tasks.discard)

    async def _dispatch(self, batch: List[Tuple[CacheKey, EvalUnit]]) -> None:
        """Evaluate one batch on the seam and settle its in-flight futures."""
        keys = [key for key, _ in batch]
        units = [unit for _, unit in batch]
        try:
            with obs_trace.span("serve.coalescer.flush", category="serve",
                                units=len(units)):
                results = await evaluate_units_async(
                    self._engine, units, executor=self._executor, jobs=self._jobs
                )
        except Exception as error:  # noqa: BLE001 - settled into the futures
            for key in keys:
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_exception(error)
        else:
            for key, result in zip(keys, results):
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_result(result)

    async def drain(self) -> None:
        """Wait until every dispatched batch has settled its futures."""
        while self._dispatch_tasks or self._pending or self._flush_scheduled:
            if self._dispatch_tasks:
                await asyncio.gather(
                    *list(self._dispatch_tasks), return_exceptions=True
                )
            else:
                await asyncio.sleep(0)
