"""A thin stdlib client of the evaluation service.

:class:`ServeClient` speaks the :mod:`repro.serve.protocol` JSON dialect
over ``urllib`` and rebuilds real :class:`~repro.analysis.resultset.ResultSet`
objects from responses, so everything downstream of an engine call -- the
CLI renderers, the plotting adapters, user code -- works identically on
server results.  The round trip is bit-identical: the server embeds
``ResultSet.to_json`` and the client rebuilds through
``ResultSet.from_json``, whose equality round-trip is covered by the cache
serialization tests.

Failure taxonomy (what the CLI's ``--server`` fallback keys on):

* :class:`ServerUnavailable` -- the daemon cannot be reached at all
  (connection refused, DNS failure, socket timeout).  The CLI falls back
  to local engines on this and only this.
* :class:`ServerError` -- the daemon answered with an error document
  (schema violation, budget, deadline, draining).  These are *request*
  problems; falling back would silently re-run work the server refused,
  so they propagate.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence

from repro.analysis.resultset import ResultSet
from repro.util.errors import ReproError

#: Extra seconds of HTTP read timeout on top of a request's evaluation
#: deadline, so the transport never gives up before the server answers.
_TRANSPORT_MARGIN_S = 30.0


class ServerUnavailable(ReproError):
    """The evaluation service cannot be reached (connect/transport failure)."""


class ServerError(ReproError):
    """The evaluation service answered with an error document.

    Attributes
    ----------
    code:
        The HTTP status code (400 schema, 408 read timeout, 413 budget,
        503 draining, 504 evaluation deadline, ...).
    pointer:
        The schema pointer of a 400, when the server named one.
    payload:
        The full decoded error document.
    """

    def __init__(self, code: int, message: str, payload: Optional[Dict] = None):
        super().__init__(f"server answered {code}: {message}")
        self.code = code
        self.payload = payload or {}
        self.pointer = self.payload.get("pointer")


@dataclass(frozen=True)
class EvaluationResponse:
    """One decoded evaluation response (``ok`` or ``partial``).

    Attributes
    ----------
    status:
        ``"ok"`` for a complete evaluation, ``"partial"`` when the request
        allowed partial results and the deadline cut the grid short.
    endpoint:
        Which endpoint answered (``sweep``/``simulate``/``optimize``).
    resultset:
        The rebuilt result set -- bit-identical to what the local engine
        would have returned (for ``partial``: the completed rows, in
        canonical order).
    strategy:
        The search strategy that ran (optimize responses only).
    completed_units / total_units:
        Grid coverage of a ``partial`` response (``None`` on ``ok``).
    """

    status: str
    endpoint: str
    resultset: ResultSet
    strategy: Optional[str] = None
    completed_units: Optional[int] = None
    total_units: Optional[int] = None

    @property
    def partial(self) -> bool:
        """Whether the deadline cut this evaluation short."""
        return self.status == "partial"


class ServeClient:
    """A client of one running evaluation daemon.

    Parameters
    ----------
    base_url:
        The daemon's base URL, e.g. ``http://127.0.0.1:8737`` (a trailing
        slash is tolerated).
    timeout_s:
        Default evaluation deadline sent with requests that do not carry
        their own ``timeout_s``; also sizes the HTTP read timeout (with a
        transport margin) so the socket outlives the evaluation.
    """

    def __init__(self, base_url: str, timeout_s: Optional[float] = None):
        self._base_url = base_url.rstrip("/")
        self._timeout_s = timeout_s

    @property
    def base_url(self) -> str:
        """The daemon's base URL."""
        return self._base_url

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #
    def _http_timeout(self, body: Optional[Mapping[str, object]]) -> float:
        """The socket timeout of one exchange (evaluation deadline + margin)."""
        requested = None
        if body is not None:
            requested = body.get("timeout_s")
        if requested is None:
            requested = self._timeout_s
        if requested is None:
            requested = 600.0
        return float(requested) + _TRANSPORT_MARGIN_S

    def _exchange(
        self, method: str, path: str, body: Optional[Mapping[str, object]] = None
    ) -> Dict[str, object]:
        """Run one HTTP exchange and decode the JSON document it returns."""
        url = f"{self._base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers, method=method)
        try:
            with urllib.request.urlopen(
                request, timeout=self._http_timeout(body)
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                payload = {}
            message = str(payload.get("error", raw[:200].decode("latin-1")))
            raise ServerError(error.code, message, payload) from None
        except (urllib.error.URLError, ConnectionError, TimeoutError, OSError) as error:
            raise ServerUnavailable(
                f"evaluation service at {self._base_url} is unreachable: {error}"
            ) from None
        except json.JSONDecodeError as error:
            raise ServerError(502, f"non-JSON response body ({error})") from None

    def _evaluate(self, endpoint: str, body: Dict[str, object]) -> EvaluationResponse:
        """POST one evaluation request and rebuild its result set."""
        if body.get("timeout_s") is None and self._timeout_s is not None:
            body["timeout_s"] = self._timeout_s
        clean = {name: value for name, value in body.items() if value is not None}
        # allow_partial=False is the protocol default; don't send the noise.
        if clean.get("allow_partial") is False:
            del clean["allow_partial"]
        payload = self._exchange("POST", f"/v1/{endpoint}", clean)
        resultset = ResultSet.from_json(json.dumps(payload["resultset"]))
        return EvaluationResponse(
            status=str(payload.get("status", "ok")),
            endpoint=str(payload.get("endpoint", endpoint)),
            resultset=resultset,
            strategy=payload.get("strategy"),
            completed_units=payload.get("completed_units"),
            total_units=payload.get("total_units"),
        )

    # ------------------------------------------------------------------ #
    # Endpoints
    # ------------------------------------------------------------------ #
    def healthz(self) -> Dict[str, object]:
        """``GET /v1/healthz``: the liveness document."""
        return self._exchange("GET", "/v1/healthz")

    def stats(self) -> Dict[str, object]:
        """``GET /v1/stats``: the full observability document."""
        return self._exchange("GET", "/v1/stats")

    def metrics(self) -> Dict[str, object]:
        """``GET /v1/metrics``: the process-wide metrics snapshot."""
        return self._exchange("GET", "/v1/metrics")

    def sweep(
        self,
        tdps: Sequence[float],
        ars: Optional[Sequence[float]] = None,
        workloads: Optional[Sequence[object]] = None,
        power_states: Optional[Sequence[object]] = None,
        pdns: Optional[Sequence[str]] = None,
        timeout_s: Optional[float] = None,
        allow_partial: bool = False,
    ) -> EvaluationResponse:
        """``POST /v1/sweep``: evaluate one analytic study grid remotely.

        ``workloads`` and ``power_states`` accept either protocol strings or
        the library's enum members (their ``value`` is sent).
        """
        body: Dict[str, object] = {
            "tdps": list(tdps),
            "ars": list(ars) if ars else None,
            "workloads": _enum_values(workloads),
            "power_states": _enum_values(power_states),
            "pdns": list(pdns) if pdns else None,
            "timeout_s": timeout_s,
            "allow_partial": allow_partial,
        }
        return self._evaluate("sweep", body)

    def simulate(
        self,
        scenarios: Optional[Sequence[str]] = None,
        tdps: Optional[Sequence[float]] = None,
        seed: Optional[int] = None,
        pdns: Optional[Sequence[str]] = None,
        timeout_s: Optional[float] = None,
        allow_partial: bool = False,
    ) -> EvaluationResponse:
        """``POST /v1/simulate``: evaluate one scenario-simulation grid remotely."""
        body: Dict[str, object] = {
            "scenarios": list(scenarios) if scenarios else None,
            "tdps": list(tdps) if tdps else None,
            "seed": seed,
            "pdns": list(pdns) if pdns else None,
            "timeout_s": timeout_s,
            "allow_partial": allow_partial,
        }
        return self._evaluate("simulate", body)

    def optimize(
        self,
        objectives: Optional[Sequence[str]] = None,
        strategy: Optional[str] = None,
        budget: Optional[int] = None,
        seed: Optional[int] = None,
        pdns: Optional[Sequence[str]] = None,
        params: Optional[Mapping[str, Sequence[float]]] = None,
        tdps: Optional[Sequence[float]] = None,
        scenarios: Optional[Sequence[str]] = None,
        timeout_s: Optional[float] = None,
    ) -> EvaluationResponse:
        """``POST /v1/optimize``: run one design-space search remotely.

        The returned result set carries the ``pareto``/``knee`` marker
        columns, so the front and the knee row are reconstructed exactly as
        the local runner computed them (``filter(pareto=True)`` and the
        ``knee`` column).
        """
        body: Dict[str, object] = {
            "objectives": list(objectives) if objectives else None,
            "strategy": strategy,
            "budget": budget,
            "seed": seed,
            "pdns": list(pdns) if pdns else None,
            "params": (
                {name: list(values) for name, values in params.items()}
                if params
                else None
            ),
            "tdps": list(tdps) if tdps else None,
            "scenarios": list(scenarios) if scenarios else None,
            "timeout_s": timeout_s,
        }
        return self._evaluate("optimize", body)


def _enum_values(items: Optional[Sequence[object]]) -> Optional[list]:
    """Map enum members (or strings) to their wire values."""
    if not items:
        return None
    return [getattr(item, "value", item) for item in items]
