"""The long-running evaluation service (daemon, protocol, client).

One warm process owns the two-tier evaluation cache and serves sweep,
simulate and optimize requests over stdlib HTTP/JSON, coalescing
concurrent overlapping grids into single-flight evaluations:

* :mod:`repro.serve.server` -- the asyncio daemon (``repro serve``);
* :mod:`repro.serve.coalescer` -- single-flight batching over engine
  cache keys (why N clients cost one evaluation per distinct point);
* :mod:`repro.serve.protocol` -- request schemas shared with the CLI;
* :mod:`repro.serve.client` -- the ``--server`` client that rebuilds
  bit-identical result sets from responses;
* :mod:`repro.serve.stats` -- the ``/v1/stats`` observability surface.

See :doc:`/guides/serving` for the architecture and operational semantics.
"""

from repro.serve.client import (
    EvaluationResponse,
    ServeClient,
    ServerError,
    ServerUnavailable,
)
from repro.serve.coalescer import Coalescer, CoalescerStats
from repro.serve.protocol import (
    EVALUATION_ENDPOINTS,
    OptimizeRequest,
    ProtocolError,
    SimulateRequest,
    SweepRequest,
    parse_optimize_request,
    parse_simulate_request,
    parse_sweep_request,
)
from repro.serve.server import (
    DEFAULT_PORT,
    EvaluationServer,
    RunningServer,
    start_in_thread,
)

__all__ = [
    "Coalescer",
    "CoalescerStats",
    "DEFAULT_PORT",
    "EVALUATION_ENDPOINTS",
    "EvaluationResponse",
    "EvaluationServer",
    "OptimizeRequest",
    "ProtocolError",
    "RunningServer",
    "ServeClient",
    "ServerError",
    "ServerUnavailable",
    "SimulateRequest",
    "SweepRequest",
    "parse_optimize_request",
    "parse_simulate_request",
    "parse_sweep_request",
    "start_in_thread",
]
