"""Integrated (on-chip) switching voltage regulator model.

The IVR PDN integrates most of a buck converter onto the processor die and
package (Sec. 2.3): bridges, control, MIM capacitors on die, air-core
inductors on package.  The paper measures the resulting power-conversion
efficiency on a Broadwell part in a design-for-test mode and reports a range
of 81 %--88 % (Table 2), as a function of input voltage, output voltage and
output current.

Rather than a circuit-level loss decomposition (which the paper argues is
inaccurate for these heavily tuned designs), the IVR is modelled with a
behavioural efficiency surface:

* a *peak efficiency* reached at moderate-to-heavy load with an output voltage
  close to the top of the domain's range,
* a *light-load penalty* that decays exponentially with the output current
  (fixed control and switching overheads amortise poorly at light load), and
* a *conversion penalty* that grows as the output voltage drops further below
  the reference voltage (duty-cycle losses).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.errors import UnsupportedOperatingPointError
from repro.util.validation import require_fraction, require_non_negative, require_positive
from repro.vr.base import RegulatorOperatingPoint, VoltageRegulator


@dataclass(frozen=True)
class IntegratedVrDesign:
    """Behavioural design parameters of an on-chip IVR.

    Attributes
    ----------
    name:
        Regulator instance name (e.g. ``"IVR_Core0"``).
    iccmax_a:
        Maximum current the regulator phases can deliver.
    peak_efficiency:
        Efficiency at heavy load with the reference output voltage (the top of
        Table 2's 81--88 % range).
    light_load_penalty:
        Efficiency lost at zero load relative to the peak; decays with current.
    light_load_current_a:
        Current scale of the light-load penalty decay (amps).
    reference_output_v:
        Output voltage at which the conversion penalty is zero.
    conversion_penalty_per_v:
        Efficiency lost per volt of output voltage below the reference.
    quiescent_w:
        Control/bias power drawn even when the domain is idle but the
        regulator is kept enabled.
    """

    name: str
    iccmax_a: float
    peak_efficiency: float = 0.88
    light_load_penalty: float = 0.07
    light_load_current_a: float = 1.0
    reference_output_v: float = 1.1
    conversion_penalty_per_v: float = 0.05
    quiescent_w: float = 0.015

    def __post_init__(self) -> None:
        require_positive(self.iccmax_a, "iccmax_a")
        require_fraction(self.peak_efficiency, "peak_efficiency")
        require_fraction(self.light_load_penalty, "light_load_penalty")
        require_positive(self.light_load_current_a, "light_load_current_a")
        require_positive(self.reference_output_v, "reference_output_v")
        require_non_negative(self.conversion_penalty_per_v, "conversion_penalty_per_v")
        require_non_negative(self.quiescent_w, "quiescent_w")


class IntegratedVoltageRegulator(VoltageRegulator):
    """Behavioural model of an on-chip (fully integrated) voltage regulator."""

    def __init__(self, design: IntegratedVrDesign):
        self._design = design
        self.name = design.name

    @property
    def design(self) -> IntegratedVrDesign:
        """The regulator's behavioural design parameters."""
        return self._design

    @property
    def iccmax_a(self) -> float:
        """Maximum supported load current in amps."""
        return self._design.iccmax_a

    def efficiency(self, point: RegulatorOperatingPoint) -> float:
        """Power-conversion efficiency at ``point``.

        The surface is ``peak - light_load_penalty * exp(-I / I0) -
        conversion_penalty * max(0, Vref - Vout)``, floored at 50 % so that a
        degenerate operating point never produces a nonsensical efficiency.
        """
        design = self._design
        if point.output_current_a > design.iccmax_a:
            raise UnsupportedOperatingPointError(
                f"{self.name}: load current {point.output_current_a:.2f} A exceeds "
                f"Iccmax of {design.iccmax_a:.2f} A"
            )
        if point.output_voltage_v >= point.input_voltage_v:
            raise UnsupportedOperatingPointError(
                f"{self.name}: a buck IVR cannot produce {point.output_voltage_v:.3f} V "
                f"from a {point.input_voltage_v:.3f} V input"
            )
        if point.output_power_w == 0.0:
            return 0.0
        light_load = design.light_load_penalty * math.exp(
            -point.output_current_a / design.light_load_current_a
        )
        conversion = design.conversion_penalty_per_v * max(
            0.0, design.reference_output_v - point.output_voltage_v
        )
        efficiency = design.peak_efficiency - light_load - conversion
        return max(0.5, min(efficiency, design.peak_efficiency))

    def idle_power_w(self) -> float:
        """Control/bias power while enabled with an idle load."""
        return self._design.quiescent_w
