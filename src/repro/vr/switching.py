"""Switching (buck) voltage-regulator model.

The paper (Sec. 2.2) describes the step-down switching voltage regulator (SVR)
used both on the motherboard (MBVR PDN, the first-stage ``V_IN`` regulator of
the IVR and LDO PDNs) and, in integrated form, on the processor die (IVR).

A behavioural loss model is used rather than a circuit-level one: the total
loss of a buck converter is decomposed into

* a fixed *quiescent* loss (controller, gate-drive bias) that dominates at
  light load and is responsible for the poor light-load efficiency visible in
  Fig. 3 of the paper,
* a *switching* loss proportional to the input voltage and the load current
  (charging/discharging the bridge FETs every cycle),
* a *conduction* loss proportional to the square of the load current through
  the effective bridge + inductor resistance, and
* a small *regulation* penalty that grows with the conversion ratio
  ``1 - Vout/Vin``, which makes low output voltages slightly less efficient,
  as in the measured curves of Fig. 3.

Multi-phase regulators expose *VR power states* (PS0, PS1, ...): lighter power
states shed phases and skip pulses, which lowers the fixed losses (better at
light load) at the cost of higher conduction losses (worse at heavy load).
The paper measures the ``V_IN`` regulator in PS0/PS1/PS3/PS4.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.util.errors import ConfigurationError, UnsupportedOperatingPointError
from repro.util.validation import require_fraction, require_non_negative, require_positive
from repro.vr.base import RegulatorOperatingPoint, VoltageRegulator


class VRPowerState(enum.Enum):
    """Power state of a multi-phase switching regulator.

    ``PS0`` is the full-performance state with all phases active.  Higher
    numbered states progressively shed phases and reduce switching frequency,
    trading heavy-load efficiency for light-load efficiency.  ``PS4`` is a
    near-off state used while the platform is in a deep package C-state.
    """

    PS0 = 0
    PS1 = 1
    PS2 = 2
    PS3 = 3
    PS4 = 4


@dataclass(frozen=True)
class PhaseConfiguration:
    """Loss coefficients of one regulator power state.

    Attributes
    ----------
    quiescent_w:
        Fixed loss in watts, independent of load.
    switching_w_per_v_a:
        Switching loss coefficient in watts per (input volt x output amp).
    conduction_ohm:
        Effective series resistance of the active phases, in ohms.
    drive_w_per_a:
        Gate-drive / ripple loss that grows linearly with load current.
    """

    quiescent_w: float
    switching_w_per_v_a: float
    conduction_ohm: float
    drive_w_per_a: float

    def __post_init__(self) -> None:
        require_non_negative(self.quiescent_w, "quiescent_w")
        require_non_negative(self.switching_w_per_v_a, "switching_w_per_v_a")
        require_non_negative(self.conduction_ohm, "conduction_ohm")
        require_non_negative(self.drive_w_per_a, "drive_w_per_a")


@dataclass(frozen=True)
class SwitchingRegulatorDesign:
    """Electrical design of a switching regulator.

    Attributes
    ----------
    name:
        Regulator instance name (e.g. ``"V_IN"``, ``"V_Cores"``).
    iccmax_a:
        Maximum current the regulator is electrically designed to support.
        Exceeding this raises :class:`UnsupportedOperatingPointError`; the
        value also drives the board-area and BOM models (Sec. 3.2).
    min_headroom_v:
        Minimum required difference between input and output voltage
        (the paper quotes ~0.6 V of headroom for a 1.8 V input SVR).
    regulation_penalty:
        Fractional efficiency penalty applied per volt of (Vin - Vout)
        conversion drop; captures the duty-cycle dependence seen in Fig. 3.
    max_efficiency:
        Efficiency ceiling; behavioural cap matching the best measured point.
    phase_configs:
        Loss coefficients for each supported VR power state.
    """

    name: str
    iccmax_a: float
    min_headroom_v: float = 0.0
    regulation_penalty: float = 0.0
    max_efficiency: float = 0.95
    phase_configs: Dict[VRPowerState, PhaseConfiguration] = field(default_factory=dict)

    def __post_init__(self) -> None:
        require_positive(self.iccmax_a, "iccmax_a")
        require_non_negative(self.min_headroom_v, "min_headroom_v")
        require_non_negative(self.regulation_penalty, "regulation_penalty")
        require_fraction(self.max_efficiency, "max_efficiency")
        if not self.phase_configs:
            raise ConfigurationError(
                f"regulator {self.name!r} needs at least one phase configuration"
            )
        if VRPowerState.PS0 not in self.phase_configs:
            raise ConfigurationError(
                f"regulator {self.name!r} must define the PS0 phase configuration"
            )


class SwitchingRegulator(VoltageRegulator):
    """Behavioural model of a step-down switching (buck) regulator.

    Parameters
    ----------
    design:
        The regulator's electrical design (loss coefficients, Iccmax).
    power_state:
        Initial VR power state; defaults to PS0 (all phases active).
    """

    def __init__(
        self,
        design: SwitchingRegulatorDesign,
        power_state: VRPowerState = VRPowerState.PS0,
    ):
        self._design = design
        self.name = design.name
        self._power_state = power_state
        if power_state not in design.phase_configs:
            raise ConfigurationError(
                f"regulator {design.name!r} does not define power state {power_state.name}"
            )

    @property
    def design(self) -> SwitchingRegulatorDesign:
        """The regulator's electrical design."""
        return self._design

    @property
    def power_state(self) -> VRPowerState:
        """The regulator's current power state."""
        return self._power_state

    @property
    def iccmax_a(self) -> float:
        """Maximum supported load current in amps."""
        return self._design.iccmax_a

    def set_power_state(self, power_state: VRPowerState) -> None:
        """Move the regulator to a different power state.

        The platform power-management unit selects the regulator power state
        based on the package C-state; lighter regulator states are used when
        the processor is mostly idle.
        """
        if power_state not in self._design.phase_configs:
            raise ConfigurationError(
                f"regulator {self.name!r} does not define power state {power_state.name}"
            )
        self._power_state = power_state

    def best_power_state_for(self, point: RegulatorOperatingPoint) -> VRPowerState:
        """Return the defined power state with the highest efficiency at ``point``."""
        best_state = self._power_state
        best_eta = 0.0
        for state in self._design.phase_configs:
            eta = self._efficiency_in_state(point, state)
            if eta > best_eta:
                best_eta = eta
                best_state = state
        return best_state

    def loss_breakdown_w(self, point: RegulatorOperatingPoint) -> Dict[str, float]:
        """Return the loss decomposition at ``point`` in watts.

        Keys are ``"quiescent"``, ``"switching"``, ``"conduction"``, ``"drive"``
        and ``"regulation"``.
        """
        self._check_point(point)
        config = self._design.phase_configs[self._power_state]
        current = point.output_current_a
        conversion_drop_v = max(0.0, point.input_voltage_v - point.output_voltage_v)
        return {
            "quiescent": config.quiescent_w,
            "switching": config.switching_w_per_v_a * point.input_voltage_v * current,
            "conduction": config.conduction_ohm * current * current,
            "drive": config.drive_w_per_a * current,
            "regulation": self._design.regulation_penalty
            * conversion_drop_v
            * point.output_power_w,
        }

    def efficiency(self, point: RegulatorOperatingPoint) -> float:
        """Power-conversion efficiency at ``point``."""
        return self._efficiency_in_state(point, self._power_state)

    def idle_power_w(self) -> float:
        """Quiescent power of the current power state."""
        return self._design.phase_configs[self._power_state].quiescent_w

    def _efficiency_in_state(
        self, point: RegulatorOperatingPoint, state: VRPowerState
    ) -> float:
        self._check_point(point)
        output_power = point.output_power_w
        if output_power == 0.0:
            return 0.0
        config = self._design.phase_configs[state]
        current = point.output_current_a
        conversion_drop_v = max(0.0, point.input_voltage_v - point.output_voltage_v)
        loss = (
            config.quiescent_w
            + config.switching_w_per_v_a * point.input_voltage_v * current
            + config.conduction_ohm * current * current
            + config.drive_w_per_a * current
            + self._design.regulation_penalty * conversion_drop_v * output_power
        )
        efficiency = output_power / (output_power + loss)
        return min(efficiency, self._design.max_efficiency)

    def _check_point(self, point: RegulatorOperatingPoint) -> None:
        design = self._design
        if point.output_current_a > design.iccmax_a:
            raise UnsupportedOperatingPointError(
                f"{self.name}: load current {point.output_current_a:.2f} A exceeds "
                f"Iccmax of {design.iccmax_a:.2f} A"
            )
        headroom = point.input_voltage_v - point.output_voltage_v
        if headroom < design.min_headroom_v:
            raise UnsupportedOperatingPointError(
                f"{self.name}: voltage headroom {headroom:.3f} V below the minimum "
                f"of {design.min_headroom_v:.3f} V required by a switching regulator"
            )
