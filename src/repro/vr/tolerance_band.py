"""Voltage-regulator tolerance band (TOB) model.

The tolerance band of a regulator is the maximum voltage deviation across
temperature, manufacturing variation and ageing (Sec. 2.4).  To guarantee the
load always sees at least its nominal voltage, the regulator's set point is
raised by the tolerance band, and the excess voltage turns into wasted power
(modelled by the guardband equation, Eq. 2).

The paper decomposes the tolerance band into controller tolerance, current
sense variation and voltage ripple; we keep that decomposition so experiments
can perturb individual components (e.g. what-if analysis of a better
controller).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require_non_negative


@dataclass(frozen=True)
class ToleranceBand:
    """Tolerance-band decomposition of a voltage regulator.

    All components are expressed in volts.  Table 2 of the paper quotes total
    tolerance bands of 18--22 mV for the IVR PDN, 18--20 mV for the MBVR PDN
    and 16--18 mV for the LDO PDN.
    """

    controller_v: float
    current_sense_v: float
    ripple_v: float

    def __post_init__(self) -> None:
        require_non_negative(self.controller_v, "controller_v")
        require_non_negative(self.current_sense_v, "current_sense_v")
        require_non_negative(self.ripple_v, "ripple_v")

    @property
    def total_v(self) -> float:
        """Total voltage guardband required to cover the tolerance band."""
        return self.controller_v + self.current_sense_v + self.ripple_v

    @classmethod
    def from_total(cls, total_v: float) -> "ToleranceBand":
        """Build a tolerance band from a total value using typical proportions.

        The split (50 % controller, 30 % current sense, 20 % ripple) follows the
        qualitative description in Sec. 2.4; only the total matters for the
        power models.
        """
        require_non_negative(total_v, "total_v")
        return cls(
            controller_v=0.5 * total_v,
            current_sense_v=0.3 * total_v,
            ripple_v=0.2 * total_v,
        )

    def scaled(self, factor: float) -> "ToleranceBand":
        """Return a tolerance band with every component scaled by ``factor``."""
        require_non_negative(factor, "factor")
        return ToleranceBand(
            controller_v=self.controller_v * factor,
            current_sense_v=self.current_sense_v * factor,
            ripple_v=self.ripple_v * factor,
        )
