"""On-chip power-gate model.

A power gate is a wide transistor switch inserted between a domain's supply
rail and the domain itself.  When the domain is idle, the gate opens and the
domain draws (nearly) no power.  When the domain is active, the gate is closed
and its small series impedance causes a voltage drop, which the upstream
regulator must compensate for by raising its output voltage -- adding a small
amount of guardband power (Sec. 3.1 of the paper, the ``P_PG`` term).
"""

from __future__ import annotations

from repro.util.validation import require_non_negative
from repro.vr.base import RegulatorOperatingPoint, VoltageRegulator


class PowerGate(VoltageRegulator):
    """Behavioural model of an on-chip power gate.

    Parameters
    ----------
    name:
        Instance name (e.g. ``"PG_Core0"``).
    impedance_ohm:
        Series resistance of the closed gate.  Table 2 quotes 1--2 mOhm
        depending on the domain.
    closed:
        Whether the gate is initially conducting (domain active).
    """

    def __init__(self, name: str = "power_gate", impedance_ohm: float = 0.0015, closed: bool = True):
        self.name = name
        self._impedance_ohm = require_non_negative(impedance_ohm, "impedance_ohm")
        self._closed = closed

    @property
    def impedance_ohm(self) -> float:
        """Series resistance of the closed gate, in ohms."""
        return self._impedance_ohm

    @property
    def closed(self) -> bool:
        """Whether the gate is conducting."""
        return self._closed

    def open(self) -> None:
        """Open the gate, disconnecting the domain (idle)."""
        self._closed = False

    def close(self) -> None:
        """Close the gate, connecting the domain (active)."""
        self._closed = True

    def voltage_drop_v(self, current_a: float) -> float:
        """Voltage dropped across the closed gate at ``current_a`` amps."""
        require_non_negative(current_a, "current_a")
        if not self._closed:
            return 0.0
        return self._impedance_ohm * current_a

    def efficiency(self, point: RegulatorOperatingPoint) -> float:
        """Fraction of input power that reaches the domain through the gate."""
        if not self._closed or point.output_power_w == 0.0:
            return 0.0
        drop_v = self.voltage_drop_v(point.output_current_a)
        supply_v = point.output_voltage_v + drop_v
        return point.output_voltage_v / supply_v

    def input_power_w(self, point: RegulatorOperatingPoint) -> float:
        """Power drawn upstream of the gate, including the resistive drop."""
        if not self._closed or point.output_power_w == 0.0:
            return 0.0
        return super().input_power_w(point)
