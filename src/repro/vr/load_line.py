"""Load-line (adaptive voltage positioning) model.

The load-line describes the relationship between the voltage seen at the load
and the current drawn by the load under a given distribution impedance
``R_LL`` (Sec. 2.4)::

    Vcc = V_IN - V_TOB - R_LL * Icc

Because the voltage sags as current rises, the regulator's set point must
include enough guardband that the load still sees its minimum functional
voltage while running the most intensive possible workload (the *power virus*,
for which the application ratio AR = 1).  The paper folds this into the ETEE
models with Eq. 3/4 (MBVR per-domain rails) and Eq. 7/8 (the shared ``V_IN``
rail of the IVR/LDO PDNs):

    V_D_LL = V_D + (P_peak / V_D) * R_LL          (Eq. 3 / Eq. 7)
    P_D_LL = V_D_LL * (P_D / V_D)                 (Eq. 4 / Eq. 8)

where ``P_peak = P_D / AR`` is the peak (power-virus) power the guardband must
cover.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ModelDomainError
from repro.util.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class LoadLineResult:
    """Result of applying the load-line guardband to a rail.

    Attributes
    ----------
    rail_voltage_v:
        The raised rail voltage ``V_LL`` after guardbanding (Eq. 3 / Eq. 7).
    rail_power_w:
        The power drawn from the rail after guardbanding (Eq. 4 / Eq. 8).
    rail_current_a:
        The current drawn from the rail (unchanged by the guardband; the
        voltage is raised, not the current).
    conduction_loss_w:
        The extra power burned because of the load-line guardband
        (``rail_power_w`` minus the pre-guardband power).
    """

    rail_voltage_v: float
    rail_power_w: float
    rail_current_a: float
    conduction_loss_w: float


@dataclass(frozen=True)
class LoadLine:
    """A load-line with a fixed distribution impedance.

    Parameters
    ----------
    impedance_ohm:
        The distribution impedance ``R_LL`` in ohms (Table 2 quotes values in
        milliohms: e.g. 1 mOhm for the IVR input rail, 2.5 mOhm for the MBVR
        core rail).
    """

    impedance_ohm: float

    def __post_init__(self) -> None:
        require_non_negative(self.impedance_ohm, "impedance_ohm")

    def voltage_droop_v(self, current_a: float) -> float:
        """Voltage drop across the load-line at ``current_a`` amps."""
        require_non_negative(current_a, "current_a")
        return self.impedance_ohm * current_a

    def apply(
        self,
        rail_voltage_v: float,
        rail_power_w: float,
        application_ratio: float,
    ) -> LoadLineResult:
        """Apply the load-line guardband of Eq. 3/4 (or Eq. 7/8) to a rail.

        Parameters
        ----------
        rail_voltage_v:
            Nominal rail voltage ``V_D`` (or ``V_IN``) before guardbanding.
        rail_power_w:
            Power drawn by the loads on this rail before guardbanding
            (``P_D`` or ``P_IN``).
        application_ratio:
            The workload's application ratio (AR); the peak power the
            guardband must cover is ``rail_power_w / AR``.
        """
        require_positive(rail_voltage_v, "rail_voltage_v")
        require_non_negative(rail_power_w, "rail_power_w")
        if not 0.0 < application_ratio <= 1.0:
            raise ModelDomainError(
                f"application_ratio must be in (0, 1], got {application_ratio!r}"
            )
        if rail_power_w == 0.0:
            return LoadLineResult(
                rail_voltage_v=rail_voltage_v,
                rail_power_w=0.0,
                rail_current_a=0.0,
                conduction_loss_w=0.0,
            )
        peak_power_w = rail_power_w / application_ratio
        peak_current_a = peak_power_w / rail_voltage_v
        guardbanded_voltage_v = rail_voltage_v + self.impedance_ohm * peak_current_a
        rail_current_a = rail_power_w / rail_voltage_v
        guardbanded_power_w = guardbanded_voltage_v * rail_current_a
        return LoadLineResult(
            rail_voltage_v=guardbanded_voltage_v,
            rail_power_w=guardbanded_power_w,
            rail_current_a=rail_current_a,
            conduction_loss_w=guardbanded_power_w - rail_power_w,
        )

    def scaled(self, factor: float) -> "LoadLine":
        """Return a load-line with the impedance scaled by ``factor``.

        FlexWatts' hybrid regulator shares routing resources between its IVR
        and LDO modes, which slightly raises the effective load-line compared
        to a dedicated design (Sec. 7.1); experiments model that with a scale
        factor slightly above 1.
        """
        require_non_negative(factor, "factor")
        return LoadLine(impedance_ohm=self.impedance_ohm * factor)
