"""Factory functions for the default regulator designs of Table 2 / Fig. 3.

The paper obtains its regulator efficiency curves from lab measurements on
Broadwell/Skylake platforms (Sec. 4.2).  This module encodes behavioural
designs whose efficiency surfaces land inside the published ranges:

* off-chip (board) switching regulators: 72 %--93 % over the operational range
  (Fig. 3: roughly 45--55 % at 0.1 A in PS0, rising to 85--93 % at several
  amps; PS1 considerably better at light load and slightly worse at heavy
  load; higher output voltages uniformly more efficient),
* on-chip IVRs: 81 %--88 %,
* on-chip LDO regulators: ``(Vout / Vin) * 99.1 %``.

Keeping every coefficient in one module makes the calibration auditable and
lets experiments build perturbed designs for sensitivity studies.
"""

from __future__ import annotations

from repro.vr.integrated import IntegratedVoltageRegulator, IntegratedVrDesign
from repro.vr.ldo import LowDropoutRegulator
from repro.vr.switching import (
    PhaseConfiguration,
    SwitchingRegulator,
    SwitchingRegulatorDesign,
    VRPowerState,
)

#: Default LDO current efficiency from Table 2 (99.1 %).
DEFAULT_LDO_CURRENT_EFFICIENCY = 0.991

#: Default input voltage delivered by the first-stage (V_IN) regulator when the
#: second stage is a switching IVR (Sec. 2.3).
DEFAULT_IVR_INPUT_VOLTAGE_V = 1.8

#: Default motherboard input voltage from the power supply or battery.
DEFAULT_SUPPLY_VOLTAGE_V = 7.2


def _board_phase_configs(iccmax_a: float) -> dict:
    """Build the per-power-state loss coefficients of a board regulator.

    Fixed (quiescent) losses scale weakly with the regulator's current rating:
    a regulator designed for a higher Iccmax uses more/larger phases, whose
    bias and gate-drive overheads are larger.  Conduction resistance scales
    inversely with the rating (more phases in parallel).
    """
    size_factor = max(iccmax_a, 1.0)
    quiescent_ps0 = 0.035 + 0.0008 * size_factor
    conduction_ps0 = 0.011 * (20.0 / size_factor) ** 0.3
    return {
        VRPowerState.PS0: PhaseConfiguration(
            quiescent_w=quiescent_ps0,
            switching_w_per_v_a=0.008,
            conduction_ohm=conduction_ps0,
            drive_w_per_a=0.010,
        ),
        VRPowerState.PS1: PhaseConfiguration(
            quiescent_w=0.25 * quiescent_ps0,
            switching_w_per_v_a=0.005,
            conduction_ohm=4.0 * conduction_ps0,
            drive_w_per_a=0.008,
        ),
        VRPowerState.PS3: PhaseConfiguration(
            quiescent_w=0.08 * quiescent_ps0,
            switching_w_per_v_a=0.004,
            conduction_ohm=10.0 * conduction_ps0,
            drive_w_per_a=0.006,
        ),
        VRPowerState.PS4: PhaseConfiguration(
            quiescent_w=0.02 * quiescent_ps0,
            switching_w_per_v_a=0.003,
            conduction_ohm=25.0 * conduction_ps0,
            drive_w_per_a=0.005,
        ),
    }


def default_board_vr(name: str, iccmax_a: float) -> SwitchingRegulator:
    """Build a default motherboard switching regulator.

    Used for the per-domain regulators of the MBVR PDN (``V_Cores``, ``V_GFX``,
    ``V_SA``, ``V_IO``) and for the dedicated SA/IO regulators of the LDO,
    I+MBVR and FlexWatts PDNs.  The input is the platform supply
    (7.2 V--20 V); the output is a domain voltage (0.5 V--1.8 V).
    """
    design = SwitchingRegulatorDesign(
        name=name,
        iccmax_a=iccmax_a,
        min_headroom_v=0.6,
        regulation_penalty=0.004,
        max_efficiency=0.93,
        phase_configs=_board_phase_configs(iccmax_a),
    )
    return SwitchingRegulator(design)


def default_input_vr(name: str = "V_IN", iccmax_a: float = 40.0) -> SwitchingRegulator:
    """Build the first-stage ``V_IN`` regulator shared by IVR/LDO-style PDNs.

    ``V_IN`` converts the platform supply (7.2 V--20 V) either to ~1.8 V (when
    the second stage is an IVR) or directly to the maximum domain voltage
    (when the second stage is an LDO in bypass/regulation).  It is a large,
    multi-phase regulator, so its quiescent losses are a little higher but its
    conduction resistance lower than a per-domain board regulator.
    """
    design = SwitchingRegulatorDesign(
        name=name,
        iccmax_a=iccmax_a,
        min_headroom_v=0.6,
        regulation_penalty=0.004,
        max_efficiency=0.93,
        phase_configs=_board_phase_configs(iccmax_a),
    )
    return SwitchingRegulator(design)


def default_ivr(name: str, iccmax_a: float = 25.0) -> IntegratedVoltageRegulator:
    """Build a default on-chip integrated voltage regulator (81 %--88 %)."""
    design = IntegratedVrDesign(
        name=name,
        iccmax_a=iccmax_a,
        peak_efficiency=0.88,
        light_load_penalty=0.10,
        light_load_current_a=1.5,
        reference_output_v=1.1,
        conversion_penalty_per_v=0.05,
        quiescent_w=0.015,
    )
    return IntegratedVoltageRegulator(design)


def default_ldo(name: str) -> LowDropoutRegulator:
    """Build a default on-chip LDO regulator (Eq. 10, Ie = 99.1 %)."""
    return LowDropoutRegulator(
        name=name,
        current_efficiency=DEFAULT_LDO_CURRENT_EFFICIENCY,
        dropout_voltage_v=0.02,
        bypass_resistance_ohm=0.0015,
    )
