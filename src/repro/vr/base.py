"""Common interface for voltage-regulator models.

Every regulator in this library converts an input voltage to an output voltage
and is characterised by a *power-conversion efficiency* (Eq. 1 of the paper)::

    efficiency = P_out / P_in = P_out / (P_out + P_loss)

The efficiency of a real regulator depends on the operating point -- the
input voltage, the output voltage, the load current, and (for multi-phase
switching regulators) the regulator's own power state.  The
:class:`RegulatorOperatingPoint` dataclass captures that operating point, and
:class:`VoltageRegulator` defines the interface all regulator models share.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.util.errors import UnsupportedOperatingPointError
from repro.util.validation import require_non_negative, require_positive


@dataclass(frozen=True)
class RegulatorOperatingPoint:
    """An operating point of a voltage regulator.

    Attributes
    ----------
    input_voltage_v:
        Voltage at the regulator input, in volts.
    output_voltage_v:
        Desired regulated voltage at the regulator output, in volts.
    output_current_a:
        Load current drawn from the regulator output, in amps.
    """

    input_voltage_v: float
    output_voltage_v: float
    output_current_a: float

    def __post_init__(self) -> None:
        require_positive(self.input_voltage_v, "input_voltage_v")
        require_non_negative(self.output_voltage_v, "output_voltage_v")
        require_non_negative(self.output_current_a, "output_current_a")

    @property
    def output_power_w(self) -> float:
        """Power delivered to the load, in watts."""
        return self.output_voltage_v * self.output_current_a

    def with_current(self, output_current_a: float) -> "RegulatorOperatingPoint":
        """Return a copy of this operating point with a different load current."""
        return RegulatorOperatingPoint(
            input_voltage_v=self.input_voltage_v,
            output_voltage_v=self.output_voltage_v,
            output_current_a=output_current_a,
        )


class VoltageRegulator(abc.ABC):
    """Abstract base class for all voltage-regulator models."""

    #: Human-readable regulator name, used in reports and loss breakdowns.
    name: str = "vr"

    @abc.abstractmethod
    def efficiency(self, point: RegulatorOperatingPoint) -> float:
        """Return the power-conversion efficiency at ``point`` (0 < eta <= 1)."""

    def input_power_w(self, point: RegulatorOperatingPoint) -> float:
        """Power drawn from the regulator input to deliver ``point``'s output power.

        This is Eq. 1 rearranged: ``P_in = P_out / efficiency``.  A zero output
        power returns the regulator's idle (quiescent) power, which defaults to
        zero for idealised regulators.
        """
        output_power = point.output_power_w
        if output_power == 0.0:
            return self.idle_power_w()
        eta = self.efficiency(point)
        if not 0.0 < eta <= 1.0:
            raise UnsupportedOperatingPointError(
                f"{self.name}: efficiency {eta!r} outside (0, 1] at {point}"
            )
        return output_power / eta

    def loss_w(self, point: RegulatorOperatingPoint) -> float:
        """Power dissipated inside the regulator at ``point``, in watts."""
        return self.input_power_w(point) - point.output_power_w

    def idle_power_w(self) -> float:
        """Power drawn by the regulator when its load is fully idle.

        Idealised regulators return 0; switching regulators override this with
        their controller quiescent power.
        """
        return 0.0
