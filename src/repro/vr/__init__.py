"""Voltage-regulator models.

This package models the regulator types that appear in the three
commonly-used client-processor PDNs described by the paper (Sec. 2.2):

* :class:`~repro.vr.switching.SwitchingRegulator` -- a step-down switching
  regulator (buck converter).  Used on the motherboard (first-stage ``V_IN``
  and per-domain MBVR regulators) and, in integrated form, as the on-chip IVR.
* :class:`~repro.vr.ldo.LowDropoutRegulator` -- a linear low-dropout
  regulator whose efficiency is approximately ``Vout / Vin`` times its current
  efficiency, with a bypass mode and a power-gate mode.
* :class:`~repro.vr.power_gate.PowerGate` -- an on-chip switch with a small
  series impedance that disconnects an idle domain.

Supporting models:

* :class:`~repro.vr.tolerance_band.ToleranceBand` -- the voltage-guardband
  model for regulator tolerance (Sec. 2.4).
* :class:`~repro.vr.load_line.LoadLine` -- the load-line / adaptive voltage
  positioning model ``Vcc = Vin - Vtob - Rll * Icc`` (Sec. 2.4) and the
  guardband equations (Eq. 3 and Eq. 7).
* :mod:`repro.vr.efficiency_curves` -- factory functions that build the
  default efficiency surfaces of Table 2 / Fig. 3.
"""

from repro.vr.base import RegulatorOperatingPoint, VoltageRegulator
from repro.vr.switching import SwitchingRegulator, SwitchingRegulatorDesign, VRPowerState
from repro.vr.integrated import IntegratedVoltageRegulator
from repro.vr.ldo import LdoMode, LowDropoutRegulator
from repro.vr.power_gate import PowerGate
from repro.vr.tolerance_band import ToleranceBand
from repro.vr.load_line import LoadLine
from repro.vr.efficiency_curves import (
    default_board_vr,
    default_input_vr,
    default_ivr,
    default_ldo,
)

__all__ = [
    "VoltageRegulator",
    "RegulatorOperatingPoint",
    "SwitchingRegulator",
    "SwitchingRegulatorDesign",
    "VRPowerState",
    "IntegratedVoltageRegulator",
    "LowDropoutRegulator",
    "LdoMode",
    "PowerGate",
    "ToleranceBand",
    "LoadLine",
    "default_board_vr",
    "default_input_vr",
    "default_ivr",
    "default_ldo",
]
