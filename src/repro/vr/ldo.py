"""Low-dropout (LDO) linear regulator model.

The paper (Sec. 2.2) models an LDO regulator's efficiency as the ratio of the
output to input voltage multiplied by its *current efficiency* (the small
fraction of current consumed by the error amplifier and bias circuits)::

    eta_LDO = (Vout / Vin) * Ie            (Eq. 10)

with ``Ie`` around 99 % in modern designs.  An LDO can also operate in

* *bypass mode*, where the pass device is fully on and the output voltage
  tracks the input voltage (used by the LDO PDN for the domain that sets the
  shared ``V_IN`` rail), and
* *power-gate mode*, where the pass device is off and the domain is
  disconnected (idle domains).

The dual-mode power-gate / LDO circuit of Luria et al. (the building block of
FlexWatts' hybrid regulator) is modelled by the same class.
"""

from __future__ import annotations

import enum

from repro.util.errors import UnsupportedOperatingPointError
from repro.util.validation import require_fraction, require_non_negative
from repro.vr.base import RegulatorOperatingPoint, VoltageRegulator


class LdoMode(enum.Enum):
    """Operating mode of a low-dropout regulator."""

    #: The regulator actively reduces the input voltage to the requested output.
    REGULATION = "regulation"
    #: The pass device is fully on; output voltage equals input voltage minus
    #: a small resistive drop.  Used when the domain needs the full rail.
    BYPASS = "bypass"
    #: The pass device is off and the domain is disconnected (idle domain).
    POWER_GATE = "power_gate"


class LowDropoutRegulator(VoltageRegulator):
    """Behavioural model of an on-chip LDO regulator / power gate.

    Parameters
    ----------
    name:
        Instance name (e.g. ``"LDO_Core0"``).
    current_efficiency:
        Fraction of the input current that reaches the load (``Ie`` in Eq. 10).
        The paper measures ~99 % (Table 2 quotes 99.1 %).
    dropout_voltage_v:
        Minimum input-output differential the regulator needs to stay in
        regulation.  Below this the regulator behaves as if in bypass.
    bypass_resistance_ohm:
        Series resistance of the fully-on pass device, used in bypass and
        power-gate-style calculations.
    """

    def __init__(
        self,
        name: str = "ldo",
        current_efficiency: float = 0.991,
        dropout_voltage_v: float = 0.02,
        bypass_resistance_ohm: float = 0.0015,
    ):
        self.name = name
        self._current_efficiency = require_fraction(current_efficiency, "current_efficiency")
        self._dropout_voltage_v = require_non_negative(dropout_voltage_v, "dropout_voltage_v")
        self._bypass_resistance_ohm = require_non_negative(
            bypass_resistance_ohm, "bypass_resistance_ohm"
        )
        self._mode = LdoMode.REGULATION

    @property
    def mode(self) -> LdoMode:
        """The regulator's current operating mode."""
        return self._mode

    @property
    def current_efficiency(self) -> float:
        """The regulator's current efficiency ``Ie``."""
        return self._current_efficiency

    @property
    def bypass_resistance_ohm(self) -> float:
        """Series resistance of the fully-on pass device, in ohms."""
        return self._bypass_resistance_ohm

    def set_mode(self, mode: LdoMode) -> None:
        """Select the regulator operating mode."""
        self._mode = mode

    def mode_for(self, point: RegulatorOperatingPoint) -> LdoMode:
        """Return the natural mode for ``point``.

        If the requested output voltage is within the dropout voltage of the
        input rail the regulator cannot regulate and operates in bypass; if the
        load draws no current the regulator acts as a power gate.
        """
        if point.output_current_a == 0.0:
            return LdoMode.POWER_GATE
        if point.input_voltage_v - point.output_voltage_v <= self._dropout_voltage_v:
            return LdoMode.BYPASS
        return LdoMode.REGULATION

    def efficiency(self, point: RegulatorOperatingPoint) -> float:
        """Power-conversion efficiency at ``point`` for the current mode.

        In regulation mode this is Eq. 10.  In bypass mode the only loss is the
        resistive drop across the pass device times the current efficiency.
        """
        if self._mode is LdoMode.POWER_GATE:
            return 0.0
        if point.output_voltage_v > point.input_voltage_v:
            raise UnsupportedOperatingPointError(
                f"{self.name}: cannot regulate {point.output_voltage_v:.3f} V from a "
                f"{point.input_voltage_v:.3f} V input (LDOs only step down)"
            )
        if self._mode is LdoMode.BYPASS:
            drop_v = self._bypass_resistance_ohm * point.output_current_a
            effective_output_v = max(point.input_voltage_v - drop_v, 1e-9)
            return (effective_output_v / point.input_voltage_v) * self._current_efficiency
        return (point.output_voltage_v / point.input_voltage_v) * self._current_efficiency

    def input_power_w(self, point: RegulatorOperatingPoint) -> float:
        """Power drawn from the input rail to deliver ``point``'s output power."""
        if self._mode is LdoMode.POWER_GATE or point.output_power_w == 0.0:
            return 0.0
        return super().input_power_w(point)
