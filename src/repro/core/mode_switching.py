"""FlexWatts' voltage-noise-free mode-switching flow and its overheads.

Switching the hybrid PDN between IVR-Mode and LDO-Mode changes the voltage of
the shared ``V_IN`` rail and reconfigures every hybrid regulator; doing that
while the compute domains are executing would inject voltage noise.  FlexWatts
therefore reuses the package-C6 firmware flow (Sec. 6):

1. the PMU places the package into the C6 idle state (contexts saved to an
   always-on SRAM, compute clocks and voltages gated) -- ~45 us,
2. the PMU reprograms ``V_IN`` and the hybrid regulators for the new mode --
   bounded by the off-chip regulator slew (50 mV/us) and the <=2 us on-chip
   regulator settling time, ~19 us for the 1.8 V <-> ~0.85 V transition, and
3. the PMU exits C6 and execution resumes in the new mode -- ~30 us,

for a total of ~94 us, which the paper compares against the up-to-500 us
latency of a conventional P-state (DVFS) transition.

The area overhead of adding the LDO personality to the existing IVRs is about
0.041 mm^2 at 14 nm -- 0.04 % / 0.03 % of a dual-/quad-core client die.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.hybrid_vr import PdnMode
from repro.power.power_states import PackageCState
from repro.soc.pmu import (
    PACKAGE_C6_ENTRY_LATENCY_S,
    PACKAGE_C6_EXIT_LATENCY_S,
    PowerManagementUnit,
)
from repro.util.validation import require_non_negative, require_positive

#: Off-chip regulator slew rate used to bound the V_IN adjustment (50 mV/us).
OFF_CHIP_SLEW_RATE_V_PER_S = 50e-3 / 1e-6

#: On-chip (hybrid) regulator reconfiguration latency (<= 2 us).
ON_CHIP_ADJUST_LATENCY_S = 2e-6

#: V_IN level in IVR-Mode.
IVR_MODE_INPUT_VOLTAGE_V = 1.8

#: Representative V_IN level in LDO-Mode (the maximum compute-domain voltage).
LDO_MODE_INPUT_VOLTAGE_V = 0.85


@dataclass(frozen=True)
class ModeSwitchOverheads:
    """Latency and area overheads of the FlexWatts mode-switch flow."""

    c6_entry_s: float = PACKAGE_C6_ENTRY_LATENCY_S
    vr_adjust_s: float = 19e-6
    c6_exit_s: float = PACKAGE_C6_EXIT_LATENCY_S
    #: Die area added by the LDO personality of the hybrid regulators (mm^2).
    area_overhead_mm2: float = 0.041
    #: Fraction of a dual-core client die the overhead represents.
    dual_core_die_fraction: float = 0.0004
    #: Fraction of a quad-core client die the overhead represents.
    quad_core_die_fraction: float = 0.0003

    def __post_init__(self) -> None:
        require_non_negative(self.c6_entry_s, "c6_entry_s")
        require_non_negative(self.vr_adjust_s, "vr_adjust_s")
        require_non_negative(self.c6_exit_s, "c6_exit_s")
        require_non_negative(self.area_overhead_mm2, "area_overhead_mm2")

    @property
    def total_latency_s(self) -> float:
        """End-to-end mode-switch latency (~94 us with the default values)."""
        return self.c6_entry_s + self.vr_adjust_s + self.c6_exit_s

    @classmethod
    def from_voltage_swing(
        cls,
        from_voltage_v: float = IVR_MODE_INPUT_VOLTAGE_V,
        to_voltage_v: float = LDO_MODE_INPUT_VOLTAGE_V,
    ) -> "ModeSwitchOverheads":
        """Derive the regulator-adjustment latency from the V_IN voltage swing."""
        require_positive(from_voltage_v, "from_voltage_v")
        require_positive(to_voltage_v, "to_voltage_v")
        swing_v = abs(from_voltage_v - to_voltage_v)
        adjust_s = max(ON_CHIP_ADJUST_LATENCY_S, swing_v / OFF_CHIP_SLEW_RATE_V_PER_S)
        return cls(vr_adjust_s=adjust_s)


class ModeSwitchController:
    """Tracks the hybrid PDN's mode and accounts for switching overheads.

    Parameters
    ----------
    initial_mode:
        Mode the hybrid PDN boots in (IVR-Mode by default, matching the
        baseline design it extends).
    overheads:
        Latency/area overhead description; defaults to the paper's figures.
    min_residency_s:
        Minimum time the PDN must stay in a mode before switching again.
        FlexWatts evaluates its predictor every ~10 ms, so mode changes can
        never be more frequent than that.
    """

    def __init__(
        self,
        initial_mode: PdnMode = PdnMode.IVR_MODE,
        overheads: Optional[ModeSwitchOverheads] = None,
        min_residency_s: float = 10e-3,
    ):
        require_non_negative(min_residency_s, "min_residency_s")
        self._mode = initial_mode
        self._overheads = overheads if overheads is not None else ModeSwitchOverheads()
        self._min_residency_s = min_residency_s
        self._switch_count = 0
        self._total_switch_time_s = 0.0
        self._time_since_switch_s = float("inf")

    @property
    def mode(self) -> PdnMode:
        """The hybrid PDN's current mode."""
        return self._mode

    @property
    def overheads(self) -> ModeSwitchOverheads:
        """The overhead description used by this controller."""
        return self._overheads

    @property
    def switch_count(self) -> int:
        """Number of mode switches performed so far."""
        return self._switch_count

    @property
    def total_switch_time_s(self) -> float:
        """Total time spent inside mode-switch flows."""
        return self._total_switch_time_s

    def advance_time(self, interval_s: float) -> None:
        """Advance the controller's residency clock by ``interval_s``."""
        require_non_negative(interval_s, "interval_s")
        self._time_since_switch_s += interval_s

    def can_switch(self) -> bool:
        """Whether the minimum residency since the last switch has elapsed."""
        return self._time_since_switch_s >= self._min_residency_s

    def switch_to(self, mode: PdnMode, pmu: Optional[PowerManagementUnit] = None) -> float:
        """Switch the hybrid PDN to ``mode``; returns the latency paid (seconds).

        If a PMU is supplied the package-C6 entry/exit flow is actually driven
        through it (and the PMU's clock advances); otherwise only the latency
        accounting is performed.  Requesting the current mode costs nothing.
        """
        if mode is self._mode:
            return 0.0
        if not self.can_switch():
            return 0.0
        if pmu is not None:
            previous_state = pmu.power_state
            pmu.enter_power_state(PackageCState.C6)
            pmu.advance_time(self._overheads.vr_adjust_s)
            resume_state = (
                previous_state
                if previous_state in (PackageCState.C0, PackageCState.C0_MIN)
                else PackageCState.C0
            )
            pmu.enter_power_state(resume_state)
        latency_s = self._overheads.total_latency_s
        self._mode = mode
        self._switch_count += 1
        self._total_switch_time_s += latency_s
        self._time_since_switch_s = 0.0
        return latency_s

    def energy_overhead_j(self, package_power_w: float) -> float:
        """Energy burned during one mode switch at ``package_power_w``."""
        require_non_negative(package_power_w, "package_power_w")
        return package_power_w * self._overheads.total_latency_s
