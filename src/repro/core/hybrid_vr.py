"""FlexWatts' hybrid on-chip voltage regulator.

Sec. 6 of the paper: each hybrid regulator extends a baseline on-chip IVR by
also implementing an LDO regulator out of the IVR's existing resources -- in
particular the high-side (HS) NMOS power switch, following the Intel dual-mode
power-gate/LDO circuit of Luria et al.  The two modes share the HS switch, the
package/die decoupling capacitors, the routing resources and the off-chip
``V_IN`` regulator, which is what keeps FlexWatts' cost and area comparable to
the IVR PDN.

* In **IVR-Mode** the regulator behaves as a buck IVR: ``V_IN`` is ~1.8 V and
  the regulator steps it down to the domain voltage.
* In **LDO-Mode** the regulator behaves as an LDO: ``V_IN`` carries the
  maximum domain voltage and the regulator drops it linearly (or bypasses it,
  or acts as a power gate for an idle domain).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.util.errors import UnsupportedOperatingPointError
from repro.vr.base import RegulatorOperatingPoint, VoltageRegulator
from repro.vr.efficiency_curves import default_ivr, default_ldo
from repro.vr.integrated import IntegratedVoltageRegulator
from repro.vr.ldo import LowDropoutRegulator


class PdnMode(enum.Enum):
    """Operating mode of the FlexWatts hybrid PDN (and of each hybrid VR)."""

    IVR_MODE = "ivr_mode"
    LDO_MODE = "ldo_mode"


class HybridVoltageRegulator(VoltageRegulator):
    """A dual-mode on-chip regulator sharing resources between IVR and LDO.

    Parameters
    ----------
    name:
        Instance name (e.g. ``"HVR_Core0"``).
    ivr:
        The integrated-regulator personality; built with the default Table 2
        design when omitted.
    ldo:
        The LDO personality; built with the default design when omitted.
    mode:
        Initial operating mode.
    """

    #: Additional die area needed to add the LDO mode to an existing IVR
    #: (Sec. 6: ~0.041 mm^2 at 14 nm, reusing the HS power switch).
    AREA_OVERHEAD_MM2 = 0.041

    def __init__(
        self,
        name: str = "hybrid_vr",
        ivr: Optional[IntegratedVoltageRegulator] = None,
        ldo: Optional[LowDropoutRegulator] = None,
        mode: PdnMode = PdnMode.IVR_MODE,
    ):
        self.name = name
        self._ivr = ivr if ivr is not None else default_ivr(f"{name}.ivr")
        self._ldo = ldo if ldo is not None else default_ldo(f"{name}.ldo")
        self._mode = mode

    @property
    def mode(self) -> PdnMode:
        """The regulator's current operating mode."""
        return self._mode

    @property
    def ivr(self) -> IntegratedVoltageRegulator:
        """The IVR personality of the hybrid regulator."""
        return self._ivr

    @property
    def ldo(self) -> LowDropoutRegulator:
        """The LDO personality of the hybrid regulator."""
        return self._ldo

    def set_mode(self, mode: PdnMode) -> None:
        """Reconfigure the regulator for ``mode``.

        In hardware this happens only while the compute domains are idle (the
        mode-switch flow of Sec. 6); the timing is enforced by
        :class:`repro.core.mode_switching.ModeSwitchController`, not here.
        """
        self._mode = mode

    def efficiency(self, point: RegulatorOperatingPoint) -> float:
        """Power-conversion efficiency of the active personality at ``point``."""
        if self._mode is PdnMode.IVR_MODE:
            return self._ivr.efficiency(point)
        self._ldo.set_mode(self._ldo.mode_for(point))
        return self._ldo.efficiency(point)

    def input_power_w(self, point: RegulatorOperatingPoint) -> float:
        """Power drawn from ``V_IN`` to deliver ``point``'s output power."""
        if self._mode is PdnMode.IVR_MODE:
            return self._ivr.input_power_w(point)
        self._ldo.set_mode(self._ldo.mode_for(point))
        return self._ldo.input_power_w(point)

    def required_input_voltage_v(self, output_voltage_v: float) -> float:
        """The ``V_IN`` level this regulator needs to produce ``output_voltage_v``.

        In IVR-Mode the shared rail stays at the buck input voltage (~1.8 V);
        in LDO-Mode it must be at least the requested output voltage.
        """
        if output_voltage_v <= 0.0:
            raise UnsupportedOperatingPointError(
                f"{self.name}: output voltage must be positive, got {output_voltage_v!r}"
            )
        if self._mode is PdnMode.IVR_MODE:
            return 1.8
        return output_voltage_v

    def idle_power_w(self) -> float:
        """Quiescent power of the active personality with an idle load."""
        if self._mode is PdnMode.IVR_MODE:
            return self._ivr.idle_power_w()
        return 0.0
