"""Runtime estimation of the mode-prediction algorithm's inputs.

Algorithm 1 needs four inputs every evaluation interval: the configured TDP,
the application ratio, the workload type, and the package power state.
Sec. 6 describes where each comes from in a real part:

* the runtime-configured TDP (cTDP) is always known to the PMU,
* the AR is estimated from calibrated activity sensors in every domain,
* the workload type is classified from which domains are active, and
* the package power state is known because the PMU performs the transitions.

:class:`RuntimeInputEstimator` packages those estimates, either live from a
:class:`~repro.soc.pmu.PowerManagementUnit` (full-system simulation) or
directly from an :class:`~repro.pdn.base.OperatingConditions` operating point
(analytic studies, where the "estimate" is exact).
"""

from __future__ import annotations

from typing import Optional

from repro.pdn.base import OperatingConditions
from repro.soc.pmu import PmuTelemetry, PowerManagementUnit
from repro.util.errors import ConfigurationError


class RuntimeInputEstimator:
    """Produces :class:`PmuTelemetry` snapshots for the mode predictor."""

    def __init__(self, pmu: Optional[PowerManagementUnit] = None):
        self._pmu = pmu

    @property
    def pmu(self) -> Optional[PowerManagementUnit]:
        """The PMU this estimator reads from, when attached to one."""
        return self._pmu

    def estimate(self) -> PmuTelemetry:
        """Live estimate from the attached PMU's sensors and state machines."""
        if self._pmu is None:
            raise ConfigurationError(
                "no PMU attached; use estimate_from_conditions for analytic studies"
            )
        return self._pmu.telemetry()

    @staticmethod
    def estimate_from_conditions(conditions: OperatingConditions) -> PmuTelemetry:
        """Exact telemetry derived from an analytic operating point.

        Used by the PDNspot experiments, where the operating point is known by
        construction, so the estimator is an oracle.  The paper's runtime
        sensors approximate the same quantities within a few percent; the
        sensitivity of the predictor to estimation error is explored by the
        ``adaptive_runtime`` example and the robustness tests.
        """
        return PmuTelemetry(
            tdp_w=conditions.tdp_w,
            application_ratio=conditions.application_ratio,
            workload_type=conditions.workload_type,
            power_state=conditions.power_state,
        )
