"""Calibration of the FlexWatts mode-prediction tables.

A shipping product would populate the PMU's ETEE curve tables from pre-silicon
power models and post-silicon characterisation.  Here the tables are populated
from PDNspot itself: the hybrid PDN is evaluated with each mode forced across
a grid of (workload type, TDP, application ratio) operating points and across
the package power states, and the resulting ETEE curves are stored in an
:class:`~repro.core.mode_predictor.EteeCurveSet` per mode.

The grid defaults match the paper's evaluation space: TDPs of 4--50 W,
application ratios of 40--80 %, the three active workload types, and the
battery-life power states C0_MIN and C2--C8.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.hybrid_vr import PdnMode
from repro.core.mode_predictor import EteeCurveSet, ModePredictor
from repro.pdn.base import OperatingConditions
from repro.power.domains import WorkloadType
from repro.power.power_states import BATTERY_LIFE_STATES, PackageCState

#: Default TDP grid (watts) -- the TDP levels evaluated throughout the paper.
DEFAULT_TDP_GRID_W: Sequence[float] = (4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0)

#: Default application-ratio grid -- the 40--80 % range of Fig. 4.
DEFAULT_AR_GRID: Sequence[float] = (0.40, 0.50, 0.56, 0.60, 0.70, 0.80)

#: Workload types with active (C0) ETEE curves.
ACTIVE_WORKLOAD_TYPES: Sequence[WorkloadType] = (
    WorkloadType.CPU_SINGLE_THREAD,
    WorkloadType.CPU_MULTI_THREAD,
    WorkloadType.GRAPHICS,
)

#: Reference TDP at which the power-state curves are characterised.  Package
#: C-state power is nearly TDP-independent (Sec. 7.1), so one curve suffices.
POWER_STATE_REFERENCE_TDP_W = 18.0


def calibrate_mode_curves(
    flexwatts,
    mode: PdnMode,
    tdp_grid_w: Sequence[float] = DEFAULT_TDP_GRID_W,
    ar_grid: Sequence[float] = DEFAULT_AR_GRID,
    power_states: Sequence[PackageCState] = BATTERY_LIFE_STATES,
) -> EteeCurveSet:
    """Build the ETEE curve set of one hybrid-PDN mode.

    Parameters
    ----------
    flexwatts:
        The :class:`~repro.core.flexwatts.FlexWattsPdn` instance to
        characterise (its Table-2 parameters are what get baked into the
        tables).
    mode:
        The hybrid-PDN mode to characterise.
    tdp_grid_w / ar_grid / power_states:
        The characterisation grid.
    """
    curves = EteeCurveSet()
    for workload_type in ACTIVE_WORKLOAD_TYPES:
        for tdp_w in tdp_grid_w:
            etees = []
            for ar in ar_grid:
                conditions = OperatingConditions.for_active_workload(
                    tdp_w=tdp_w, application_ratio=ar, workload_type=workload_type
                )
                etees.append(flexwatts.evaluate_in_mode(conditions, mode).etee)
            curves.add_active_curve(workload_type, tdp_w, ar_grid, etees)
    for state in power_states:
        conditions = OperatingConditions.for_power_state(
            POWER_STATE_REFERENCE_TDP_W, state
        )
        curves.add_power_state_etee(
            state, flexwatts.evaluate_in_mode(conditions, mode).etee
        )
    return curves


def build_default_predictor(
    flexwatts,
    tdp_grid_w: Sequence[float] = DEFAULT_TDP_GRID_W,
    ar_grid: Sequence[float] = DEFAULT_AR_GRID,
    power_states: Optional[Sequence[PackageCState]] = None,
) -> ModePredictor:
    """Build the Algorithm-1 predictor for a FlexWatts instance."""
    states = tuple(power_states) if power_states is not None else BATTERY_LIFE_STATES
    ivr_curves = calibrate_mode_curves(
        flexwatts, PdnMode.IVR_MODE, tdp_grid_w, ar_grid, states
    )
    ldo_curves = calibrate_mode_curves(
        flexwatts, PdnMode.LDO_MODE, tdp_grid_w, ar_grid, states
    )
    return ModePredictor(ivr_curves=ivr_curves, ldo_curves=ldo_curves)
