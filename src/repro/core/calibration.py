"""Calibration of the FlexWatts mode-prediction tables.

A shipping product would populate the PMU's ETEE curve tables from pre-silicon
power models and post-silicon characterisation.  Here the tables are populated
from PDNspot itself: the hybrid PDN is evaluated with each mode forced across
a grid of (workload type, TDP, application ratio) operating points and across
the package power states, and the resulting ETEE curves are stored in an
:class:`~repro.core.mode_predictor.EteeCurveSet` per mode.

The grid defaults match the paper's evaluation space: TDPs of 4--50 W,
application ratios of 40--80 %, the three active workload types, and the
battery-life power states C0_MIN and C2--C8.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional, Sequence

from repro.core.hybrid_vr import PdnMode
from repro.core.mode_predictor import EteeCurveSet, ModePredictor
from repro.obs import trace as obs_trace
from repro.obs.metrics import METRICS
from repro.pdn.base import OperatingConditions
from repro.power.domains import WorkloadType
from repro.power.power_states import BATTERY_LIFE_STATES, PackageCState

#: Default TDP grid (watts) -- the TDP levels evaluated throughout the paper.
DEFAULT_TDP_GRID_W: Sequence[float] = (4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0)

#: Default application-ratio grid -- the 40--80 % range of Fig. 4.
DEFAULT_AR_GRID: Sequence[float] = (0.40, 0.50, 0.56, 0.60, 0.70, 0.80)

#: Workload types with active (C0) ETEE curves.
ACTIVE_WORKLOAD_TYPES: Sequence[WorkloadType] = (
    WorkloadType.CPU_SINGLE_THREAD,
    WorkloadType.CPU_MULTI_THREAD,
    WorkloadType.GRAPHICS,
)

#: Reference TDP at which the power-state curves are characterised.  Package
#: C-state power is nearly TDP-independent (Sec. 7.1), so one curve suffices.
POWER_STATE_REFERENCE_TDP_W = 18.0

#: How many mode-curve calibrations this process has run (each hybrid PDN
#: instance calibrates once per mode, lazily, on first predictor use).
_CALIBRATIONS = METRICS.counter("flexwatts.calibrations")


def calibrate_mode_curves(
    flexwatts,
    mode: PdnMode,
    tdp_grid_w: Sequence[float] = DEFAULT_TDP_GRID_W,
    ar_grid: Sequence[float] = DEFAULT_AR_GRID,
    power_states: Sequence[PackageCState] = BATTERY_LIFE_STATES,
) -> EteeCurveSet:
    """Build the ETEE curve set of one hybrid-PDN mode.

    Parameters
    ----------
    flexwatts:
        The :class:`~repro.core.flexwatts.FlexWattsPdn` instance to
        characterise (its Table-2 parameters are what get baked into the
        tables).
    mode:
        The hybrid-PDN mode to characterise.
    tdp_grid_w / ar_grid / power_states:
        The characterisation grid.
    """
    conditions = _calibration_conditions(
        tuple(tdp_grid_w), tuple(ar_grid), tuple(power_states)
    )
    _CALIBRATIONS.inc()
    with obs_trace.span("flexwatts.calibrate", category="calibration",
                        mode=mode.value, points=len(conditions)):
        evaluations = _evaluate_in_mode_batch(flexwatts, mode, conditions)
    etee_iter = iter(evaluations)
    curves = EteeCurveSet()
    for workload_type in ACTIVE_WORKLOAD_TYPES:
        for tdp_w in tdp_grid_w:
            etees = [next(etee_iter).etee for _ in ar_grid]
            curves.add_active_curve(workload_type, tdp_w, ar_grid, etees)
    for state in power_states:
        curves.add_power_state_etee(state, next(etee_iter).etee)
    return curves


@lru_cache(maxsize=8)
def _calibration_conditions(tdp_grid_w, ar_grid, power_states):
    """The characterisation grid's operating points, built once per grid.

    Operating points describe the workload, not the PDN: every hybrid
    instance calibrated over the same grid -- both of its modes, and any
    number of parameter-override variants -- shares one conditions list.
    """
    active = [
        OperatingConditions.for_active_workload(
            tdp_w=tdp_w, application_ratio=ar, workload_type=workload_type
        )
        for workload_type in ACTIVE_WORKLOAD_TYPES
        for tdp_w in tdp_grid_w
        for ar in ar_grid
    ]
    states = [
        OperatingConditions.for_power_state(POWER_STATE_REFERENCE_TDP_W, state)
        for state in power_states
    ]
    return active + states


def _evaluate_in_mode_batch(flexwatts, mode: PdnMode, conditions):
    """Forced-mode evaluations for a calibration grid, vectorized when possible.

    The columnar path returns results bit-identical to ``evaluate_in_mode``
    per point (it is gated by the equivalence suite), so the stored ETEE
    curves are the same either way -- the batch just makes cold-start
    calibration cheap.  Falls back per point when the instance is patched or
    the batch is rejected.
    """
    # Imported lazily: repro.pdn.columnar lazily imports this package in the
    # other direction, and neither import may run at module-import time.
    from repro.pdn.columnar import evaluate_columns

    results = evaluate_columns(flexwatts, conditions, mode=mode)
    if results is not None and all(r is not None for r in results):
        return results
    return [flexwatts.evaluate_in_mode(c, mode) for c in conditions]


def build_default_predictor(
    flexwatts,
    tdp_grid_w: Sequence[float] = DEFAULT_TDP_GRID_W,
    ar_grid: Sequence[float] = DEFAULT_AR_GRID,
    power_states: Optional[Sequence[PackageCState]] = None,
) -> ModePredictor:
    """Build the Algorithm-1 predictor for a FlexWatts instance."""
    states = tuple(power_states) if power_states is not None else BATTERY_LIFE_STATES
    ivr_curves = calibrate_mode_curves(
        flexwatts, PdnMode.IVR_MODE, tdp_grid_w, ar_grid, states
    )
    ldo_curves = calibrate_mode_curves(
        flexwatts, PdnMode.LDO_MODE, tdp_grid_w, ar_grid, states
    )
    return ModePredictor(ivr_curves=ivr_curves, ldo_curves=ldo_curves)
