"""The FlexWatts hybrid adaptive PDN model.

FlexWatts (Sec. 6) attaches hybrid IVR/LDO regulators -- behind one shared
board ``V_IN`` regulator -- to the wide-power compute domains (cores, LLC,
graphics), and dedicated single-stage board regulators to the narrow-power SA
and IO domains.  At runtime it switches the hybrid regulators between
IVR-Mode and LDO-Mode using the Algorithm-1 predictor, paying the ~94 us
mode-switch flow each time the selected mode changes.

Electrically:

* **IVR-Mode** is the I+MBVR topology (``V_IN`` at ~1.8 V, buck IVRs), with a
  slightly higher input load-line because the routing is shared with the LDO
  personality (``flexwatts_loadline_scale`` in Table-2 parameters).
* **LDO-Mode** is the LDO topology (``V_IN`` at the maximum compute voltage,
  linear regulators/bypass), with the same shared-routing load-line penalty.

This model therefore *reuses* the compute-side evaluations of
:class:`~repro.pdn.imbvr.IMbvrPdn` and :class:`~repro.pdn.ldo.LdoPdn`, which
guarantees the "FlexWatts tracks the better of IVR and LDO minus a small
load-line penalty" behaviour the paper reports, rather than re-deriving it.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional

from repro.core.hybrid_vr import PdnMode
from repro.core.mode_switching import ModeSwitchController
from repro.core.runtime_estimator import RuntimeInputEstimator
from repro.pdn.base import OperatingConditions, PdnEvaluation, PowerDeliveryNetwork
from repro.pdn.imbvr import IMbvrPdn
from repro.pdn.ldo import LdoPdn
from repro.power.parameters import PdnTechnologyParameters
from repro.soc.pmu import PmuTelemetry
from repro.util.validation import require_positive


class FlexWattsPdn(PowerDeliveryNetwork):
    """Power- and workload-aware hybrid adaptive PDN (the paper's proposal)."""

    name = "FlexWatts"

    def __init__(
        self,
        parameters: Optional[PdnTechnologyParameters] = None,
        predictor=None,
        switch_controller: Optional[ModeSwitchController] = None,
    ):
        super().__init__(parameters)
        scale = self.parameters.flexwatts_loadline_scale
        self._ivr_mode_model = IMbvrPdn(self.parameters, input_loadline_scale=scale)
        self._ldo_mode_model = LdoPdn(self.parameters, input_loadline_scale=scale)
        self._predictor = predictor
        self._switch_controller = (
            switch_controller if switch_controller is not None else ModeSwitchController()
        )

    # ------------------------------------------------------------------ #
    # Mode handling
    # ------------------------------------------------------------------ #
    @property
    def switch_controller(self) -> ModeSwitchController:
        """The mode-switch controller tracking the hybrid PDN's current mode."""
        return self._switch_controller

    @property
    def predictor(self):
        """The Algorithm-1 predictor (built lazily on first use)."""
        if self._predictor is None:
            from repro.core.calibration import build_default_predictor

            self._predictor = build_default_predictor(self)
        return self._predictor

    def predict_mode(self, conditions: OperatingConditions) -> PdnMode:
        """Mode Algorithm 1 selects for the given operating point."""
        telemetry = RuntimeInputEstimator.estimate_from_conditions(conditions)
        return self.predict_mode_from_telemetry(telemetry)

    def predict_mode_from_telemetry(self, telemetry: PmuTelemetry) -> PdnMode:
        """Mode Algorithm 1 selects for the given PMU telemetry."""
        return self.predictor.predict(telemetry)

    def oracle_mode(self, conditions: OperatingConditions) -> PdnMode:
        """Mode an oracle (evaluating both modes exactly) would select.

        Used to quantify how close the table-driven predictor gets to the
        best achievable choice.
        """
        ivr_result = self.evaluate_in_mode(conditions, PdnMode.IVR_MODE)
        ldo_result = self.evaluate_in_mode(conditions, PdnMode.LDO_MODE)
        if ivr_result.supply_power_w <= ldo_result.supply_power_w:
            return PdnMode.IVR_MODE
        return PdnMode.LDO_MODE

    # ------------------------------------------------------------------ #
    # ETEE model
    # ------------------------------------------------------------------ #
    def evaluate_in_mode(
        self, conditions: OperatingConditions, mode: PdnMode
    ) -> PdnEvaluation:
        """Evaluate the hybrid PDN with the mode forced to ``mode``."""
        side = self._ivr_mode_model if mode is PdnMode.IVR_MODE else self._ldo_mode_model
        result = side.evaluate(conditions)
        return dataclasses.replace(result, pdn_name=f"{self.name}[{mode.value}]")

    def evaluate(
        self, conditions: OperatingConditions, mode: Optional[PdnMode] = None
    ) -> PdnEvaluation:
        """Evaluate FlexWatts at ``conditions``.

        When ``mode`` is omitted the Algorithm-1 predictor chooses it, exactly
        as the PMU firmware would at runtime.
        """
        selected = mode if mode is not None else self.predict_mode(conditions)
        result = self.evaluate_in_mode(conditions, selected)
        return dataclasses.replace(result, pdn_name=self.name)

    # ------------------------------------------------------------------ #
    # Cost-model inputs
    # ------------------------------------------------------------------ #
    def iccmax_requirements_a(self, tdp_w: float) -> Dict[str, float]:
        """Off-chip Iccmax: shared V_IN plus the SA and IO regulators.

        The shared ``V_IN`` regulator is sized for whichever mode needs more
        current at this TDP.  High-power (high-current) workloads run in
        IVR-Mode, so at high TDPs the requirement matches the IVR PDN's -- the
        property that keeps FlexWatts' BOM/area comparable to IVR (Sec. 7.1).
        """
        require_positive(tdp_w, "tdp_w")
        ivr_mode = self._ivr_mode_model.iccmax_requirements_a(tdp_w)
        ldo_mode = self._ldo_mode_model.iccmax_requirements_a(tdp_w)
        # In LDO-Mode the hybrid PDN only ever carries light-load currents:
        # heavy workloads trigger a switch to IVR-Mode before the current
        # ramps (the predictor evaluates every 10 ms and Turbo requests are
        # themselves PMU-mediated).  The V_IN sizing therefore follows the
        # IVR-Mode requirement, while SA/IO follow the dedicated-rail sizing.
        return {
            "V_IN": ivr_mode["V_IN"],
            "V_SA": ldo_mode["V_SA"],
            "V_IO": ldo_mode["V_IO"],
        }

    def describe(self) -> str:
        return (
            "FlexWatts PDN: hybrid IVR/LDO regulators for the compute domains "
            "behind a shared V_IN, dedicated board rails for SA/IO, with "
            "Algorithm-1 mode prediction"
        )
