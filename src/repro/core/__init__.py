"""FlexWatts: the paper's contribution.

FlexWatts is a power- and workload-aware hybrid adaptive PDN (Sec. 6).  Its
three key ideas map onto the modules of this package:

1. **Hybrid regulators that share resources** --
   :mod:`repro.core.hybrid_vr` models the dual-mode on-chip regulator built
   from the IVR's high-side power switch, which can operate either as an IVR
   (IVR-Mode) or as an LDO/power-gate (LDO-Mode);
   :mod:`repro.core.flexwatts` assembles the full PDN (hybrid regulators for
   the compute domains, dedicated board regulators for SA/IO).
2. **Static off-chip regulators for narrow-power domains** -- handled inside
   :class:`~repro.core.flexwatts.FlexWattsPdn` by reusing the SA/IO rails of
   the LDO PDN model.
3. **A runtime mode-prediction algorithm** --
   :mod:`repro.core.mode_predictor` implements Algorithm 1 with the
   firmware-style ETEE curve tables, :mod:`repro.core.calibration` populates
   those tables, :mod:`repro.core.runtime_estimator` derives the algorithm's
   inputs from PMU telemetry, and :mod:`repro.core.mode_switching` models the
   voltage-noise-free switching flow and its latency/area overheads.
"""

from repro.core.hybrid_vr import HybridVoltageRegulator, PdnMode
from repro.core.flexwatts import FlexWattsPdn
from repro.core.mode_predictor import EteeCurveSet, ModePredictor
from repro.core.calibration import build_default_predictor
from repro.core.mode_switching import ModeSwitchController, ModeSwitchOverheads
from repro.core.runtime_estimator import RuntimeInputEstimator

__all__ = [
    "PdnMode",
    "HybridVoltageRegulator",
    "FlexWattsPdn",
    "EteeCurveSet",
    "ModePredictor",
    "build_default_predictor",
    "ModeSwitchController",
    "ModeSwitchOverheads",
    "RuntimeInputEstimator",
]
