"""FlexWatts' runtime mode-prediction algorithm (Algorithm 1).

The predictor stores two sets of ETEE curves inside the PMU firmware -- one
describing the hybrid PDN in IVR-Mode and one in LDO-Mode.  Each set is a
multi-dimensional table: for every (workload type, TDP) pair an ETEE-vs-AR
curve, plus one ETEE value per package power state for the battery-life
states.  Every evaluation interval (~10 ms) the PMU estimates the algorithm's
inputs (TDP, AR, workload type, power state), looks up the expected ETEE of
each mode, and selects the mode with the higher ETEE::

    IVR_ETEE = estimate_IVR_ETEE(TDP, AR, WL_TYPE, PS)
    LDO_ETEE = estimate_LDO_ETEE(TDP, AR, WL_TYPE, PS)
    return IVR-Mode if IVR_ETEE >= LDO_ETEE else LDO-Mode

The curve tables are populated by :mod:`repro.core.calibration`, mirroring how
a real product would populate them from pre-silicon models or post-silicon
characterisation.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.power.domains import WorkloadType
from repro.power.power_states import PackageCState
from repro.soc.pmu import PmuTelemetry
from repro.core.hybrid_vr import PdnMode
from repro.util.errors import ConfigurationError, ModelDomainError
from repro.util.interpolate import LinearTable1D
from repro.util.validation import require_fraction, require_positive


@dataclass
class EteeCurveSet:
    """Firmware-style ETEE curve tables for one hybrid-PDN mode.

    The active-workload tables are keyed by workload type and TDP; queries at
    TDPs between two stored curves interpolate linearly between them, and
    queries outside the stored range clamp to the nearest curve (the same
    behaviour a PMU table lookup has).
    """

    #: workload type -> sorted list of (tdp_w, AR->ETEE curve).
    active_curves: Dict[WorkloadType, List[Tuple[float, LinearTable1D]]] = field(
        default_factory=dict
    )
    #: package power state -> ETEE.
    power_state_etee: Dict[PackageCState, float] = field(default_factory=dict)

    def add_active_curve(
        self,
        workload_type: WorkloadType,
        tdp_w: float,
        application_ratios: Sequence[float],
        etees: Sequence[float],
    ) -> None:
        """Store the ETEE-vs-AR curve for (``workload_type``, ``tdp_w``)."""
        require_positive(tdp_w, "tdp_w")
        curve = LinearTable1D(application_ratios, etees)
        curves = self.active_curves.setdefault(workload_type, [])
        curves.append((tdp_w, curve))
        curves.sort(key=lambda item: item[0])

    def add_power_state_etee(self, state: PackageCState, etee: float) -> None:
        """Store the ETEE of a package power state."""
        self.power_state_etee[state] = require_fraction(etee, "etee")

    def etee(
        self,
        tdp_w: float,
        application_ratio: float,
        workload_type: WorkloadType,
        power_state: PackageCState,
    ) -> float:
        """Look up the expected ETEE for the given Algorithm-1 inputs."""
        if power_state.is_idle or workload_type is WorkloadType.IDLE:
            return self._power_state_lookup(power_state)
        return self._active_lookup(tdp_w, application_ratio, workload_type)

    # ------------------------------------------------------------------ #
    # Internal lookups
    # ------------------------------------------------------------------ #
    def _power_state_lookup(self, power_state: PackageCState) -> float:
        if power_state in self.power_state_etee:
            return self.power_state_etee[power_state]
        # C0/C0_MIN idle-classified workloads fall back to the shallowest
        # stored idle state.
        if self.power_state_etee:
            shallowest = sorted(self.power_state_etee, key=lambda state: state.value)[0]
            return self.power_state_etee[shallowest]
        raise ModelDomainError("no power-state ETEE curves stored in this curve set")

    def _active_lookup(
        self, tdp_w: float, application_ratio: float, workload_type: WorkloadType
    ) -> float:
        if workload_type not in self.active_curves or not self.active_curves[workload_type]:
            raise ModelDomainError(
                f"no ETEE curves stored for workload type {workload_type}"
            )
        curves = self.active_curves[workload_type]
        tdps = [tdp for tdp, _ in curves]
        if tdp_w <= tdps[0]:
            return curves[0][1](application_ratio)
        if tdp_w >= tdps[-1]:
            return curves[-1][1](application_ratio)
        hi = bisect_left(tdps, tdp_w)
        lo = hi - 1
        low_tdp, low_curve = curves[lo]
        high_tdp, high_curve = curves[hi]
        weight = (tdp_w - low_tdp) / (high_tdp - low_tdp)
        return low_curve(application_ratio) * (1.0 - weight) + high_curve(
            application_ratio
        ) * weight

    def stored_tdps_w(self, workload_type: WorkloadType) -> List[float]:
        """TDP grid points stored for ``workload_type`` (for introspection)."""
        return [tdp for tdp, _ in self.active_curves.get(workload_type, [])]


class ModePredictor:
    """Algorithm 1: choose the hybrid-PDN mode with the higher expected ETEE."""

    def __init__(self, ivr_curves: EteeCurveSet, ldo_curves: EteeCurveSet):
        if not ivr_curves.active_curves and not ivr_curves.power_state_etee:
            raise ConfigurationError("the IVR-Mode curve set is empty")
        if not ldo_curves.active_curves and not ldo_curves.power_state_etee:
            raise ConfigurationError("the LDO-Mode curve set is empty")
        self._ivr_curves = ivr_curves
        self._ldo_curves = ldo_curves

    @property
    def ivr_curves(self) -> EteeCurveSet:
        """The stored IVR-Mode ETEE curves."""
        return self._ivr_curves

    @property
    def ldo_curves(self) -> EteeCurveSet:
        """The stored LDO-Mode ETEE curves."""
        return self._ldo_curves

    def estimate_etee(self, mode: PdnMode, telemetry: PmuTelemetry) -> float:
        """Expected ETEE of ``mode`` for the given telemetry."""
        curves = self._ivr_curves if mode is PdnMode.IVR_MODE else self._ldo_curves
        return curves.etee(
            tdp_w=telemetry.tdp_w,
            application_ratio=telemetry.application_ratio,
            workload_type=telemetry.workload_type,
            power_state=telemetry.power_state,
        )

    def predict(self, telemetry: PmuTelemetry) -> PdnMode:
        """Algorithm 1: return the mode with the higher expected ETEE.

        Ties resolve to IVR-Mode, exactly as in the paper's pseudocode
        (``if IVR_ETEE >= LDO_ETEE return IVR-Mode``).
        """
        ivr_etee = self.estimate_etee(PdnMode.IVR_MODE, telemetry)
        ldo_etee = self.estimate_etee(PdnMode.LDO_MODE, telemetry)
        if ivr_etee >= ldo_etee:
            return PdnMode.IVR_MODE
        return PdnMode.LDO_MODE

    def predicted_gain(self, telemetry: PmuTelemetry) -> float:
        """Expected ETEE advantage of the chosen mode over the other one."""
        ivr_etee = self.estimate_etee(PdnMode.IVR_MODE, telemetry)
        ldo_etee = self.estimate_etee(PdnMode.LDO_MODE, telemetry)
        return abs(ivr_etee - ldo_etee)
