"""Run every experiment and collect the formatted outputs.

``python -m repro.experiments.runner`` prints the full set of regenerated
tables (one section per paper figure); ``run_all_experiments`` returns them as
a dictionary so tests and the benchmark harness can pick individual sections.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.analysis.executor import ExecutorLike
from repro.analysis.pdnspot import PdnSpot
from repro.experiments import (
    fig2_performance_model,
    fig3_vr_efficiency,
    fig4_validation,
    fig5_loss_breakdown,
    fig7_spec_4w,
    fig8_evaluation,
    optimize_pdn,
    sim_scenarios,
)


def run_all_experiments(
    include_validation: bool = True,
    spot: Optional[PdnSpot] = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> Dict[str, str]:
    """Regenerate every figure and return the formatted tables keyed by id.

    Parameters
    ----------
    include_validation:
        The Fig. 4 grid is the slowest experiment (it validates three PDNs over
        a synthetic trace population); set to ``False`` for a quick pass.
    spot:
        Optional shared :class:`PdnSpot`; by default one instance (and hence
        one evaluation cache) is created here and reused by every figure that
        evaluates PDN operating points, so grid points shared between figures
        are computed once.
    executor / jobs:
        Optional parallel execution backend (see
        :mod:`repro.analysis.executor`), forwarded to every figure driver
        that evaluates PDN grids; the figure *outputs* are identical either
        way, only the evaluation schedule changes.
    cache_dir:
        Optional persistent cache directory (see :mod:`repro.cache`): the
        shared analytic engine and the simulation/optimization engines
        attach it as their disk tier, so a second ``repro figures`` run --
        in any process -- replays every grid point from disk.  Ignored when
        a prebuilt ``spot`` is passed (the spot owns its own tiers), except
        by the simulation engine, which is always built here.
    """
    if spot is None:
        spot = PdnSpot(disk_cache=cache_dir)
    outputs: Dict[str, str] = {
        "fig2a": fig2_performance_model.format_figure2a(),
        "fig2b": fig2_performance_model.format_figure2b(),
        "fig3": fig3_vr_efficiency.format_figure3(),
        "fig5": fig5_loss_breakdown.format_figure5(spot=spot, executor=executor, jobs=jobs),
        "fig7": fig7_spec_4w.format_figure7(spot=spot, executor=executor, jobs=jobs),
        "fig8": fig8_evaluation.format_figure8(spot=spot, executor=executor, jobs=jobs),
        "sim": sim_scenarios.format_sim_scenarios(
            executor=executor, jobs=jobs, cache_dir=cache_dir
        ),
        "optimize": optimize_pdn.format_optimize(
            spot=spot, executor=executor, jobs=jobs, cache_dir=cache_dir
        ),
    }
    if include_validation:
        outputs["fig4"] = fig4_validation.format_figure4(
            spot=spot, executor=executor, jobs=jobs
        )
    return outputs


def main() -> None:
    """Print every regenerated figure."""
    outputs = run_all_experiments()
    for key in sorted(outputs):
        print(f"===== {key} =====")
        print(outputs[key])
        print()


if __name__ == "__main__":
    main()
