"""Experiment drivers: one module per paper table/figure.

Each module exposes a function that regenerates the data behind one figure of
the paper and a ``format_*`` helper that renders it as a plain-text table.
The benchmark harness under ``benchmarks/`` calls these drivers (so every
figure has a ``pytest-benchmark`` target), and ``EXPERIMENTS.md`` records the
paper-versus-measured comparison for each.

==========================  ====================================================
Module                      Paper artifact
==========================  ====================================================
``fig2_performance_model``  Fig. 2(a) frequency sensitivity, Fig. 2(b) budget
                            breakdown
``fig3_vr_efficiency``      Fig. 3 off-chip VR efficiency curves
``fig4_validation``         Fig. 4(a-j) PDNspot validation grid
``fig5_loss_breakdown``     Fig. 5 PDN loss breakdown at 4/18/50 W
``fig7_spec_4w``            Fig. 7 per-benchmark SPEC CPU2006 performance @4 W
``fig8_evaluation``         Fig. 8(a-e) SPEC/3DMark/battery-life/BOM/area
``sim_scenarios``           Scenario simulations across the five PDNs
``optimize_pdn``            The design conclusion as a Pareto/knee result
``runner``                  Runs every experiment and collects the outputs
==========================  ====================================================
"""

from repro.experiments import (
    fig2_performance_model,
    fig3_vr_efficiency,
    fig4_validation,
    fig5_loss_breakdown,
    fig7_spec_4w,
    fig8_evaluation,
    optimize_pdn,
)
from repro.experiments.runner import run_all_experiments

__all__ = [
    "fig2_performance_model",
    "fig3_vr_efficiency",
    "fig4_validation",
    "fig5_loss_breakdown",
    "fig7_spec_4w",
    "fig8_evaluation",
    "optimize_pdn",
    "run_all_experiments",
]
