"""Experiment E-OPT: the paper's design conclusion as a Pareto result.

The paper's evaluation (Figs. 7-8) compares the competing PDN topologies on
energy efficiency, performance, BOM cost and board area, and concludes that
the hybrid FlexWatts design is the best joint trade-off.  This experiment
derives that conclusion automatically with the :mod:`repro.optimize`
subsystem: an exhaustive grid search over the five topologies under the
default objectives must place FlexWatts on the Pareto front -- and make it
the knee-point (balanced) pick -- over the IVR/MBVR/LDO baselines.

Shapes the reproduction must preserve: FlexWatts and the IVR baseline are
Pareto-optimal (IVR anchors the cost corner, FlexWatts the efficiency/
performance corner), MBVR and LDO are dominated, and the knee point is
FlexWatts.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.executor import ExecutorLike
from repro.analysis.pdnspot import PdnSpot
from repro.analysis.reporting import format_table
from repro.optimize import (
    CandidateEvaluator,
    DesignSpace,
    OptimizationOutcome,
    resolve_objectives,
    run_optimization,
)

#: The topology axis of the default search (presentation order).
OPTIMIZE_PDNS: Sequence[str] = ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")


def default_design_space() -> DesignSpace:
    """The paper's competing topologies as a design space."""
    return DesignSpace.over_pdns(OPTIMIZE_PDNS, name="pdn-topology-comparison")


def optimize_outcome(
    spot: Optional[PdnSpot] = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> OptimizationOutcome:
    """Exhaustive search of the topology space under the default objectives.

    Pass the experiment runner's shared :class:`PdnSpot` so the search
    resolves the operating points it shares with the fig7/fig8 sweeps from
    the warm memo cache instead of recomputing them.  ``cache_dir`` attaches
    the persistent disk tier (see :mod:`repro.cache`); with a shared spot it
    covers the simulation engine behind the energy/power objectives.
    """
    evaluator = (
        CandidateEvaluator(resolve_objectives(), spot=spot, cache_dir=cache_dir)
        if spot is not None
        else None
    )
    return run_optimization(
        default_design_space(),
        strategy="grid",
        evaluator=evaluator,
        executor=executor,
        jobs=jobs,
        cache_dir=cache_dir if evaluator is None else None,
    )


def format_optimize(
    spot: Optional[PdnSpot] = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> str:
    """Render the search outcome plus the front / knee-point conclusion."""
    outcome = optimize_outcome(
        spot=spot, executor=executor, jobs=jobs, cache_dir=cache_dir
    )
    headers = ["PDN"] + [objective.column for objective in outcome.objectives] + [
        "pareto", "knee",
    ]
    rows = [
        [record["pdn"]]
        + [record[objective.column] for objective in outcome.objectives]
        + [record["pareto"], record["knee"]]
        for record in outcome.results.to_records()
    ]
    front = ", ".join(str(pdn) for pdn in outcome.front.unique("pdn"))
    return (
        format_table(
            headers,
            rows,
            title="Multi-objective PDN comparison (grid search, "
            "mean over TDPs 4/18/50 W)",
        )
        + f"\n\nPareto-optimal designs: {front}"
        + f"\nKnee point (balanced pick): {outcome.knee_pdn}"
    )
