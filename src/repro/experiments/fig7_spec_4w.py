"""Experiment E-FIG7: per-benchmark SPEC CPU2006 performance at 4 W (Fig. 7).

Fig. 7 plots, for every SPEC CPU2006 benchmark, the performance of the five
PDNs (IVR, MBVR, LDO, I+MBVR, FlexWatts) at a 4 W TDP, normalised to the IVR
PDN, with the benchmarks sorted by their performance scalability.  The
headline result: MBVR, LDO and FlexWatts average >22 % higher performance than
IVR, FlexWatts trails the best static PDN by <1 %, and I+MBVR improves on IVR
by ~6 %.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.executor import ExecutorLike, parallel_requested
from repro.analysis.pdnspot import PdnSpot
from repro.analysis.reporting import format_table
from repro.pdn.base import OperatingConditions
from repro.workloads.spec_cpu2006 import SPEC_CPU2006_BENCHMARKS

#: The TDP of the Fig. 7 evaluation.
FIG7_TDP_W = 4.0

#: The PDNs compared in Fig. 7.
FIG7_PDNS: Sequence[str] = ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")


def spec_performance_at_4w(
    tdp_w: float = FIG7_TDP_W,
    pdn_names: Sequence[str] = FIG7_PDNS,
    spot: PdnSpot = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
) -> List[Dict[str, object]]:
    """Per-benchmark relative performance of each PDN at ``tdp_w``.

    Every (PDN, benchmark) point shares the cached baseline evaluation, so
    the IVR reference is computed once per benchmark instead of once per
    candidate PDN.  With a parallel ``executor`` the distinct (PDN, operating
    point) pairs behind the performance model are pre-evaluated as one batch,
    and the per-benchmark loop below runs on cache hits.
    """
    spot = spot if spot is not None else PdnSpot(pdn_names=list(pdn_names))
    if parallel_requested(executor, jobs):
        spot.evaluate_batch(
            (
                (
                    pdn_name,
                    OperatingConditions.for_active_workload(
                        tdp_w, benchmark.application_ratio, benchmark.workload_type
                    ),
                )
                for benchmark in SPEC_CPU2006_BENCHMARKS
                for pdn_name in pdn_names
            ),
            executor=executor,
            jobs=jobs,
        )
    records: List[Dict[str, object]] = []
    for benchmark in SPEC_CPU2006_BENCHMARKS:
        row: Dict[str, object] = {
            "benchmark": benchmark.name,
            "performance_scalability": benchmark.performance_scalability,
        }
        for pdn_name in pdn_names:
            result = spot.performance(pdn_name, benchmark, tdp_w)
            row[pdn_name] = result.relative_performance
        records.append(row)
    return records


def average_performance(records: List[Dict[str, object]] = None) -> Dict[str, float]:
    """Suite-average relative performance per PDN (the Fig. 7 'Average' bar)."""
    records = records if records is not None else spec_performance_at_4w()
    averages: Dict[str, float] = {}
    for pdn_name in FIG7_PDNS:
        values = [record[pdn_name] for record in records if pdn_name in record]
        averages[pdn_name] = sum(values) / len(values)
    return averages


def format_figure7(
    records: List[Dict[str, object]] = None,
    spot: PdnSpot = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
) -> str:
    """Render the Fig. 7 table (per benchmark plus the suite average)."""
    records = (
        records
        if records is not None
        else spec_performance_at_4w(spot=spot, executor=executor, jobs=jobs)
    )
    headers = ["benchmark", "perf. scal."] + list(FIG7_PDNS)
    rows = [
        [record["benchmark"], record["performance_scalability"]]
        + [record[name] for name in FIG7_PDNS]
        for record in records
    ]
    averages = average_performance(records)
    rows.append(["Average", ""] + [averages[name] for name in FIG7_PDNS])
    return format_table(
        headers,
        rows,
        title="Fig. 7 - SPEC CPU2006 performance at 4 W TDP (normalised to IVR)",
    )
