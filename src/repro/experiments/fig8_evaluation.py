"""Experiment E-FIG8: the headline evaluation (Fig. 8a-e).

Fig. 8 compares the five PDNs, normalised to IVR, on:

* (a) average SPEC CPU2006 performance across TDPs 4--50 W,
* (b) average 3DMark06 performance across TDPs 4--50 W,
* (c) average power of the four battery-life workloads,
* (d) bill of materials across TDPs, and
* (e) board area across TDPs.

Headline shapes the reproduction must preserve: FlexWatts ~ +22 % (SPEC) and
~ +25 % (3DMark06) over IVR at 4 W; the IVR/FlexWatts advantage at high TDPs;
8--11 % lower battery-life power than IVR; MBVR/LDO several times the BOM and
area of IVR while FlexWatts and I+MBVR stay comparable to IVR.

All panels evaluate through the shared :class:`PdnSpot` cache: the baseline
evaluations the performance model repeats per candidate PDN and the package
power states the four battery-life workloads share are each computed once
(pass one ``spot`` to every panel, as :func:`format_figure8` does, to share
the cache across panels too).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.comparison import normalised_metric_table
from repro.analysis.executor import ExecutorLike, parallel_requested
from repro.analysis.pdnspot import PdnSpot
from repro.analysis.reporting import format_mapping_table, format_table
from repro.pdn.base import OperatingConditions
from repro.workloads.battery_life import BATTERY_LIFE_WORKLOADS
from repro.workloads.graphics import THREEDMARK06_BENCHMARKS
from repro.workloads.spec_cpu2006 import SPEC_CPU2006_BENCHMARKS

#: The TDP levels of the Fig. 8(a)/(b)/(d)/(e) sweeps.
FIG8_TDPS_W: Sequence[float] = (4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0)

#: The PDNs compared throughout Fig. 8.
FIG8_PDNS: Sequence[str] = ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")


def _spot(pdn_names: Sequence[str] = FIG8_PDNS) -> PdnSpot:
    return PdnSpot(pdn_names=list(pdn_names))


def prewarm_figure8(
    spot: PdnSpot,
    tdps_w: Sequence[float] = FIG8_TDPS_W,
    battery_tdp_w: float = 18.0,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
) -> None:
    """Pre-evaluate every PDN operating point behind the Fig. 8 panels.

    Fig. 8 iterates over per-benchmark, per-TDP and per-power-state points
    through the performance model and the battery-life workloads; the set of
    *distinct* underlying evaluations is assembled here and dispatched as one
    (parallelisable) batch, so the panel loops afterwards run on cache hits.
    """
    points: List[Tuple[str, OperatingConditions]] = []
    names = tuple(spot.pdns)
    for benchmark in (*SPEC_CPU2006_BENCHMARKS, *THREEDMARK06_BENCHMARKS):
        for tdp_w in tdps_w:
            conditions = OperatingConditions.for_active_workload(
                tdp_w, benchmark.application_ratio, benchmark.workload_type
            )
            points.extend((name, conditions) for name in names)
    for workload in BATTERY_LIFE_WORKLOADS:
        for state, residency in workload.residencies.items():
            if residency == 0.0:
                continue
            conditions = OperatingConditions.for_power_state(battery_tdp_w, state)
            points.extend((name, conditions) for name in names)
    spot.evaluate_batch(points, executor=executor, jobs=jobs)


def spec_performance_sweep(
    tdps_w: Sequence[float] = FIG8_TDPS_W, spot: PdnSpot = None
) -> List[Dict[str, object]]:
    """Fig. 8(a): SPEC CPU2006 average performance vs TDP (normalised to IVR)."""
    spot = spot if spot is not None else _spot()
    records: List[Dict[str, object]] = []
    for tdp_w in tdps_w:
        averages = spot.compare_performance(SPEC_CPU2006_BENCHMARKS, tdp_w)
        row: Dict[str, object] = {"tdp_w": tdp_w}
        row.update(averages)
        records.append(row)
    return records


def graphics_performance_sweep(
    tdps_w: Sequence[float] = FIG8_TDPS_W, spot: PdnSpot = None
) -> List[Dict[str, object]]:
    """Fig. 8(b): 3DMark06 average performance vs TDP (normalised to IVR)."""
    spot = spot if spot is not None else _spot()
    records: List[Dict[str, object]] = []
    for tdp_w in tdps_w:
        averages = spot.compare_performance(THREEDMARK06_BENCHMARKS, tdp_w)
        row: Dict[str, object] = {"tdp_w": tdp_w}
        row.update(averages)
        records.append(row)
    return records


def battery_life_power(spot: PdnSpot = None, tdp_w: float = 18.0) -> Dict[str, Dict[str, float]]:
    """Fig. 8(c): battery-life average power normalised to IVR, per workload."""
    spot = spot if spot is not None else _spot()
    raw = spot.compare_battery_life_power(tdp_w)
    return {
        workload: normalised_metric_table(powers, reference_name="IVR", higher_is_better=False)
        for workload, powers in raw.items()
    }


def bom_sweep(
    tdps_w: Sequence[float] = FIG8_TDPS_W, spot: PdnSpot = None
) -> List[Dict[str, object]]:
    """Fig. 8(d): normalised BOM vs TDP."""
    spot = spot if spot is not None else _spot()
    records: List[Dict[str, object]] = []
    for tdp_w in tdps_w:
        row: Dict[str, object] = {"tdp_w": tdp_w}
        row.update(spot.compare_bom(tdp_w))
        records.append(row)
    return records


def board_area_sweep(
    tdps_w: Sequence[float] = FIG8_TDPS_W, spot: PdnSpot = None
) -> List[Dict[str, object]]:
    """Fig. 8(e): normalised board area vs TDP."""
    spot = spot if spot is not None else _spot()
    records: List[Dict[str, object]] = []
    for tdp_w in tdps_w:
        row: Dict[str, object] = {"tdp_w": tdp_w}
        row.update(spot.compare_board_area(tdp_w))
        records.append(row)
    return records


def _format_sweep(records: List[Dict[str, object]], title: str) -> str:
    headers = ["TDP (W)"] + list(FIG8_PDNS)
    rows = [[r["tdp_w"]] + [r[name] for name in FIG8_PDNS] for r in records]
    return format_table(headers, rows, title=title)


def format_figure8(
    spot: PdnSpot = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
) -> str:
    """Render all five Fig. 8 panels.

    With a parallel ``executor`` the distinct operating points behind all
    five panels are evaluated as one sharded batch first (see
    :func:`prewarm_figure8`); the panel construction then runs on cache hits.
    """
    spot = spot if spot is not None else _spot()
    if parallel_requested(executor, jobs):
        prewarm_figure8(spot, executor=executor, jobs=jobs)
    sections = [
        _format_sweep(
            spec_performance_sweep(spot=spot),
            "Fig. 8(a) - SPEC CPU2006 average performance (normalised to IVR)",
        ),
        _format_sweep(
            graphics_performance_sweep(spot=spot),
            "Fig. 8(b) - 3DMark06 average performance (normalised to IVR)",
        ),
        format_mapping_table(
            battery_life_power(spot=spot),
            row_key_header="workload",
            title="Fig. 8(c) - battery-life average power (normalised to IVR)",
        ),
        _format_sweep(bom_sweep(spot=spot), "Fig. 8(d) - BOM (normalised to IVR)"),
        _format_sweep(
            board_area_sweep(spot=spot), "Fig. 8(e) - board area (normalised to IVR)"
        ),
    ]
    return "\n\n".join(sections)
