"""Experiment E-FIG4: the PDNspot validation grid (Fig. 4a-j).

Fig. 4 shows, for the three commonly-used PDNs, measured versus predicted ETEE
across application ratios (40--80 %) for single-threaded, multi-programmed and
graphics traces at 4 W, 18 W and 50 W TDPs (panels a-i), plus the battery-life
power states C0_MIN and C2--C8 (panel j).  The paper reports average model
accuracies of ~99 %.

This driver regenerates the same grid: the predicted ETEE comes from the
nominal-parameter models and the "measured" reference from the perturbed-
parameter + noise reference of :class:`repro.analysis.validation`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.executor import ExecutorLike, parallel_requested
from repro.analysis.pdnspot import PdnSpot
from repro.analysis.reporting import format_table
from repro.analysis.resultset import ResultSet
from repro.analysis.study import Study, evaluate_study
from repro.analysis.validation import ValidationHarness
from repro.pdn.registry import build_pdn
from repro.power.domains import WorkloadType

#: The TDPs of the Fig. 4 panels.
FIG4_TDPS_W: Sequence[float] = (4.0, 18.0, 50.0)

#: The AR range of the Fig. 4 panels.
FIG4_ARS: Sequence[float] = (0.40, 0.50, 0.60, 0.70, 0.80)

#: The workload types of the Fig. 4 rows.
FIG4_WORKLOAD_TYPES: Sequence[WorkloadType] = (
    WorkloadType.CPU_SINGLE_THREAD,
    WorkloadType.CPU_MULTI_THREAD,
    WorkloadType.GRAPHICS,
)

#: The three commonly-used PDNs validated in Fig. 4.
FIG4_PDNS: Sequence[str] = ("IVR", "MBVR", "LDO")


def etee_grid_resultset(
    tdps_w: Sequence[float] = FIG4_TDPS_W,
    application_ratios: Sequence[float] = FIG4_ARS,
    workload_types: Sequence[WorkloadType] = FIG4_WORKLOAD_TYPES,
    pdn_names: Sequence[str] = FIG4_PDNS,
    spot: Optional[PdnSpot] = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> ResultSet:
    """The Fig. 4(a-i) predicted-ETEE grid as a :class:`ResultSet`.

    Pass a shared ``spot`` to evaluate through its memo cache (as the
    experiment runner does); standalone calls evaluate fresh PDN instances.
    ``executor`` / ``jobs`` select a parallel backend; this is the largest
    per-figure grid, so it is the first to benefit from ``--jobs``.
    ``cache_dir`` attaches the persistent disk tier (see :mod:`repro.cache`)
    to a freshly built engine; ignored when ``spot`` is passed.
    """
    study = (
        Study.builder("fig4-etee-grid")
        .workload_types(*workload_types)
        .tdps(*tdps_w)
        .application_ratios(*application_ratios)
        .pdns(*pdn_names)
        .build()
    )
    if spot is None and (cache_dir is not None or parallel_requested(executor, jobs)):
        spot = PdnSpot(pdn_names=list(pdn_names), disk_cache=cache_dir)
    if spot is not None:
        return spot.run(study, executor=executor, jobs=jobs)
    return evaluate_study(study, [build_pdn(name) for name in pdn_names])


def etee_grid(
    tdps_w: Sequence[float] = FIG4_TDPS_W,
    application_ratios: Sequence[float] = FIG4_ARS,
    workload_types: Sequence[WorkloadType] = FIG4_WORKLOAD_TYPES,
    pdn_names: Sequence[str] = FIG4_PDNS,
) -> List[Dict[str, object]]:
    """Predicted ETEE over the full Fig. 4(a-i) grid."""
    return etee_grid_resultset(
        tdps_w, application_ratios, workload_types, pdn_names
    ).to_records()


def power_state_grid_resultset(
    tdp_w: float = 18.0,
    pdn_names: Sequence[str] = FIG4_PDNS,
    spot: Optional[PdnSpot] = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> ResultSet:
    """The Fig. 4(j) power-state grid as a :class:`ResultSet`."""
    study = Study.over_power_states(tdp_w, name="fig4-power-states").with_pdns(
        *pdn_names
    )
    if spot is None and (cache_dir is not None or parallel_requested(executor, jobs)):
        spot = PdnSpot(pdn_names=list(pdn_names), disk_cache=cache_dir)
    if spot is not None:
        return spot.run(study, executor=executor, jobs=jobs)
    return evaluate_study(study, [build_pdn(name) for name in pdn_names])


def power_state_grid(
    tdp_w: float = 18.0, pdn_names: Sequence[str] = FIG4_PDNS
) -> List[Dict[str, object]]:
    """Predicted ETEE over the Fig. 4(j) power states."""
    return power_state_grid_resultset(tdp_w, pdn_names).to_records()


def model_accuracy(
    trace_count_per_type: int = 20, pdn_names: Sequence[str] = FIG4_PDNS, seed: int = 7
) -> Dict[str, Dict[str, float]]:
    """Average / min / max model accuracy per PDN (the Sec. 4.3 numbers)."""
    harness = ValidationHarness(seed=seed)
    summaries = harness.validate_all(trace_count_per_type, pdn_names)
    return {
        name: {
            "average_accuracy": summary.average_accuracy,
            "min_accuracy": summary.min_accuracy,
            "max_accuracy": summary.max_accuracy,
        }
        for name, summary in summaries.items()
    }


def format_figure4(
    grid: List[Dict[str, object]] = None,
    power_states: List[Dict[str, object]] = None,
    accuracy: Dict[str, Dict[str, float]] = None,
    spot: Optional[PdnSpot] = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
) -> str:
    """Render the Fig. 4 grid, power-state panel and accuracy summary."""
    grid = (
        grid
        if grid is not None
        else etee_grid_resultset(spot=spot, executor=executor, jobs=jobs).to_records()
    )
    power_states = (
        power_states
        if power_states is not None
        else power_state_grid_resultset(
            spot=spot, executor=executor, jobs=jobs
        ).to_records()
    )
    accuracy = accuracy if accuracy is not None else model_accuracy()
    sections = []
    grid_rows = [
        [r["workload_type"], r["tdp_w"], r["application_ratio"], r["pdn"], r["etee"]]
        for r in grid
    ]
    sections.append(
        format_table(
            ["workload", "TDP (W)", "AR", "PDN", "ETEE"],
            grid_rows,
            title="Fig. 4(a-i) - ETEE vs AR grid",
        )
    )
    ps_rows = [[r["power_state"], r["pdn"], r["etee"]] for r in power_states]
    sections.append(
        format_table(
            ["power state", "PDN", "ETEE"],
            ps_rows,
            title="Fig. 4(j) - ETEE in battery-life power states",
        )
    )
    accuracy_rows = [
        [name, stats["average_accuracy"], stats["min_accuracy"], stats["max_accuracy"]]
        for name, stats in accuracy.items()
    ]
    sections.append(
        format_table(
            ["PDN", "avg accuracy", "min", "max"],
            accuracy_rows,
            float_format=".4f",
            title="Sec. 4.3 - model accuracy vs synthetic measured reference",
        )
    )
    return "\n\n".join(sections)
