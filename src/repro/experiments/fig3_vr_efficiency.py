"""Experiment E-FIG3: off-chip VR efficiency curves (Fig. 3).

Fig. 3 plots the measured efficiency of the off-chip regulators as a function
of output current (0.1--10 A, log scale), for several output voltages
(0.6/0.7/1.0/1.8 V), two regulator power states (PS0 and PS1) and a 7.2 V
input.  This driver regenerates the same curves from the library's behavioural
board-regulator model, so the curve shapes (light-load fall-off, PS1's
light-load advantage, higher output voltages being more efficient) can be
compared directly against the figure.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.reporting import format_table
from repro.analysis.resultset import ResultSet
from repro.vr.base import RegulatorOperatingPoint
from repro.vr.efficiency_curves import default_board_vr
from repro.vr.switching import VRPowerState

#: Output-current grid of Fig. 3 (amps, log-spaced 0.1 -> 10).
FIG3_CURRENTS_A: Sequence[float] = (0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0)

#: Output voltages plotted in Fig. 3.
FIG3_VOLTAGES_V: Sequence[float] = (0.6, 0.7, 1.0, 1.8)

#: Regulator power states plotted in Fig. 3.
FIG3_POWER_STATES: Sequence[VRPowerState] = (VRPowerState.PS0, VRPowerState.PS1)

#: Input voltage of the plotted curves.
FIG3_INPUT_VOLTAGE_V = 7.2


def vr_efficiency_resultset(
    currents_a: Sequence[float] = FIG3_CURRENTS_A,
    voltages_v: Sequence[float] = FIG3_VOLTAGES_V,
    power_states: Sequence[VRPowerState] = FIG3_POWER_STATES,
    input_voltage_v: float = FIG3_INPUT_VOLTAGE_V,
) -> ResultSet:
    """Regenerate the Fig. 3 efficiency curves as a :class:`ResultSet`."""
    regulator = default_board_vr("V_IN", iccmax_a=15.0)
    records: List[Dict[str, float]] = []
    for power_state in power_states:
        regulator.set_power_state(power_state)
        for output_voltage_v in voltages_v:
            for output_current_a in currents_a:
                point = RegulatorOperatingPoint(
                    input_voltage_v=input_voltage_v,
                    output_voltage_v=output_voltage_v,
                    output_current_a=output_current_a,
                )
                records.append(
                    {
                        "power_state": power_state.name,
                        "vout_v": output_voltage_v,
                        "iout_a": output_current_a,
                        "efficiency": regulator.efficiency(point),
                    }
                )
    return ResultSet.from_records(records, name="fig3-vr-efficiency")


def vr_efficiency_curves(
    currents_a: Sequence[float] = FIG3_CURRENTS_A,
    voltages_v: Sequence[float] = FIG3_VOLTAGES_V,
    power_states: Sequence[VRPowerState] = FIG3_POWER_STATES,
    input_voltage_v: float = FIG3_INPUT_VOLTAGE_V,
) -> List[Dict[str, float]]:
    """Regenerate the Fig. 3 efficiency curves as flat records."""
    return vr_efficiency_resultset(
        currents_a, voltages_v, power_states, input_voltage_v
    ).to_records()


def format_figure3(records: List[Dict[str, float]] = None) -> str:
    """Render the Fig. 3 curves as a table (one row per PS/Vout, one column per Iout)."""
    records = records if records is not None else vr_efficiency_curves()
    currents = sorted({record["iout_a"] for record in records})
    headers = ["PS / Vout"] + [f"{current:.1f}A" for current in currents]
    rows = []
    keys = sorted({(record["power_state"], record["vout_v"]) for record in records})
    for power_state, vout in keys:
        row = [f"{power_state} {vout:.1f}V"]
        for current in currents:
            match = next(
                record
                for record in records
                if record["power_state"] == power_state
                and record["vout_v"] == vout
                and record["iout_a"] == current
            )
            row.append(match["efficiency"])
        rows.append(row)
    return format_table(
        headers, rows, float_format=".3f", title="Fig. 3 - off-chip VR efficiency (Vin=7.2V)"
    )
