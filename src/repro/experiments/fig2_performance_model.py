"""Experiment E-FIG2: the performance-model figures (Fig. 2a and Fig. 2b).

Fig. 2(a): the additional power budget required to raise the CPU (graphics)
clock frequency by 1 % at each TDP -- about 9 mW at a 4 W TDP, growing to
hundreds of milliwatts at 50 W.

Fig. 2(b): the fraction of each TDP's budget allocated to SA+IO, the CPU
cores, the LLC, and lost inside the PDN, using the worst-loss commonly-used
PDN at each TDP.  The CPU share grows from ~13 % at 4 W to ~52 % at 50 W while
the PDN loss stays at 25 % or more.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.reporting import format_table
from repro.analysis.resultset import ResultSet
from repro.perf.budget_breakdown import budget_breakdown_for_tdp, worst_case_pdn_loss
from repro.perf.frequency_sensitivity import FrequencySensitivityModel
from repro.util.units import watts_to_milliwatts

#: The TDP levels shown on the Fig. 2 x-axis.
FIG2_TDPS_W: Sequence[float] = (4.0, 8.0, 10.0, 18.0, 25.0, 36.0, 50.0)


def frequency_sensitivity_resultset(
    tdps_w: Sequence[float] = FIG2_TDPS_W,
) -> ResultSet:
    """Fig. 2(a) as a :class:`ResultSet` (mW needed for a +1 % frequency step)."""
    model = FrequencySensitivityModel()
    records: List[Dict[str, float]] = []
    for tdp_w in tdps_w:
        records.append(
            {
                "tdp_w": tdp_w,
                "cpu_mw_per_percent": watts_to_milliwatts(
                    model.cpu_power_for_one_percent_w(tdp_w)
                ),
                "gfx_mw_per_percent": watts_to_milliwatts(
                    model.gfx_power_for_one_percent_w(tdp_w)
                ),
            }
        )
    return ResultSet.from_records(records, name="fig2a-frequency-sensitivity")


def frequency_sensitivity_table(tdps_w: Sequence[float] = FIG2_TDPS_W) -> List[Dict[str, float]]:
    """Fig. 2(a): milliwatts needed for a +1 % frequency step, per TDP."""
    return frequency_sensitivity_resultset(tdps_w).to_records()


def budget_breakdown_resultset(
    tdps_w: Sequence[float] = FIG2_TDPS_W,
) -> ResultSet:
    """Fig. 2(b) as a :class:`ResultSet` (budget fractions per TDP)."""
    records: List[Dict[str, float]] = []
    for tdp_w in tdps_w:
        split = budget_breakdown_for_tdp(tdp_w)
        fractions = split.as_fractions()
        losses = worst_case_pdn_loss(tdp_w)
        records.append(
            {
                "tdp_w": tdp_w,
                "sa_io_fraction": fractions["sa_io"],
                "cpu_fraction": fractions["cpu"],
                "llc_fraction": fractions["llc"],
                "pdn_loss_fraction": fractions["pdn_loss"],
                "worst_pdn": losses["worst"],
            }
        )
    return ResultSet.from_records(records, name="fig2b-budget-breakdown")


def budget_breakdown_table(tdps_w: Sequence[float] = FIG2_TDPS_W) -> List[Dict[str, float]]:
    """Fig. 2(b): budget breakdown fractions per TDP (worst-loss PDN)."""
    return budget_breakdown_resultset(tdps_w).to_records()


def format_figure2a(records: List[Dict[str, float]] = None) -> str:
    """Render the Fig. 2(a) table."""
    records = records if records is not None else frequency_sensitivity_table()
    rows = [
        [r["tdp_w"], r["cpu_mw_per_percent"], r["gfx_mw_per_percent"]] for r in records
    ]
    return format_table(
        ["TDP (W)", "CPU (mW / +1% f)", "GFX (mW / +1% f)"],
        rows,
        float_format=".1f",
        title="Fig. 2(a) - power budget for a 1% frequency increase",
    )


def format_figure2b(records: List[Dict[str, float]] = None) -> str:
    """Render the Fig. 2(b) table."""
    records = records if records is not None else budget_breakdown_table()
    rows = [
        [
            r["tdp_w"],
            r["sa_io_fraction"],
            r["cpu_fraction"],
            r["llc_fraction"],
            r["pdn_loss_fraction"],
            r["worst_pdn"],
        ]
        for r in records
    ]
    return format_table(
        ["TDP (W)", "SA+IO", "CPU", "LLC", "PDN loss", "worst PDN"],
        rows,
        float_format=".3f",
        title="Fig. 2(b) - power-budget breakdown (worst-loss PDN per TDP)",
    )
