"""Experiment E-SIM: scenario simulations across the five PDNs.

The paper's dynamic claims -- FlexWatts tracks the better of its two modes
over time-varying workloads while paying only the 94 us mode-switch flow --
are exercised here over the registered scenario generators
(:mod:`repro.workloads.scenarios`) at a low and a high TDP.  The output is
the energy of every PDN normalised to the IVR baseline per scenario, plus
FlexWatts' mode-switch activity, produced by one :class:`SimStudy` run
through the executor engine (``executor``/``jobs`` parallelise it with
bit-identical results).

Shapes the reproduction must preserve: FlexWatts never draws more energy
than the *worse* of I+MBVR and LDO on any scenario, and on idle-heavy
scenarios at low TDP it tracks the LDO side within the switch overhead.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.executor import ExecutorLike
from repro.analysis.reporting import format_table
from repro.analysis.resultset import ResultSet
from repro.sim.adapters import SIM_METRIC_COLUMNS
from repro.sim.study import SimEngine, SimStudy
from repro.workloads.scenarios import available_scenarios

#: The TDP levels the scenario comparison runs at (tablet- and desktop-class).
SIM_TDPS_W: Sequence[float] = (4.0, 50.0)

#: The PDNs compared, in presentation order.
SIM_PDNS: Sequence[str] = ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")


def scenario_study(
    scenarios: Optional[Sequence[str]] = None,
    tdps_w: Sequence[float] = SIM_TDPS_W,
) -> SimStudy:
    """The scenario x TDP grid of the experiment (all scenarios by default)."""
    return (
        SimStudy.builder("sim-scenarios")
        .scenarios(*(scenarios if scenarios else available_scenarios()))
        .tdps(*tdps_w)
        .pdns(*SIM_PDNS)
        .build()
    )


def scenario_resultset(
    engine: Optional[SimEngine] = None,
    scenarios: Optional[Sequence[str]] = None,
    tdps_w: Sequence[float] = SIM_TDPS_W,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> ResultSet:
    """Summary rows of every ``(scenario, TDP, PDN)`` simulation.

    ``cache_dir`` attaches the persistent disk tier (see :mod:`repro.cache`)
    to a freshly built engine; ignored when an ``engine`` is passed.
    """
    if engine is None:
        engine = SimEngine(disk_cache=cache_dir)
    return engine.run(scenario_study(scenarios, tdps_w), executor=executor, jobs=jobs)


def format_sim_scenarios(
    engine: Optional[SimEngine] = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> str:
    """Energy per scenario normalised to IVR, plus FlexWatts switch counts."""
    results = scenario_resultset(
        engine, executor=executor, jobs=jobs, cache_dir=cache_dir
    )
    normalised = results.normalize_to(
        "IVR",
        value_columns=("total_energy_j",),
        metric_columns=SIM_METRIC_COLUMNS,
    )
    energy = {}
    for record in normalised.to_records():
        row_key = (record["scenario"], record["tdp_w"])
        energy.setdefault(row_key, {})[record["pdn"]] = record["total_energy_j"]
    switches = {
        (record["scenario"], record["tdp_w"]): record["mode_switch_count"]
        for record in results.filter(pdn="FlexWatts").to_records()
    }
    rows = [
        [scenario, tdp_w]
        + [energy[(scenario, tdp_w)][pdn] for pdn in SIM_PDNS]
        + [switches[(scenario, tdp_w)]]
        for scenario, tdp_w in energy
    ]
    return format_table(
        ["scenario", "TDP (W)"] + list(SIM_PDNS) + ["FW switches"],
        rows,
        title="Scenario energy normalised to IVR (interval simulation)",
    )
