"""Experiment E-FIG5: PDN power-conversion loss breakdown (Fig. 5).

Fig. 5 decomposes the power-conversion loss of the IVR, MBVR and LDO PDNs at
4 W, 18 W and 50 W for a CPU-intensive workload with AR = 56 %, into VR
inefficiencies, conduction (I^2 R) losses on the compute and uncore paths, and
other losses, and overlays the (IVR-normalised) chip input current and the
load-line impedance.

The qualitative takeaways the reproduction must preserve:

* VR inefficiency dominates at 4 W and is largest for the IVR PDN (two-stage
  conversion);
* the MBVR/LDO compute conduction losses grow much faster with TDP than the
  IVR PDN's because their chip input current is ~2x higher and their
  load-lines are 2.5x / 1.3x higher.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.executor import ExecutorLike, parallel_requested
from repro.analysis.pdnspot import PdnSpot
from repro.analysis.reporting import format_table
from repro.pdn.base import OperatingConditions
from repro.power.domains import WorkloadType
from repro.power.parameters import default_parameters

#: The TDPs of the Fig. 5 bars.
FIG5_TDPS_W: Sequence[float] = (4.0, 18.0, 50.0)

#: The application ratio used by Fig. 5.
FIG5_APPLICATION_RATIO = 0.56

#: The PDNs compared by Fig. 5.
FIG5_PDNS: Sequence[str] = ("IVR", "MBVR", "LDO")


def _compute_loadline_ohm(pdn_name: str) -> float:
    """Effective compute-rail load-line of each PDN (the Fig. 5 line plot)."""
    params = default_parameters()
    if pdn_name == "IVR":
        return params.ivr_input_loadline_ohm
    if pdn_name == "LDO":
        return params.ldo_input_loadline_ohm
    from repro.power.domains import DomainKind

    return params.mbvr_loadline_ohm[DomainKind.CORE0]


def loss_breakdown(
    tdps_w: Sequence[float] = FIG5_TDPS_W,
    application_ratio: float = FIG5_APPLICATION_RATIO,
    pdn_names: Sequence[str] = FIG5_PDNS,
    spot: Optional[PdnSpot] = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Loss breakdown (fractions of supply power) per PDN per TDP.

    Evaluations go through the (optionally shared) :class:`PdnSpot` cache, so
    the operating points this figure shares with the Fig. 4/Fig. 8 grids are
    not recomputed.  With a parallel ``executor`` the distinct operating
    points are pre-evaluated as one batch; the breakdown loop below then runs
    entirely on cache hits.
    """
    if spot is None:
        spot = PdnSpot(
            pdn_names=list(pdn_names),
            baseline_name="IVR" if "IVR" in pdn_names else pdn_names[0],
        )
    if parallel_requested(executor, jobs):
        spot.evaluate_batch(
            (
                (
                    pdn_name,
                    OperatingConditions.for_active_workload(
                        tdp_w, application_ratio, WorkloadType.CPU_MULTI_THREAD
                    ),
                )
                for pdn_name in pdn_names
                for tdp_w in tdps_w
            ),
            executor=executor,
            jobs=jobs,
        )
    records: List[Dict[str, float]] = []
    ivr_current_by_tdp: Dict[float, float] = {}
    for pdn_name in pdn_names:
        for tdp_w in tdps_w:
            conditions = OperatingConditions.for_active_workload(
                tdp_w, application_ratio, WorkloadType.CPU_MULTI_THREAD
            )
            evaluation = spot.evaluate(pdn_name, conditions)
            fractions = evaluation.breakdown.as_fractions_of(evaluation.supply_power_w)
            if pdn_name == "IVR":
                ivr_current_by_tdp[tdp_w] = evaluation.chip_input_current_a
            records.append(
                {
                    "pdn": pdn_name,
                    "tdp_w": tdp_w,
                    "vr_inefficiency": fractions["vr_inefficiency"],
                    "conduction_compute": fractions["conduction_compute"],
                    "conduction_uncore": fractions["conduction_uncore"],
                    "other": fractions["other"],
                    "total_loss_fraction": evaluation.loss_fraction,
                    "chip_input_current_a": evaluation.chip_input_current_a,
                    "compute_loadline_mohm": _compute_loadline_ohm(pdn_name) * 1e3,
                }
            )
    # Normalise the chip input current to the IVR PDN (the Fig. 5 line plot).
    for record in records:
        reference = ivr_current_by_tdp.get(record["tdp_w"], 0.0)
        record["normalised_input_current"] = (
            record["chip_input_current_a"] / reference if reference > 0.0 else 0.0
        )
    return records


def format_figure5(
    records: List[Dict[str, float]] = None,
    spot: Optional[PdnSpot] = None,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
) -> str:
    """Render the Fig. 5 loss-breakdown table."""
    records = (
        records
        if records is not None
        else loss_breakdown(spot=spot, executor=executor, jobs=jobs)
    )
    rows = [
        [
            r["pdn"],
            r["tdp_w"],
            r["vr_inefficiency"],
            r["conduction_compute"],
            r["conduction_uncore"],
            r["other"],
            r["total_loss_fraction"],
            r["normalised_input_current"],
            r["compute_loadline_mohm"],
        ]
        for r in records
    ]
    return format_table(
        [
            "PDN",
            "TDP (W)",
            "VR ineff.",
            "I2R compute",
            "I2R SA+IO",
            "other",
            "total loss",
            "Iin (norm.)",
            "RLL (mOhm)",
        ],
        rows,
        title="Fig. 5 - PDN power-conversion loss breakdown (CPU workload, AR=56%)",
    )
