"""Command-line interface for the FlexWatts / PDNspot reproduction.

The CLI exposes the most common analyses without writing any Python::

    python -m repro etee --tdp 4 --workload cpu_multi_thread
    python -m repro performance --tdp 4 --suite spec
    python -m repro battery-life
    python -m repro cost --tdp 18
    python -m repro figures --quick
    python -m repro predict --tdp 50 --ar 0.6 --workload graphics

Every sub-command prints a plain-text table (no plotting dependency), the same
tables the experiment drivers and examples produce.
"""

from __future__ import annotations

import argparse
from typing import List, Optional, Sequence

from repro.analysis.pdnspot import PdnSpot
from repro.analysis.reporting import format_mapping_table, format_table
from repro.core.hybrid_vr import PdnMode
from repro.core.runtime_estimator import RuntimeInputEstimator
from repro.pdn.base import OperatingConditions
from repro.power.domains import WorkloadType
from repro.workloads.graphics import THREEDMARK06_BENCHMARKS
from repro.workloads.spec_cpu2006 import SPEC_CPU2006_BENCHMARKS

PDN_ORDER = ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")


def _workload_type(name: str) -> WorkloadType:
    try:
        return WorkloadType(name)
    except ValueError as error:
        valid = ", ".join(member.value for member in WorkloadType)
        raise argparse.ArgumentTypeError(f"unknown workload type {name!r}; choose from: {valid}") from error


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlexWatts / PDNspot reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    etee = subparsers.add_parser("etee", help="compare ETEE across PDNs at one operating point")
    etee.add_argument("--tdp", type=float, default=18.0, help="thermal design power in watts")
    etee.add_argument("--ar", type=float, default=0.56, help="application ratio (0-1]")
    etee.add_argument(
        "--workload", type=_workload_type, default=WorkloadType.CPU_MULTI_THREAD,
        help="workload type (cpu_single_thread, cpu_multi_thread, graphics)",
    )

    performance = subparsers.add_parser(
        "performance", help="suite-average performance normalised to the IVR PDN"
    )
    performance.add_argument("--tdp", type=float, default=4.0)
    performance.add_argument(
        "--suite", choices=("spec", "3dmark"), default="spec", help="benchmark suite"
    )

    subparsers.add_parser("battery-life", help="battery-life average power per PDN")

    cost = subparsers.add_parser("cost", help="BOM and board area normalised to the IVR PDN")
    cost.add_argument("--tdp", type=float, default=18.0)

    figures = subparsers.add_parser("figures", help="regenerate every paper figure")
    figures.add_argument(
        "--quick", action="store_true", help="skip the (slow) Fig. 4 validation grid"
    )

    predict = subparsers.add_parser(
        "predict", help="show the FlexWatts mode Algorithm 1 selects for an operating point"
    )
    predict.add_argument("--tdp", type=float, default=18.0)
    predict.add_argument("--ar", type=float, default=0.56)
    predict.add_argument("--workload", type=_workload_type, default=WorkloadType.CPU_MULTI_THREAD)

    return parser


# --------------------------------------------------------------------------- #
# Sub-command implementations (each returns the text it prints, for testing)
# --------------------------------------------------------------------------- #
def run_etee(spot: PdnSpot, tdp_w: float, ar: float, workload: WorkloadType) -> str:
    table = spot.compare_etee(tdp_w=tdp_w, application_ratio=ar, workload_type=workload)
    rows = [[name, table[name]] for name in PDN_ORDER if name in table]
    return format_table(
        ["PDN", "ETEE"], rows, title=f"ETEE at {tdp_w:g} W, AR={ar:g}, {workload.value}"
    )


def run_performance(spot: PdnSpot, tdp_w: float, suite: str) -> str:
    benchmarks = SPEC_CPU2006_BENCHMARKS if suite == "spec" else THREEDMARK06_BENCHMARKS
    table = spot.compare_performance(benchmarks, tdp_w)
    rows = [[name, table[name]] for name in PDN_ORDER if name in table]
    return format_table(
        ["PDN", "perf vs IVR"],
        rows,
        title=f"{'SPEC CPU2006' if suite == 'spec' else '3DMark06'} at {tdp_w:g} W",
    )


def run_battery_life(spot: PdnSpot) -> str:
    return format_mapping_table(
        spot.compare_battery_life_power(),
        row_key_header="workload",
        title="Battery-life average power (W)",
    )


def run_cost(spot: PdnSpot, tdp_w: float) -> str:
    bom = spot.compare_bom(tdp_w)
    area = spot.compare_board_area(tdp_w)
    rows = [[name, bom[name], area[name]] for name in PDN_ORDER if name in bom]
    return format_table(
        ["PDN", "BOM vs IVR", "area vs IVR"], rows, title=f"Cost and board area at {tdp_w:g} W"
    )


def run_figures(quick: bool) -> str:
    from repro.experiments.runner import run_all_experiments

    outputs = run_all_experiments(include_validation=not quick)
    sections = []
    for key in sorted(outputs):
        sections.append(f"===== {key} =====\n{outputs[key]}")
    return "\n\n".join(sections)


def run_predict(spot: PdnSpot, tdp_w: float, ar: float, workload: WorkloadType) -> str:
    flexwatts = spot.pdn("FlexWatts")
    conditions = OperatingConditions.for_active_workload(tdp_w, ar, workload)
    telemetry = RuntimeInputEstimator.estimate_from_conditions(conditions)
    mode = flexwatts.predict_mode_from_telemetry(telemetry)
    predictor = flexwatts.predictor
    rows = [
        ["selected mode", mode.value],
        ["IVR-Mode ETEE estimate", predictor.estimate_etee(PdnMode.IVR_MODE, telemetry)],
        ["LDO-Mode ETEE estimate", predictor.estimate_etee(PdnMode.LDO_MODE, telemetry)],
    ]
    return format_table(
        ["quantity", "value"],
        rows,
        title=f"Algorithm 1 at {tdp_w:g} W, AR={ar:g}, {workload.value}",
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "figures":
        print(run_figures(args.quick))
        return 0
    spot = PdnSpot()
    if args.command == "etee":
        print(run_etee(spot, args.tdp, args.ar, args.workload))
    elif args.command == "performance":
        print(run_performance(spot, args.tdp, args.suite))
    elif args.command == "battery-life":
        print(run_battery_life(spot))
    elif args.command == "cost":
        print(run_cost(spot, args.tdp))
    elif args.command == "predict":
        print(run_predict(spot, args.tdp, args.ar, args.workload))
    return 0
