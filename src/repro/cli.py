"""Command-line interface for the FlexWatts / PDNspot reproduction.

The CLI exposes the most common analyses without writing any Python::

    python -m repro etee --tdp 4 --workload cpu_multi_thread
    python -m repro performance --tdp 4 --suite spec --json
    python -m repro battery-life
    python -m repro cost --tdp 18
    python -m repro figures --quick
    python -m repro predict --tdp 50 --ar 0.6 --workload graphics
    python -m repro sweep --tdps 4 18 50 --ars 0.4 0.56 --format csv
    python -m repro sweep --tdps 4 18 50 --ars 0.4 0.56 --jobs 4
    python -m repro sweep --tdps 4 18 50 --cache-dir ~/.cache/repro
    python -m repro export fig3 --format json --output fig3.json
    python -m repro simulate --scenario bursty-interactive --jobs 4 --format json
    python -m repro optimize --strategy random --budget 12 --seed 7 --jobs 4
    python -m repro cache stats --cache-dir ~/.cache/repro
    python -m repro cache prune --cache-dir ~/.cache/repro --older-than 604800
    python -m repro serve --cache-dir ~/.cache/repro --jobs 4
    python -m repro sweep --tdps 4 18 50 --server http://127.0.0.1:8737
    python -m repro sweep --tdps 4 18 50 --jobs 4 --executor process --trace t.json

Every sub-command prints a plain-text table by default (no plotting
dependency); ``--json`` (and ``--format json|csv`` on ``sweep``/``export``)
emits the underlying data for scripting.  The ``sweep`` command builds a
declarative :class:`~repro.analysis.study.Study` from its axis flags and runs
it through the cached :meth:`PdnSpot.run` engine; ``--jobs N`` /
``--executor {serial,thread,process}`` (also on ``export`` and ``figures``)
evaluate the grid through a parallel backend with identical results.
``--cache-dir DIR`` (on every grid command) attaches the persistent on-disk
evaluation store (see :mod:`repro.cache`): the first run populates the
directory, every later run -- in any process -- replays its grid points from
disk, and ``repro cache stats``/``repro cache prune`` inspect and reclaim it.
``repro serve`` keeps one warm process behind an HTTP/JSON API (see
:mod:`repro.serve`): concurrent clients coalesce onto single-flight
evaluations, and ``--server URL`` on ``sweep``/``simulate``/``optimize``
routes through it with automatic local fallback when it is unreachable.
``--trace FILE`` (on ``sweep``/``simulate``/``optimize``/``figures``/
``serve``) records every layer's spans through :mod:`repro.obs` and writes
a Chrome-trace JSON file on exit (see :doc:`/guides/observability`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.analysis.executor import EXECUTORS, ExecutorLike
from repro.analysis.pdnspot import PdnSpot
from repro.optimize import (
    DEFAULT_OBJECTIVES,
    OBJECTIVES,
    STRATEGIES,
    EvaluationSettings,
    run_optimization,
)
from repro.analysis.reporting import format_mapping_table, format_table
from repro.analysis.resultset import MISSING, ResultSet
from repro.core.hybrid_vr import PdnMode
from repro.core.runtime_estimator import RuntimeInputEstimator
from repro.pdn.base import OperatingConditions
from repro.power.domains import WorkloadType
from repro.power.power_states import PackageCState
from repro.serve.protocol import (  # noqa: F401 - canonical home; re-exported
    build_optimize_space,
    build_simulate_study,
    build_sweep_study,
)
from repro.sim.study import run_sim
from repro.util.errors import ConfigurationError, ReproError
from repro.workloads.graphics import THREEDMARK06_BENCHMARKS
from repro.workloads.scenarios import DEFAULT_SEED, available_scenarios
from repro.workloads.spec_cpu2006 import SPEC_CPU2006_BENCHMARKS

PDN_ORDER = ("IVR", "MBVR", "LDO", "I+MBVR", "FlexWatts")

#: Datasets the ``export`` sub-command can serialise.
EXPORT_DATASETS = ("fig2a", "fig2b", "fig3", "fig4-grid", "fig4-power-states")


def _workload_type(name: str) -> WorkloadType:
    try:
        return WorkloadType(name)
    except ValueError as error:
        valid = ", ".join(member.value for member in WorkloadType)
        raise argparse.ArgumentTypeError(f"unknown workload type {name!r}; choose from: {valid}") from error


def _power_state(name: str) -> PackageCState:
    try:
        return PackageCState(name.upper())
    except ValueError as error:
        valid = ", ".join(member.value for member in PackageCState if member is not PackageCState.C0)
        raise argparse.ArgumentTypeError(f"unknown power state {name!r}; choose from: {valid}") from error


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the parallel-execution flags shared by the grid commands."""
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker count for parallel evaluation (default: serial; "
        "--jobs N without --executor selects the process backend)",
    )
    parser.add_argument(
        "--executor", choices=sorted(EXECUTORS), default=None,
        help="execution backend (serial, thread, process); results are "
        "identical to serial, only the evaluation schedule changes",
    )


def _add_cache_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the persistent-cache flag shared by the grid commands."""
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent on-disk evaluation cache: the first run populates "
        "the directory, later runs (in any process) serve their grid points "
        "from it; results are bit-identical either way",
    )


def _add_server_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the remote-evaluation flag shared by the grid commands."""
    parser.add_argument(
        "--server", default=None, metavar="URL",
        help="route the evaluation through a running `repro serve` daemon "
        "(e.g. http://127.0.0.1:8737); output is bit-identical to a local "
        "run, and an unreachable server falls back to local engines with a "
        "warning on stderr",
    )


def _add_trace_flag(parser: argparse.ArgumentParser) -> None:
    """Attach the Chrome-trace export flag shared by the grid commands."""
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="record a span trace of the run and write it to FILE as "
        "Chrome-trace JSON (open in chrome://tracing or ui.perfetto.dev); "
        "spans cover the executor, cache tiers, engines and -- with "
        "--executor process -- every worker process",
    )


def _package_version() -> str:
    """The version of the code actually running.

    ``repro.__version__`` is the single source of truth -- the distribution
    metadata is *derived* from it at build time (``pyproject.toml``'s
    dynamic version), so reading the attribute always matches the running
    code even when a stale wheel is installed alongside a newer checkout.
    """
    from repro import __version__

    return __version__


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FlexWatts / PDNspot reproduction command-line interface",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    etee = subparsers.add_parser("etee", help="compare ETEE across PDNs at one operating point")
    etee.add_argument("--tdp", type=float, default=18.0, help="thermal design power in watts")
    etee.add_argument("--ar", type=float, default=0.56, help="application ratio (0-1]")
    etee.add_argument(
        "--workload", type=_workload_type, default=WorkloadType.CPU_MULTI_THREAD,
        help="workload type (cpu_single_thread, cpu_multi_thread, graphics)",
    )
    etee.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    performance = subparsers.add_parser(
        "performance", help="suite-average performance normalised to the IVR PDN"
    )
    performance.add_argument("--tdp", type=float, default=4.0)
    performance.add_argument(
        "--suite", choices=("spec", "3dmark"), default="spec", help="benchmark suite"
    )
    performance.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    battery = subparsers.add_parser("battery-life", help="battery-life average power per PDN")
    battery.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    cost = subparsers.add_parser("cost", help="BOM and board area normalised to the IVR PDN")
    cost.add_argument("--tdp", type=float, default=18.0)
    cost.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    figures = subparsers.add_parser("figures", help="regenerate every paper figure")
    figures.add_argument(
        "--quick", action="store_true", help="skip the (slow) Fig. 4 validation grid"
    )
    _add_executor_flags(figures)
    _add_cache_flag(figures)
    _add_trace_flag(figures)

    predict = subparsers.add_parser(
        "predict", help="show the FlexWatts mode Algorithm 1 selects for an operating point"
    )
    predict.add_argument("--tdp", type=float, default=18.0)
    predict.add_argument("--ar", type=float, default=0.56)
    predict.add_argument("--workload", type=_workload_type, default=WorkloadType.CPU_MULTI_THREAD)
    predict.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    sweep = subparsers.add_parser(
        "sweep",
        help="run a declarative study grid (TDP x AR x workload x power state)",
    )
    sweep.add_argument(
        "--tdps", type=float, nargs="+", required=True, metavar="W",
        help="TDP levels of the grid, in watts",
    )
    sweep.add_argument(
        "--ars", type=float, nargs="+", default=None, metavar="AR",
        help="application ratios of the active part of the grid (default 0.56)",
    )
    sweep.add_argument(
        "--workloads", type=_workload_type, nargs="+", default=None,
        help="workload types of the active part (default cpu_multi_thread)",
    )
    sweep.add_argument(
        "--power-states", type=_power_state, nargs="+", default=None,
        help="package C-states (C0_MIN, C2, C3, C6, C7, C8); without --ars or "
        "--workloads the grid is idle-only, with them the active rows are kept too",
    )
    sweep.add_argument(
        "--pdns", nargs="+", default=None, help="restrict to these PDN architectures"
    )
    sweep.add_argument(
        "--format", choices=("table", "json", "csv"), default="table",
        help="output format (default: table)",
    )
    sweep.add_argument("--output", default=None, help="write to this file instead of stdout")
    _add_executor_flags(sweep)
    _add_cache_flag(sweep)
    _add_server_flag(sweep)
    _add_trace_flag(sweep)

    simulate = subparsers.add_parser(
        "simulate",
        help="replay scenario traces on every PDN through the interval simulator",
    )
    simulate.add_argument(
        "--scenario", nargs="+", choices=available_scenarios(), default=None,
        metavar="NAME",
        help="scenario trace generator(s) to replay (default: all registered: "
        + ", ".join(available_scenarios()) + ")",
    )
    simulate.add_argument(
        "--tdps", type=float, nargs="+", default=[18.0], metavar="W",
        help="TDP levels to simulate at, in watts (default: 18)",
    )
    simulate.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help=f"trace-generator seed (default: {DEFAULT_SEED})",
    )
    simulate.add_argument(
        "--pdns", nargs="+", default=None, help="restrict to these PDN architectures"
    )
    simulate.add_argument(
        "--format", choices=("table", "json", "csv"), default="table",
        help="output format (default: table)",
    )
    simulate.add_argument("--output", default=None, help="write to this file instead of stdout")
    _add_executor_flags(simulate)
    _add_cache_flag(simulate)
    _add_server_flag(simulate)
    _add_trace_flag(simulate)

    optimize = subparsers.add_parser(
        "optimize",
        help="search PDN designs against multiple objectives and extract the "
        "Pareto front",
    )
    optimize.add_argument(
        "--objectives", nargs="+", choices=sorted(OBJECTIVES),
        default=list(DEFAULT_OBJECTIVES), metavar="NAME",
        help="objectives to optimise (default: "
        + " ".join(DEFAULT_OBJECTIVES)
        + "; available: " + ", ".join(sorted(OBJECTIVES)) + ")",
    )
    optimize.add_argument(
        "--strategy", choices=sorted(STRATEGIES), default="grid",
        help="search strategy (default: grid; random and evolutionary are "
        "seeded and reproducible)",
    )
    optimize.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="candidate budget (default: exhaustive for grid, 16 for the "
        "sampling strategies)",
    )
    optimize.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed of the sampling strategies (default: 0)",
    )
    optimize.add_argument(
        "--pdns", nargs="+", default=None,
        help="topology axis of the design space (default: every registered PDN)",
    )
    optimize.add_argument(
        "--param", action="append", default=None, metavar="NAME=V1,V2,...",
        help="add a technology-parameter axis (component sizing), e.g. "
        "--param ivr_tolerance_band_v=0.015,0.020,0.025; repeatable",
    )
    optimize.add_argument(
        "--tdps", type=float, nargs="+", default=None, metavar="W",
        help="TDP set candidates are judged under (default: 4 18 50)",
    )
    optimize.add_argument(
        "--scenario", nargs="+", choices=available_scenarios(), default=None,
        metavar="NAME",
        help="scenario traces behind the power/energy objectives "
        "(default: bursty-interactive)",
    )
    optimize.add_argument(
        "--format", choices=("table", "json", "csv"), default="table",
        help="output format (default: table)",
    )
    optimize.add_argument("--output", default=None, help="write to this file instead of stdout")
    _add_executor_flags(optimize)
    _add_cache_flag(optimize)
    _add_server_flag(optimize)
    _add_trace_flag(optimize)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-running evaluation service (one warm two-tier "
        "cache behind an HTTP/JSON API with request coalescing)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve.add_argument(
        "--port", type=int, default=None, metavar="N",
        help="TCP port (default: 8737; 0 binds an ephemeral port)",
    )
    serve.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="default per-request evaluation deadline (default: 60); "
        "requests may lower or raise it up to --max-timeout",
    )
    serve.add_argument(
        "--max-timeout", type=float, default=600.0, metavar="SECONDS",
        help="hard cap on client-supplied timeout_s values (default: 600)",
    )
    serve.add_argument(
        "--max-units", type=int, default=50_000, metavar="N",
        help="per-request budget: the most evaluation units one request may "
        "decompose into before it is rejected with 413 (default: 50000)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.0, metavar="SECONDS",
        help="extra coalescing window before dispatching a batch (default: "
        "0, flush every event-loop tick)",
    )
    _add_executor_flags(serve)
    _add_cache_flag(serve)
    _add_trace_flag(serve)

    cache = subparsers.add_parser(
        "cache", help="inspect or prune a persistent on-disk evaluation cache"
    )
    cache.add_argument(
        "action", choices=("stats", "prune"),
        help="stats: per-namespace entry counts and sizes; prune: delete "
        "entries (all, or only those older than --older-than)",
    )
    cache.add_argument(
        "--cache-dir", required=True, metavar="DIR",
        help="the cache directory to inspect or prune",
    )
    cache.add_argument(
        "--older-than", type=float, default=None, metavar="SECONDS",
        help="prune only entries older than this many seconds "
        "(default: prune everything)",
    )
    cache.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    export = subparsers.add_parser(
        "export", help="export a paper-figure dataset as JSON or CSV"
    )
    export.add_argument("dataset", choices=EXPORT_DATASETS, help="dataset to export")
    export.add_argument(
        "--format", choices=("json", "csv"), default="json",
        help="output format (default: json)",
    )
    export.add_argument("--output", default=None, help="write to this file instead of stdout")
    _add_executor_flags(export)
    _add_cache_flag(export)

    return parser


# --------------------------------------------------------------------------- #
# Sub-command implementations (each returns the text it prints, for testing)
# --------------------------------------------------------------------------- #
def _resultset_table(resultset: ResultSet, title: str = "") -> str:
    """Render any :class:`ResultSet` as an aligned plain-text table."""
    rows = [
        ["" if cell is MISSING else cell for cell in (record.get(column, MISSING) for column in resultset.columns)]
        for record in resultset.to_records()
    ]
    return format_table(list(resultset.columns), rows, title=title or resultset.name)


def run_etee(
    spot: PdnSpot, tdp_w: float, ar: float, workload: WorkloadType, as_json: bool = False
) -> str:
    table = spot.compare_etee(tdp_w=tdp_w, application_ratio=ar, workload_type=workload)
    if as_json:
        return json.dumps(
            {
                "tdp_w": tdp_w,
                "application_ratio": ar,
                "workload_type": workload.value,
                "etee": table,
            },
            indent=2,
        )
    rows = [[name, table[name]] for name in PDN_ORDER if name in table]
    return format_table(
        ["PDN", "ETEE"], rows, title=f"ETEE at {tdp_w:g} W, AR={ar:g}, {workload.value}"
    )


def run_performance(spot: PdnSpot, tdp_w: float, suite: str, as_json: bool = False) -> str:
    benchmarks = SPEC_CPU2006_BENCHMARKS if suite == "spec" else THREEDMARK06_BENCHMARKS
    table = spot.compare_performance(benchmarks, tdp_w)
    if as_json:
        return json.dumps(
            {"tdp_w": tdp_w, "suite": suite, "performance_vs_baseline": table}, indent=2
        )
    rows = [[name, table[name]] for name in PDN_ORDER if name in table]
    return format_table(
        ["PDN", "perf vs IVR"],
        rows,
        title=f"{'SPEC CPU2006' if suite == 'spec' else '3DMark06'} at {tdp_w:g} W",
    )


def run_battery_life(spot: PdnSpot, as_json: bool = False) -> str:
    table = spot.compare_battery_life_power()
    if as_json:
        return json.dumps({"average_power_w": table}, indent=2)
    return format_mapping_table(
        table,
        row_key_header="workload",
        title="Battery-life average power (W)",
    )


def run_cost(spot: PdnSpot, tdp_w: float, as_json: bool = False) -> str:
    bom = spot.compare_bom(tdp_w)
    area = spot.compare_board_area(tdp_w)
    if as_json:
        return json.dumps(
            {"tdp_w": tdp_w, "bom_vs_baseline": bom, "board_area_vs_baseline": area},
            indent=2,
        )
    rows = [[name, bom[name], area[name]] for name in PDN_ORDER if name in bom]
    return format_table(
        ["PDN", "BOM vs IVR", "area vs IVR"], rows, title=f"Cost and board area at {tdp_w:g} W"
    )


def run_figures(
    quick: bool,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> str:
    from repro.experiments.runner import run_all_experiments

    outputs = run_all_experiments(
        include_validation=not quick, executor=executor, jobs=jobs,
        cache_dir=cache_dir,
    )
    sections = []
    for key in sorted(outputs):
        sections.append(f"===== {key} =====\n{outputs[key]}")
    return "\n\n".join(sections)


def run_predict(
    spot: PdnSpot, tdp_w: float, ar: float, workload: WorkloadType, as_json: bool = False
) -> str:
    flexwatts = spot.pdn("FlexWatts")
    conditions = OperatingConditions.for_active_workload(tdp_w, ar, workload)
    telemetry = RuntimeInputEstimator.estimate_from_conditions(conditions)
    mode = flexwatts.predict_mode_from_telemetry(telemetry)
    predictor = flexwatts.predictor
    ivr_estimate = predictor.estimate_etee(PdnMode.IVR_MODE, telemetry)
    ldo_estimate = predictor.estimate_etee(PdnMode.LDO_MODE, telemetry)
    if as_json:
        return json.dumps(
            {
                "tdp_w": tdp_w,
                "application_ratio": ar,
                "workload_type": workload.value,
                "selected_mode": mode.value,
                "ivr_mode_etee_estimate": ivr_estimate,
                "ldo_mode_etee_estimate": ldo_estimate,
            },
            indent=2,
        )
    rows = [
        ["selected mode", mode.value],
        ["IVR-Mode ETEE estimate", ivr_estimate],
        ["LDO-Mode ETEE estimate", ldo_estimate],
    ]
    return format_table(
        ["quantity", "value"],
        rows,
        title=f"Algorithm 1 at {tdp_w:g} W, AR={ar:g}, {workload.value}",
    )


def _render(resultset: ResultSet, output_format: str, title: str = "") -> str:
    if output_format == "json":
        return resultset.to_json(indent=2)
    if output_format == "csv":
        return resultset.to_csv()
    return _resultset_table(resultset, title=title)


def _remote_evaluate(server: str, endpoint: str, **fields):
    """One remote evaluation, or ``None`` when the daemon is unreachable.

    Only :class:`~repro.serve.client.ServerUnavailable` falls back -- the
    server rebuilding the same grid from the same fields makes the fallback
    (and the remote path) bit-identical to a local run.  Server-side
    *errors* (schema, budget, deadline) are request problems and propagate
    as :class:`ReproError` for ``main`` to render.
    """
    from repro.serve.client import ServeClient, ServerUnavailable

    client = ServeClient(server)
    try:
        return getattr(client, endpoint)(**fields)
    except ServerUnavailable as error:
        print(
            f"warning: {error}; falling back to local evaluation",
            file=sys.stderr,
        )
        return None


def _remote_resultset(server: str, endpoint: str, **fields) -> Optional[ResultSet]:
    """The result set of one remote evaluation (``None``: fall back local)."""
    response = _remote_evaluate(server, endpoint, **fields)
    return response.resultset if response is not None else None


def run_sweep(
    spot: PdnSpot,
    tdps: Sequence[float],
    ars: Optional[Sequence[float]] = None,
    workloads: Optional[Sequence[WorkloadType]] = None,
    power_states: Optional[Sequence[PackageCState]] = None,
    pdns: Optional[Sequence[str]] = None,
    output_format: str = "table",
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    server: Optional[str] = None,
) -> str:
    if server is not None:
        resultset = _remote_resultset(
            server, "sweep", tdps=tdps, ars=ars, workloads=workloads,
            power_states=power_states, pdns=pdns,
        )
        if resultset is not None:
            return _render(resultset, output_format, title="Study sweep")
    study = build_sweep_study(tdps, ars, workloads, power_states, pdns)
    resultset = spot.run(study, executor=executor, jobs=jobs)
    return _render(resultset, output_format, title="Study sweep")


def run_simulate(
    scenarios: Optional[Sequence[str]] = None,
    tdps: Sequence[float] = (18.0,),
    seed: int = DEFAULT_SEED,
    pdns: Optional[Sequence[str]] = None,
    output_format: str = "table",
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    server: Optional[str] = None,
) -> str:
    """Run scenario simulations and render the summary result set.

    ``--jobs``/``--executor`` dispatch the ``(scenario, PDN)`` grid through a
    parallel backend; the rendered output is bit-identical to the serial run.
    ``--cache-dir`` persists every simulation, so an identical later run --
    in any process -- replays from disk.  ``--server`` routes the grid
    through a running daemon instead (same output, shared warm cache).
    """
    if server is not None:
        resultset = _remote_resultset(
            server, "simulate", scenarios=scenarios, tdps=tdps, seed=seed, pdns=pdns
        )
        if resultset is not None:
            return _render(resultset, output_format, title="Scenario simulation")
    study = build_simulate_study(scenarios, tdps, seed, pdns)
    resultset = run_sim(study, executor=executor, jobs=jobs, cache_dir=cache_dir)
    return _render(resultset, output_format, title="Scenario simulation")


def parse_parameter_axes(specs: Optional[Sequence[str]]) -> list:
    """Parse repeated ``--param NAME=V1,V2,...`` flags into axis pairs.

    Raises :class:`ReproError` (rendered as a clean ``error: ...`` line by
    ``main``) on a malformed spec or a non-numeric value -- every scalar
    technology parameter is numeric, so string tokens are always typos.
    """
    axes = []
    for spec in specs or ():
        name, separator, values = spec.partition("=")
        if not separator or not name or not values:
            raise ConfigurationError(
                f"invalid --param {spec!r}; expected NAME=V1,V2,..."
            )
        parsed = []
        for token in values.split(","):
            token = token.strip()
            if not token:
                continue
            try:
                parsed.append(float(token))
            except ValueError:
                raise ConfigurationError(
                    f"--param {spec!r} value {token!r} is not a number"
                ) from None
        if not parsed:
            raise ConfigurationError(f"--param {spec!r} lists no values")
        axes.append((name, parsed))
    return axes


def _render_optimize(
    results: ResultSet, front: ResultSet, knee, strategy: str, output_format: str
) -> str:
    """Render one search outcome (shared by the local and ``--server`` paths)."""
    rendered = _render(
        results, output_format, title=f"Design-space search ({strategy})"
    )
    if output_format != "table":
        return rendered

    def candidate_label(record) -> str:
        """One candidate's display label: the PDN plus its sizing, if any."""
        label = str(record["pdn"])
        if "parameters" in record:
            label += f" {record['parameters']}"
        return label

    front_labels = ", ".join(
        candidate_label(record) for record in front.to_records()
    )
    footer = (
        f"Pareto front: {front_labels}\n"
        f"Knee point (balanced pick): {candidate_label(knee)}"
    )
    return f"{rendered}\n\n{footer}"


def run_optimize(
    pdns: Optional[Sequence[str]] = None,
    param_specs: Optional[Sequence[str]] = None,
    objectives: Optional[Sequence[str]] = None,
    strategy: str = "grid",
    budget: Optional[int] = None,
    seed: int = 0,
    tdps: Optional[Sequence[float]] = None,
    scenarios: Optional[Sequence[str]] = None,
    output_format: str = "table",
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    server: Optional[str] = None,
) -> str:
    """Run a design-space search and render the annotated result set.

    The evaluated candidates (with ``pareto``/``knee`` marker columns) are
    rendered through the same ``--format`` writers as ``sweep``/``export``;
    the table format appends the front and the knee-point recommendation.
    With ``--server`` the search runs on the daemon and the front/knee are
    reconstructed from the marker columns of the returned result set.
    """
    param_axes = parse_parameter_axes(param_specs)
    if server is not None:
        response = _remote_evaluate(
            server, "optimize",
            objectives=objectives, strategy=strategy, budget=budget, seed=seed,
            pdns=pdns, params=dict(param_axes) if param_axes else None,
            tdps=tdps, scenarios=scenarios,
        )
        if response is not None:
            results = response.resultset
            front = results.filter(pareto=True)
            knee = results.row(results.column("knee").index(True))
            return _render_optimize(
                results, front, knee, response.strategy or strategy, output_format
            )
    space = build_optimize_space(pdns, param_axes)
    settings_kwargs = {}
    if tdps:
        settings_kwargs["tdps_w"] = tuple(tdps)
    if scenarios:
        settings_kwargs["scenarios"] = tuple(scenarios)
    settings = EvaluationSettings(**settings_kwargs) if settings_kwargs else None
    outcome = run_optimization(
        space,
        objectives=objectives,
        strategy=strategy,
        budget=budget,
        seed=seed,
        settings=settings,
        executor=executor,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    return _render_optimize(
        outcome.results, outcome.front, outcome.knee, outcome.strategy, output_format
    )


def export_dataset(
    dataset: str,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> ResultSet:
    """Regenerate one exportable figure dataset as a :class:`ResultSet`.

    ``executor`` / ``jobs`` parallelise (and ``cache_dir`` persists) the
    grid-backed datasets (the Fig. 4 grids); the small closed-form datasets
    (Fig. 2/3) ignore them.
    """
    from repro.experiments import (
        fig2_performance_model,
        fig3_vr_efficiency,
        fig4_validation,
    )

    if dataset == "fig2a":
        return fig2_performance_model.frequency_sensitivity_resultset()
    if dataset == "fig2b":
        return fig2_performance_model.budget_breakdown_resultset()
    if dataset == "fig3":
        return fig3_vr_efficiency.vr_efficiency_resultset()
    if dataset == "fig4-grid":
        return fig4_validation.etee_grid_resultset(
            executor=executor, jobs=jobs, cache_dir=cache_dir
        )
    if dataset == "fig4-power-states":
        return fig4_validation.power_state_grid_resultset(
            executor=executor, jobs=jobs, cache_dir=cache_dir
        )
    raise ValueError(f"unknown dataset {dataset!r}; choose from: {', '.join(EXPORT_DATASETS)}")


def run_export(
    dataset: str,
    output_format: str = "json",
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
) -> str:
    return _render(
        export_dataset(dataset, executor=executor, jobs=jobs, cache_dir=cache_dir),
        output_format,
    )


def run_cache_command(
    action: str,
    cache_dir: str,
    older_than_s: Optional[float] = None,
    as_json: bool = False,
) -> str:
    """Inspect (``stats``) or reclaim (``prune``) a cache directory."""
    from repro.cache import cache_stats_payload, prune_cache_dir

    if action == "stats" and older_than_s is not None:
        # Accepting-and-ignoring the flag would let a user misread the full
        # footprint as an age-filtered one before pruning on it.
        raise ConfigurationError("--older-than only applies to `cache prune`")
    if action == "prune":
        removed = prune_cache_dir(cache_dir, older_than_s)
        if as_json:
            return json.dumps(
                {"cache_dir": cache_dir, "removed_entries": removed}, indent=2
            )
        return f"pruned {removed} entries from {cache_dir}"
    # The same schema helper feeds the daemon's GET /v1/stats "disk" section,
    # so the two observability surfaces cannot drift.
    payload = cache_stats_payload(cache_dir)
    if as_json:
        return json.dumps(payload, indent=2)
    rows = [
        [namespace, entry["entries"], entry["size_bytes"]]
        for namespace, entry in payload["namespaces"].items()
    ]
    if not rows:
        return f"no cache entries under {cache_dir}"
    return format_table(
        ["namespace", "entries", "bytes"], rows, title=f"Disk cache {cache_dir}"
    )


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as handle:
            handle.write(text if text.endswith("\n") else text + "\n")
        print(f"wrote {output}")
    else:
        print(text)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as error:
        # Model/configuration errors (unknown PDN, bad study axis, ...) are
        # user input errors, not crashes; keep stdout clean for --json/--format.
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # The downstream pipe (e.g. `repro export ... | head`) closed early;
        # close stdout quietly so the interpreter does not traceback on flush.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    except OSError as error:
        print(f"error: cannot write output: {error}", file=sys.stderr)
        return 1


def _dispatch(args: argparse.Namespace) -> int:
    """Run one parsed command, wrapped in tracing when ``--trace`` was given.

    The tracer is installed before any engine work starts and uninstalled
    in a ``finally``, so the Chrome-trace file is written (with the final
    metrics counter samples) even when the command fails or the serve
    daemon is interrupted.
    """
    trace_path = getattr(args, "trace", None)
    if trace_path is None:
        return _run_command(args)
    from repro.obs import METRICS, install_tracer, uninstall_tracer
    from repro.obs import write_chrome_trace

    install_tracer()
    try:
        return _run_command(args)
    finally:
        write_chrome_trace(trace_path, uninstall_tracer(), METRICS)
        print(f"wrote trace to {trace_path}", file=sys.stderr)


def _run_command(args: argparse.Namespace) -> int:
    """Dispatch one parsed command to its implementation."""
    if args.command == "figures":
        print(
            run_figures(
                args.quick,
                executor=args.executor,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
            )
        )
        return 0
    if args.command == "serve":
        from repro.serve.server import DEFAULT_PORT, EvaluationServer

        server = EvaluationServer(
            host=args.host,
            port=args.port if args.port is not None else DEFAULT_PORT,
            cache_dir=args.cache_dir,
            executor=args.executor,
            jobs=args.jobs,
            timeout_s=args.timeout,
            max_timeout_s=args.max_timeout,
            max_units=args.max_units,
            batch_window_s=args.batch_window,
        )
        return server.run()
    if args.command == "cache":
        print(
            run_cache_command(
                args.action, args.cache_dir, args.older_than, as_json=args.json
            )
        )
        return 0
    if args.command == "export":
        _emit(
            run_export(
                args.dataset,
                args.format,
                executor=args.executor,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
            ),
            args.output,
        )
        return 0
    if args.command == "optimize":
        _emit(
            run_optimize(
                pdns=args.pdns,
                param_specs=args.param,
                objectives=args.objectives,
                strategy=args.strategy,
                budget=args.budget,
                seed=args.seed,
                tdps=args.tdps,
                scenarios=args.scenario,
                output_format=args.format,
                executor=args.executor,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                server=args.server,
            ),
            args.output,
        )
        return 0
    if args.command == "simulate":
        _emit(
            run_simulate(
                scenarios=args.scenario,
                tdps=args.tdps,
                seed=args.seed,
                pdns=args.pdns,
                output_format=args.format,
                executor=args.executor,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                server=args.server,
            ),
            args.output,
        )
        return 0
    spot = PdnSpot(disk_cache=getattr(args, "cache_dir", None))
    if args.command == "etee":
        print(run_etee(spot, args.tdp, args.ar, args.workload, as_json=args.json))
    elif args.command == "performance":
        print(run_performance(spot, args.tdp, args.suite, as_json=args.json))
    elif args.command == "battery-life":
        print(run_battery_life(spot, as_json=args.json))
    elif args.command == "cost":
        print(run_cost(spot, args.tdp, as_json=args.json))
    elif args.command == "predict":
        print(run_predict(spot, args.tdp, args.ar, args.workload, as_json=args.json))
    elif args.command == "sweep":
        _emit(
            run_sweep(
                spot,
                args.tdps,
                ars=args.ars,
                workloads=args.workloads,
                power_states=args.power_states,
                pdns=args.pdns,
                output_format=args.format,
                executor=args.executor,
                jobs=args.jobs,
                server=args.server,
            ),
            args.output,
        )
    return 0
