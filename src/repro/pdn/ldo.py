"""The LDO PDN model (Fig. 1c, Eq. 10--12).

The LDO PDN (AMD-Zen-style) statically splits the domains by their power
range: the SA and IO domains (low, narrow power) get dedicated single-stage
board regulators, while the compute domains (cores, LLC, graphics -- wide
power range) sit behind on-chip LDO regulators fed by a shared board ``V_IN``
regulator.  ``V_IN`` is programmed to the *maximum* voltage any compute domain
needs; the domain that needs that voltage runs its LDO in bypass mode, and
lower-voltage domains regulate linearly (with efficiency ~Vout/Vin, Eq. 10).

Strengths captured by the model: single effective conversion stage for light
loads and CPU workloads where all compute domains share one voltage.
Weaknesses: graphics workloads force a large voltage gap between the graphics
and core domains, collapsing the core LDO efficiency (Observation 2), and the
chip is fed at a low voltage, so input current and I^2 R losses are high at
high TDP (Observation 1).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.pdn.base import (
    OperatingConditions,
    PdnEvaluation,
    PowerDeliveryNetwork,
    peak_domain_powers_w,
)
from repro.pdn.common import (
    ICCMAX_DESIGN_MARGIN,
    MIN_BOARD_VR_ICCMAX_A,
    apply_guardbands,
    evaluate_board_rail,
    group_power_w,
    group_voltage_v,
)
from repro.pdn.losses import LossBreakdown
from repro.power.domains import COMPUTE_DOMAINS, DomainKind, WorkloadType
from repro.power.parameters import PdnTechnologyParameters
from repro.soc.dvfs import compute_voltage_for_tdp, gfx_voltage_for_tdp
from repro.util.validation import require_positive
from repro.vr.base import RegulatorOperatingPoint
from repro.vr.efficiency_curves import default_input_vr
from repro.vr.ldo import LowDropoutRegulator
from repro.vr.load_line import LoadLine

#: Dedicated board rails of the LDO PDN (domain, rail name).
LDO_UNCORE_RAILS: Tuple[Tuple[DomainKind, str], ...] = (
    (DomainKind.SA, "V_SA"),
    (DomainKind.IO, "V_IO"),
)


class LdoPdn(PowerDeliveryNetwork):
    """Hybrid board + on-chip-LDO PDN (Eq. 10--12)."""

    name = "LDO"

    def __init__(
        self,
        parameters: Optional[PdnTechnologyParameters] = None,
        input_loadline_scale: float = 1.0,
    ):
        super().__init__(parameters)
        self._input_load_line = LoadLine(
            self.parameters.ldo_input_loadline_ohm * input_loadline_scale
        )

    # ------------------------------------------------------------------ #
    # Compute-side (LDO) evaluation, reused by FlexWatts' LDO-Mode
    # ------------------------------------------------------------------ #
    def evaluate_compute_side(
        self,
        conditions: OperatingConditions,
        breakdown: LossBreakdown,
        load_line: Optional[LoadLine] = None,
    ) -> Tuple[float, float, float]:
        """Evaluate the LDO-fed compute domains.

        Returns ``(supply_power_w, chip_input_current_a, rail_voltage_v)`` for
        the shared ``V_IN`` rail and accumulates losses into ``breakdown``.
        """
        params = self.parameters
        load_line = load_line if load_line is not None else self._input_load_line
        guardbanded = apply_guardbands(
            conditions.loads,
            tolerance_band_v=params.ldo_tolerance_band_v,
            power_gated_domains=(),  # the LDOs themselves act as power gates
            parameters=params,
        )
        compute_items = {
            kind: guardbanded[kind]
            for kind in COMPUTE_DOMAINS
            if guardbanded[kind].gated_power_w > 0.0
        }
        breakdown.other_w += sum(
            guardbanded[kind].guardband_loss_w for kind in COMPUTE_DOMAINS
        )
        if not compute_items:
            return 0.0, 0.0, 0.0

        # V_IN is programmed to the maximum voltage any compute domain needs.
        input_voltage_v = max(item.load.voltage_v for item in compute_items.values())

        # Second stage: one LDO per compute domain (Eq. 10/11).
        input_rail_power_w = 0.0
        for kind, item in compute_items.items():
            ldo = LowDropoutRegulator(
                name=f"LDO_{kind.value}",
                current_efficiency=params.ldo_current_efficiency,
            )
            point = RegulatorOperatingPoint(
                input_voltage_v=input_voltage_v,
                output_voltage_v=item.load.voltage_v,
                output_current_a=item.gated_power_w / item.load.voltage_v,
            )
            ldo.set_mode(ldo.mode_for(point))
            domain_input_w = ldo.input_power_w(point)
            breakdown.on_chip_vr_w += domain_input_w - item.gated_power_w
            breakdown.rail_details[f"LDO_{kind.value}"] = domain_input_w
            input_rail_power_w += domain_input_w

        # Shared V_IN rail: load-line (Eq. 7/8) and the board regulator.
        ll_result = load_line.apply(
            input_voltage_v, input_rail_power_w, conditions.application_ratio
        )
        breakdown.conduction_compute_w += ll_result.conduction_loss_w
        input_vr = default_input_vr(
            "V_IN", iccmax_a=self._input_vr_iccmax_a(conditions.tdp_w)
        )
        input_vr.set_power_state(conditions.board_vr_state)
        point = RegulatorOperatingPoint(
            input_voltage_v=params.supply_voltage_v,
            output_voltage_v=ll_result.rail_voltage_v,
            output_current_a=ll_result.rail_current_a,
        )
        supply_power_w = input_vr.input_power_w(point)
        breakdown.off_chip_vr_w += supply_power_w - ll_result.rail_power_w
        return supply_power_w, ll_result.rail_current_a, ll_result.rail_voltage_v

    # ------------------------------------------------------------------ #
    # Uncore (SA/IO) board rails, shared with I+MBVR and FlexWatts
    # ------------------------------------------------------------------ #
    def evaluate_uncore_rails(
        self, conditions: OperatingConditions, breakdown: LossBreakdown
    ) -> Tuple[float, float, Dict[str, float]]:
        """Evaluate the dedicated SA and IO board rails.

        Returns ``(supply_power_w, chip_input_current_a, rail_voltages)`` and
        accumulates losses into ``breakdown``.
        """
        params = self.parameters
        guardbanded = apply_guardbands(
            conditions.loads,
            tolerance_band_v=params.ldo_tolerance_band_v,
            power_gated_domains=(DomainKind.SA, DomainKind.IO),
            parameters=params,
        )
        breakdown.other_w += sum(
            guardbanded[kind].guardband_loss_w for kind, _ in LDO_UNCORE_RAILS
        )
        peak_powers = peak_domain_powers_w(conditions.tdp_w)
        supply_power_w = 0.0
        current_a = 0.0
        rail_voltages: Dict[str, float] = {}
        for kind, rail_name in LDO_UNCORE_RAILS:
            rail_power_w = group_power_w(guardbanded, (kind,))
            rail_voltage_v = group_voltage_v(conditions, (kind,))
            rail = evaluate_board_rail(
                name=rail_name,
                rail_power_w=rail_power_w,
                rail_voltage_v=rail_voltage_v,
                load_line=LoadLine(params.uncore_loadline_ohm[kind]),
                conditions=conditions,
                parameters=params,
                sizing_peak_current_a=peak_powers[kind] / rail_voltage_v,
            )
            supply_power_w += rail.supply_power_w
            current_a += rail.rail_current_a
            rail_voltages[rail_name] = rail.rail_voltage_v
            breakdown.off_chip_vr_w += rail.off_chip_vr_loss_w
            breakdown.conduction_uncore_w += rail.conduction_loss_w
            breakdown.other_w += rail.idle_quiescent_w
            breakdown.rail_details[rail_name] = rail.supply_power_w
        return supply_power_w, current_a, rail_voltages

    # ------------------------------------------------------------------ #
    # Full PDN evaluation (Eq. 12)
    # ------------------------------------------------------------------ #
    def evaluate(self, conditions: OperatingConditions) -> PdnEvaluation:
        breakdown = LossBreakdown()
        compute_supply_w, compute_current_a, input_rail_v = self.evaluate_compute_side(
            conditions, breakdown
        )
        uncore_supply_w, uncore_current_a, rail_voltages = self.evaluate_uncore_rails(
            conditions, breakdown
        )
        if input_rail_v > 0.0:
            rail_voltages["V_IN"] = input_rail_v
        return PdnEvaluation(
            pdn_name=self.name,
            nominal_power_w=conditions.nominal_power_w,
            supply_power_w=compute_supply_w + uncore_supply_w,
            breakdown=breakdown,
            chip_input_current_a=compute_current_a + uncore_current_a,
            rail_voltages_v=rail_voltages,
        )

    # ------------------------------------------------------------------ #
    # Cost-model inputs
    # ------------------------------------------------------------------ #
    def _input_vr_iccmax_a(self, tdp_w: float) -> float:
        peaks = peak_domain_powers_w(tdp_w)
        # The two worst-case scenarios cannot co-occur: a CPU-bound power
        # virus (cores + LLC at the core voltage, graphics gated) and a
        # graphics-bound power virus (graphics + LLC at the graphics voltage,
        # cores at their secondary allocation).  The shared V_IN regulator is
        # sized for whichever draws more current.
        core_voltage_v = compute_voltage_for_tdp(tdp_w)
        gfx_voltage_v = gfx_voltage_for_tdp(tdp_w, WorkloadType.GRAPHICS)
        cpu_scenario_w = peaks[DomainKind.CORE0] + peaks[DomainKind.CORE1] + peaks[DomainKind.LLC]
        gfx_scenario_w = peaks[DomainKind.GFX] + peaks[DomainKind.LLC] + 0.3 * (
            peaks[DomainKind.CORE0] + peaks[DomainKind.CORE1]
        )
        current_a = max(
            cpu_scenario_w / core_voltage_v,
            gfx_scenario_w / max(gfx_voltage_v, core_voltage_v),
        )
        return max(MIN_BOARD_VR_ICCMAX_A, current_a * ICCMAX_DESIGN_MARGIN)

    def iccmax_requirements_a(self, tdp_w: float) -> Dict[str, float]:
        """Off-chip Iccmax: shared V_IN plus dedicated SA and IO regulators."""
        require_positive(tdp_w, "tdp_w")
        peaks = peak_domain_powers_w(tdp_w)
        return {
            "V_IN": self._input_vr_iccmax_a(tdp_w),
            "V_SA": max(
                MIN_BOARD_VR_ICCMAX_A, peaks[DomainKind.SA] / 0.8 * ICCMAX_DESIGN_MARGIN
            ),
            "V_IO": max(
                MIN_BOARD_VR_ICCMAX_A, peaks[DomainKind.IO] / 1.0 * ICCMAX_DESIGN_MARGIN
            ),
        }

    def describe(self) -> str:
        return (
            "LDO PDN: board V_IN + on-chip LDOs for the compute domains, "
            "dedicated board regulators for SA/IO"
        )
