"""Vectorized columnar evaluation of the PDN models.

This module is the compute core of the redesigned ``EvaluationEngine`` batch
API: instead of one Python call per operating point, a whole grid of
:class:`~repro.pdn.base.OperatingConditions` is laid out as NumPy column
arrays (:class:`ConditionsBatch`) and each PDN topology is evaluated with one
vectorized pass per metric column.

Bit-identity contract
---------------------
The scalar ``evaluate()`` methods remain the *reference oracle*: every result
produced here must be bit-identical to what the per-point path returns for
the same conditions (the seed-equivalence suite and ``repro.serve``'s
bit-identical-response guarantee compare with ``==``).  Three rules make that
possible:

* NumPy's elementwise ``+ - * /``, ``np.maximum`` and ``np.minimum`` are the
  same IEEE-754 operations CPython applies to scalar floats, so each kernel
  mirrors the scalar model's exact operation order (including the order of
  ``+=`` accumulations).
* Transcendentals (``**``, ``exp``) are *not* bit-stable under SIMD, so they
  go through the unique-value memos of :mod:`repro.util.vecmath`, which call
  the scalar CPython operation once per distinct input.
* Quantities that only depend on the TDP column (regulator Iccmax sizing,
  per-phase loss coefficients) are computed by calling the *scalar* sizing
  helpers once per unique TDP and scattering the results, so there is no
  reimplementation to drift.

Fallback contract
-----------------
Whenever a batch contains a condition the vector path cannot reproduce
exactly -- an unsupported operating point (over-current, insufficient
headroom), a VR power state the regulator does not define, a monkeypatched
model instance, or loads not in canonical domain order --
:func:`evaluate_columns` returns ``None`` and the caller re-runs the batch
through the scalar oracle so the precise scalar exception (or result)
surfaces.  Capability is advertised per instance by :func:`supports_columns`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.pdn.base import (
    OperatingConditions,
    PdnEvaluation,
    peak_domain_powers_w,
)
from repro.pdn.common import ICCMAX_DESIGN_MARGIN, MIN_BOARD_VR_ICCMAX_A
from repro.pdn.imbvr import IMbvrPdn
from repro.pdn.ivr import IvrPdn
from repro.pdn.ldo import LDO_UNCORE_RAILS, LdoPdn
from repro.pdn.losses import LossBreakdown
from repro.pdn.mbvr import MBVR_RAILS, MbvrPdn
from repro.power.domains import COMPUTE_DOMAINS, DomainKind
from repro.util.vecmath import HAVE_NUMPY, exact_exp, exact_pow2, per_unique
from repro.vr.efficiency_curves import (
    _board_phase_configs,
    default_board_vr,
    default_ivr,
)
from repro.vr.ldo import LowDropoutRegulator
from repro.vr.switching import VRPowerState

if HAVE_NUMPY:  # pragma: no branch - numpy is part of the baked toolchain
    import numpy as np
else:  # pragma: no cover
    np = None

__all__ = [
    "ColumnarFallback",
    "ConditionsBatch",
    "evaluate_columns",
    "supports_columns",
]

#: Canonical domain order: the order ``OperatingConditions`` factories emit
#: loads in.  Batches require it so dict/accumulation order matches the
#: scalar models exactly.
_DOMAIN_ORDER: Tuple[DomainKind, ...] = tuple(DomainKind)

# Design constants of the default regulators, captured from probe instances so
# the kernels share the exact floats of the scalar models instead of
# duplicating literals.
_BOARD_DESIGN = default_board_vr("columnar_probe", MIN_BOARD_VR_ICCMAX_A).design
_IVR_DESIGN = default_ivr("columnar_probe").design


class ColumnarFallback(Exception):
    """Internal signal: this batch must be re-run through the scalar oracle."""


#: Memo of :func:`peak_domain_powers_w` keyed by TDP.  The function is pure
#: and interpolates several curves per call, which dominated the sizing step;
#: grids revisit the same few TDPs constantly.  Bounded to stay O(grid axes).
_PEAK_POWERS_MEMO: Dict[float, Dict[DomainKind, float]] = {}


def _peak_powers(tdp_w: float) -> Dict[DomainKind, float]:
    peaks = _PEAK_POWERS_MEMO.get(tdp_w)
    if peaks is None:
        if len(_PEAK_POWERS_MEMO) >= 4096:
            _PEAK_POWERS_MEMO.clear()
        peaks = _PEAK_POWERS_MEMO[tdp_w] = peak_domain_powers_w(tdp_w)
    return peaks


# --------------------------------------------------------------------------- #
# Column layout
# --------------------------------------------------------------------------- #
class ConditionsBatch:
    """A grid of operating conditions laid out as per-column NumPy arrays.

    Scalar per-condition attributes become float64 arrays; per-domain load
    attributes become one array per :class:`DomainKind`.  ``from_conditions``
    returns ``None`` when the batch cannot be represented (loads not in
    canonical domain order), which callers treat as "use the scalar path".
    """

    __slots__ = (
        "conditions",
        "n",
        "tdp_w",
        "application_ratio",
        "board_states",
        "state_codes",
        "nominal",
        "voltage",
        "leakage",
        "active",
        "gated_rail",
        "effective",
        "nominal_total",
    )

    @classmethod
    def from_conditions(
        cls, conditions: Sequence[OperatingConditions]
    ) -> Optional["ConditionsBatch"]:
        conditions = list(conditions)
        n_domains = len(_DOMAIN_ORDER)
        tdp: List[float] = []
        ar: List[float] = []
        states: List[VRPowerState] = []
        codes: List[float] = []
        # Per-domain columns as positional (lists, expected kind) slots so the
        # hot loop appends to local lists without dict/enum lookups.
        slots = [
            ([], [], [], [], [], kind) for kind in _DOMAIN_ORDER
        ]
        for c in conditions:
            loads = c.loads
            if len(loads) != n_domains:
                return None
            state = c.board_vr_state
            tdp.append(c.tdp_w)
            ar.append(c.application_ratio)
            states.append(state)
            codes.append(float(state.value))
            for load, (nom, volt, leak, act, gate, kind) in zip(loads, slots):
                if load.kind is not kind:
                    return None
                nom.append(load.nominal_power_w)
                volt.append(load.voltage_v)
                leak.append(load.leakage_fraction)
                act.append(load.active)
                gate.append(load.power_gated_rail)
        batch = cls.__new__(cls)
        batch.conditions = conditions
        batch.n = len(conditions)
        batch.tdp_w = np.array(tdp, dtype=np.float64)
        batch.application_ratio = np.array(ar, dtype=np.float64)
        batch.board_states = states
        batch.state_codes = np.array(codes, dtype=np.float64)
        batch.nominal = {
            kind: np.array(nom, dtype=np.float64)
            for nom, _, _, _, _, kind in slots
        }
        batch.voltage = {
            kind: np.array(volt, dtype=np.float64)
            for _, volt, _, _, _, kind in slots
        }
        batch.leakage = {
            kind: np.array(leak, dtype=np.float64)
            for _, _, leak, _, _, kind in slots
        }
        batch.active = {
            kind: np.array(act, dtype=bool) for _, _, _, act, _, kind in slots
        }
        batch.gated_rail = {
            kind: np.array(gate, dtype=bool) for _, _, _, _, gate, kind in slots
        }
        batch.effective = {
            k: np.where(batch.active[k], batch.nominal[k], 0.0) for k in _DOMAIN_ORDER
        }
        # Sequential sum in load order, mirroring the nominal_power_w property.
        total = None
        for kind in _DOMAIN_ORDER:
            total = (
                batch.effective[kind]
                if total is None
                else total + batch.effective[kind]
            )
        batch.nominal_total = total
        return batch

    def take(self, indices: Sequence[int]) -> "ConditionsBatch":
        """A sub-batch holding the lanes in ``indices`` (in that order)."""
        idx = np.asarray(indices, dtype=np.intp)
        sub = ConditionsBatch.__new__(ConditionsBatch)
        sub.conditions = [self.conditions[i] for i in indices]
        sub.n = len(sub.conditions)
        sub.tdp_w = self.tdp_w[idx]
        sub.application_ratio = self.application_ratio[idx]
        sub.board_states = [self.board_states[i] for i in indices]
        sub.state_codes = self.state_codes[idx]
        sub.nominal = {k: v[idx] for k, v in self.nominal.items()}
        sub.voltage = {k: v[idx] for k, v in self.voltage.items()}
        sub.leakage = {k: v[idx] for k, v in self.leakage.items()}
        sub.active = {k: v[idx] for k, v in self.active.items()}
        sub.gated_rail = {k: v[idx] for k, v in self.gated_rail.items()}
        sub.effective = {k: v[idx] for k, v in self.effective.items()}
        sub.nominal_total = self.nominal_total[idx]
        return sub

    def per_unique_tdp(self, fn) -> "np.ndarray":
        """Apply scalar ``fn`` once per unique TDP and scatter back."""
        return per_unique(self.tdp_w, fn)


class _LossColumns:
    """Columnar mirror of :class:`LossBreakdown` during kernel evaluation."""

    __slots__ = (
        "on_chip_vr_w",
        "off_chip_vr_w",
        "conduction_compute_w",
        "conduction_uncore_w",
        "other_w",
        "details",
    )

    def __init__(self, n: int):
        zeros = np.zeros(n, dtype=np.float64)
        self.on_chip_vr_w = zeros
        self.off_chip_vr_w = zeros
        self.conduction_compute_w = zeros
        self.conduction_uncore_w = zeros
        self.other_w = zeros
        # Ordered (rail name, values array, lane mask or None) entries.
        self.details: List[Tuple[str, "np.ndarray", Optional["np.ndarray"]]] = []


class _RailColumns:
    """Columnar mirror of :class:`~repro.pdn.common.RailEvaluation`."""

    __slots__ = (
        "supply",
        "voltage",
        "current",
        "conduction",
        "off_chip",
        "idle_quiescent",
    )

    def __init__(self, supply, voltage, current, conduction, off_chip, idle_quiescent):
        self.supply = supply
        self.voltage = voltage
        self.current = current
        self.conduction = conduction
        self.off_chip = off_chip
        self.idle_quiescent = idle_quiescent


class _SwitchingCoeffs:
    """Per-lane loss coefficients of a board switching regulator."""

    __slots__ = ("quiescent_w", "switching", "conduction", "drive", "iccmax")

    def __init__(self, quiescent_w, switching, conduction, drive, iccmax):
        self.quiescent_w = quiescent_w
        self.switching = switching
        self.conduction = conduction
        self.drive = drive
        self.iccmax = iccmax


# --------------------------------------------------------------------------- #
# Vectorized building blocks (each mirrors one scalar helper exactly)
# --------------------------------------------------------------------------- #
def _scale_power_vec(power, voltage, guardband, leakage_fraction, exponent):
    """Vector mirror of :func:`repro.power.leakage.scale_power_with_voltage`."""
    ratio = (voltage + guardband) / voltage
    ratio_leak, ratio_dyn = exact_pow2(ratio, exponent, 2)
    leakage_term = leakage_fraction * ratio_leak
    dynamic_term = (1.0 - leakage_fraction) * ratio_dyn
    return power * (leakage_term + dynamic_term)


def _apply_guardbands_vec(batch, tolerance_band_v, gated_kinds, params):
    """Vector mirror of :func:`repro.pdn.common.apply_guardbands`.

    Returns ``{kind: gated_power_w array}``.
    """
    out: Dict[DomainKind, "np.ndarray"] = {}
    for kind in _DOMAIN_ORDER:
        nominal = batch.nominal[kind]
        voltage = batch.voltage[kind]
        leakage = batch.leakage[kind]
        m = batch.active[kind] & (nominal != 0.0)
        pgb = np.where(
            m,
            _scale_power_vec(
                nominal, voltage, tolerance_band_v, leakage, params.leakage_exponent
            ),
            0.0,
        )
        ppg = pgb
        if kind in gated_kinds:
            impedance = params.power_gate_impedance_ohm.get(kind, 0.0)
            if impedance != 0.0:
                gated_voltage = voltage + tolerance_band_v
                current = pgb / gated_voltage
                drop = impedance * current
                rescaled = _scale_power_vec(
                    pgb, gated_voltage, drop, leakage, params.leakage_exponent
                )
                ppg = np.where(
                    (pgb != 0.0) & batch.gated_rail[kind], rescaled, pgb
                )
        out[kind] = ppg
    return out


def _guardband_loss_sum(batch, gated, kinds):
    """Sequential sum of per-domain guardband losses, in ``kinds`` order."""
    total = None
    for kind in kinds:
        loss = gated[kind] - batch.effective[kind]
        total = loss if total is None else total + loss
    return total


def _group_power(gated, kinds):
    """Vector mirror of :func:`repro.pdn.common.group_power_w`."""
    total = None
    for kind in kinds:
        total = gated[kind] if total is None else total + gated[kind]
    return total


def _group_voltage(batch, kinds):
    """Vector mirror of :func:`repro.pdn.common.group_voltage_v`."""
    best = np.full(batch.n, -np.inf)
    has_active = np.zeros(batch.n, dtype=bool)
    for kind in kinds:
        eligible = batch.active[kind] & (batch.nominal[kind] > 0.0)
        best = np.where(eligible, np.maximum(best, batch.voltage[kind]), best)
        has_active |= eligible
    return np.where(has_active, best, batch.voltage[kinds[0]])


def _loadline_vec(impedance_ohm, rail_voltage, rail_power, application_ratio):
    """Vector mirror of :meth:`repro.vr.load_line.LoadLine.apply`.

    The zero-power branch needs no mask: with ``P == 0`` the formulas below
    collapse to exactly (nominal voltage, 0, 0, 0).
    """
    peak_power = rail_power / application_ratio
    peak_current = peak_power / rail_voltage
    guardbanded_voltage = rail_voltage + impedance_ohm * peak_current
    rail_current = rail_power / rail_voltage
    guardbanded_power = guardbanded_voltage * rail_current
    conduction = guardbanded_power - rail_power
    return guardbanded_voltage, guardbanded_power, rail_current, conduction


def _switching_coefficients(batch, iccmax):
    """Per-lane phase-configuration coefficients of a board regulator.

    Computed by calling the scalar :func:`_board_phase_configs` once per
    unique ``(iccmax, power state)`` pair.  Raises :class:`ColumnarFallback`
    when any lane's power state is undefined for the regulator (the scalar
    path raises ``ConfigurationError`` there).
    """
    key = iccmax + 1j * batch.state_codes
    uniq, inverse = np.unique(key, return_inverse=True)
    rows = []
    for pair in uniq.tolist():
        state = VRPowerState(int(pair.imag))
        config = _board_phase_configs(pair.real).get(state)
        if config is None:
            raise ColumnarFallback(
                f"power state {state.name} undefined for board regulators"
            )
        rows.append(
            (
                config.quiescent_w,
                config.switching_w_per_v_a,
                config.conduction_ohm,
                config.drive_w_per_a,
            )
        )
    table = np.array(rows, dtype=np.float64)[inverse]
    return _SwitchingCoeffs(
        table[:, 0], table[:, 1], table[:, 2], table[:, 3], iccmax
    )


def _switching_supply(coeffs, input_voltage_v, output_voltage, current, check):
    """Vector mirror of ``SwitchingRegulator.input_power_w`` (active lanes).

    ``check`` masks the lanes the scalar path would actually evaluate; an
    operating-point violation on any of them triggers the fallback so the
    scalar exception can surface.  Lanes outside ``check`` produce NaN and
    must be replaced by the caller.
    """
    violation = check & (
        (current > coeffs.iccmax)
        | ((input_voltage_v - output_voltage) < _BOARD_DESIGN.min_headroom_v)
    )
    if violation.any():
        raise ColumnarFallback("unsupported board-regulator operating point")
    output_power = output_voltage * current
    conversion_drop = np.maximum(0.0, input_voltage_v - output_voltage)
    loss = (
        coeffs.quiescent_w
        + coeffs.switching * input_voltage_v * current
        + coeffs.conduction * current * current
        + coeffs.drive * current
        + _BOARD_DESIGN.regulation_penalty * conversion_drop * output_power
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        efficiency = output_power / (output_power + loss)
        efficiency = np.minimum(efficiency, _BOARD_DESIGN.max_efficiency)
        return output_power / efficiency


def _board_rail_vec(batch, rail_power, rail_voltage, impedance_ohm, sizing_current, params):
    """Vector mirror of :func:`repro.pdn.common.evaluate_board_rail`."""
    iccmax = np.maximum(MIN_BOARD_VR_ICCMAX_A, sizing_current * ICCMAX_DESIGN_MARGIN)
    coeffs = _switching_coefficients(batch, iccmax)
    m = rail_power > 0.0
    ll_voltage, ll_power, ll_current, ll_conduction = _loadline_vec(
        impedance_ohm, rail_voltage, rail_power, batch.application_ratio
    )
    supply_active = _switching_supply(
        coeffs, params.supply_voltage_v, ll_voltage, ll_current, check=m
    )
    idle = coeffs.quiescent_w
    return _RailColumns(
        supply=np.where(m, supply_active, idle),
        voltage=ll_voltage,
        current=ll_current,
        conduction=ll_conduction,
        off_chip=np.where(m, supply_active - ll_power, 0.0),
        idle_quiescent=np.where(m, 0.0, idle),
    )


def _ivr_domain_input(batch, kind, gated_power, input_voltage_v):
    """Vector mirror of one per-domain IVR conversion (active-lane mask, P_in)."""
    voltage = batch.voltage[kind]
    m = gated_power > 0.0
    current = gated_power / voltage
    iccmax = np.maximum(5.0, 2.0 * gated_power / voltage)
    violation = m & ((current > iccmax) | (voltage >= input_voltage_v))
    if violation.any():
        raise ColumnarFallback("unsupported IVR operating point")
    output_power = voltage * current
    light_load = _IVR_DESIGN.light_load_penalty * exact_exp(
        (-current) / _IVR_DESIGN.light_load_current_a
    )
    conversion = _IVR_DESIGN.conversion_penalty_per_v * np.maximum(
        0.0, _IVR_DESIGN.reference_output_v - voltage
    )
    efficiency = _IVR_DESIGN.peak_efficiency - light_load - conversion
    efficiency = np.maximum(0.5, np.minimum(efficiency, _IVR_DESIGN.peak_efficiency))
    return m, output_power / efficiency


# --------------------------------------------------------------------------- #
# Per-topology kernels
# --------------------------------------------------------------------------- #
def _evaluate_ivr(pdn: IvrPdn, batch: ConditionsBatch):
    params = pdn.parameters
    gated = _apply_guardbands_vec(
        batch, params.ivr_tolerance_band_v, frozenset(), params
    )
    loss = _LossColumns(batch.n)
    loss.other_w = _guardband_loss_sum(batch, gated, _DOMAIN_ORDER)

    input_voltage_v = params.ivr_input_voltage_v
    input_rail = np.zeros(batch.n)
    compute_share = np.zeros(batch.n)
    for kind in _DOMAIN_ORDER:
        m, domain_input = _ivr_domain_input(batch, kind, gated[kind], input_voltage_v)
        loss.on_chip_vr_w = np.where(
            m, loss.on_chip_vr_w + (domain_input - gated[kind]), loss.on_chip_vr_w
        )
        loss.details.append((f"IVR_{kind.value}", domain_input, m))
        input_rail = np.where(m, input_rail + domain_input, input_rail)
        if kind in COMPUTE_DOMAINS:
            compute_share = np.where(m, compute_share + domain_input, compute_share)

    ll_voltage, ll_power, ll_current, ll_conduction = _loadline_vec(
        pdn._input_load_line.impedance_ohm,
        input_voltage_v,
        input_rail,
        batch.application_ratio,
    )
    m_in = input_rail > 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        compute_fraction = np.where(m_in, compute_share / input_rail, 0.0)
    loss.conduction_compute_w = (
        loss.conduction_compute_w + ll_conduction * compute_fraction
    )
    loss.conduction_uncore_w = (
        loss.conduction_uncore_w + ll_conduction * (1.0 - compute_fraction)
    )

    input_iccmax = batch.per_unique_tdp(pdn._input_vr_iccmax_a)
    coeffs = _switching_coefficients(batch, input_iccmax)
    supply_active = _switching_supply(
        coeffs, params.supply_voltage_v, ll_voltage, ll_current, check=m_in
    )
    supply = np.where(m_in, supply_active, coeffs.quiescent_w)
    loss.off_chip_vr_w = np.where(
        m_in, loss.off_chip_vr_w + (supply_active - ll_power), loss.off_chip_vr_w
    )
    loss.other_w = np.where(m_in, loss.other_w, loss.other_w + coeffs.quiescent_w)
    return supply, ll_current, loss, [("V_IN", ll_voltage, None)]


def _evaluate_mbvr(pdn: MbvrPdn, batch: ConditionsBatch):
    params = pdn.parameters
    gated = _apply_guardbands_vec(
        batch, params.mbvr_tolerance_band_v, frozenset(DomainKind), params
    )
    loss = _LossColumns(batch.n)
    loss.other_w = _guardband_loss_sum(batch, gated, _DOMAIN_ORDER)

    supply = np.zeros(batch.n)
    current = np.zeros(batch.n)
    rail_voltages = []
    for rail_name, (rail_domains, is_compute) in MBVR_RAILS.items():
        rail_power = _group_power(gated, rail_domains)
        rail_voltage = _group_voltage(batch, rail_domains)
        sizing = batch.per_unique_tdp(
            lambda t, domains=rail_domains: pdn._rail_sizing_current_a(
                domains, _peak_powers(t), t
            )
        )
        rail = _board_rail_vec(
            batch,
            rail_power,
            rail_voltage,
            params.mbvr_loadline_ohm[rail_domains[0]],
            sizing,
            params,
        )
        supply = supply + rail.supply
        current = current + rail.current
        rail_voltages.append((rail_name, rail.voltage, None))
        loss.off_chip_vr_w = loss.off_chip_vr_w + rail.off_chip
        loss.other_w = loss.other_w + rail.idle_quiescent
        if is_compute:
            loss.conduction_compute_w = loss.conduction_compute_w + rail.conduction
        else:
            loss.conduction_uncore_w = loss.conduction_uncore_w + rail.conduction
        loss.details.append((rail_name, rail.supply, None))
    return supply, current, loss, rail_voltages


def _ldo_compute_side(pdn: LdoPdn, batch: ConditionsBatch, loss, impedance_ohm):
    """Vector mirror of :meth:`LdoPdn.evaluate_compute_side`."""
    params = pdn.parameters
    gated = _apply_guardbands_vec(
        batch, params.ldo_tolerance_band_v, frozenset(), params
    )
    masks = {kind: gated[kind] > 0.0 for kind in COMPUTE_DOMAINS}
    loss.other_w = loss.other_w + _guardband_loss_sum(batch, gated, COMPUTE_DOMAINS)
    m_any = np.zeros(batch.n, dtype=bool)
    for kind in COMPUTE_DOMAINS:
        m_any |= masks[kind]
    zeros = np.zeros(batch.n)
    if not m_any.any():
        return zeros, zeros, zeros

    input_voltage = np.full(batch.n, -np.inf)
    for kind in COMPUTE_DOMAINS:
        input_voltage = np.where(
            masks[kind], np.maximum(input_voltage, batch.voltage[kind]), input_voltage
        )
    # Placeholder on fully-gated lanes; every use below is masked by m_any.
    input_voltage = np.where(m_any, input_voltage, 1.0)

    probe = LowDropoutRegulator(
        name="columnar_probe", current_efficiency=params.ldo_current_efficiency
    )
    current_efficiency = probe.current_efficiency
    dropout_v = probe._dropout_voltage_v
    bypass_ohm = probe.bypass_resistance_ohm

    input_rail = zeros
    for kind in COMPUTE_DOMAINS:
        m = masks[kind]
        voltage = batch.voltage[kind]
        current = gated[kind] / voltage
        drop = bypass_ohm * current
        effective_v = np.maximum(input_voltage - drop, 1e-9)
        bypass = (input_voltage - voltage) <= dropout_v
        efficiency = np.where(
            bypass,
            effective_v / input_voltage * current_efficiency,
            voltage / input_voltage * current_efficiency,
        )
        domain_input = voltage * current / efficiency
        loss.on_chip_vr_w = np.where(
            m, loss.on_chip_vr_w + (domain_input - gated[kind]), loss.on_chip_vr_w
        )
        loss.details.append((f"LDO_{kind.value}", domain_input, m))
        input_rail = np.where(m, input_rail + domain_input, input_rail)

    ll_voltage, ll_power, ll_current, ll_conduction = _loadline_vec(
        impedance_ohm, input_voltage, input_rail, batch.application_ratio
    )
    loss.conduction_compute_w = np.where(
        m_any, loss.conduction_compute_w + ll_conduction, loss.conduction_compute_w
    )
    input_iccmax = batch.per_unique_tdp(pdn._input_vr_iccmax_a)
    coeffs = _switching_coefficients(batch, input_iccmax)
    supply_active = _switching_supply(
        coeffs, params.supply_voltage_v, ll_voltage, ll_current, check=m_any
    )
    loss.off_chip_vr_w = np.where(
        m_any, loss.off_chip_vr_w + (supply_active - ll_power), loss.off_chip_vr_w
    )
    return (
        np.where(m_any, supply_active, 0.0),
        np.where(m_any, ll_current, 0.0),
        np.where(m_any, ll_voltage, 0.0),
    )


def _imbvr_compute_side(pdn: IMbvrPdn, batch: ConditionsBatch, loss, impedance_ohm):
    """Vector mirror of :meth:`IMbvrPdn.evaluate_compute_side`."""
    params = pdn.parameters
    gated = _apply_guardbands_vec(
        batch, params.ivr_tolerance_band_v, frozenset(), params
    )
    masks = {kind: gated[kind] > 0.0 for kind in COMPUTE_DOMAINS}
    loss.other_w = loss.other_w + _guardband_loss_sum(batch, gated, COMPUTE_DOMAINS)
    m_any = np.zeros(batch.n, dtype=bool)
    for kind in COMPUTE_DOMAINS:
        m_any |= masks[kind]

    input_iccmax = batch.per_unique_tdp(pdn._input_vr_iccmax_a)
    coeffs = _switching_coefficients(batch, input_iccmax)
    # Fully-gated lanes: V_IN stays alive, drawing only quiescent power.
    loss.other_w = np.where(m_any, loss.other_w, loss.other_w + coeffs.quiescent_w)

    input_voltage_v = params.ivr_input_voltage_v
    input_rail = np.zeros(batch.n)
    for kind in COMPUTE_DOMAINS:
        m, domain_input = _ivr_domain_input(batch, kind, gated[kind], input_voltage_v)
        loss.on_chip_vr_w = np.where(
            m, loss.on_chip_vr_w + (domain_input - gated[kind]), loss.on_chip_vr_w
        )
        loss.details.append((f"IVR_{kind.value}", domain_input, m))
        input_rail = np.where(m, input_rail + domain_input, input_rail)

    ll_voltage, ll_power, ll_current, ll_conduction = _loadline_vec(
        impedance_ohm, input_voltage_v, input_rail, batch.application_ratio
    )
    loss.conduction_compute_w = np.where(
        m_any, loss.conduction_compute_w + ll_conduction, loss.conduction_compute_w
    )
    supply_active = _switching_supply(
        coeffs, params.supply_voltage_v, ll_voltage, ll_current, check=m_any
    )
    loss.off_chip_vr_w = np.where(
        m_any, loss.off_chip_vr_w + (supply_active - ll_power), loss.off_chip_vr_w
    )
    return (
        np.where(m_any, supply_active, coeffs.quiescent_w),
        np.where(m_any, ll_current, 0.0),
        np.where(m_any, ll_voltage, 0.0),
    )


def _uncore_rails_vec(ldo_pdn: LdoPdn, batch: ConditionsBatch, loss):
    """Vector mirror of :meth:`LdoPdn.evaluate_uncore_rails`."""
    params = ldo_pdn.parameters
    gated = _apply_guardbands_vec(
        batch,
        params.ldo_tolerance_band_v,
        frozenset(kind for kind, _ in LDO_UNCORE_RAILS),
        params,
    )
    loss.other_w = loss.other_w + _guardband_loss_sum(
        batch, gated, tuple(kind for kind, _ in LDO_UNCORE_RAILS)
    )
    supply = np.zeros(batch.n)
    current = np.zeros(batch.n)
    rail_voltages = []
    for kind, rail_name in LDO_UNCORE_RAILS:
        rail_power = gated[kind]
        rail_voltage = _group_voltage(batch, (kind,))
        peak = batch.per_unique_tdp(lambda t, k=kind: _peak_powers(t)[k])
        rail = _board_rail_vec(
            batch,
            rail_power,
            rail_voltage,
            params.uncore_loadline_ohm[kind],
            peak / rail_voltage,
            params,
        )
        supply = supply + rail.supply
        current = current + rail.current
        rail_voltages.append((rail_name, rail.voltage, None))
        loss.off_chip_vr_w = loss.off_chip_vr_w + rail.off_chip
        loss.conduction_uncore_w = loss.conduction_uncore_w + rail.conduction
        loss.other_w = loss.other_w + rail.idle_quiescent
        loss.details.append((rail_name, rail.supply, None))
    return supply, current, rail_voltages


def _evaluate_ldo(pdn: LdoPdn, batch: ConditionsBatch):
    loss = _LossColumns(batch.n)
    compute_supply, compute_current, input_rail_v = _ldo_compute_side(
        pdn, batch, loss, pdn._input_load_line.impedance_ohm
    )
    uncore_supply, uncore_current, rail_voltages = _uncore_rails_vec(pdn, batch, loss)
    rail_voltages.append(("V_IN", input_rail_v, input_rail_v > 0.0))
    return (
        compute_supply + uncore_supply,
        compute_current + uncore_current,
        loss,
        rail_voltages,
    )


def _evaluate_imbvr(pdn: IMbvrPdn, batch: ConditionsBatch):
    loss = _LossColumns(batch.n)
    compute_supply, compute_current, input_rail_v = _imbvr_compute_side(
        pdn, batch, loss, pdn._input_load_line.impedance_ohm
    )
    uncore_supply, uncore_current, rail_voltages = _uncore_rails_vec(
        pdn._uncore_model, batch, loss
    )
    rail_voltages.append(("V_IN", input_rail_v, input_rail_v > 0.0))
    return (
        compute_supply + uncore_supply,
        compute_current + uncore_current,
        loss,
        rail_voltages,
    )


_COLUMN_KERNELS = {
    IvrPdn: _evaluate_ivr,
    MbvrPdn: _evaluate_mbvr,
    LdoPdn: _evaluate_ldo,
    IMbvrPdn: _evaluate_imbvr,
}

#: Reference implementations: if a class-level ``evaluate`` differs from what
#: was captured here, the instance has been patched and loses capability.
_REFERENCE = {cls: cls.evaluate for cls in _COLUMN_KERNELS}

#: Instance attributes whose presence marks a monkeypatched model (tests and
#: what-if studies patch these per instance); such instances must go through
#: the scalar path so the patch is honoured.
_PATCHABLE = (
    "evaluate",
    "evaluate_in_mode",
    "predict_mode",
    "evaluate_compute_side",
    "evaluate_uncore_rails",
)

_FLEX_CLS = None
_FLEX_REFERENCE = None


def _flexwatts_class():
    global _FLEX_CLS, _FLEX_REFERENCE
    if _FLEX_CLS is None:
        # Imported lazily: repro.core pulls in the predictor/calibration
        # stack, which would cycle back into repro.analysis at import time.
        from repro.core.flexwatts import FlexWattsPdn

        _FLEX_CLS = FlexWattsPdn
        _FLEX_REFERENCE = FlexWattsPdn.evaluate
    return _FLEX_CLS


# --------------------------------------------------------------------------- #
# Materialization and dispatch
# --------------------------------------------------------------------------- #
def _column_dicts(entries, n):
    """Expand ``(name, values, mask)`` columns into one dict per lane.

    Masks that are all-true collapse to the unmasked fast path, where the
    per-lane dicts are built with ``dict(zip(...))`` over transposed rows.
    """
    names = []
    unmasked = []
    masked = []
    for name, values, mask in entries:
        if mask is not None and bool(mask.all()):
            mask = None
        if mask is None:
            names.append(name)
            unmasked.append(values.tolist())
        else:
            masked.append((name, values.tolist(), mask.tolist()))
    if not masked:
        if not names:
            return [{} for _ in range(n)]
        return [dict(zip(names, row)) for row in zip(*unmasked)]
    rows = (
        [dict(zip(names, row)) for row in zip(*unmasked)]
        if names
        else [{} for _ in range(n)]
    )
    for name, values, mask in masked:
        for i, keep in enumerate(mask):
            if keep:
                rows[i][name] = values[i]
    return rows


def _materialize(batch, pdn_name, supply, current, loss, rail_voltages):
    """Expand column results into per-lane :class:`PdnEvaluation` objects."""
    n = batch.n
    detail_rows = _column_dicts(loss.details, n)
    rail_rows = _column_dicts(rail_voltages, n)
    # Construct via __new__ + __dict__ to skip the frozen-dataclass __init__
    # (object.__setattr__ per field); both classes are plain-__dict__ types
    # with no __post_init__, so this is equivalent and much faster per lane.
    new = object.__new__
    breakdown_cls = LossBreakdown
    evaluation_cls = PdnEvaluation
    out = []
    append = out.append
    for nominal, supply_w, current_a, on, off, cc, cu, other, rail_details, voltages in zip(
        batch.nominal_total.tolist(),
        supply.tolist(),
        current.tolist(),
        loss.on_chip_vr_w.tolist(),
        loss.off_chip_vr_w.tolist(),
        loss.conduction_compute_w.tolist(),
        loss.conduction_uncore_w.tolist(),
        loss.other_w.tolist(),
        detail_rows,
        rail_rows,
    ):
        breakdown = new(breakdown_cls)
        breakdown.__dict__ = {
            "on_chip_vr_w": on,
            "off_chip_vr_w": off,
            "conduction_compute_w": cc,
            "conduction_uncore_w": cu,
            "other_w": other,
            "rail_details": rail_details,
        }
        evaluation = new(evaluation_cls)
        # Frozen dataclass: plain ``__dict__ = ...`` routes through the
        # overridden __setattr__ and raises; updating the dict in place does
        # not.
        evaluation.__dict__.update(
            pdn_name=pdn_name,
            nominal_power_w=nominal,
            supply_power_w=supply_w,
            breakdown=breakdown,
            chip_input_current_a=current_a,
            rail_voltages_v=voltages,
        )
        append(evaluation)
    return out


def _evaluate_flexwatts(pdn, batch: ConditionsBatch, mode=None):
    """Columnar FlexWatts evaluation: predict per lane, batch per mode."""
    from repro.core.hybrid_vr import PdnMode

    if mode is None:
        modes = [pdn.predict_mode(c) for c in batch.conditions]
        final_name = pdn.name
    else:
        modes = [mode] * batch.n
        final_name = f"{pdn.name}[{mode.value}]"

    ivr_lanes = [i for i, m in enumerate(modes) if m is PdnMode.IVR_MODE]
    ldo_lanes = [i for i, m in enumerate(modes) if m is not PdnMode.IVR_MODE]
    results: List[Optional[PdnEvaluation]] = [None] * batch.n
    for lanes, side in ((ivr_lanes, pdn._ivr_mode_model), (ldo_lanes, pdn._ldo_mode_model)):
        if not lanes:
            continue
        if not supports_columns(side):
            raise ColumnarFallback("FlexWatts side model is patched")
        sub = batch.take(lanes)
        supply, current, loss, rails = _COLUMN_KERNELS[type(side)](side, sub)
        for lane, result in zip(lanes, _materialize(sub, final_name, supply, current, loss, rails)):
            results[lane] = result
    return results


def supports_columns(pdn) -> bool:
    """Whether ``pdn`` can be evaluated through the columnar path.

    Capability requires NumPy, an exactly-known model class, and an
    unpatched instance (per-instance or class-level replacement of the
    evaluation methods routes the instance back to the scalar path so the
    patch is honoured -- the oracle always wins over the fast path).
    """
    if not HAVE_NUMPY:
        return False
    cls = type(pdn)
    if cls in _COLUMN_KERNELS:
        if cls.evaluate is not _REFERENCE[cls]:
            return False
        if any(name in pdn.__dict__ for name in _PATCHABLE):
            return False
        if cls is IMbvrPdn:
            return supports_columns(pdn._uncore_model)
        return True
    if cls is _flexwatts_class():
        if cls.evaluate is not _FLEX_REFERENCE:
            return False
        if any(name in pdn.__dict__ for name in _PATCHABLE):
            return False
        return supports_columns(pdn._ivr_mode_model) and supports_columns(
            pdn._ldo_mode_model
        )
    return False


def evaluate_columns(
    pdn,
    conditions: Sequence[OperatingConditions],
    mode=None,
    batch: Optional[ConditionsBatch] = None,
) -> Optional[List[PdnEvaluation]]:
    """Evaluate ``pdn`` over ``conditions`` in one vectorized pass.

    Returns the per-point :class:`PdnEvaluation` list (bit-identical to
    calling ``pdn.evaluate`` per condition), or ``None`` when the batch must
    go through the scalar path instead -- unsupported/patched model, loads
    not in canonical order, or an operating point the scalar model rejects.

    ``mode`` forces a FlexWatts evaluation mode (the vector analogue of
    ``evaluate_in_mode``); it is ignored for other PDN types.  ``batch``
    allows callers that evaluate several PDNs over the same grid to reuse one
    :class:`ConditionsBatch` layout.
    """
    if not supports_columns(pdn):
        return None
    conditions = list(conditions)
    if not conditions:
        return []
    if batch is None:
        batch = ConditionsBatch.from_conditions(conditions)
        if batch is None:
            return None
    try:
        if type(pdn) is _flexwatts_class():
            return _evaluate_flexwatts(pdn, batch, mode)
        supply, current, loss, rails = _COLUMN_KERNELS[type(pdn)](pdn, batch)
        return _materialize(batch, pdn.name, supply, current, loss, rails)
    except ColumnarFallback:
        return None
