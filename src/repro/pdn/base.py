"""Common interface and data types for PDN models.

The data flow mirrors Sec. 3.1 of the paper: a PDN model is evaluated at one
*operating point* -- a set of per-domain loads plus the workload's application
ratio and type and the package power state -- and returns the power drawn from
the platform supply together with the end-to-end power-conversion efficiency
(ETEE) and a loss breakdown.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence

from repro.pdn.losses import LossBreakdown
from repro.power.domains import (
    DomainKind,
    DomainLoad,
    NominalPowerCurves,
    WorkloadType,
    validate_load_set,
)
from repro.power.parameters import PdnTechnologyParameters, default_parameters
from repro.power.power_states import PackageCState, POWER_STATE_PROFILES
from repro.power.domains import DEFAULT_DOMAINS
from repro.soc.dvfs import compute_voltage_for_tdp, gfx_voltage_for_tdp
from repro.util.errors import ModelDomainError
from repro.util.validation import require_positive
from repro.vr.switching import VRPowerState


def conditions_key(conditions: "OperatingConditions") -> tuple:
    """A hashable identity for an operating point (loads normalised to tuple).

    Used as (part of) the memo-cache key by every engine that memoises
    evaluations over operating points: :class:`repro.analysis.pdnspot.PdnSpot`
    and the per-run phase cache of the interval simulator.
    """
    return (
        conditions.tdp_w,
        conditions.application_ratio,
        conditions.workload_type,
        conditions.power_state,
        conditions.board_vr_state,
        tuple(conditions.loads),
    )


@dataclass(frozen=True)
class OperatingConditions:
    """One operating point at which a PDN is evaluated.

    Attributes
    ----------
    tdp_w:
        The processor's thermal design power.
    application_ratio:
        The workload's application ratio (AR, Sec. 2.4); the ratio of the
        current power to the highest possible (power-virus) power.
    workload_type:
        The workload class (single-thread CPU, multi-thread CPU, graphics,
        idle), used by the loss models and by FlexWatts' mode predictor.
    power_state:
        The package power state; ``C0`` for active workloads.
    loads:
        Exactly one :class:`DomainLoad` per processor domain.
    board_vr_state:
        Power state of the off-chip regulators; defaults to PS0 when active
        and to the profile of the package C-state otherwise.
    """

    tdp_w: float
    application_ratio: float
    workload_type: WorkloadType
    power_state: PackageCState
    loads: Sequence[DomainLoad]
    board_vr_state: VRPowerState = VRPowerState.PS0

    def __post_init__(self) -> None:
        require_positive(self.tdp_w, "tdp_w")
        if not 0.0 < self.application_ratio <= 1.0:
            raise ModelDomainError(
                f"application_ratio must be in (0, 1], got {self.application_ratio!r}"
            )
        validate_load_set(self.loads)

    @property
    def nominal_power_w(self) -> float:
        """Total nominal power of all active domains (the PDN's output power)."""
        return sum(load.effective_power_w for load in self.loads)

    def load(self, kind: DomainKind) -> DomainLoad:
        """Return the load of domain ``kind``."""
        for candidate in self.loads:
            if candidate.kind == kind:
                return candidate
        raise ModelDomainError(f"no load for domain {kind}")

    def with_loads(self, loads: Sequence[DomainLoad]) -> "OperatingConditions":
        """Return a copy of these conditions with different loads."""
        return replace(self, loads=tuple(loads))

    # ------------------------------------------------------------------ #
    # Convenience constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def for_active_workload(
        cls,
        tdp_w: float,
        application_ratio: float,
        workload_type: WorkloadType,
        curves: Optional[NominalPowerCurves] = None,
    ) -> "OperatingConditions":
        """Build the conditions for an active (C0) workload at ``tdp_w``.

        Per-domain nominal powers come from the Table 2 nominal-power curves;
        per-domain voltages follow the DVFS operating point the TDP sustains.
        """
        curves = curves if curves is not None else NominalPowerCurves()
        core_voltage = compute_voltage_for_tdp(tdp_w)
        gfx_voltage = gfx_voltage_for_tdp(tdp_w, workload_type)
        cores_power = curves.cores_power_w(tdp_w, workload_type)
        gfx_power = curves.gfx_power_w(tdp_w, workload_type)
        llc_power = curves.llc_power_w(tdp_w, workload_type)
        sa_power, io_power = curves.uncore_power_w(tdp_w)
        graphics = workload_type is WorkloadType.GRAPHICS
        # Graphics workloads run the LLC at a higher voltage than the cores
        # (Sec. 7.1); CPU workloads match the LLC voltage to the cores.
        llc_voltage = gfx_voltage if graphics else core_voltage
        loads = (
            DomainLoad(DomainKind.CORE0, 0.5 * cores_power, core_voltage, 0.22),
            DomainLoad(DomainKind.CORE1, 0.5 * cores_power, core_voltage, 0.22),
            DomainLoad(DomainKind.LLC, llc_power, llc_voltage, 0.22),
            DomainLoad(
                DomainKind.GFX,
                gfx_power,
                gfx_voltage,
                0.45,
                active=graphics or gfx_power > 0.0,
            ),
            DomainLoad(DomainKind.SA, sa_power, DEFAULT_DOMAINS[DomainKind.SA].fixed_voltage_v, 0.22, power_gated_rail=False),
            DomainLoad(DomainKind.IO, io_power, DEFAULT_DOMAINS[DomainKind.IO].fixed_voltage_v, 0.22, power_gated_rail=False),
        )
        return cls(
            tdp_w=tdp_w,
            application_ratio=application_ratio,
            workload_type=workload_type,
            power_state=PackageCState.C0,
            loads=loads,
            board_vr_state=VRPowerState.PS0,
        )

    @classmethod
    def for_power_state(
        cls, tdp_w: float, power_state: PackageCState
    ) -> "OperatingConditions":
        """Build the conditions for a package power state (C0_MIN, C2, ..., C8)."""
        if power_state not in POWER_STATE_PROFILES:
            raise ModelDomainError(
                f"no default profile for power state {power_state}; "
                "use for_active_workload for C0"
            )
        profile = POWER_STATE_PROFILES[power_state]
        return cls(
            tdp_w=tdp_w,
            application_ratio=profile.application_ratio,
            workload_type=WorkloadType.IDLE,
            power_state=power_state,
            loads=tuple(profile.loads()),
            board_vr_state=profile.board_vr_state,
        )


@dataclass(frozen=True)
class PdnEvaluation:
    """Result of evaluating a PDN at one operating point.

    Attributes
    ----------
    pdn_name:
        Name of the evaluated PDN.
    nominal_power_w:
        Total nominal power of the loads (the PDN output power).
    supply_power_w:
        Power drawn from the platform supply (battery/PSU): ``P_IVR``,
        ``P_MBVR``, ``P_LDO``, ... in the paper's notation.
    breakdown:
        The loss decomposition (Fig. 5).
    chip_input_current_a:
        Total current entering the processor package from the board
        regulators (the line plot of Fig. 5).
    rail_voltages_v:
        Diagnostic map of rail name to guardbanded rail voltage.
    """

    pdn_name: str
    nominal_power_w: float
    supply_power_w: float
    breakdown: LossBreakdown
    chip_input_current_a: float
    rail_voltages_v: Dict[str, float] = field(default_factory=dict)

    @property
    def etee(self) -> float:
        """End-to-end power-conversion efficiency (Sec. 2.4)."""
        if self.supply_power_w == 0.0:
            return 0.0
        return self.nominal_power_w / self.supply_power_w

    @property
    def loss_w(self) -> float:
        """Total power lost inside the PDN."""
        return self.supply_power_w - self.nominal_power_w

    @property
    def loss_fraction(self) -> float:
        """PDN loss as a fraction of the supply power (the Fig. 2b/Fig. 5 metric)."""
        if self.supply_power_w == 0.0:
            return 0.0
        return self.loss_w / self.supply_power_w


def evaluate_pdn(
    pdn: "PowerDeliveryNetwork", conditions: OperatingConditions
) -> PdnEvaluation:
    """The default (uncached) evaluation hook: call the model directly.

    Collaborators that accept an injectable evaluator -- the Study engine,
    the performance model, the battery-life workloads -- fall back to this
    when no cached evaluator (e.g. :meth:`PdnSpot.evaluate_cached`) is wired
    in.
    """
    return pdn.evaluate(conditions)


class PowerDeliveryNetwork(abc.ABC):
    """Abstract base class of all PDN models."""

    #: Short identifier used by the registry, reports and plots.
    name: str = "pdn"

    def __init__(self, parameters: Optional[PdnTechnologyParameters] = None):
        self.parameters = parameters if parameters is not None else default_parameters()

    @abc.abstractmethod
    def evaluate(self, conditions: OperatingConditions) -> PdnEvaluation:
        """Evaluate the PDN at ``conditions`` and return the ETEE result."""

    @abc.abstractmethod
    def iccmax_requirements_a(self, tdp_w: float) -> Dict[str, float]:
        """Maximum current each *off-chip* regulator must support at ``tdp_w``.

        These drive the board-area and BOM models (Sec. 3.2): a higher Iccmax
        means a physically larger and more expensive regulator, and sharing a
        regulator across domains reduces the total requirement.
        """

    def etee(self, conditions: OperatingConditions) -> float:
        """Convenience wrapper returning only the ETEE at ``conditions``."""
        return self.evaluate(conditions).etee

    def describe(self) -> str:
        """One-line human-readable description of the PDN."""
        return f"{self.name} PDN"


def peak_domain_powers_w(tdp_w: float, curves: Optional[NominalPowerCurves] = None) -> Dict[DomainKind, float]:
    """Worst-case (power-virus) nominal power of each domain at ``tdp_w``.

    Used to size regulators (Iccmax): the regulator of a rail must support the
    most power-hungry workload that can run on it, which for the compute
    domains is whichever of the CPU-primary or graphics-primary scenarios is
    larger.
    """
    curves = curves if curves is not None else NominalPowerCurves()
    require_positive(tdp_w, "tdp_w")
    cores = curves.cores_power_w(tdp_w, WorkloadType.CPU_MULTI_THREAD)
    gfx = curves.gfx_power_w(tdp_w, WorkloadType.GRAPHICS)
    llc = curves.llc_power_w(tdp_w, WorkloadType.CPU_MULTI_THREAD)
    sa, io = curves.uncore_power_w(tdp_w)
    return {
        DomainKind.CORE0: 0.5 * cores,
        DomainKind.CORE1: 0.5 * cores,
        DomainKind.LLC: llc,
        DomainKind.GFX: gfx,
        DomainKind.SA: sa,
        DomainKind.IO: io,
    }


def peak_concurrent_compute_power_w(
    tdp_w: float, curves: Optional[NominalPowerCurves] = None
) -> float:
    """Worst-case *simultaneous* compute-domain power at ``tdp_w``.

    The per-domain peaks of :func:`peak_domain_powers_w` cannot all occur at
    once: a CPU power virus keeps the graphics engines gated and a graphics
    power virus leaves the cores at their secondary allocation.  Regulators
    shared by all compute domains (the ``V_IN`` rails of the IVR, LDO, I+MBVR
    and FlexWatts PDNs) are therefore sized for the larger of the two
    scenarios rather than for the sum of the individual peaks.
    """
    curves = curves if curves is not None else NominalPowerCurves()
    require_positive(tdp_w, "tdp_w")
    llc = curves.llc_power_w(tdp_w, WorkloadType.CPU_MULTI_THREAD)
    cpu_scenario = curves.cores_power_w(tdp_w, WorkloadType.CPU_MULTI_THREAD) + llc
    gfx_scenario = (
        curves.gfx_power_w(tdp_w, WorkloadType.GRAPHICS)
        + curves.cores_power_w(tdp_w, WorkloadType.GRAPHICS)
        + llc
    )
    return max(cpu_scenario, gfx_scenario)
