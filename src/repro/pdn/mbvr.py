"""The MBVR PDN model (Fig. 1b, Eq. 2--5).

The motherboard-voltage-regulator PDN is the traditional single-stage design:
four board regulators feed the processor domains directly at their operating
voltages (cores+LLC share a rail, graphics, SA and IO each get their own), and
on-chip power gates disconnect idle domains.

Strengths captured by the model: only one conversion stage, so light loads are
handled efficiently (Observation 3).  Weaknesses: the chip is fed at the low
domain voltages, so the input current -- and with it the I^2 R load-line loss
-- is high for computationally intensive workloads at high TDP
(Observation 1), and each rail needs its own physically large regulator
(board area / BOM, Fig. 8d-e).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.pdn.base import (
    OperatingConditions,
    PdnEvaluation,
    PowerDeliveryNetwork,
    peak_domain_powers_w,
)
from repro.pdn.common import (
    ICCMAX_DESIGN_MARGIN,
    MIN_BOARD_VR_ICCMAX_A,
    apply_guardbands,
    evaluate_board_rail,
    group_power_w,
    group_voltage_v,
    guardband_loss_w,
)
from repro.pdn.losses import LossBreakdown
from repro.power.domains import DomainKind
from repro.power.parameters import PdnTechnologyParameters
from repro.soc.dvfs import compute_voltage_for_tdp, gfx_voltage_for_tdp
from repro.power.domains import WorkloadType
from repro.util.validation import require_positive
from repro.vr.load_line import LoadLine

#: Rail topology of the MBVR PDN: rail name -> (domains, is_compute_rail).
MBVR_RAILS: Dict[str, Tuple[Sequence[DomainKind], bool]] = {
    "V_Cores": ((DomainKind.CORE0, DomainKind.CORE1, DomainKind.LLC), True),
    "V_GFX": ((DomainKind.GFX,), True),
    "V_SA": ((DomainKind.SA,), False),
    "V_IO": ((DomainKind.IO,), False),
}


class MbvrPdn(PowerDeliveryNetwork):
    """Single-stage motherboard-voltage-regulator PDN (Eq. 2--5)."""

    name = "MBVR"

    def __init__(self, parameters: Optional[PdnTechnologyParameters] = None):
        super().__init__(parameters)

    def _rail_load_line(self, rail_domains: Sequence[DomainKind]) -> LoadLine:
        """Load-line of a rail: the impedance of its (first) domain in Table 2."""
        return LoadLine(self.parameters.mbvr_loadline_ohm[rail_domains[0]])

    # ------------------------------------------------------------------ #
    # ETEE model
    # ------------------------------------------------------------------ #
    def evaluate(self, conditions: OperatingConditions) -> PdnEvaluation:
        params = self.parameters
        guardbanded = apply_guardbands(
            conditions.loads,
            tolerance_band_v=params.mbvr_tolerance_band_v,
            power_gated_domains=tuple(DomainKind),  # Fig. 1(b): all six domains
            parameters=params,
        )
        breakdown = LossBreakdown(other_w=guardband_loss_w(guardbanded))
        peak_powers = peak_domain_powers_w(conditions.tdp_w)

        supply_power_w = 0.0
        chip_input_current_a = 0.0
        rail_voltages: Dict[str, float] = {}
        for rail_name, (rail_domains, is_compute) in MBVR_RAILS.items():
            rail_power_w = group_power_w(guardbanded, rail_domains)
            rail_voltage_v = group_voltage_v(conditions, rail_domains)
            sizing_current_a = self._rail_sizing_current_a(
                rail_domains, peak_powers, conditions.tdp_w
            )
            rail = evaluate_board_rail(
                name=rail_name,
                rail_power_w=rail_power_w,
                rail_voltage_v=rail_voltage_v,
                load_line=self._rail_load_line(rail_domains),
                conditions=conditions,
                parameters=params,
                sizing_peak_current_a=sizing_current_a,
            )
            supply_power_w += rail.supply_power_w
            chip_input_current_a += rail.rail_current_a
            rail_voltages[rail_name] = rail.rail_voltage_v
            breakdown.off_chip_vr_w += rail.off_chip_vr_loss_w
            breakdown.other_w += rail.idle_quiescent_w
            if is_compute:
                breakdown.conduction_compute_w += rail.conduction_loss_w
            else:
                breakdown.conduction_uncore_w += rail.conduction_loss_w
            breakdown.rail_details[rail_name] = rail.supply_power_w

        return PdnEvaluation(
            pdn_name=self.name,
            nominal_power_w=conditions.nominal_power_w,
            supply_power_w=supply_power_w,
            breakdown=breakdown,
            chip_input_current_a=chip_input_current_a,
            rail_voltages_v=rail_voltages,
        )

    # ------------------------------------------------------------------ #
    # Cost-model inputs
    # ------------------------------------------------------------------ #
    def _rail_sizing_current_a(
        self,
        rail_domains: Sequence[DomainKind],
        peak_powers: Dict[DomainKind, float],
        tdp_w: float,
    ) -> float:
        rail_peak_w = sum(peak_powers[kind] for kind in rail_domains)
        if rail_domains[0] in (DomainKind.CORE0, DomainKind.CORE1, DomainKind.LLC):
            rail_voltage_v = compute_voltage_for_tdp(tdp_w)
        elif rail_domains[0] is DomainKind.GFX:
            rail_voltage_v = gfx_voltage_for_tdp(tdp_w, WorkloadType.GRAPHICS)
        elif rail_domains[0] is DomainKind.SA:
            rail_voltage_v = 0.8
        else:
            rail_voltage_v = 1.0
        return rail_peak_w / rail_voltage_v

    def iccmax_requirements_a(self, tdp_w: float) -> Dict[str, float]:
        """Off-chip Iccmax: four per-domain-group board regulators."""
        require_positive(tdp_w, "tdp_w")
        peak_powers = peak_domain_powers_w(tdp_w)
        requirements: Dict[str, float] = {}
        for rail_name, (rail_domains, _) in MBVR_RAILS.items():
            current_a = self._rail_sizing_current_a(rail_domains, peak_powers, tdp_w)
            requirements[rail_name] = max(
                MIN_BOARD_VR_ICCMAX_A, current_a * ICCMAX_DESIGN_MARGIN
            )
        return requirements

    def describe(self) -> str:
        return "MBVR PDN: four one-stage board regulators + on-chip power gates"
