"""Loss-breakdown accounting for PDN evaluations.

Fig. 5 of the paper decomposes the power-conversion loss of each PDN into:

* on-chip and off-chip *VR inefficiencies* (switching, quiescent and linear
  regulation losses inside the regulators),
* *conduction loss* (I^2 R) on the path to the core and graphics domains,
* *conduction loss* on the path to the SA and IO domains, and
* *others* (tolerance-band and power-gate guardbands, quiescent power of
  otherwise idle regulators).

:class:`LossBreakdown` carries that decomposition in watts and can normalise
it against a nominal power to produce the percentage bars of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LossBreakdown:
    """Decomposition of the power lost inside a PDN, in watts."""

    #: Losses inside on-chip regulators (IVRs, LDOs).
    on_chip_vr_w: float = 0.0
    #: Losses inside off-chip (board) regulators, including V_IN.
    off_chip_vr_w: float = 0.0
    #: I^2 R conduction loss on the rails feeding the cores, LLC and graphics.
    conduction_compute_w: float = 0.0
    #: I^2 R conduction loss on the rails feeding the SA and IO domains.
    conduction_uncore_w: float = 0.0
    #: Guardband losses (tolerance band, power-gate drop) and idle quiescent
    #: power of regulators whose loads are gated.
    other_w: float = 0.0
    #: Free-form per-rail diagnostic details, keyed by rail name.
    rail_details: dict = field(default_factory=dict)

    @property
    def vr_inefficiency_w(self) -> float:
        """Combined on-chip + off-chip regulator losses (the first Fig. 5 bar)."""
        return self.on_chip_vr_w + self.off_chip_vr_w

    @property
    def total_w(self) -> float:
        """Total PDN loss in watts."""
        return (
            self.on_chip_vr_w
            + self.off_chip_vr_w
            + self.conduction_compute_w
            + self.conduction_uncore_w
            + self.other_w
        )

    def merged_with(self, other: "LossBreakdown") -> "LossBreakdown":
        """Return a new breakdown that is the sum of this one and ``other``."""
        merged_details = dict(self.rail_details)
        merged_details.update(other.rail_details)
        return LossBreakdown(
            on_chip_vr_w=self.on_chip_vr_w + other.on_chip_vr_w,
            off_chip_vr_w=self.off_chip_vr_w + other.off_chip_vr_w,
            conduction_compute_w=self.conduction_compute_w + other.conduction_compute_w,
            conduction_uncore_w=self.conduction_uncore_w + other.conduction_uncore_w,
            other_w=self.other_w + other.other_w,
            rail_details=merged_details,
        )

    def as_fractions_of(self, reference_power_w: float) -> dict:
        """Express the breakdown as fractions of ``reference_power_w`` (Fig. 5).

        The paper normalises the loss bars against the total package power.
        """
        if reference_power_w <= 0.0:
            raise ValueError("reference_power_w must be positive")
        return {
            "vr_inefficiency": self.vr_inefficiency_w / reference_power_w,
            "conduction_compute": self.conduction_compute_w / reference_power_w,
            "conduction_uncore": self.conduction_uncore_w / reference_power_w,
            "other": self.other_w / reference_power_w,
        }
