"""Registry of the PDN architectures PDNspot can evaluate.

The registry lets the analysis framework, experiments and command-line
examples refer to PDNs by the short names used throughout the paper
(``"IVR"``, ``"MBVR"``, ``"LDO"``, ``"I+MBVR"``, ``"FlexWatts"``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.pdn.base import PowerDeliveryNetwork
from repro.pdn.imbvr import IMbvrPdn
from repro.pdn.ivr import IvrPdn
from repro.pdn.ldo import LdoPdn
from repro.pdn.mbvr import MbvrPdn
from repro.power.parameters import PdnTechnologyParameters
from repro.util.errors import ConfigurationError


def _registry() -> Dict[str, Type[PowerDeliveryNetwork]]:
    # FlexWatts lives in repro.core (it is the paper's contribution, not a
    # baseline); importing it lazily avoids a circular import at package
    # initialisation time.
    from repro.core.flexwatts import FlexWattsPdn

    return {
        "IVR": IvrPdn,
        "MBVR": MbvrPdn,
        "LDO": LdoPdn,
        "I+MBVR": IMbvrPdn,
        "FlexWatts": FlexWattsPdn,
    }


def available_pdns() -> List[str]:
    """Names of all PDN architectures the framework can evaluate."""
    return list(_registry().keys())


def build_pdn(
    name: str, parameters: Optional[PdnTechnologyParameters] = None
) -> PowerDeliveryNetwork:
    """Build a PDN model by its paper name (case-insensitive).

    Raises
    ------
    ConfigurationError
        If ``name`` does not identify a known PDN architecture.
    """
    registry = _registry()
    lookup = {key.lower(): value for key, value in registry.items()}
    key = name.lower()
    if key not in lookup:
        raise ConfigurationError(
            f"unknown PDN {name!r}; available: {', '.join(registry)}"
        )
    return lookup[key](parameters)
