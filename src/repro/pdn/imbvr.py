"""The I+MBVR PDN model (Sec. 7: the Intel Skylake-X-style hybrid).

I+MBVR combines the IVR and MBVR topologies: like the LDO PDN it gives the SA
and IO domains dedicated single-stage board regulators (removing their
two-stage conversion penalty), and like the IVR PDN it feeds the compute
domains through on-chip IVRs behind a shared ~1.8 V ``V_IN`` rail.

The paper uses I+MBVR as an additional comparison point: it improves on IVR by
up to ~6 % (the SA/IO improvement) but, unlike FlexWatts, it still pays the
two-stage conversion penalty for the compute domains at low TDP.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.pdn.base import (
    OperatingConditions,
    PdnEvaluation,
    PowerDeliveryNetwork,
    peak_concurrent_compute_power_w,
    peak_domain_powers_w,
)
from repro.pdn.common import (
    ICCMAX_DESIGN_MARGIN,
    MIN_BOARD_VR_ICCMAX_A,
    apply_guardbands,
)
from repro.pdn.ldo import LdoPdn
from repro.pdn.losses import LossBreakdown
from repro.power.domains import COMPUTE_DOMAINS, DomainKind
from repro.power.parameters import PdnTechnologyParameters
from repro.util.validation import require_positive
from repro.vr.base import RegulatorOperatingPoint
from repro.vr.efficiency_curves import default_input_vr, default_ivr
from repro.vr.load_line import LoadLine


class IMbvrPdn(PowerDeliveryNetwork):
    """Hybrid IVR + MBVR PDN: IVRs for compute domains, board rails for SA/IO."""

    name = "I+MBVR"

    #: Assumed second-stage conversion efficiency used only for Iccmax sizing.
    _SIZING_SECOND_STAGE_EFFICIENCY = 0.85

    def __init__(
        self,
        parameters: Optional[PdnTechnologyParameters] = None,
        input_loadline_scale: float = 1.0,
    ):
        super().__init__(parameters)
        self._input_load_line = LoadLine(
            self.parameters.ivr_input_loadline_ohm * input_loadline_scale
        )
        # The SA/IO side is identical to the LDO PDN's; reuse its implementation.
        self._uncore_model = LdoPdn(self.parameters)

    # ------------------------------------------------------------------ #
    # Compute-side (IVR) evaluation, reused by FlexWatts' IVR-Mode
    # ------------------------------------------------------------------ #
    def evaluate_compute_side(
        self,
        conditions: OperatingConditions,
        breakdown: LossBreakdown,
        load_line: Optional[LoadLine] = None,
    ) -> Tuple[float, float, float]:
        """Evaluate the IVR-fed compute domains.

        Returns ``(supply_power_w, chip_input_current_a, rail_voltage_v)`` for
        the shared ``V_IN`` rail and accumulates losses into ``breakdown``.
        """
        params = self.parameters
        load_line = load_line if load_line is not None else self._input_load_line
        guardbanded = apply_guardbands(
            conditions.loads,
            tolerance_band_v=params.ivr_tolerance_band_v,
            power_gated_domains=(),
            parameters=params,
        )
        compute_items = {
            kind: guardbanded[kind]
            for kind in COMPUTE_DOMAINS
            if guardbanded[kind].gated_power_w > 0.0
        }
        breakdown.other_w += sum(
            guardbanded[kind].guardband_loss_w for kind in COMPUTE_DOMAINS
        )
        if not compute_items:
            # Even with every compute domain power-gated, IVR-Mode keeps the
            # shared V_IN rail alive at ~1.8 V, so its regulator's quiescent
            # power is still drawn (this is part of why the IVR-style PDNs are
            # less efficient in idle states -- Observation 3).
            idle_vr = default_input_vr(
                "V_IN", iccmax_a=self._input_vr_iccmax_a(conditions.tdp_w)
            )
            idle_vr.set_power_state(conditions.board_vr_state)
            idle_power_w = idle_vr.idle_power_w()
            breakdown.other_w += idle_power_w
            return idle_power_w, 0.0, 0.0

        input_rail_power_w = 0.0
        for kind, item in compute_items.items():
            ivr = default_ivr(
                f"IVR_{kind.value}",
                iccmax_a=max(5.0, 2.0 * item.gated_power_w / item.load.voltage_v),
            )
            point = RegulatorOperatingPoint(
                input_voltage_v=params.ivr_input_voltage_v,
                output_voltage_v=item.load.voltage_v,
                output_current_a=item.gated_power_w / item.load.voltage_v,
            )
            domain_input_w = ivr.input_power_w(point)
            breakdown.on_chip_vr_w += domain_input_w - item.gated_power_w
            breakdown.rail_details[f"IVR_{kind.value}"] = domain_input_w
            input_rail_power_w += domain_input_w

        ll_result = load_line.apply(
            params.ivr_input_voltage_v, input_rail_power_w, conditions.application_ratio
        )
        breakdown.conduction_compute_w += ll_result.conduction_loss_w
        input_vr = default_input_vr(
            "V_IN", iccmax_a=self._input_vr_iccmax_a(conditions.tdp_w)
        )
        input_vr.set_power_state(conditions.board_vr_state)
        point = RegulatorOperatingPoint(
            input_voltage_v=params.supply_voltage_v,
            output_voltage_v=ll_result.rail_voltage_v,
            output_current_a=ll_result.rail_current_a,
        )
        supply_power_w = input_vr.input_power_w(point)
        breakdown.off_chip_vr_w += supply_power_w - ll_result.rail_power_w
        return supply_power_w, ll_result.rail_current_a, ll_result.rail_voltage_v

    # ------------------------------------------------------------------ #
    # Full PDN evaluation
    # ------------------------------------------------------------------ #
    def evaluate(self, conditions: OperatingConditions) -> PdnEvaluation:
        breakdown = LossBreakdown()
        compute_supply_w, compute_current_a, input_rail_v = self.evaluate_compute_side(
            conditions, breakdown
        )
        uncore_supply_w, uncore_current_a, rail_voltages = (
            self._uncore_model.evaluate_uncore_rails(conditions, breakdown)
        )
        if input_rail_v > 0.0:
            rail_voltages["V_IN"] = input_rail_v
        return PdnEvaluation(
            pdn_name=self.name,
            nominal_power_w=conditions.nominal_power_w,
            supply_power_w=compute_supply_w + uncore_supply_w,
            breakdown=breakdown,
            chip_input_current_a=compute_current_a + uncore_current_a,
            rail_voltages_v=rail_voltages,
        )

    # ------------------------------------------------------------------ #
    # Cost-model inputs
    # ------------------------------------------------------------------ #
    def _input_vr_iccmax_a(self, tdp_w: float) -> float:
        compute_peak_w = peak_concurrent_compute_power_w(tdp_w)
        current_a = (
            compute_peak_w
            / self._SIZING_SECOND_STAGE_EFFICIENCY
            / self.parameters.ivr_input_voltage_v
        )
        return max(MIN_BOARD_VR_ICCMAX_A, current_a * ICCMAX_DESIGN_MARGIN)

    def iccmax_requirements_a(self, tdp_w: float) -> Dict[str, float]:
        """Off-chip Iccmax: shared V_IN (compute) plus SA and IO regulators."""
        require_positive(tdp_w, "tdp_w")
        peaks = peak_domain_powers_w(tdp_w)
        return {
            "V_IN": self._input_vr_iccmax_a(tdp_w),
            "V_SA": max(
                MIN_BOARD_VR_ICCMAX_A, peaks[DomainKind.SA] / 0.8 * ICCMAX_DESIGN_MARGIN
            ),
            "V_IO": max(
                MIN_BOARD_VR_ICCMAX_A, peaks[DomainKind.IO] / 1.0 * ICCMAX_DESIGN_MARGIN
            ),
        }

    def describe(self) -> str:
        return "I+MBVR PDN: IVRs for the compute domains, board rails for SA/IO"
