"""PDN models: the core of the PDNspot framework.

Each model implements the end-to-end power-conversion-efficiency (ETEE)
calculation of Sec. 3.1 of the paper for one PDN architecture:

* :class:`~repro.pdn.ivr.IvrPdn` -- integrated voltage regulators
  (two-stage: board ``V_IN`` regulator + six on-chip IVRs), the
  state-of-the-art baseline the paper compares against.
* :class:`~repro.pdn.mbvr.MbvrPdn` -- motherboard voltage regulators
  (one-stage: four board regulators + on-chip power gates).
* :class:`~repro.pdn.ldo.LdoPdn` -- board regulators for SA/IO plus a shared
  ``V_IN`` board regulator feeding on-chip LDO regulators for the compute
  domains (AMD-Zen-style).
* :class:`~repro.pdn.imbvr.IMbvrPdn` -- the Intel Skylake-X-style hybrid that
  uses board regulators for SA/IO and IVRs for the compute domains.

The FlexWatts PDN itself lives in :mod:`repro.core` because it is the paper's
contribution rather than a baseline.

All models share the same interface
(:class:`~repro.pdn.base.PowerDeliveryNetwork`) and produce a
:class:`~repro.pdn.base.PdnEvaluation` containing the total power drawn from
the platform supply, the ETEE, and the loss breakdown of Fig. 5.
"""

from repro.pdn.base import OperatingConditions, PdnEvaluation, PowerDeliveryNetwork
from repro.pdn.losses import LossBreakdown
from repro.pdn.ivr import IvrPdn
from repro.pdn.mbvr import MbvrPdn
from repro.pdn.ldo import LdoPdn
from repro.pdn.imbvr import IMbvrPdn
from repro.pdn.registry import available_pdns, build_pdn

__all__ = [
    "PowerDeliveryNetwork",
    "OperatingConditions",
    "PdnEvaluation",
    "LossBreakdown",
    "IvrPdn",
    "MbvrPdn",
    "LdoPdn",
    "IMbvrPdn",
    "available_pdns",
    "build_pdn",
]
