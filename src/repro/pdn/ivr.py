"""The IVR PDN model (Fig. 1a, Eq. 6--9).

The integrated-voltage-regulator PDN regulates in two stages: a single board
``V_IN`` regulator converts the platform supply (7.2--20 V) down to ~1.8 V,
and six on-chip IVRs (one per domain) convert that to each domain's voltage.
It is the state-of-the-art PDN of Intel's 4th/5th/10th-generation Core parts
and the baseline every FlexWatts result is normalised against.

Strengths captured by the model: low chip input current (the chip is fed at
1.8 V) and a low input load-line, so conduction losses stay small at high TDP.
Weaknesses: every watt is converted twice, so light loads pay the two-stage
penalty (Observation 1/3 of the paper).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.pdn.base import (
    OperatingConditions,
    PdnEvaluation,
    PowerDeliveryNetwork,
    peak_concurrent_compute_power_w,
    peak_domain_powers_w,
)
from repro.pdn.common import apply_guardbands, guardband_loss_w
from repro.pdn.losses import LossBreakdown
from repro.power.domains import COMPUTE_DOMAINS, DomainKind
from repro.power.parameters import PdnTechnologyParameters
from repro.util.validation import require_positive
from repro.vr.base import RegulatorOperatingPoint
from repro.vr.efficiency_curves import default_input_vr, default_ivr
from repro.vr.load_line import LoadLine
from repro.pdn.common import ICCMAX_DESIGN_MARGIN, MIN_BOARD_VR_ICCMAX_A


class IvrPdn(PowerDeliveryNetwork):
    """Two-stage integrated-voltage-regulator PDN (Eq. 6--9)."""

    name = "IVR"

    #: Assumed second-stage conversion efficiency used only for Iccmax sizing.
    _SIZING_SECOND_STAGE_EFFICIENCY = 0.85

    def __init__(self, parameters: Optional[PdnTechnologyParameters] = None):
        super().__init__(parameters)
        self._input_load_line = LoadLine(self.parameters.ivr_input_loadline_ohm)

    # ------------------------------------------------------------------ #
    # ETEE model
    # ------------------------------------------------------------------ #
    def evaluate(self, conditions: OperatingConditions) -> PdnEvaluation:
        params = self.parameters
        guardbanded = apply_guardbands(
            conditions.loads,
            tolerance_band_v=params.ivr_tolerance_band_v,
            power_gated_domains=(),  # the IVRs themselves act as power gates
            parameters=params,
        )
        breakdown = LossBreakdown(other_w=guardband_loss_w(guardbanded))

        # Second stage: one IVR per domain (Eq. 6).
        input_rail_power_w = 0.0
        compute_share_w = 0.0
        for kind, item in guardbanded.items():
            if item.gated_power_w <= 0.0:
                continue
            load = item.load
            ivr = default_ivr(
                f"IVR_{kind.value}",
                iccmax_a=max(5.0, 2.0 * item.gated_power_w / load.voltage_v),
            )
            point = RegulatorOperatingPoint(
                input_voltage_v=params.ivr_input_voltage_v,
                output_voltage_v=load.voltage_v,
                output_current_a=item.gated_power_w / load.voltage_v,
            )
            domain_input_w = ivr.input_power_w(point)
            breakdown.on_chip_vr_w += domain_input_w - item.gated_power_w
            breakdown.rail_details[f"IVR_{kind.value}"] = domain_input_w
            input_rail_power_w += domain_input_w
            if kind in COMPUTE_DOMAINS:
                compute_share_w += domain_input_w

        # Shared V_IN rail: load-line guardband (Eq. 7/8) and the first-stage
        # regulator (Eq. 9).
        input_voltage_v = params.ivr_input_voltage_v
        ll_result = self._input_load_line.apply(
            input_voltage_v, input_rail_power_w, conditions.application_ratio
        )
        if input_rail_power_w > 0.0:
            compute_fraction = compute_share_w / input_rail_power_w
        else:
            compute_fraction = 0.0
        breakdown.conduction_compute_w += ll_result.conduction_loss_w * compute_fraction
        breakdown.conduction_uncore_w += ll_result.conduction_loss_w * (1.0 - compute_fraction)

        input_vr = default_input_vr(
            "V_IN", iccmax_a=self._input_vr_iccmax_a(conditions.tdp_w)
        )
        input_vr.set_power_state(conditions.board_vr_state)
        if input_rail_power_w > 0.0:
            point = RegulatorOperatingPoint(
                input_voltage_v=params.supply_voltage_v,
                output_voltage_v=ll_result.rail_voltage_v,
                output_current_a=ll_result.rail_current_a,
            )
            supply_power_w = input_vr.input_power_w(point)
            breakdown.off_chip_vr_w += supply_power_w - ll_result.rail_power_w
        else:
            supply_power_w = input_vr.idle_power_w()
            breakdown.other_w += supply_power_w

        return PdnEvaluation(
            pdn_name=self.name,
            nominal_power_w=conditions.nominal_power_w,
            supply_power_w=supply_power_w,
            breakdown=breakdown,
            chip_input_current_a=ll_result.rail_current_a,
            rail_voltages_v={"V_IN": ll_result.rail_voltage_v},
        )

    # ------------------------------------------------------------------ #
    # Cost-model inputs
    # ------------------------------------------------------------------ #
    def _input_vr_iccmax_a(self, tdp_w: float) -> float:
        peaks = peak_domain_powers_w(tdp_w)
        concurrent_peak_w = (
            peak_concurrent_compute_power_w(tdp_w)
            + peaks[DomainKind.SA]
            + peaks[DomainKind.IO]
        )
        current_a = (
            concurrent_peak_w
            / self._SIZING_SECOND_STAGE_EFFICIENCY
            / self.parameters.ivr_input_voltage_v
        )
        return max(MIN_BOARD_VR_ICCMAX_A, current_a * ICCMAX_DESIGN_MARGIN)

    def iccmax_requirements_a(self, tdp_w: float) -> Dict[str, float]:
        """Off-chip Iccmax: a single shared ``V_IN`` regulator."""
        require_positive(tdp_w, "tdp_w")
        return {"V_IN": self._input_vr_iccmax_a(tdp_w)}

    def describe(self) -> str:
        return "IVR PDN: board V_IN (1.8 V) + six on-chip integrated regulators"
