"""Shared building blocks of the PDN models.

All four baseline PDNs (and FlexWatts) are assembled from the same few steps
of Sec. 3.1:

1. apply the tolerance-band guardband to each domain's nominal power (Eq. 2),
2. optionally apply the power-gate guardband on top of it,
3. group domains onto rails, apply the load-line guardband to each rail
   (Eq. 3/4 or Eq. 7/8), and
4. divide each rail's power by the efficiency of the regulator feeding it
   (Eq. 5, 6, 9, 11, 12).

This module implements those shared steps so the individual PDN classes only
express their topology (which domain sits behind which regulator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence

from repro.pdn.base import OperatingConditions
from repro.power.domains import DomainKind, DomainLoad
from repro.power.guardband import guardband_power_w, power_gate_power_w
from repro.power.parameters import PdnTechnologyParameters
from repro.util.validation import require_non_negative
from repro.vr.efficiency_curves import default_board_vr
from repro.vr.load_line import LoadLine
from repro.vr.switching import SwitchingRegulator, VRPowerState
from repro.vr.base import RegulatorOperatingPoint

#: Sizing margin applied when deriving a regulator's Iccmax from the peak
#: current of the rail it feeds.
ICCMAX_DESIGN_MARGIN = 1.3

#: Smallest regulator the cost/area tables go down to (amps).
MIN_BOARD_VR_ICCMAX_A = 1.0


@dataclass(frozen=True)
class GuardbandedLoad:
    """One domain's power after the tolerance-band and power-gate guardbands."""

    load: DomainLoad
    guardbanded_power_w: float
    gated_power_w: float

    @property
    def guardband_loss_w(self) -> float:
        """Extra power caused by the guardbands alone."""
        return self.gated_power_w - self.load.effective_power_w


@dataclass(frozen=True)
class RailEvaluation:
    """Result of pushing one board rail through its load-line and regulator."""

    name: str
    output_power_w: float
    supply_power_w: float
    rail_voltage_v: float
    rail_current_a: float
    conduction_loss_w: float
    off_chip_vr_loss_w: float
    idle_quiescent_w: float


def apply_guardbands(
    loads: Iterable[DomainLoad],
    tolerance_band_v: float,
    power_gated_domains: Sequence[DomainKind],
    parameters: PdnTechnologyParameters,
) -> Dict[DomainKind, GuardbandedLoad]:
    """Apply Eq. 2 (and the power-gate term) to every load.

    Parameters
    ----------
    loads:
        The per-domain loads of the operating point.
    tolerance_band_v:
        The PDN's regulator tolerance band.
    power_gated_domains:
        Domains that sit behind an on-chip power gate in this PDN topology.
    parameters:
        The technology parameters (power-gate impedances, leakage exponent).
    """
    guardbanded: Dict[DomainKind, GuardbandedLoad] = {}
    for load in loads:
        pgb = guardband_power_w(load, tolerance_band_v, parameters.leakage_exponent)
        if load.kind in power_gated_domains:
            ppg = power_gate_power_w(
                load,
                pgb,
                tolerance_band_v,
                parameters.power_gate_impedance_ohm.get(load.kind, 0.0),
                parameters.leakage_exponent,
            )
        else:
            ppg = pgb
        guardbanded[load.kind] = GuardbandedLoad(
            load=load, guardbanded_power_w=pgb, gated_power_w=ppg
        )
    return guardbanded


def size_board_vr(
    name: str, peak_current_a: float, power_state: VRPowerState = VRPowerState.PS0
) -> SwitchingRegulator:
    """Build a board regulator sized (Iccmax) for ``peak_current_a``."""
    require_non_negative(peak_current_a, "peak_current_a")
    iccmax = max(MIN_BOARD_VR_ICCMAX_A, peak_current_a * ICCMAX_DESIGN_MARGIN)
    regulator = default_board_vr(name, iccmax)
    regulator.set_power_state(power_state)
    return regulator


def evaluate_board_rail(
    name: str,
    rail_power_w: float,
    rail_voltage_v: float,
    load_line: LoadLine,
    conditions: OperatingConditions,
    parameters: PdnTechnologyParameters,
    sizing_peak_current_a: float,
    regulator: Optional[SwitchingRegulator] = None,
) -> RailEvaluation:
    """Evaluate one board rail: load-line guardband plus regulator losses.

    Parameters
    ----------
    name:
        Rail name (e.g. ``"V_Cores"``); used for sizing and diagnostics.
    rail_power_w:
        Power drawn by the loads on the rail *after* the per-domain guardbands.
    rail_voltage_v:
        Nominal rail voltage (the highest domain voltage on the rail).
    load_line:
        Distribution impedance from the board regulator to the loads.
    conditions:
        The operating point (provides the application ratio and the board VR
        power state).
    parameters:
        Technology parameters (platform supply voltage).
    sizing_peak_current_a:
        Worst-case current of this rail at the evaluated TDP, used to size the
        regulator's Iccmax (and hence its fixed losses).
    regulator:
        An explicit regulator instance (used by tests and what-if studies);
        when omitted a default board regulator is sized from
        ``sizing_peak_current_a``.
    """
    if regulator is None:
        regulator = size_board_vr(name, sizing_peak_current_a, conditions.board_vr_state)
    else:
        regulator.set_power_state(conditions.board_vr_state)
    if rail_power_w <= 0.0:
        idle_w = regulator.idle_power_w()
        return RailEvaluation(
            name=name,
            output_power_w=0.0,
            supply_power_w=idle_w,
            rail_voltage_v=rail_voltage_v,
            rail_current_a=0.0,
            conduction_loss_w=0.0,
            off_chip_vr_loss_w=0.0,
            idle_quiescent_w=idle_w,
        )
    ll_result = load_line.apply(rail_voltage_v, rail_power_w, conditions.application_ratio)
    point = RegulatorOperatingPoint(
        input_voltage_v=parameters.supply_voltage_v,
        output_voltage_v=ll_result.rail_voltage_v,
        output_current_a=ll_result.rail_current_a,
    )
    supply_power_w = regulator.input_power_w(point)
    return RailEvaluation(
        name=name,
        output_power_w=rail_power_w,
        supply_power_w=supply_power_w,
        rail_voltage_v=ll_result.rail_voltage_v,
        rail_current_a=ll_result.rail_current_a,
        conduction_loss_w=ll_result.conduction_loss_w,
        off_chip_vr_loss_w=supply_power_w - ll_result.rail_power_w,
        idle_quiescent_w=0.0,
    )


def group_power_w(
    guardbanded: Mapping[DomainKind, GuardbandedLoad], kinds: Sequence[DomainKind]
) -> float:
    """Sum of the guardbanded power of the domains in ``kinds``."""
    return sum(guardbanded[kind].gated_power_w for kind in kinds if kind in guardbanded)


def group_voltage_v(
    conditions: OperatingConditions, kinds: Sequence[DomainKind]
) -> float:
    """Rail voltage of a group of domains (the highest active domain voltage).

    If none of the group's domains are active the first domain's voltage is
    returned so downstream maths stays well-defined.
    """
    voltages = [
        conditions.load(kind).voltage_v
        for kind in kinds
        if conditions.load(kind).active and conditions.load(kind).effective_power_w > 0.0
    ]
    if not voltages:
        return conditions.load(kinds[0]).voltage_v
    return max(voltages)


def guardband_loss_w(guardbanded: Mapping[DomainKind, GuardbandedLoad]) -> float:
    """Total power added by the tolerance-band and power-gate guardbands."""
    return sum(item.guardband_loss_w for item in guardbanded.values())
