"""The 3DMark06 graphics suite as seen by the PDNspot models.

3DMark06 consists of graphics tests (two shader-model-2 scenes and two HDR /
shader-model-3 scenes) and two CPU tests.  The paper's graphics evaluation
(Fig. 8b) allocates 10--20 % of the compute budget to the CPU cores and the
rest to the graphics engines, and notes that graphics workloads run the LLC at
a higher voltage/frequency than the cores.  Here each sub-test is a
:class:`Benchmark` of type ``GRAPHICS`` with a high performance scalability
(graphics scenes scale almost linearly with the graphics clock until they
become memory-bound).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.power.domains import WorkloadType
from repro.workloads.base import Benchmark

#: (name, performance scalability, application ratio).
_THREEDMARK06_TABLE: Tuple[Tuple[str, float, float], ...] = (
    ("gt1_return_to_proxycon", 0.90, 0.62),
    ("gt2_firefly_forest", 0.92, 0.66),
    ("hdr1_canyon_flight", 0.88, 0.64),
    ("hdr2_deep_freeze", 0.86, 0.68),
    ("cpu1_red_valley", 0.70, 0.58),
    ("cpu2_red_valley", 0.72, 0.60),
)

#: The 3DMark06 sub-tests as :class:`Benchmark` objects.
THREEDMARK06_BENCHMARKS: Tuple[Benchmark, ...] = tuple(
    Benchmark(
        name=name,
        workload_type=WorkloadType.GRAPHICS,
        performance_scalability=scalability,
        application_ratio=application_ratio,
    )
    for name, scalability, application_ratio in _THREEDMARK06_TABLE
)


def graphics_suite() -> List[Benchmark]:
    """Return the 3DMark06 suite."""
    return list(THREEDMARK06_BENCHMARKS)


def average_performance_scalability() -> float:
    """Average scalability across the graphics suite."""
    return sum(b.performance_scalability for b in THREEDMARK06_BENCHMARKS) / len(
        THREEDMARK06_BENCHMARKS
    )
