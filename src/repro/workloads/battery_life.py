"""Battery-life workloads and their power-state residencies.

Sec. 5 and Sec. 7.1 of the paper describe battery-life workloads as
residency-weighted mixtures of package power states:

* **video playback** -- 10 % in C0 at minimum frequency (preparing a frame),
  a short C2 window while the display controller fetches the frame from
  memory, and ~85 % in the deep C8 state while the panel self-refreshes;
* **video conferencing** -- 20 % C0_MIN residency;
* **web browsing** -- 30 % C0_MIN residency;
* **light gaming** -- 40 % C0_MIN residency;

with the remaining idle time split between C2 and C8.  The average power of
such a workload is the residency-weighted sum of the per-state power divided
by the per-state ETEE (the equation in Sec. 5), which is what
:meth:`BatteryLifeWorkload.average_power_w` computes for a given PDN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.pdn.base import (
    OperatingConditions,
    PdnEvaluation,
    PowerDeliveryNetwork,
    evaluate_pdn,
)
from repro.power.power_states import PackageCState
from repro.util.errors import ConfigurationError
from repro.util.validation import require_fraction
from repro.workloads.base import WorkloadPhase, WorkloadTrace


@dataclass(frozen=True)
class BatteryLifeWorkload:
    """A battery-life workload expressed as package power-state residencies."""

    name: str
    residencies: Dict[PackageCState, float]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a battery-life workload needs a name")
        total = 0.0
        for state, residency in self.residencies.items():
            require_fraction(residency, f"residency[{state}]")
            total += residency
        if abs(total - 1.0) > 1e-6:
            raise ConfigurationError(
                f"{self.name}: residencies sum to {total:.4f}, expected 1.0"
            )

    def trace(self) -> WorkloadTrace:
        """The workload as a :class:`WorkloadTrace` of idle/active phases."""
        phases = tuple(
            WorkloadPhase(power_state=state, residency=residency)
            for state, residency in self.residencies.items()
            if residency > 0.0
        )
        return WorkloadTrace(name=self.name, phases=phases)

    def average_power_w(
        self,
        pdn: PowerDeliveryNetwork,
        tdp_w: float = 18.0,
        evaluate: Optional[
            Callable[[PowerDeliveryNetwork, OperatingConditions], PdnEvaluation]
        ] = None,
    ) -> float:
        """Residency-weighted average supply power of this workload on ``pdn``.

        Implements the Sec. 5 equation
        ``sum_s P_s * R_s / ETEE_s`` by evaluating the PDN in each power state.
        The optional ``evaluate`` hook lets :class:`repro.analysis.pdnspot.PdnSpot`
        serve the shared power states of all four workloads from its cache.
        """
        if evaluate is None:
            evaluate = evaluate_pdn
        average = 0.0
        for state, residency in self.residencies.items():
            if residency == 0.0:
                continue
            conditions = OperatingConditions.for_power_state(tdp_w, state)
            average += evaluate(pdn, conditions).supply_power_w * residency
        return average


#: The four battery-life workloads of Fig. 8(c), with the paper's C0_MIN
#: residencies (10/20/30/40 %) and the remaining time split between C2 and C8.
BATTERY_LIFE_WORKLOADS: Tuple[BatteryLifeWorkload, ...] = (
    BatteryLifeWorkload(
        name="video_playback",
        residencies={
            PackageCState.C0_MIN: 0.10,
            PackageCState.C2: 0.05,
            PackageCState.C8: 0.85,
        },
    ),
    BatteryLifeWorkload(
        name="video_conferencing",
        residencies={
            PackageCState.C0_MIN: 0.20,
            PackageCState.C2: 0.08,
            PackageCState.C8: 0.72,
        },
    ),
    BatteryLifeWorkload(
        name="web_browsing",
        residencies={
            PackageCState.C0_MIN: 0.30,
            PackageCState.C2: 0.10,
            PackageCState.C8: 0.60,
        },
    ),
    BatteryLifeWorkload(
        name="light_gaming",
        residencies={
            PackageCState.C0_MIN: 0.40,
            PackageCState.C2: 0.10,
            PackageCState.C8: 0.50,
        },
    ),
)


def battery_life_suite() -> List[BatteryLifeWorkload]:
    """Return the four battery-life workloads of Fig. 8(c)."""
    return list(BATTERY_LIFE_WORKLOADS)
