"""Registry of parameterised, seeded scenario trace generators.

The paper's headline claims rest on *dynamic* behaviour -- FlexWatts mode
switches, residency guards and PMU-driven decisions over workload traces --
but hand-written traces only exercise a couple of shapes.  This module
provides a registry of named scenario generators, each a deterministic
(seeded) builder of a :class:`~repro.workloads.base.WorkloadTrace` modelling
one archetypal client-device workload:

``bursty-interactive``
    Alternating interactive compute bursts and deep idle (web/UI usage).
``idle-heavy-mobile``
    Mostly-asleep mobile pattern: brief C0_MIN wakes, C2 housekeeping,
    long C8 self-refresh windows.
``sustained-compute``
    Long multi-threaded compute phases with short scheduling gaps.
``mixed-compute-graphics``
    Interleaved CPU and graphics frames (gaming/compositing).
``thermally-throttled``
    A heavy burst followed by a descending application-ratio ladder and a
    recovery, repeated -- the classic thermal-throttle sawtooth.
``race-to-idle``
    Short, near-power-virus bursts that sprint to completion and then sleep
    deeply.
``dvfs-ladder``
    A staircase of application ratios up and back down, revisiting every
    operating point -- the stress test for the phase-batching memo.
``duty-cycled-background``
    Many identical tiny background wakes on a long period -- telemetry
    beacons, sync daemons.

Scenario traces are reproducible work units: ``(scenario name, seed)``
rebuilds the identical trace in any process, which is what lets
:mod:`repro.sim.study` ship scenario references (not traces) to process-pool
workers.  Use :func:`register_scenario` to add project-specific scenarios to
the registry at runtime.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.power.domains import WorkloadType
from repro.power.power_states import PackageCState
from repro.util.errors import ConfigurationError
from repro.workloads.base import Benchmark, WorkloadPhase, WorkloadTrace

#: Default seed of every scenario builder (the paper's publication year).
DEFAULT_SEED = 2020

#: One phase under construction: (power state, benchmark or None, duration).
_Part = Tuple[PackageCState, Optional[Benchmark], float]


@dataclass(frozen=True)
class ScenarioSpec:
    """A named, seeded trace generator.

    Attributes
    ----------
    name:
        Registry name (kebab-case, e.g. ``"bursty-interactive"``).
    summary:
        One-line description shown by the CLI and the docs site.
    build:
        Deterministic builder ``(rng) -> WorkloadTrace``; the registry hands
        it a :class:`random.Random` seeded from ``(name, seed)`` so equal
        seeds produce bit-identical traces in every process.
    """

    name: str
    summary: str
    build: Callable[[random.Random], WorkloadTrace]

    def trace(self, seed: int = DEFAULT_SEED) -> WorkloadTrace:
        """Build the scenario's trace for ``seed``."""
        return self.build(_scenario_rng(self.name, seed))


def _scenario_rng(name: str, seed: int) -> random.Random:
    """A process-independent RNG for one ``(scenario, seed)`` pair.

    Seeding :class:`random.Random` with a string hashes it with SHA-512
    (never the salted ``hash()``), so workers rebuilding a trace from its
    registry name draw exactly the parent's phase sequence.
    """
    return random.Random(f"{name}:{seed}")


def _trace_from_parts(name: str, parts: Sequence[_Part]) -> WorkloadTrace:
    """Assemble timed parts into a trace with duration-proportional residencies."""
    total_s = sum(duration_s for _, _, duration_s in parts)
    if total_s <= 0.0:
        raise ConfigurationError(f"scenario {name!r} generated no simulated time")
    phases = tuple(
        WorkloadPhase(
            power_state=state,
            residency=duration_s / total_s,
            benchmark=benchmark,
            duration_s=duration_s,
        )
        for state, benchmark, duration_s in parts
    )
    return WorkloadTrace(name=name, phases=phases)


def _benchmark(
    rng: random.Random,
    label: str,
    workload_type: WorkloadType,
    ar_low: float,
    ar_high: float,
) -> Benchmark:
    """Draw one synthetic benchmark with AR in ``[ar_low, ar_high]``.

    Scalability correlates loosely with AR, as in
    :class:`repro.workloads.synthetic.SyntheticTraceGenerator`: compute-bound
    phases both switch more transistors and scale better with frequency.
    """
    application_ratio = rng.uniform(ar_low, ar_high)
    scalability = min(1.0, max(0.0, rng.gauss(0.2 + 0.8 * application_ratio, 0.08)))
    return Benchmark(
        name=label,
        workload_type=workload_type,
        performance_scalability=scalability,
        application_ratio=application_ratio,
    )


# --------------------------------------------------------------------------- #
# The built-in scenario builders
# --------------------------------------------------------------------------- #
def _build_bursty_interactive(rng: random.Random) -> WorkloadTrace:
    """Interactive bursts (10-40 ms) separated by deep C6 idle (20-80 ms)."""
    parts: List[_Part] = []
    for index in range(20):
        benchmark = _benchmark(
            rng, f"interactive.{index:02d}", WorkloadType.CPU_SINGLE_THREAD, 0.45, 0.75
        )
        parts.append((PackageCState.C0, benchmark, rng.uniform(10e-3, 40e-3)))
        parts.append((PackageCState.C6, None, rng.uniform(20e-3, 80e-3)))
    return _trace_from_parts("bursty-interactive", parts)


def _build_idle_heavy_mobile(rng: random.Random) -> WorkloadTrace:
    """Mostly-asleep mobile usage: C0_MIN wake, C2 housekeeping, long C8."""
    parts: List[_Part] = []
    for _ in range(12):
        parts.append((PackageCState.C0_MIN, None, rng.uniform(5e-3, 15e-3)))
        parts.append((PackageCState.C2, None, rng.uniform(5e-3, 10e-3)))
        parts.append((PackageCState.C8, None, rng.uniform(80e-3, 200e-3)))
    return _trace_from_parts("idle-heavy-mobile", parts)


def _build_sustained_compute(rng: random.Random) -> WorkloadTrace:
    """Long multi-threaded compute phases with short C2 scheduling gaps."""
    parts: List[_Part] = []
    for index in range(6):
        benchmark = _benchmark(
            rng, f"sustained.{index:02d}", WorkloadType.CPU_MULTI_THREAD, 0.70, 0.80
        )
        parts.append((PackageCState.C0, benchmark, rng.uniform(150e-3, 300e-3)))
        parts.append((PackageCState.C2, None, 10e-3))
    return _trace_from_parts("sustained-compute", parts)


def _build_mixed_compute_graphics(rng: random.Random) -> WorkloadTrace:
    """Interleaved CPU and graphics frames, as in gaming or compositing."""
    parts: List[_Part] = []
    for index in range(10):
        cpu = _benchmark(
            rng, f"mixed.cpu.{index:02d}", WorkloadType.CPU_MULTI_THREAD, 0.50, 0.70
        )
        gfx = _benchmark(
            rng, f"mixed.gfx.{index:02d}", WorkloadType.GRAPHICS, 0.55, 0.75
        )
        parts.append((PackageCState.C0, cpu, rng.uniform(8e-3, 16e-3)))
        parts.append((PackageCState.C0, gfx, rng.uniform(12e-3, 24e-3)))
        parts.append((PackageCState.C2, None, rng.uniform(2e-3, 6e-3)))
    return _trace_from_parts("mixed-compute-graphics", parts)


def _build_thermally_throttled(rng: random.Random) -> WorkloadTrace:
    """Thermal-throttle sawtooth: burst, descending-AR ladder, recovery.

    The ladder's benchmarks are drawn once and reused by every cycle, so the
    trace revisits identical operating points -- the behaviour a thermal
    governor actually produces, and a direct beneficiary of phase batching.
    """
    ladder = [
        _benchmark(
            rng,
            f"throttle.step{step}",
            WorkloadType.CPU_MULTI_THREAD,
            0.78 - 0.08 * step,
            0.80 - 0.08 * step,
        )
        for step in range(4)
    ]
    parts: List[_Part] = []
    for _ in range(4):
        for benchmark in ladder:  # descending AR while the governor clamps
            parts.append((PackageCState.C0, benchmark, 40e-3))
        parts.append((PackageCState.C6, None, rng.uniform(30e-3, 60e-3)))
    return _trace_from_parts("thermally-throttled", parts)


def _build_race_to_idle(rng: random.Random) -> WorkloadTrace:
    """Near-power-virus sprints (8-15 ms) followed by deep C8 sleep."""
    parts: List[_Part] = []
    for index in range(15):
        benchmark = _benchmark(
            rng, f"race.{index:02d}", WorkloadType.CPU_MULTI_THREAD, 0.85, 0.95
        )
        parts.append((PackageCState.C0, benchmark, rng.uniform(8e-3, 15e-3)))
        parts.append((PackageCState.C8, None, rng.uniform(100e-3, 200e-3)))
    return _trace_from_parts("race-to-idle", parts)


def _build_dvfs_ladder(rng: random.Random) -> WorkloadTrace:
    """An application-ratio staircase up and back down through nine steps.

    The descent reuses the ascent's benchmarks, so every operating point is
    visited twice -- the canonical workload for the per-run evaluation memo.
    """
    steps = [
        _benchmark(
            rng,
            f"ladder.step{step}",
            WorkloadType.CPU_MULTI_THREAD,
            0.40 + 0.05 * step,
            0.40 + 0.05 * step + 0.01,
        )
        for step in range(9)
    ]
    parts: List[_Part] = [
        (PackageCState.C0, benchmark, 30e-3) for benchmark in steps
    ]
    parts.extend(
        (PackageCState.C0, benchmark, 30e-3) for benchmark in reversed(steps)
    )
    parts.append((PackageCState.C6, None, 60e-3))
    return _trace_from_parts("dvfs-ladder", parts)


def _build_duty_cycled_background(rng: random.Random) -> WorkloadTrace:
    """Forty identical background wakes: one tiny task, then deep sleep.

    Every cycle runs the *same* benchmark for the same duration, so the
    40-cycle trace has exactly three distinct operating points.
    """
    benchmark = _benchmark(
        rng, "background.beacon", WorkloadType.CPU_SINGLE_THREAD, 0.45, 0.55
    )
    parts: List[_Part] = []
    for _ in range(40):
        parts.append((PackageCState.C0, benchmark, 2e-3))
        parts.append((PackageCState.C2, None, 1e-3))
        parts.append((PackageCState.C8, None, 47e-3))
    return _trace_from_parts("duty-cycled-background", parts)


#: The built-in scenario registry, in presentation order.
_SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, replace: bool = False) -> ScenarioSpec:
    """Add a scenario to the registry (``replace=True`` to override a name)."""
    if not replace and spec.name in _SCENARIOS:
        raise ConfigurationError(
            f"scenario {spec.name!r} is already registered; pass replace=True "
            "to override it"
        )
    _SCENARIOS[spec.name] = spec
    return spec


for _name, _summary, _build in (
    (
        "bursty-interactive",
        "interactive compute bursts separated by deep C6 idle",
        _build_bursty_interactive,
    ),
    (
        "idle-heavy-mobile",
        "brief C0_MIN wakes, C2 housekeeping, long C8 self-refresh",
        _build_idle_heavy_mobile,
    ),
    (
        "sustained-compute",
        "long multi-threaded compute with short scheduling gaps",
        _build_sustained_compute,
    ),
    (
        "mixed-compute-graphics",
        "interleaved CPU and graphics frames (gaming/compositing)",
        _build_mixed_compute_graphics,
    ),
    (
        "thermally-throttled",
        "burst, descending-AR throttle ladder, recovery, repeated",
        _build_thermally_throttled,
    ),
    (
        "race-to-idle",
        "near-power-virus sprints followed by deep C8 sleep",
        _build_race_to_idle,
    ),
    (
        "dvfs-ladder",
        "application-ratio staircase up and down through nine steps",
        _build_dvfs_ladder,
    ),
    (
        "duty-cycled-background",
        "forty identical tiny background wakes on a 50 ms period",
        _build_duty_cycled_background,
    ),
):
    register_scenario(ScenarioSpec(name=_name, summary=_summary, build=_build))


def available_scenarios() -> Tuple[str, ...]:
    """Names of every registered scenario, in registration order."""
    return tuple(_SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up one scenario spec by name."""
    try:
        return _SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {', '.join(_SCENARIOS)}"
        ) from None


def build_scenario_trace(name: str, seed: int = DEFAULT_SEED) -> WorkloadTrace:
    """Build the named scenario's trace for ``seed`` (deterministic)."""
    return get_scenario(name).trace(seed)


