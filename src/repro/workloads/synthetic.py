"""Synthetic trace generation.

The paper's validation uses ~5000 proprietary traces spanning single-threaded,
multi-programmed and graphics workloads with application ratios between 40 %
and 80 %, plus synthetic power-virus traces per domain.  This module generates
statistically similar synthetic populations with a seeded random generator so
that experiments are reproducible run to run.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.power.domains import WorkloadType
from repro.power.power_states import PackageCState
from repro.util.errors import ConfigurationError
from repro.workloads.base import Benchmark, WorkloadPhase, WorkloadTrace


def power_virus_benchmark(workload_type: WorkloadType = WorkloadType.CPU_MULTI_THREAD) -> Benchmark:
    """The power-virus workload: AR = 1 by definition (Sec. 2.4)."""
    return Benchmark(
        name=f"power_virus.{workload_type.value}",
        workload_type=workload_type,
        performance_scalability=1.0,
        application_ratio=1.0,
    )


@dataclass
class SyntheticTraceGenerator:
    """Seeded generator of benchmark populations and phase traces.

    Parameters
    ----------
    seed:
        Seed of the internal random generator; identical seeds produce
        identical populations.
    ar_range:
        Range of application ratios to draw from (the paper's validation uses
        40--80 %).
    """

    seed: int = 2020
    ar_range: Sequence[float] = (0.40, 0.80)

    def __post_init__(self) -> None:
        low, high = self.ar_range
        if not 0.0 < low <= high <= 1.0:
            raise ConfigurationError(f"invalid ar_range {self.ar_range!r}")
        self._rng = random.Random(self.seed)

    # ------------------------------------------------------------------ #
    # Benchmark populations
    # ------------------------------------------------------------------ #
    def benchmarks(
        self,
        count: int,
        workload_type: WorkloadType = WorkloadType.CPU_SINGLE_THREAD,
        prefix: Optional[str] = None,
    ) -> List[Benchmark]:
        """Draw ``count`` synthetic benchmarks of ``workload_type``."""
        if count < 1:
            raise ConfigurationError("count must be at least 1")
        low, high = self.ar_range
        prefix = prefix if prefix is not None else f"synthetic.{workload_type.value}"
        population: List[Benchmark] = []
        for index in range(count):
            application_ratio = self._rng.uniform(low, high)
            # Scalability loosely correlates with AR: compute-bound phases
            # both switch more transistors and scale better with frequency.
            base_scalability = 0.15 + 0.9 * (application_ratio - low) / max(high - low, 1e-9)
            scalability = min(1.0, max(0.0, self._rng.gauss(base_scalability, 0.1)))
            population.append(
                Benchmark(
                    name=f"{prefix}.{index:04d}",
                    workload_type=workload_type,
                    performance_scalability=scalability,
                    application_ratio=application_ratio,
                )
            )
        return population

    def mixed_population(self, count_per_type: int) -> List[Benchmark]:
        """Single-threaded + multi-programmed + graphics populations combined."""
        population: List[Benchmark] = []
        for workload_type in (
            WorkloadType.CPU_SINGLE_THREAD,
            WorkloadType.CPU_MULTI_THREAD,
            WorkloadType.GRAPHICS,
        ):
            population.extend(self.benchmarks(count_per_type, workload_type))
        return population

    # ------------------------------------------------------------------ #
    # Phase traces
    # ------------------------------------------------------------------ #
    def bursty_trace(
        self,
        name: str,
        benchmark: Benchmark,
        active_residency: float,
        phase_duration_s: float = 10e-3,
        phase_count: int = 20,
    ) -> WorkloadTrace:
        """A trace alternating between active execution and deep idle.

        Used to exercise FlexWatts' mode switching in the interval simulator:
        the active phases pull the hybrid PDN towards one mode, the idle
        phases towards the other.
        """
        if not 0.0 < active_residency < 1.0:
            raise ConfigurationError("active_residency must be in (0, 1)")
        if phase_count < 2 or phase_count % 2 != 0:
            raise ConfigurationError("phase_count must be an even number >= 2")
        pairs = phase_count // 2
        phases: List[WorkloadPhase] = []
        for _ in range(pairs):
            phases.append(
                WorkloadPhase(
                    power_state=PackageCState.C0,
                    residency=active_residency / pairs,
                    benchmark=benchmark,
                    duration_s=phase_duration_s,
                )
            )
            phases.append(
                WorkloadPhase(
                    power_state=PackageCState.C6,
                    residency=(1.0 - active_residency) / pairs,
                    duration_s=phase_duration_s,
                )
            )
        return WorkloadTrace(name=name, phases=tuple(phases))
