"""Workload, benchmark and trace datatypes.

Three levels of description are used throughout the library:

* :class:`Benchmark` -- a steady-state workload summarised by the features the
  PDNspot models consume: its type, its application ratio and its performance
  scalability (how much faster it runs per 1 % of extra frequency, Sec. 3.3).
* :class:`WorkloadPhase` -- one interval of a time-varying workload: a package
  power state, an optional active benchmark, and a residency or duration.
* :class:`WorkloadTrace` -- an ordered sequence of phases, either as residency
  fractions (battery-life workloads) or as timed intervals (for the interval
  simulator in :mod:`repro.sim`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.power.domains import WorkloadType
from repro.power.power_states import PackageCState
from repro.util.errors import ConfigurationError
from repro.util.validation import require_fraction, require_non_negative


@dataclass(frozen=True)
class Benchmark:
    """A steady-state benchmark summarised by its model-visible features.

    Attributes
    ----------
    name:
        Benchmark name (e.g. ``"416.gamess"``).
    workload_type:
        Which of the model's workload classes it belongs to.
    performance_scalability:
        Fractional performance improvement per fractional frequency
        improvement (0 = memory/IO bound, 1 = fully core bound).  Modern
        processors predict this at runtime from performance counters
        (Sec. 3.3); here it is part of the benchmark description.
    application_ratio:
        The benchmark's average application ratio (AR).
    """

    name: str
    workload_type: WorkloadType
    performance_scalability: float
    application_ratio: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a benchmark needs a non-empty name")
        require_fraction(self.performance_scalability, "performance_scalability")
        if not 0.0 < self.application_ratio <= 1.0:
            raise ConfigurationError(
                f"application_ratio must be in (0, 1], got {self.application_ratio!r}"
            )


@dataclass(frozen=True)
class WorkloadPhase:
    """One interval of a time-varying workload.

    Attributes
    ----------
    power_state:
        The package power state during the phase.
    residency:
        Fraction of the workload's period spent in this phase.
    benchmark:
        The active benchmark during an active (C0/C0_MIN) phase; ``None`` for
        idle phases.
    duration_s:
        Optional wall-clock duration, used by the interval simulator.
    """

    power_state: PackageCState
    residency: float
    benchmark: Optional[Benchmark] = None
    duration_s: Optional[float] = None

    def __post_init__(self) -> None:
        require_fraction(self.residency, "residency")
        if self.duration_s is not None:
            require_non_negative(self.duration_s, "duration_s")
        if self.power_state.is_active and self.power_state is PackageCState.C0:
            if self.benchmark is None:
                raise ConfigurationError("an active C0 phase needs a benchmark")

    @property
    def workload_type(self) -> WorkloadType:
        """The workload type of the phase (IDLE for package idle phases)."""
        if self.benchmark is not None:
            return self.benchmark.workload_type
        return WorkloadType.IDLE

    @property
    def application_ratio(self) -> float:
        """The application ratio of the phase (0 when idle)."""
        if self.benchmark is not None:
            return self.benchmark.application_ratio
        return 0.0


@dataclass(frozen=True)
class WorkloadTrace:
    """An ordered sequence of workload phases.

    Residencies must sum to 1 (within a small tolerance) so the trace can be
    used directly for residency-weighted averaging of power (Sec. 5's video
    playback example).
    """

    name: str
    phases: Sequence[WorkloadPhase] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("a trace needs a non-empty name")
        if not self.phases:
            raise ConfigurationError(f"trace {self.name!r} has no phases")
        total_residency = sum(phase.residency for phase in self.phases)
        if abs(total_residency - 1.0) > 1e-6:
            raise ConfigurationError(
                f"trace {self.name!r}: phase residencies sum to {total_residency:.4f}, "
                "expected 1.0"
            )

    @property
    def active_residency(self) -> float:
        """Total residency of active (C0/C0_MIN) phases."""
        return sum(phase.residency for phase in self.phases if phase.power_state.is_active)

    def phases_in_state(self, state: PackageCState) -> List[WorkloadPhase]:
        """All phases that run in package state ``state``."""
        return [phase for phase in self.phases if phase.power_state is state]

    @classmethod
    def steady_state(cls, benchmark: Benchmark) -> "WorkloadTrace":
        """A single-phase trace that runs ``benchmark`` continuously in C0."""
        return cls(
            name=benchmark.name,
            phases=(
                WorkloadPhase(
                    power_state=PackageCState.C0,
                    residency=1.0,
                    benchmark=benchmark,
                ),
            ),
        )
