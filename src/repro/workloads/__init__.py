"""Workload substrate.

The paper drives its evaluation with ~5000 proprietary traces from SPEC
CPU2006, 3DMark06 and battery-life suites (MobileMark, video playback, ...).
Those traces are not redistributable, so this package provides synthetic
equivalents that expose the exact observable features the PDNspot models
consume: application ratio, workload type, per-phase power-state residencies,
and performance scalability.

* :mod:`repro.workloads.base` -- the :class:`Benchmark`, :class:`WorkloadPhase`
  and :class:`WorkloadTrace` dataclasses.
* :mod:`repro.workloads.spec_cpu2006` -- the 29 SPEC CPU2006 benchmarks with
  per-benchmark performance scalability ordered as in Fig. 7.
* :mod:`repro.workloads.graphics` -- the 3DMark06 graphics suite.
* :mod:`repro.workloads.battery_life` -- the four battery-life workloads
  (video playback, video conferencing, web browsing, light gaming) with their
  package power-state residencies.
* :mod:`repro.workloads.synthetic` -- seeded trace generators (including the
  power-virus trace) used by the validation experiments and property tests.
* :mod:`repro.workloads.scenarios` -- the registry of named, seeded scenario
  trace generators the simulation studies (:mod:`repro.sim.study`) and the
  CLI ``simulate`` sub-command dispatch over.
"""

from repro.workloads.base import Benchmark, WorkloadPhase, WorkloadTrace
from repro.workloads.spec_cpu2006 import SPEC_CPU2006_BENCHMARKS, spec_cpu2006_suite
from repro.workloads.graphics import THREEDMARK06_BENCHMARKS, graphics_suite
from repro.workloads.battery_life import (
    BATTERY_LIFE_WORKLOADS,
    BatteryLifeWorkload,
    battery_life_suite,
)
from repro.workloads.synthetic import SyntheticTraceGenerator, power_virus_benchmark
from repro.workloads.scenarios import (
    ScenarioSpec,
    available_scenarios,
    build_scenario_trace,
    get_scenario,
    register_scenario,
)

__all__ = [
    "Benchmark",
    "WorkloadPhase",
    "WorkloadTrace",
    "SPEC_CPU2006_BENCHMARKS",
    "spec_cpu2006_suite",
    "THREEDMARK06_BENCHMARKS",
    "graphics_suite",
    "BatteryLifeWorkload",
    "BATTERY_LIFE_WORKLOADS",
    "battery_life_suite",
    "SyntheticTraceGenerator",
    "power_virus_benchmark",
    "ScenarioSpec",
    "available_scenarios",
    "build_scenario_trace",
    "get_scenario",
    "register_scenario",
]
