"""The SPEC CPU2006 suite as seen by the PDNspot models.

Fig. 7 of the paper orders the 29 SPEC CPU2006 benchmarks by their average
performance scalability (the right-hand axis of the figure): memory-bound
benchmarks such as ``433.milc`` and ``410.bwaves`` sit near the bottom
(~20--30 % scalability) and core-bound benchmarks such as ``456.hmmer`` and
``416.gamess`` near the top (~95--100 %).  The exact per-benchmark values are
not tabulated in the paper, so the values below follow the figure's ordering
with a smooth spread over the published range; the reproduction targets the
*average* behaviour (a >22 % mean speedup at 4 W), which is insensitive to the
exact per-benchmark values.

Application ratios are drawn from the 40--80 % range the validation section
uses, with higher-IPC benchmarks assigned higher ARs.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.power.domains import WorkloadType
from repro.workloads.base import Benchmark

#: (name, performance scalability, application ratio), ordered as in Fig. 7
#: (ascending scalability).
_SPEC_CPU2006_TABLE: Tuple[Tuple[str, float, float], ...] = (
    ("433.milc", 0.20, 0.45),
    ("410.bwaves", 0.24, 0.46),
    ("459.GemsFDTD", 0.28, 0.47),
    ("450.soplex", 0.32, 0.48),
    ("434.zeusmp", 0.36, 0.50),
    ("437.leslie3d", 0.40, 0.50),
    ("471.omnetpp", 0.43, 0.48),
    ("429.mcf", 0.46, 0.46),
    ("481.wrf", 0.50, 0.52),
    ("403.gcc", 0.54, 0.54),
    ("470.lbm", 0.57, 0.55),
    ("436.cactusADM", 0.60, 0.56),
    ("482.sphinx3", 0.63, 0.56),
    ("462.libquantum", 0.66, 0.52),
    ("447.dealII", 0.70, 0.58),
    ("483.xalancbmk", 0.73, 0.58),
    ("454.calculix", 0.76, 0.60),
    ("473.astar", 0.79, 0.58),
    ("435.gromacs", 0.82, 0.62),
    ("401.bzip2", 0.84, 0.60),
    ("465.tonto", 0.86, 0.64),
    ("444.namd", 0.88, 0.66),
    ("458.sjeng", 0.90, 0.62),
    ("464.h264ref", 0.92, 0.68),
    ("445.gobmk", 0.93, 0.64),
    ("453.povray", 0.95, 0.70),
    ("400.perlbench", 0.96, 0.66),
    ("456.hmmer", 0.98, 0.72),
    ("416.gamess", 1.00, 0.74),
)

#: The SPEC CPU2006 benchmarks as :class:`Benchmark` objects (Fig. 7 order).
SPEC_CPU2006_BENCHMARKS: Tuple[Benchmark, ...] = tuple(
    Benchmark(
        name=name,
        workload_type=WorkloadType.CPU_SINGLE_THREAD,
        performance_scalability=scalability,
        application_ratio=application_ratio,
    )
    for name, scalability, application_ratio in _SPEC_CPU2006_TABLE
)


def spec_cpu2006_suite(multi_threaded: bool = False) -> List[Benchmark]:
    """Return the SPEC CPU2006 suite.

    Parameters
    ----------
    multi_threaded:
        When ``True`` the benchmarks are returned as rate-style
        multi-programmed copies (both cores active), which is how the paper's
        multi-programmed traces are built.
    """
    if not multi_threaded:
        return list(SPEC_CPU2006_BENCHMARKS)
    return [
        Benchmark(
            name=f"{benchmark.name}.rate",
            workload_type=WorkloadType.CPU_MULTI_THREAD,
            performance_scalability=benchmark.performance_scalability,
            application_ratio=min(1.0, benchmark.application_ratio * 1.1),
        )
        for benchmark in SPEC_CPU2006_BENCHMARKS
    ]


def average_performance_scalability() -> float:
    """Average scalability across the suite (used by the TDP-sweep figures)."""
    return sum(b.performance_scalability for b in SPEC_CPU2006_BENCHMARKS) / len(
        SPEC_CPU2006_BENCHMARKS
    )
