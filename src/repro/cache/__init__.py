"""Persistent on-disk evaluation caching (the second cache tier).

The in-memory memo caches of :class:`~repro.analysis.pdnspot.PdnSpot` and
:class:`~repro.sim.study.SimEngine` die with the process; this package adds
the durable tier below them.  Attach a :class:`DiskCache` (or just a cache
directory path) to an engine and every computed evaluation is written
through to disk, every memory miss falls through to a disk lookup, and a
directory warmed by one process makes identical runs in *any* later process
-- serial or parallel, CLI or CI -- near-instant with bit-identical results.

See :doc:`/guides/caching` for the architecture and CLI usage.
"""

from repro.cache.store import (
    CACHE_FORMAT_VERSION,
    CACHE_STATS_SCHEMA_VERSION,
    DiskCache,
    DiskCacheLike,
    DiskCacheStats,
    cache_dir_summary,
    cache_io_section,
    cache_stats_payload,
    canonical_key,
    parameters_fingerprint,
    prune_cache_dir,
    resolve_disk_cache,
)

__all__ = [
    "CACHE_FORMAT_VERSION",
    "CACHE_STATS_SCHEMA_VERSION",
    "DiskCache",
    "DiskCacheLike",
    "DiskCacheStats",
    "cache_dir_summary",
    "cache_io_section",
    "cache_stats_payload",
    "canonical_key",
    "parameters_fingerprint",
    "prune_cache_dir",
    "resolve_disk_cache",
]
