"""The content-addressed, file-locked on-disk evaluation store.

:class:`DiskCache` is the second tier behind the in-memory memo caches of the
evaluation engines (:class:`~repro.analysis.pdnspot.PdnSpot` and
:class:`~repro.sim.study.SimEngine`): a directory of pickled evaluation
payloads addressed by the SHA-256 of ``(format version, namespace, model
fingerprint, engine cache key)``.  Because the *model-parameters fingerprint*
(:func:`parameters_fingerprint`) is part of the address, entries written
under one technology-parameter set are simply never found after the
parameters change -- stale results cannot be served, only pruned.

Design rules the store guarantees:

* **Atomic writes.**  Entries are written to a temporary file in the same
  directory and published with :func:`os.replace`, under a per-entry
  advisory file lock where the platform provides one (``fcntl``); readers
  never observe a partially written entry, and two processes racing to write
  the same key both leave a valid entry behind.
* **Corruption is a miss.**  A truncated, garbled, version-mismatched or
  foreign file at an entry path is logged, counted in
  :attr:`DiskCacheStats.corrupt`, best-effort deleted, and reported to the
  engine as a plain miss -- the caller recomputes and the store heals;
  nothing is ever raised into an evaluation.
* **Never required.**  Every filesystem failure (read-only directory, disk
  full, permission error) degrades the store to a no-op with a log line;
  results are unaffected.

Trust model: entries are Python pickles, and unpickling executes code, so
the cache directory must be **writable only by users you trust** -- use a
per-user location like ``~/.cache/repro``, never a world-writable one
(``/tmp``), where another local user could plant a crafted entry.  The
corruption handling above protects against *accidents*, not adversaries.

Example
-------
>>> from repro import PdnSpot, Study
>>> spot = PdnSpot(disk_cache="~/.cache/repro")      # doctest: +SKIP
>>> spot.run(Study.over_tdps([4.0, 18.0]))           # doctest: +SKIP
>>> PdnSpot(disk_cache="~/.cache/repro").run(        # doctest: +SKIP
...     Study.over_tdps([4.0, 18.0]))                # served from disk
"""

from __future__ import annotations

import contextlib
import dataclasses
import enum
import hashlib
import logging
import os
import pickle
import tempfile
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.obs import trace as obs_trace
from repro.obs.metrics import METRICS
from repro.util.errors import ConfigurationError

try:  # pragma: no cover - platform probe
    import fcntl
except ImportError:  # pragma: no cover - Windows
    fcntl = None  # type: ignore[assignment]

logger = logging.getLogger("repro.cache")

# Disk I/O instruments, bound once at import time: per-call get/put latency
# (log-spaced buckets shared with every latency histogram in the process)
# and the count of corrupt/foreign entries healed by deletion.
_GET_LATENCY = METRICS.histogram("cache.disk.get_latency_s")
_PUT_LATENCY = METRICS.histogram("cache.disk.put_latency_s")
_SELF_HEAL = METRICS.counter("cache.disk.self_heal")

#: Format version baked into every entry address and header.  Bump it when
#: the entry layout (or the meaning of the pickled payloads) changes; old
#: entries then stop matching and behave as misses until pruned.
CACHE_FORMAT_VERSION = 1

#: File suffix of cache entries.
ENTRY_SUFFIX = ".pkl"

#: What an engine may pass as a ``disk_cache`` argument: an attached store,
#: a cache-directory path, or ``None`` (no disk tier).
DiskCacheLike = Union["DiskCache", str, Path, None]

#: Types :func:`canonical_key` has already warned about falling back for.
_WARNED_FALLBACK_TYPES: set = set()


def canonical_key(value: object) -> str:
    """A deterministic, process-independent string form of a cache key.

    The engines' memo-cache keys are nested tuples of primitives, enums and
    frozen dataclasses (operating conditions, domain loads, sim points);
    ``repr`` of such values is stable, but this canonical form pins the rules
    explicitly -- dict items are sorted, enums render as ``Type.NAME``,
    dataclasses render their fields in definition order -- so the on-disk
    address never depends on interpreter hash seeds or insertion order.
    """
    if isinstance(value, enum.Enum):
        return f"{type(value).__qualname__}.{value.name}"
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (bool, int, str, bytes)) or value is None:
        return repr(value)
    if isinstance(value, tuple):
        return "(" + ",".join(canonical_key(item) for item in value) + ")"
    if isinstance(value, list):
        return "[" + ",".join(canonical_key(item) for item in value) + "]"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(canonical_key(item) for item in value)) + "}"
    if isinstance(value, dict):
        items = sorted(
            (canonical_key(key), canonical_key(item)) for key, item in value.items()
        )
        return "{" + ",".join(f"{key}:{item}" for key, item in items) + "}"
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = ",".join(
            f"{field.name}={canonical_key(getattr(value, field.name))}"
            for field in dataclasses.fields(value)
        )
        return f"{type(value).__qualname__}({fields})"
    # Fallback for types outside the canonical set.  A default object repr
    # embeds the memory address, which would give every process a different
    # disk address (a silent 0%-hit cache) -- warn loudly, once per type.
    if type(value) not in _WARNED_FALLBACK_TYPES:
        _WARNED_FALLBACK_TYPES.add(type(value))
        logger.warning(
            "disk cache: canonical_key falling back to repr() for %s; if the "
            "repr is not process-independent the disk tier will never hit",
            type(value).__qualname__,
        )
    return repr(value)


def parameters_fingerprint(parameters: object) -> str:
    """The model-parameters half of every entry address.

    A short SHA-256 digest over the canonical form of a technology-parameter
    set (any dataclass works).  Two parameter sets that differ in *any* field
    produce different fingerprints, so a cache directory warmed under one
    technology never serves entries to an engine built with another.
    """
    return hashlib.sha256(canonical_key(parameters).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class DiskCacheStats:
    """Counters and on-disk footprint of one :class:`DiskCache`.

    ``hits``/``misses``/``writes``/``corrupt`` count this process's traffic
    (they reset with the store object); ``entries`` and ``size_bytes`` are
    the store's *current* on-disk footprint for the namespace, shared across
    every process using the directory.
    """

    hits: int
    misses: int
    writes: int
    corrupt: int
    entries: int
    size_bytes: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from disk."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DiskCache:
    """A versioned, content-addressed, file-locked evaluation store.

    Parameters
    ----------
    root:
        The cache directory (created on first write; ``~`` expands).
        Several namespaces -- and several processes -- can share one root.
        Entries are pickles, so the directory must only be writable by
        trusted users (see the module docstring's trust model).
    namespace:
        Which engine's entries live here (``"pdnspot"`` for analytic
        operating points, ``"sim"`` for trace simulations); part of the
        entry address, so payload types never mix.  Leave unset when the
        store will be attached to an engine -- :meth:`bind` then adopts the
        engine's namespace (standalone use defaults to ``"pdnspot"``).
    fingerprint:
        The model-parameters fingerprint (:func:`parameters_fingerprint`)
        of the engine attaching the store; entries written under a different
        fingerprint are invisible.  Leave unset to have :meth:`bind` adopt
        the attaching engine's fingerprint; setting it explicitly is the
        expert escape hatch for callers managing invalidation themselves.
    version:
        The entry format version; defaults to :data:`CACHE_FORMAT_VERSION`.
    """

    def __init__(
        self,
        root: Union[str, Path],
        namespace: Optional[str] = None,
        fingerprint: Optional[str] = None,
        version: int = CACHE_FORMAT_VERSION,
    ):
        self.root = Path(root).expanduser()
        self.namespace = str(namespace) if namespace is not None else "pdnspot"
        # An *explicit* empty fingerprint ("") is a valid expert choice --
        # fingerprinting deliberately disabled -- and must not be confused
        # with "not passed", which bind() fills from the attaching engine.
        self.fingerprint = str(fingerprint) if fingerprint is not None else ""
        self.version = int(version)
        self._namespace_explicit = namespace is not None
        self._fingerprint_explicit = fingerprint is not None
        self._bound = False
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._corrupt = 0

    def bind(self, namespace: str, fingerprint: str) -> "DiskCache":
        """Adopt an attaching engine's address fields (explicit fields win).

        Engines call this when a pre-built store is passed as their
        ``disk_cache``: a namespace or fingerprint the *caller* set
        explicitly is kept (the expert override); unset fields adopt the
        engine's values, so the staleness and payload-separation guarantees
        hold by default.  The same instance is returned -- its traffic
        counters keep recording.  One bare store cannot serve two engines
        with conflicting identities; that raises instead of silently
        serving one engine's entries to the other.
        """
        namespace = str(namespace)
        fingerprint = str(fingerprint)
        if self._bound:
            bound_namespace = self._namespace_explicit or self.namespace == namespace
            bound_fingerprint = (
                self._fingerprint_explicit or self.fingerprint == fingerprint
            )
            if not (bound_namespace and bound_fingerprint):
                raise_from = (
                    f"namespace {self.namespace!r} vs {namespace!r}"
                    if not bound_namespace
                    else f"fingerprint {self.fingerprint!r} vs {fingerprint!r}"
                )
                raise ConfigurationError(
                    "one bare DiskCache cannot serve engines with conflicting "
                    f"identities ({raise_from}); pass the cache directory "
                    "path instead, so each engine binds its own store"
                )
            return self
        if not self._namespace_explicit:
            self.namespace = namespace
        if not self._fingerprint_explicit:
            self.fingerprint = fingerprint
        self._bound = True
        return self

    def __repr__(self) -> str:
        return (
            f"DiskCache(root={str(self.root)!r}, namespace={self.namespace!r}, "
            f"fingerprint={self.fingerprint!r})"
        )

    # ------------------------------------------------------------------ #
    # Addressing
    # ------------------------------------------------------------------ #
    def _locate(self, key: Tuple[object, ...]) -> Tuple[Path, str]:
        """The entry path and the canonical key form it was derived from."""
        encoded = canonical_key(key)
        material = "\x1f".join(
            (str(self.version), self.namespace, self.fingerprint, encoded)
        )
        digest = hashlib.sha256(material.encode("utf-8")).hexdigest()
        path = self.root / self.namespace / digest[:2] / (digest + ENTRY_SUFFIX)
        return path, encoded

    def entry_path(self, key: Tuple[object, ...]) -> Path:
        """The file this key's evaluation is stored at (existing or not)."""
        return self._locate(key)[0]

    # ------------------------------------------------------------------ #
    # get / put
    # ------------------------------------------------------------------ #
    def get(self, key: Tuple[object, ...]) -> Optional[object]:
        """The stored payload for ``key``, or ``None`` on a miss.

        A corrupt, truncated, version-mismatched or foreign entry file is
        *never* raised to the caller: it is logged, counted under
        ``corrupt``, best-effort removed so the next write heals it, and
        reported as a miss.  Every call's latency lands in the process-wide
        ``cache.disk.get_latency_s`` histogram.
        """
        started = time.perf_counter()
        try:
            return self._get(key)
        finally:
            _GET_LATENCY.observe(time.perf_counter() - started)

    def _get(self, key: Tuple[object, ...]) -> Optional[object]:
        """The uninstrumented body of :meth:`get`."""
        path, encoded = self._locate(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self._count("_misses")
            return None
        except OSError as error:
            logger.warning("disk cache: cannot read %s: %s", path, error)
            self._count("_misses")
            return None
        try:
            entry = pickle.loads(blob)
            if not isinstance(entry, dict):
                raise ValueError(f"entry is a {type(entry).__name__}, not a dict")
            if entry.get("format") != self.version:
                raise ValueError(
                    f"format version {entry.get('format')!r} != {self.version}"
                )
            if entry.get("fingerprint") != self.fingerprint:
                raise ValueError("model-parameters fingerprint mismatch")
            if entry.get("namespace") != self.namespace:
                raise ValueError("namespace mismatch")
            if entry.get("key") != encoded:
                raise ValueError("stored key does not match the requested key")
            payload = entry["payload"]
        except Exception as error:  # noqa: BLE001 - any defect must be a miss
            logger.warning(
                "disk cache: treating corrupt entry %s as a miss (%s)", path, error
            )
            self._count("_corrupt")
            self._count("_misses")
            _SELF_HEAL.inc()
            obs_trace.instant(
                "cache.self_heal", category="cache",
                path=str(path), reason=str(error),
            )
            with contextlib.suppress(OSError):
                # Heal under the entry lock, and only if the file still holds
                # the corrupt bytes we read: a concurrent writer may have
                # already replaced it with a fresh valid entry, which an
                # unconditional unlink would throw away.
                with self._entry_lock(path):
                    if path.read_bytes() == blob:
                        path.unlink()
            return None
        self._count("_hits")
        return payload

    def put(self, key: Tuple[object, ...], payload: object) -> bool:
        """Store ``payload`` under ``key``; returns whether the write stuck.

        The entry is pickled to a temporary file in the entry's directory and
        published atomically with :func:`os.replace`, under a per-entry
        advisory lock (where the platform has ``fcntl``), so concurrent
        writers -- process-pool workers merging the same key, or two warm
        runs racing -- always leave one valid entry.  Filesystem failures
        degrade to a logged no-op.  Every call's latency lands in the
        process-wide ``cache.disk.put_latency_s`` histogram.
        """
        started = time.perf_counter()
        try:
            return self._put(key, payload)
        finally:
            _PUT_LATENCY.observe(time.perf_counter() - started)

    def _put(self, key: Tuple[object, ...], payload: object) -> bool:
        """The uninstrumented body of :meth:`put`."""
        path, encoded = self._locate(key)
        entry = {
            "format": self.version,
            "namespace": self.namespace,
            "fingerprint": self.fingerprint,
            "key": encoded,
            "payload": payload,
        }
        try:
            blob = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as error:  # noqa: BLE001 - unpicklable payloads skip disk
            logger.warning("disk cache: cannot pickle payload for %s: %s", path, error)
            return False
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            with self._entry_lock(path):
                descriptor, temp_name = tempfile.mkstemp(
                    dir=path.parent, prefix=path.stem, suffix=".tmp"
                )
                try:
                    with os.fdopen(descriptor, "wb") as handle:
                        handle.write(blob)
                    os.replace(temp_name, path)
                except BaseException:
                    with contextlib.suppress(OSError):
                        os.unlink(temp_name)
                    raise
        except OSError as error:
            logger.warning("disk cache: cannot write %s: %s", path, error)
            return False
        self._count("_writes")
        return True

    def discard(self, key: Tuple[object, ...], reason: str = "") -> None:
        """Drop one entry the *caller* found unusable (e.g. wrong payload type).

        The header checks in :meth:`get` cannot know what payload class the
        attaching engine expects; when the engine rejects a structurally
        valid entry it reports it here, so the defect is logged and healed
        exactly like in-store corruption, and the earlier hit is
        reclassified as a miss -- the traffic counters keep meaning "the
        caller was served".
        """
        path = self.entry_path(key)
        logger.warning(
            "disk cache: discarding entry %s: %s", path, reason or "rejected by caller"
        )
        _SELF_HEAL.inc()
        obs_trace.instant(
            "cache.self_heal", category="cache",
            path=str(path), reason=reason or "rejected by caller",
        )
        with contextlib.suppress(OSError):
            path.unlink()
        with self._lock:
            self._corrupt += 1
            if self._hits > 0:
                self._hits -= 1
            self._misses += 1

    @contextlib.contextmanager
    def _entry_lock(self, path: Path) -> Iterator[None]:
        """Advisory per-entry write lock (no-op where ``fcntl`` is absent)."""
        if fcntl is None:  # pragma: no cover - Windows fallback
            yield
            return
        lock_path = path.with_suffix(".lock")
        with open(lock_path, "a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                # Remove the lock file while still holding the lock so the
                # store does not litter one .lock per entry; a waiter keeps
                # its (now anonymous) inode and later writers create a fresh
                # file -- writes stay atomic either way, the lock is only an
                # optimisation against redundant temp-file churn.
                with contextlib.suppress(OSError):
                    os.unlink(lock_path)
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _count(self, counter: str) -> None:
        with self._lock:
            setattr(self, counter, getattr(self, counter) + 1)

    # ------------------------------------------------------------------ #
    # stats / prune
    # ------------------------------------------------------------------ #
    def _entries(self) -> Iterator[Path]:
        namespace_dir = self.root / self.namespace
        if not namespace_dir.is_dir():
            return
        yield from sorted(namespace_dir.glob(f"*/*{ENTRY_SUFFIX}"))

    def stats(self) -> DiskCacheStats:
        """This process's traffic counters plus the namespace's footprint."""
        entries = 0
        size_bytes = 0
        for path in self._entries():
            with contextlib.suppress(OSError):
                size_bytes += path.stat().st_size
                entries += 1
        with self._lock:
            return DiskCacheStats(
                hits=self._hits,
                misses=self._misses,
                writes=self._writes,
                corrupt=self._corrupt,
                entries=entries,
                size_bytes=size_bytes,
            )

    def prune(self, older_than_s: Optional[float] = None) -> int:
        """Delete entries (all, or only those older than ``older_than_s``).

        Temporary and lock files are swept alongside; returns the number of
        *entries* removed.  Pruning is the one way to reclaim space from
        stale fingerprints/versions, which are invisible to ``get`` but
        still on disk.
        """
        return _prune_namespace(self.root / self.namespace, older_than_s)


# --------------------------------------------------------------------------- #
# Directory-level helpers (the CLI's `repro cache stats|prune` surface)
# --------------------------------------------------------------------------- #
def _is_shard_dir(path: Path) -> bool:
    """Whether a directory looks like a DiskCache shard (two hex chars)."""
    name = path.name
    return (
        path.is_dir()
        and len(name) == 2
        and all(char in "0123456789abcdef" for char in name)
    )


def _is_cache_file(path: Path) -> bool:
    """Whether a file is one this store wrote (entry, lock, or stray temp).

    Pruning only ever touches these -- a mistyped ``--cache-dir`` pointed at
    an unrelated directory must not delete the user's files.
    """
    return path.suffix in (ENTRY_SUFFIX, ".lock", ".tmp")


def _prune_namespace(namespace_dir: Path, older_than_s: Optional[float]) -> int:
    if not namespace_dir.is_dir():
        return 0
    cutoff = None if older_than_s is None else time.time() - float(older_than_s)
    removed = 0
    shards = [path for path in sorted(namespace_dir.glob("*")) if _is_shard_dir(path)]
    for shard in shards:
        for path in sorted(shard.glob("*")):
            if not path.is_file() or not _is_cache_file(path):
                continue  # never delete files this store did not write
            try:
                if cutoff is not None and path.stat().st_mtime >= cutoff:
                    continue
                is_entry = path.suffix == ENTRY_SUFFIX
                path.unlink()
                removed += int(is_entry)
            except OSError as error:
                logger.warning("disk cache: cannot prune %s: %s", path, error)
    # Sweep shard directories that are now empty (best effort).
    for shard in shards:
        with contextlib.suppress(OSError):
            shard.rmdir()
    return removed


def cache_dir_summary(root: Union[str, Path]) -> Dict[str, Tuple[int, int]]:
    """Per-namespace ``(entries, size_bytes)`` footprint of a cache directory.

    Only subdirectories that *look like* cache namespaces are listed: empty
    ones (a namespace after a full prune) and ones containing hex shard
    directories.  A mistyped root full of unrelated directories therefore
    reports nothing instead of presenting the user's folders as namespaces.
    """
    root = Path(root).expanduser()
    summary: Dict[str, Tuple[int, int]] = {}
    if not root.is_dir():
        return summary
    for namespace_dir in sorted(path for path in root.iterdir() if path.is_dir()):
        children = list(namespace_dir.iterdir())
        shards = [path for path in children if _is_shard_dir(path)]
        if children and not shards:
            continue  # non-empty with no shard dirs: not a cache namespace
        entries = 0
        size_bytes = 0
        for shard in shards:
            for path in shard.glob(f"*{ENTRY_SUFFIX}"):
                with contextlib.suppress(OSError):
                    size_bytes += path.stat().st_size
                    entries += 1
        summary[namespace_dir.name] = (entries, size_bytes)
    return summary


#: Version of the :func:`cache_stats_payload` document schema.  v1 carried
#: ``cache_dir`` + ``namespaces`` only; v2 added this marker and the ``io``
#: section (both *additive* -- every v1 key is unchanged).
CACHE_STATS_SCHEMA_VERSION = 2


def cache_io_section() -> Dict[str, object]:
    """The current process's disk-cache I/O traffic, as a JSON-ready mapping.

    Get/put latency histograms (the shared log-spaced bucket layout, summed
    in seconds under ``sum_s``) and the count of corrupt-entry self-heal
    events, accumulated by every :class:`DiskCache` instance in this
    process.  A fresh inspection process (``repro cache stats``) therefore
    reports zeros; a long-running one (the evaluation service) reports its
    lifetime traffic.
    """
    return {
        "get": _GET_LATENCY.as_dict(sum_key="sum_s"),
        "put": _PUT_LATENCY.as_dict(sum_key="sum_s"),
        "self_heal": _SELF_HEAL.value,
    }


def cache_stats_payload(root: Union[str, Path]) -> Dict[str, object]:
    """The JSON stats document of a cache directory (the shared schema).

    The single source of the on-disk cache stats schema: ``repro cache
    stats --json`` prints exactly this mapping, and the evaluation
    service's ``GET /v1/stats`` embeds it as its ``cache.disk`` section,
    so the two surfaces can never drift apart.  Keys: ``schema_version``
    (:data:`CACHE_STATS_SCHEMA_VERSION`), ``cache_dir`` (the inspected
    root, as given), ``namespaces`` (per-namespace ``{"entries",
    "size_bytes"}`` footprints from :func:`cache_dir_summary`, unchanged
    since v1) and ``io`` (this process's get/put latency and self-heal
    traffic from :func:`cache_io_section`).
    """
    return {
        "schema_version": CACHE_STATS_SCHEMA_VERSION,
        "cache_dir": str(root),
        "namespaces": {
            namespace: {"entries": entries, "size_bytes": size_bytes}
            for namespace, (entries, size_bytes) in cache_dir_summary(root).items()
        },
        "io": cache_io_section(),
    }


def prune_cache_dir(
    root: Union[str, Path], older_than_s: Optional[float] = None
) -> int:
    """Prune every namespace under ``root``; returns entries removed."""
    root = Path(root).expanduser()
    if not root.is_dir():
        return 0
    return sum(
        _prune_namespace(namespace_dir, older_than_s)
        for namespace_dir in sorted(path for path in root.iterdir() if path.is_dir())
    )


def resolve_disk_cache(
    disk_cache: DiskCacheLike, namespace: str, fingerprint: str
) -> Optional[DiskCache]:
    """Resolve an engine's ``disk_cache`` argument into an attached store.

    ``None`` stays ``None`` (no disk tier); a string or path builds a store
    rooted there for the engine's namespace and model fingerprint.  A
    pre-built :class:`DiskCache` is :meth:`~DiskCache.bind`-ed **in place**
    (the caller's instance keeps recording traffic): address fields the
    caller set explicitly win, unset ones adopt the engine's -- so the
    staleness and payload-separation guarantees hold unless deliberately
    overridden.
    """
    if disk_cache is None:
        return None
    if isinstance(disk_cache, DiskCache):
        return disk_cache.bind(namespace, fingerprint)
    return DiskCache(disk_cache, namespace=namespace, fingerprint=fingerprint)
