"""Shared utilities for the FlexWatts / PDNspot reproduction.

This package contains small, dependency-free helpers used across every other
subpackage:

* :mod:`repro.util.units` -- explicit unit-conversion helpers (the models mix
  watts/milliwatts, volts/millivolts and ohms/milliohms, and silent unit bugs
  are the most common source of error in PDN modelling).
* :mod:`repro.util.errors` -- the exception hierarchy for the library.
* :mod:`repro.util.validation` -- argument-validation helpers used by public
  constructors.
* :mod:`repro.util.interpolate` -- 1-D and 2-D table interpolation used by the
  voltage-regulator efficiency surfaces and the ETEE curve tables stored in the
  FlexWatts mode predictor.
"""

from repro.util.errors import (
    ConfigurationError,
    ModelDomainError,
    ReproError,
    UnsupportedOperatingPointError,
)
from repro.util.units import (
    amps_from_milliamps,
    milliamps_from_amps,
    milliohms_to_ohms,
    millivolts_to_volts,
    milliwatts_to_watts,
    ohms_to_milliohms,
    volts_to_millivolts,
    watts_to_milliwatts,
)
from repro.util.validation import (
    require_fraction,
    require_in_range,
    require_non_negative,
    require_positive,
)
from repro.util.interpolate import LinearTable1D, BilinearTable2D, clamp

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ModelDomainError",
    "UnsupportedOperatingPointError",
    "watts_to_milliwatts",
    "milliwatts_to_watts",
    "volts_to_millivolts",
    "millivolts_to_volts",
    "ohms_to_milliohms",
    "milliohms_to_ohms",
    "amps_from_milliamps",
    "milliamps_from_amps",
    "require_positive",
    "require_non_negative",
    "require_fraction",
    "require_in_range",
    "LinearTable1D",
    "BilinearTable2D",
    "clamp",
]
