"""Table-interpolation primitives.

The behavioural models in this library are driven by curve tables: voltage
regulator efficiency as a function of output current, nominal power as a
function of thermal design power, and the ETEE curves stored inside the
FlexWatts mode predictor.  The paper notes that a modern power-management unit
implements such curves as firmware tables (Sec. 6, footnote 11), so we model
them the same way: sorted breakpoints with linear interpolation and clamped
extrapolation.

Two primitives are provided:

* :class:`LinearTable1D` -- piecewise-linear interpolation over one axis.
* :class:`BilinearTable2D` -- bilinear interpolation over a rectangular grid,
  used for efficiency surfaces indexed by (output current, output voltage).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.util.errors import ConfigurationError


def clamp(value: float, low: float, high: float) -> float:
    """Clamp ``value`` to the closed interval [low, high]."""
    if low > high:
        raise ConfigurationError(f"clamp bounds inverted: [{low}, {high}]")
    return max(low, min(high, value))


class LinearTable1D:
    """Piecewise-linear lookup table over a single axis.

    Parameters
    ----------
    xs:
        Strictly increasing breakpoints.
    ys:
        Values at each breakpoint; same length as ``xs``.
    clamp_ends:
        When ``True`` (the default) queries outside the breakpoint range return
        the endpoint value.  When ``False`` the table extrapolates linearly
        using the first/last segment slope.
    """

    def __init__(self, xs: Sequence[float], ys: Sequence[float], clamp_ends: bool = True):
        if len(xs) != len(ys):
            raise ConfigurationError(
                f"table axes must have equal length, got {len(xs)} and {len(ys)}"
            )
        if len(xs) < 2:
            raise ConfigurationError("a table needs at least two breakpoints")
        for left, right in zip(xs, xs[1:]):
            if not right > left:
                raise ConfigurationError("table breakpoints must be strictly increasing")
        self._xs = [float(x) for x in xs]
        self._ys = [float(y) for y in ys]
        self._clamp_ends = clamp_ends

    @property
    def xs(self) -> tuple:
        """The breakpoints of the table."""
        return tuple(self._xs)

    @property
    def ys(self) -> tuple:
        """The values of the table."""
        return tuple(self._ys)

    def __call__(self, x: float) -> float:
        """Evaluate the table at ``x``."""
        xs, ys = self._xs, self._ys
        if x <= xs[0]:
            if self._clamp_ends:
                return ys[0]
            return self._extrapolate(x, 0, 1)
        if x >= xs[-1]:
            if self._clamp_ends:
                return ys[-1]
            return self._extrapolate(x, len(xs) - 2, len(xs) - 1)
        hi = bisect_left(xs, x)
        lo = hi - 1
        span = xs[hi] - xs[lo]
        weight = (x - xs[lo]) / span
        return ys[lo] * (1.0 - weight) + ys[hi] * weight

    def _extrapolate(self, x: float, lo: int, hi: int) -> float:
        slope = (self._ys[hi] - self._ys[lo]) / (self._xs[hi] - self._xs[lo])
        return self._ys[lo] + slope * (x - self._xs[lo])


class BilinearTable2D:
    """Bilinear lookup table over a rectangular (x, y) grid.

    Parameters
    ----------
    xs:
        Strictly increasing breakpoints along the first axis.
    ys:
        Strictly increasing breakpoints along the second axis.
    values:
        A nested sequence ``values[i][j]`` giving the table value at
        ``(xs[i], ys[j])``.

    Queries outside the grid are clamped to the nearest edge, mirroring how a
    power-management unit treats out-of-range sensor readings.
    """

    def __init__(
        self,
        xs: Sequence[float],
        ys: Sequence[float],
        values: Sequence[Sequence[float]],
    ):
        if len(values) != len(xs):
            raise ConfigurationError("values must have one row per x breakpoint")
        for row in values:
            if len(row) != len(ys):
                raise ConfigurationError("every row must have one value per y breakpoint")
        self._x_tables = [LinearTable1D(ys, row) for row in values]
        self._xs = [float(x) for x in xs]
        for left, right in zip(self._xs, self._xs[1:]):
            if not right > left:
                raise ConfigurationError("table breakpoints must be strictly increasing")

    def __call__(self, x: float, y: float) -> float:
        """Evaluate the surface at ``(x, y)`` with clamped extrapolation."""
        xs = self._xs
        x = clamp(x, xs[0], xs[-1])
        if x <= xs[0]:
            return self._x_tables[0](y)
        if x >= xs[-1]:
            return self._x_tables[-1](y)
        hi = bisect_left(xs, x)
        lo = hi - 1
        weight = (x - xs[lo]) / (xs[hi] - xs[lo])
        low_val = self._x_tables[lo](y)
        high_val = self._x_tables[hi](y)
        return low_val * (1.0 - weight) + high_val * weight
