"""Argument-validation helpers used by public constructors.

Each helper returns the validated value so it can be used inline::

    self.efficiency = require_fraction(efficiency, "efficiency")
"""

from __future__ import annotations

from repro.util.errors import ConfigurationError


def require_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be > 0, got {value!r}")
    return value


def require_non_negative(value: float, name: str) -> float:
    """Validate that ``value`` is zero or positive."""
    if value < 0:
        raise ConfigurationError(f"{name} must be >= 0, got {value!r}")
    return value


def require_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be within [0, 1], got {value!r}")
    return value


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [low, high]."""
    if not low <= value <= high:
        raise ConfigurationError(
            f"{name} must be within [{low}, {high}], got {value!r}"
        )
    return value
