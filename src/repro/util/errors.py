"""Exception hierarchy for the FlexWatts / PDNspot reproduction.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch library errors without also catching
programming errors such as :class:`TypeError`.
"""


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """Raised when a model is constructed with inconsistent parameters.

    Examples include a processor whose thermal design power is smaller than the
    sum of the always-on domain floors, a voltage regulator whose output
    voltage exceeds its input voltage in regulation mode, or a PDN description
    that references a domain the processor does not have.
    """


class NormalizationError(ConfigurationError, ValueError):
    """Raised when a result set cannot be normalised to a baseline.

    Examples include a baseline row whose value is zero or NaN (division
    would silently produce infinities or NaN cells) or a baseline row that
    does not populate the value column at all.  Subclasses both
    :class:`ConfigurationError` (so library-error handling keeps working)
    and :class:`ValueError` (the conventional type for bad numeric input).
    """


class ModelDomainError(ReproError):
    """Raised when a model is evaluated outside its validated domain.

    The PDNspot models are behavioural and calibrated over specific ranges
    (e.g. TDP between 4 W and 50 W, application ratio between 0 and 1).
    Evaluating outside those ranges would silently extrapolate, so the models
    raise this error instead.
    """


class UnsupportedOperatingPointError(ReproError):
    """Raised when an operating point cannot be supported physically.

    For example, requesting an LDO regulator to produce an output voltage above
    its input voltage, or drawing more current from a voltage regulator than
    its electrical design maximum (Iccmax).
    """
