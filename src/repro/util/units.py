"""Explicit unit-conversion helpers.

The PDNspot models in the paper mix units freely: nominal powers are quoted in
watts, the frequency-sensitivity curve in milliwatts, voltage guardbands in
millivolts, and load-line impedances in milliohms.  Internally the library
uses SI base units everywhere (watts, volts, ohms, amps, hertz, seconds) and
converts at the boundary with these helpers so that every conversion is
visible at the call site.
"""

from __future__ import annotations

MILLI = 1e-3
MICRO = 1e-6


def watts_to_milliwatts(power_w: float) -> float:
    """Convert a power in watts to milliwatts."""
    return power_w / MILLI


def milliwatts_to_watts(power_mw: float) -> float:
    """Convert a power in milliwatts to watts."""
    return power_mw * MILLI


def volts_to_millivolts(voltage_v: float) -> float:
    """Convert a voltage in volts to millivolts."""
    return voltage_v / MILLI


def millivolts_to_volts(voltage_mv: float) -> float:
    """Convert a voltage in millivolts to volts."""
    return voltage_mv * MILLI


def ohms_to_milliohms(resistance_ohm: float) -> float:
    """Convert a resistance in ohms to milliohms."""
    return resistance_ohm / MILLI


def milliohms_to_ohms(resistance_mohm: float) -> float:
    """Convert a resistance in milliohms to ohms."""
    return resistance_mohm * MILLI


def amps_from_milliamps(current_ma: float) -> float:
    """Convert a current in milliamps to amps."""
    return current_ma * MILLI


def milliamps_from_amps(current_a: float) -> float:
    """Convert a current in amps to milliamps."""
    return current_a / MILLI


def microseconds_to_seconds(time_us: float) -> float:
    """Convert a duration in microseconds to seconds."""
    return time_us * MICRO


def seconds_to_microseconds(time_s: float) -> float:
    """Convert a duration in seconds to microseconds."""
    return time_s / MICRO
