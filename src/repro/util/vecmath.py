"""Bit-exact vectorized math helpers for the columnar evaluation core.

The columnar kernels in :mod:`repro.pdn.columnar` must return results that
are *bit-identical* to the scalar per-point models (the per-point path is the
reference oracle; seed-equivalence and serve bit-identity tests compare with
``==``).  NumPy's elementwise ``+ - * /``, ``np.maximum`` and ``np.minimum``
are IEEE-754 operations identical to CPython's scalar float arithmetic, but
its transcendental kernels (``**``, ``np.exp``) use SIMD implementations
whose results can differ from ``math.exp`` / ``float.__pow__`` in the last
ulp.

The helpers here side-step that: they reduce an input array to its unique
values, apply the *scalar* CPython operation to each unique value once, and
scatter the results back.  On grid workloads the transcendental inputs are
functions of a few low-cardinality columns (TDP, workload type), so the
number of scalar calls is tiny compared to the lane count -- the memo is
essentially free while guaranteeing bit-identity with the oracle.
"""

from __future__ import annotations

import math
from typing import Callable

try:  # pragma: no cover - exercised implicitly by every columnar test
    import numpy as _np
except ImportError:  # pragma: no cover - the toolchain bakes numpy in
    _np = None

#: Whether the vectorized evaluation core is available at all.
HAVE_NUMPY = _np is not None


def per_unique(values, fn: Callable[[float], float]):
    """Apply scalar ``fn`` once per unique value and scatter back.

    ``fn`` receives a Python ``float`` and must return one, so the result of
    every lane is exactly what the scalar model would have computed for it.
    """
    arr = _np.asarray(values, dtype=_np.float64)
    uniq, inverse = _np.unique(arr, return_inverse=True)
    mapped = _np.array([fn(v) for v in uniq.tolist()], dtype=_np.float64)
    return mapped[inverse].reshape(arr.shape)


def exact_pow(base, exponent):
    """``base ** exponent`` computed with CPython ``float.__pow__`` per lane.

    ``exponent`` is passed through unchanged (``int`` exponents stay ``int``),
    so ``exact_pow(x, 2)`` reproduces the scalar ``x**2`` exactly, including
    any difference from ``x*x``.
    """
    return per_unique(base, lambda v: v**exponent)


def exact_pow2(base, exponent_a, exponent_b):
    """Both ``base ** exponent_a`` and ``base ** exponent_b`` in one pass.

    Shares a single unique-value reduction of ``base`` between the two
    exponents (the guardband model needs ``ratio**delta`` and ``ratio**2``
    over the same ratio column); each lane is still computed with CPython
    ``float.__pow__`` exactly as the scalar model does.
    """
    arr = _np.asarray(base, dtype=_np.float64)
    uniq, inverse = _np.unique(arr, return_inverse=True)
    lanes = uniq.tolist()
    mapped_a = _np.array([v**exponent_a for v in lanes], dtype=_np.float64)
    mapped_b = _np.array([v**exponent_b for v in lanes], dtype=_np.float64)
    return (
        mapped_a[inverse].reshape(arr.shape),
        mapped_b[inverse].reshape(arr.shape),
    )


def exact_exp(x):
    """``math.exp`` applied per lane, bit-identical to the scalar model."""
    return per_unique(x, math.exp)


def per_unique_pairs(keys, values, fn):
    """Apply scalar ``fn(key, value)`` once per unique ``(key, value)`` pair.

    Used for quantities that depend on two low-cardinality columns at once
    (e.g. a regulator power state and its TDP-derived sizing current).
    ``keys`` is a sequence of hashable objects, ``values`` a float array.
    Returns a float64 array.
    """
    arr = _np.asarray(values, dtype=_np.float64)
    out = _np.empty(arr.shape, dtype=_np.float64)
    memo = {}
    lanes = arr.tolist()
    for index, (key, value) in enumerate(zip(keys, lanes)):
        pair = (key, value)
        result = memo.get(pair)
        if result is None:
            result = memo[pair] = fn(key, value)
        out[index] = result
    return out
