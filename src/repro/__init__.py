"""FlexWatts / PDNspot reproduction.

A behavioural, architecture-level model of client-processor power delivery
networks (PDNs), reproducing *FlexWatts: A Power- and Workload-Aware Hybrid
Power Delivery Network for Energy-Efficient Microprocessors* (MICRO 2020).

The library has two halves, mirroring the paper:

* **PDNspot** -- the exploration framework: voltage-regulator and PDN models
  (:mod:`repro.vr`, :mod:`repro.pdn`), the power/performance substrate
  (:mod:`repro.power`, :mod:`repro.soc`, :mod:`repro.perf`), cost models
  (:mod:`repro.cost`), workloads (:mod:`repro.workloads`), the analysis
  facade (:mod:`repro.analysis`) and the multi-objective design-space
  search (:mod:`repro.optimize`).
* **FlexWatts** -- the hybrid adaptive PDN itself (:mod:`repro.core`):
  hybrid IVR/LDO regulators, the Algorithm-1 mode predictor, the
  voltage-noise-free mode-switch flow, and the runtime input estimator,
  plus an interval simulator (:mod:`repro.sim`) that exercises the adaptive
  behaviour over time-varying workloads.

Both engines share a two-tier evaluation cache (:mod:`repro.cache`) and can
be served from one warm long-running process (:mod:`repro.serve`,
``repro serve``) that coalesces concurrent overlapping requests into
single-flight evaluations.  Every layer is instrumented through the
unified observability package (:mod:`repro.obs`): span tracing with
Chrome-trace export (``--trace FILE``), process-wide metrics
(``GET /v1/metrics``), and :class:`RunStats` on result containers.

Quickstart
----------
>>> from repro import PdnSpot, Study
>>> spot = PdnSpot()
>>> etee = spot.compare_etee(tdp_w=4.0)  # evaluate once, reuse the table
>>> sorted(etee, key=etee.get)[-1] in ("FlexWatts", "LDO", "MBVR")
True
>>> results = spot.run(Study.over_tdps([4.0, 18.0, 50.0]))  # cached batch run
>>> results.filter(pdn="FlexWatts").unique("tdp_w")
[4.0, 18.0, 50.0]
"""

from repro.analysis.executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.analysis.pdnspot import CacheInfo, PdnSpot
from repro.analysis.resultset import ResultSet
from repro.cache import DiskCache, DiskCacheStats
from repro.analysis.study import Scenario, Study, StudyBuilder
from repro.core.flexwatts import FlexWattsPdn
from repro.optimize import (
    DesignPoint,
    DesignSpace,
    OptimizationOutcome,
    run_optimization,
)
from repro.core.hybrid_vr import PdnMode
from repro.pdn.base import OperatingConditions, PdnEvaluation
from repro.pdn.registry import available_pdns, build_pdn
from repro.power.domains import DomainKind, DomainLoad, WorkloadType
from repro.power.parameters import PdnTechnologyParameters, default_parameters
from repro.power.power_states import PackageCState
from repro.sim import (
    IntervalSimulator,
    SimEngine,
    SimPoint,
    SimStudy,
    SimulationResult,
    run_sim,
)
from repro.obs import (
    METRICS,
    MetricsRegistry,
    RunStats,
    Tracer,
    install_tracer,
    uninstall_tracer,
    write_chrome_trace,
)
from repro.serve import EvaluationServer, ServeClient
from repro.workloads.scenarios import available_scenarios, build_scenario_trace

__version__ = "1.6.0"

__all__ = [
    "PdnSpot",
    "CacheInfo",
    "DiskCache",
    "DiskCacheStats",
    "Study",
    "StudyBuilder",
    "Scenario",
    "ResultSet",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "FlexWattsPdn",
    "PdnMode",
    "OperatingConditions",
    "PdnEvaluation",
    "available_pdns",
    "build_pdn",
    "DomainKind",
    "DomainLoad",
    "WorkloadType",
    "PackageCState",
    "PdnTechnologyParameters",
    "default_parameters",
    "IntervalSimulator",
    "SimulationResult",
    "SimEngine",
    "SimPoint",
    "SimStudy",
    "run_sim",
    "available_scenarios",
    "build_scenario_trace",
    "DesignPoint",
    "DesignSpace",
    "OptimizationOutcome",
    "run_optimization",
    "EvaluationServer",
    "ServeClient",
    "METRICS",
    "MetricsRegistry",
    "RunStats",
    "Tracer",
    "install_tracer",
    "uninstall_tracer",
    "write_chrome_trace",
    "__version__",
]
