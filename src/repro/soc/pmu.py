"""Behavioural power-management unit (PMU).

The PMU is the firmware agent that FlexWatts extends (Sec. 6).  The pieces the
paper relies on, and which this model provides, are:

* **Telemetry** -- the PMU always knows the runtime-configured TDP (cTDP), the
  package power state, and -- via the activity sensors -- an estimate of the
  application ratio; it classifies the workload type from which domains are
  active (graphics engines active => graphics workload; more than one core
  active with graphics idle => multi-threaded; one core => single-threaded).
* **Package C-state flow** -- entering/exiting the package C6 state saves and
  restores the compute domains' context to an always-on SRAM and gates their
  clocks and voltages.  FlexWatts reuses exactly this flow for voltage-noise
  free mode switching; the entry/exit latencies measured by the paper (45 us
  in, ~30 us out) are exposed so the overhead model can account for them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.power.domains import DomainKind, WorkloadType
from repro.power.power_states import PackageCState
from repro.soc.activity_sensors import ActivityMonitor
from repro.util.errors import ModelDomainError
from repro.util.validation import require_fraction, require_non_negative, require_positive


#: Latency to place the package into the C6 idle state (Sec. 6, "45 us
#: without voltage changes").
PACKAGE_C6_ENTRY_LATENCY_S = 45e-6

#: Latency to exit the package C6 idle state (Sec. 6, "about 30 us").
PACKAGE_C6_EXIT_LATENCY_S = 30e-6


@dataclass(frozen=True)
class PmuTelemetry:
    """The PMU-visible inputs of FlexWatts' mode-prediction algorithm.

    These are exactly the four inputs of Algorithm 1: the configured TDP, the
    estimated application ratio, the classified workload type and the package
    power state.
    """

    tdp_w: float
    application_ratio: float
    workload_type: WorkloadType
    power_state: PackageCState

    def __post_init__(self) -> None:
        require_positive(self.tdp_w, "tdp_w")
        require_fraction(self.application_ratio, "application_ratio")


@dataclass
class _DomainActivity:
    """Per-domain activity bookkeeping inside the PMU."""

    active: bool = False
    power_w: float = 0.0
    activity_ratio: float = 0.0


class PowerManagementUnit:
    """Behavioural PMU: telemetry, workload classification and C-state flows.

    Parameters
    ----------
    tdp_w:
        The runtime-configured TDP (cTDP).
    monitor:
        The activity monitor aggregating the per-domain sensors.
    evaluation_interval_s:
        How often the PMU re-evaluates its power-management algorithms
        (FlexWatts uses a 10 ms interval; sensors report every ~1 ms).
    """

    def __init__(
        self,
        tdp_w: float,
        monitor: Optional[ActivityMonitor] = None,
        evaluation_interval_s: float = 10e-3,
    ):
        require_positive(tdp_w, "tdp_w")
        require_positive(evaluation_interval_s, "evaluation_interval_s")
        self._tdp_w = tdp_w
        self._monitor = monitor if monitor is not None else ActivityMonitor()
        self._evaluation_interval_s = evaluation_interval_s
        self._power_state = PackageCState.C0
        self._domains: Dict[DomainKind, _DomainActivity] = {
            kind: _DomainActivity() for kind in DomainKind
        }
        self._time_s = 0.0
        self._telemetry_listeners: List[Callable[[PmuTelemetry], None]] = []

    # ------------------------------------------------------------------ #
    # Configuration / clock
    # ------------------------------------------------------------------ #
    @property
    def tdp_w(self) -> float:
        """The runtime-configured TDP."""
        return self._tdp_w

    def configure_tdp(self, tdp_w: float) -> None:
        """Reconfigure the TDP at runtime (cTDP, Sec. 1)."""
        require_positive(tdp_w, "tdp_w")
        self._tdp_w = tdp_w

    @property
    def evaluation_interval_s(self) -> float:
        """The PMU algorithm evaluation interval."""
        return self._evaluation_interval_s

    @property
    def time_s(self) -> float:
        """The PMU's notion of elapsed time (advanced by the simulator)."""
        return self._time_s

    def advance_time(self, interval_s: float) -> None:
        """Advance the PMU clock by ``interval_s`` seconds."""
        require_non_negative(interval_s, "interval_s")
        self._time_s += interval_s

    # ------------------------------------------------------------------ #
    # Domain activity updates (fed by the simulator / workload player)
    # ------------------------------------------------------------------ #
    def update_domain(
        self, domain: DomainKind, active: bool, power_w: float, activity_ratio: float
    ) -> None:
        """Update the PMU's view of one domain for the current interval."""
        require_non_negative(power_w, "power_w")
        require_fraction(activity_ratio, "activity_ratio")
        record = self._domains[domain]
        record.active = active
        record.power_w = power_w if active else 0.0
        record.activity_ratio = activity_ratio if active else 0.0
        self._monitor.record(domain, record.activity_ratio)

    # ------------------------------------------------------------------ #
    # Package power-state flow
    # ------------------------------------------------------------------ #
    @property
    def power_state(self) -> PackageCState:
        """The current package power state."""
        return self._power_state

    def enter_power_state(self, state: PackageCState) -> float:
        """Transition to ``state``; returns the transition latency in seconds.

        Only the C6 entry/exit latencies are modelled explicitly because they
        are the ones FlexWatts' mode-switch flow pays; other transitions are
        treated as instantaneous at this level of abstraction.
        """
        if state == self._power_state:
            return 0.0
        latency = 0.0
        if state is PackageCState.C6:
            latency = PACKAGE_C6_ENTRY_LATENCY_S
        elif self._power_state is PackageCState.C6 and state in (
            PackageCState.C0,
            PackageCState.C0_MIN,
        ):
            latency = PACKAGE_C6_EXIT_LATENCY_S
        self._power_state = state
        self._time_s += latency
        return latency

    # ------------------------------------------------------------------ #
    # Workload classification and telemetry
    # ------------------------------------------------------------------ #
    def classify_workload(self) -> WorkloadType:
        """Classify the running workload from domain activity (Sec. 6).

        If the graphics engines are active the workload is graphics; if more
        than one core is active (graphics idle) it is multi-threaded; if one
        core is active it is single-threaded; otherwise the package is idle.
        """
        if self._domains[DomainKind.GFX].active:
            return WorkloadType.GRAPHICS
        active_cores = sum(
            1
            for kind in (DomainKind.CORE0, DomainKind.CORE1)
            if self._domains[kind].active
        )
        if active_cores > 1:
            return WorkloadType.CPU_MULTI_THREAD
        if active_cores == 1:
            return WorkloadType.CPU_SINGLE_THREAD
        return WorkloadType.IDLE

    def estimate_application_ratio(self) -> float:
        """Power-weighted package AR estimate from the activity sensors."""
        domain_power = {kind: record.power_w for kind, record in self._domains.items()}
        return self._monitor.package_application_ratio(domain_power)

    def telemetry(self) -> PmuTelemetry:
        """Snapshot of the four Algorithm-1 inputs."""
        return PmuTelemetry(
            tdp_w=self._tdp_w,
            application_ratio=self.estimate_application_ratio(),
            workload_type=self.classify_workload(),
            power_state=self._power_state,
        )

    @property
    def has_telemetry_listeners(self) -> bool:
        """Whether any telemetry listener is registered.

        Emitters on hot paths (the interval simulator emits per phase) check
        this first so snapshots are only built when someone is listening.
        """
        return bool(self._telemetry_listeners)

    def add_telemetry_listener(
        self, listener: Callable[[PmuTelemetry], None]
    ) -> None:
        """Register a callback invoked on every telemetry emission.

        The interval simulator emits one snapshot per simulated workload phase
        (:meth:`emit_telemetry`), which is how scenario analyses observe the
        PMU-visible trajectory of a trace without instrumenting the engine.
        """
        self._telemetry_listeners.append(listener)

    def emit_telemetry(
        self, telemetry: Optional[PmuTelemetry] = None
    ) -> PmuTelemetry:
        """Notify every listener of a telemetry snapshot and return it.

        With no explicit ``telemetry`` the PMU's own :meth:`telemetry`
        snapshot is emitted; callers that know the operating point exactly
        (the interval simulator, whose phases are analytic) pass the oracle
        snapshot instead.
        """
        snapshot = telemetry if telemetry is not None else self.telemetry()
        for listener in self._telemetry_listeners:
            listener(snapshot)
        return snapshot

    # ------------------------------------------------------------------ #
    # Validation helpers
    # ------------------------------------------------------------------ #
    def require_idle_compute(self) -> None:
        """Raise unless the compute domains are idle (guard for mode switching)."""
        busy = [
            kind.value
            for kind in (DomainKind.CORE0, DomainKind.CORE1, DomainKind.GFX, DomainKind.LLC)
            if self._domains[kind].active
        ]
        if busy and self._power_state not in (
            PackageCState.C6,
            PackageCState.C7,
            PackageCState.C8,
        ):
            raise ModelDomainError(
                "compute domains must be idle (package C6 or deeper) before "
                "reconfiguring the hybrid PDN; still active: " + ", ".join(busy)
            )
