"""SoC substrate: the modelled client processor and its power-management unit.

* :mod:`repro.soc.dvfs` -- voltage/frequency curves of the compute domains and
  the sustained operating point each TDP supports.
* :mod:`repro.soc.processor` -- the processor model that assembles per-domain
  loads for a TDP + workload combination.
* :mod:`repro.soc.activity_sensors` -- the activity sensors the PMU uses to
  estimate the application ratio at runtime (Sec. 6).
* :mod:`repro.soc.pmu` -- a behavioural power-management unit: package
  C-state bookkeeping, workload-type classification and the firmware hooks
  FlexWatts' mode switching relies on.
* :mod:`repro.soc.turbo` -- a simple Turbo-Boost model (short excursions above
  the sustained operating point within the TDP's energy budget).
"""

from repro.soc.dvfs import (
    VoltageFrequencyCurve,
    CORE_VF_CURVE,
    GFX_VF_CURVE,
    compute_voltage_for_tdp,
    gfx_voltage_for_tdp,
    sustained_core_frequency_ghz,
    sustained_gfx_frequency_ghz,
)
from repro.soc.processor import Processor, ProcessorConfiguration
from repro.soc.activity_sensors import ActivityEvent, ActivitySensor, ActivityMonitor
from repro.soc.pmu import PowerManagementUnit, PmuTelemetry
from repro.soc.turbo import TurboBoostModel

__all__ = [
    "VoltageFrequencyCurve",
    "CORE_VF_CURVE",
    "GFX_VF_CURVE",
    "compute_voltage_for_tdp",
    "gfx_voltage_for_tdp",
    "sustained_core_frequency_ghz",
    "sustained_gfx_frequency_ghz",
    "Processor",
    "ProcessorConfiguration",
    "ActivityEvent",
    "ActivitySensor",
    "ActivityMonitor",
    "PowerManagementUnit",
    "PmuTelemetry",
    "TurboBoostModel",
]
