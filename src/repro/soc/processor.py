"""The modelled client processor.

:class:`Processor` ties the pieces of the SoC substrate together: it owns the
static domain descriptions (Table 1), the DVFS curves, the nominal-power
curves (Table 2), and it produces the per-domain loads (``DomainLoad``) that
the PDN models consume for any combination of TDP, workload and package power
state.  It is the model equivalent of the Broadwell/Skylake parts the paper
measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.power.domains import (
    DEFAULT_DOMAINS,
    Domain,
    DomainKind,
    DomainLoad,
    NominalPowerCurves,
    WorkloadType,
)
from repro.power.power_states import PackageCState, POWER_STATE_PROFILES
from repro.power.thermal import ThermalModel
from repro.soc.dvfs import (
    CORE_VF_CURVE,
    GFX_VF_CURVE,
    sustained_core_frequency_ghz,
    sustained_gfx_frequency_ghz,
)
from repro.util.errors import ConfigurationError, ModelDomainError
from repro.util.validation import require_positive


@dataclass(frozen=True)
class ProcessorConfiguration:
    """Static configuration of a modelled processor.

    Attributes
    ----------
    name:
        Human-readable name (e.g. ``"client-2c-gt2"``).
    tdp_w:
        The configured thermal design power (cTDP); the paper sweeps this
        between 4 W and 50 W.
    core_count:
        Number of CPU cores (the modelled part has two, sharing one
        clock/voltage domain).
    domains:
        Static domain descriptions; defaults to Table 1/2.
    curves:
        Nominal-power-versus-TDP curves; defaults to Table 2.
    """

    name: str = "client-2c-gt2"
    tdp_w: float = 15.0
    core_count: int = 2
    domains: Dict[DomainKind, Domain] = field(default_factory=lambda: dict(DEFAULT_DOMAINS))
    curves: NominalPowerCurves = field(default_factory=NominalPowerCurves)

    def __post_init__(self) -> None:
        require_positive(self.tdp_w, "tdp_w")
        if self.core_count < 1:
            raise ConfigurationError("core_count must be at least 1")
        missing = [kind for kind in DomainKind if kind not in self.domains]
        if missing:
            raise ConfigurationError(
                "processor configuration missing domains: "
                + ", ".join(kind.value for kind in missing)
            )


class Processor:
    """Behavioural model of the client processor of Table 1."""

    def __init__(self, configuration: Optional[ProcessorConfiguration] = None):
        self.configuration = configuration if configuration is not None else ProcessorConfiguration()

    @property
    def tdp_w(self) -> float:
        """The processor's configured TDP."""
        return self.configuration.tdp_w

    @property
    def thermal_model(self) -> ThermalModel:
        """Default (fan-less performance) thermal scenario for this TDP."""
        return ThermalModel.for_performance_workload(self.configuration.tdp_w)

    # ------------------------------------------------------------------ #
    # Operating points
    # ------------------------------------------------------------------ #
    def sustained_core_frequency_ghz(self) -> float:
        """CPU core frequency sustainable within the configured TDP."""
        return sustained_core_frequency_ghz(self.configuration.tdp_w)

    def sustained_gfx_frequency_ghz(self) -> float:
        """Graphics frequency sustainable within the configured TDP."""
        return sustained_gfx_frequency_ghz(self.configuration.tdp_w)

    def core_voltage_v(self, frequency_ghz: Optional[float] = None) -> float:
        """CPU core voltage at ``frequency_ghz`` (default: the sustained frequency)."""
        if frequency_ghz is None:
            frequency_ghz = self.sustained_core_frequency_ghz()
        return CORE_VF_CURVE.voltage_for_frequency(frequency_ghz)

    def gfx_voltage_v(self, frequency_ghz: Optional[float] = None) -> float:
        """Graphics voltage at ``frequency_ghz`` (default: the sustained frequency)."""
        if frequency_ghz is None:
            frequency_ghz = self.sustained_gfx_frequency_ghz()
        return GFX_VF_CURVE.voltage_for_frequency(frequency_ghz)

    # ------------------------------------------------------------------ #
    # Load generation
    # ------------------------------------------------------------------ #
    def loads_for_workload(self, workload_type: WorkloadType) -> List[DomainLoad]:
        """Per-domain loads for an active workload at the sustained operating point."""
        config = self.configuration
        curves = config.curves
        tdp = config.tdp_w
        core_voltage = self.core_voltage_v()
        graphics = workload_type is WorkloadType.GRAPHICS
        gfx_voltage = self.gfx_voltage_v() if graphics else GFX_VF_CURVE.min_voltage_v
        llc_voltage = gfx_voltage if graphics else core_voltage
        cores_power = curves.cores_power_w(tdp, workload_type)
        gfx_power = curves.gfx_power_w(tdp, workload_type)
        llc_power = curves.llc_power_w(tdp, workload_type)
        sa_power, io_power = curves.uncore_power_w(tdp)
        domains = config.domains
        per_core_power = cores_power / config.core_count
        loads: List[DomainLoad] = []
        for index, kind in enumerate((DomainKind.CORE0, DomainKind.CORE1)):
            core_active = workload_type is not WorkloadType.IDLE and (
                index == 0 or workload_type is not WorkloadType.CPU_SINGLE_THREAD
            )
            loads.append(
                DomainLoad(
                    kind=kind,
                    nominal_power_w=per_core_power if core_active else curves.idle_compute_w,
                    voltage_v=core_voltage,
                    leakage_fraction=domains[kind].leakage_fraction,
                    active=True,
                )
            )
        loads.append(
            DomainLoad(
                kind=DomainKind.LLC,
                nominal_power_w=llc_power,
                voltage_v=llc_voltage,
                leakage_fraction=domains[DomainKind.LLC].leakage_fraction,
            )
        )
        loads.append(
            DomainLoad(
                kind=DomainKind.GFX,
                nominal_power_w=gfx_power,
                voltage_v=gfx_voltage,
                leakage_fraction=domains[DomainKind.GFX].leakage_fraction,
                active=graphics or gfx_power > 0.0,
            )
        )
        loads.append(
            DomainLoad(
                kind=DomainKind.SA,
                nominal_power_w=sa_power,
                voltage_v=domains[DomainKind.SA].fixed_voltage_v,
                leakage_fraction=domains[DomainKind.SA].leakage_fraction,
                power_gated_rail=False,
            )
        )
        loads.append(
            DomainLoad(
                kind=DomainKind.IO,
                nominal_power_w=io_power,
                voltage_v=domains[DomainKind.IO].fixed_voltage_v,
                leakage_fraction=domains[DomainKind.IO].leakage_fraction,
                power_gated_rail=False,
            )
        )
        return loads

    def loads_for_power_state(self, power_state: PackageCState) -> List[DomainLoad]:
        """Per-domain loads for a package power state (C0_MIN and deeper)."""
        if power_state not in POWER_STATE_PROFILES:
            raise ModelDomainError(
                f"power state {power_state} has no default profile; "
                "use loads_for_workload for C0"
            )
        return POWER_STATE_PROFILES[power_state].loads()

    def nominal_power_w(self, workload_type: WorkloadType) -> float:
        """Total nominal domain power at the sustained operating point."""
        return sum(load.effective_power_w for load in self.loads_for_workload(workload_type))
