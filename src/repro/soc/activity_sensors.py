"""Activity sensors: the PMU's runtime proxy for the application ratio.

Sec. 6 of the paper explains how a modern power-management unit estimates the
application ratio (AR) at runtime: each domain implements activity sensors
that count internal events -- active execution ports, memory stalls, the width
of the vector instructions being executed -- and periodically (about every
millisecond) sends a calibrated weighted sum of those counts to the PMU.  The
weights are calibrated post-silicon so that the weighted sum is a good proxy
of AR.

We model exactly that pipeline: an :class:`ActivityEvent` vocabulary, a
per-domain :class:`ActivitySensor` holding calibrated weights, and an
:class:`ActivityMonitor` that aggregates per-domain readings into the
processor-level AR estimate consumed by FlexWatts' mode predictor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping

from repro.power.domains import DomainKind
from repro.util.errors import ConfigurationError
from repro.util.validation import require_fraction, require_non_negative


class ActivityEvent(enum.Enum):
    """Micro-architectural events counted by the activity sensors."""

    EXECUTION_PORT_ACTIVE = "execution_port_active"
    MEMORY_STALL = "memory_stall"
    SCALAR_INSTRUCTION = "scalar_instruction"
    VECTOR_128_INSTRUCTION = "vector_128_instruction"
    VECTOR_256_INSTRUCTION = "vector_256_instruction"
    VECTOR_512_INSTRUCTION = "vector_512_instruction"
    CACHE_ACCESS = "cache_access"
    TEXTURE_SAMPLE = "texture_sample"
    SHADER_ACTIVE = "shader_active"
    DISPLAY_REFRESH = "display_refresh"


#: Post-silicon calibrated weights: the relative contribution of one event of
#: each type to a domain's switching activity.  Wider vector instructions
#: toggle more transistors and therefore carry larger weights.
DEFAULT_EVENT_WEIGHTS: Dict[ActivityEvent, float] = {
    ActivityEvent.EXECUTION_PORT_ACTIVE: 0.6,
    ActivityEvent.MEMORY_STALL: 0.05,
    ActivityEvent.SCALAR_INSTRUCTION: 0.4,
    ActivityEvent.VECTOR_128_INSTRUCTION: 0.7,
    ActivityEvent.VECTOR_256_INSTRUCTION: 0.85,
    ActivityEvent.VECTOR_512_INSTRUCTION: 1.0,
    ActivityEvent.CACHE_ACCESS: 0.3,
    ActivityEvent.TEXTURE_SAMPLE: 0.8,
    ActivityEvent.SHADER_ACTIVE: 0.9,
    ActivityEvent.DISPLAY_REFRESH: 0.1,
}


@dataclass
class ActivitySensor:
    """One domain's activity sensor.

    Parameters
    ----------
    domain:
        The domain this sensor instruments.
    weights:
        Calibrated per-event weights; defaults to the library-wide calibration.
    reference_events_per_interval:
        The weighted event sum produced by the power-virus workload in one
        reporting interval; readings are normalised against it so the output
        is an AR-like fraction in [0, 1].
    """

    domain: DomainKind
    weights: Mapping[ActivityEvent, float] = field(
        default_factory=lambda: dict(DEFAULT_EVENT_WEIGHTS)
    )
    reference_events_per_interval: float = 1000.0

    def __post_init__(self) -> None:
        require_non_negative(self.reference_events_per_interval, "reference_events_per_interval")
        if self.reference_events_per_interval == 0.0:
            raise ConfigurationError("reference_events_per_interval must be positive")
        for event, weight in self.weights.items():
            require_non_negative(weight, f"weight[{event}]")

    def reading(self, event_counts: Mapping[ActivityEvent, float]) -> float:
        """Convert raw event counts from one interval into an AR-like reading."""
        weighted = 0.0
        for event, count in event_counts.items():
            require_non_negative(count, f"count[{event}]")
            weighted += self.weights.get(event, 0.0) * count
        return min(1.0, weighted / self.reference_events_per_interval)


class ActivityMonitor:
    """Aggregates per-domain sensor readings into the package-level AR estimate.

    The aggregation is power-weighted: a domain that contributes more of the
    package's power also contributes more to the package activity estimate,
    matching how the PMU uses the estimate (to bound peak package current).
    """

    def __init__(self, sensors: Iterable[ActivitySensor] = None):
        if sensors is None:
            sensors = [ActivitySensor(domain=kind) for kind in DomainKind]
        self._sensors: Dict[DomainKind, ActivitySensor] = {}
        for sensor in sensors:
            if sensor.domain in self._sensors:
                raise ConfigurationError(f"duplicate sensor for domain {sensor.domain}")
            self._sensors[sensor.domain] = sensor
        self._last_readings: Dict[DomainKind, float] = {}

    @property
    def sensors(self) -> Dict[DomainKind, ActivitySensor]:
        """The per-domain sensors owned by this monitor."""
        return dict(self._sensors)

    def record(self, domain: DomainKind, reading: float) -> None:
        """Record a pre-normalised AR reading for ``domain`` (used by simulators)."""
        require_fraction(reading, "reading")
        self._last_readings[domain] = reading

    def record_events(
        self, domain: DomainKind, event_counts: Mapping[ActivityEvent, float]
    ) -> float:
        """Convert and record raw event counts for ``domain``; returns the reading."""
        if domain not in self._sensors:
            raise ConfigurationError(f"no sensor configured for domain {domain}")
        reading = self._sensors[domain].reading(event_counts)
        self._last_readings[domain] = reading
        return reading

    def package_application_ratio(
        self, domain_power_w: Mapping[DomainKind, float]
    ) -> float:
        """Power-weighted package AR estimate from the latest per-domain readings."""
        total_power = sum(max(0.0, p) for p in domain_power_w.values())
        if total_power == 0.0:
            return 0.0
        weighted = 0.0
        for domain, power_w in domain_power_w.items():
            reading = self._last_readings.get(domain, 0.0)
            weighted += reading * max(0.0, power_w)
        return min(1.0, weighted / total_power)
