"""A simple Turbo-Boost model.

Modern client processors briefly exceed their sustained operating point when
thermal headroom is available (Intel Turbo Boost, Sec. 1/2 of the paper).
Turbo matters to PDN design because the *peak* current a PDN must support is
set by these excursions, and because FlexWatts switches its hybrid regulators
to IVR-Mode when a high-power (Turbo) workload is requested (Sec. 7.1).

The model is a budget/bucket model: running below the TDP accumulates energy
credit (up to a cap), and Turbo spends that credit at a higher power level
until it is exhausted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ModelDomainError
from repro.util.validation import require_non_negative, require_positive


@dataclass
class TurboBoostModel:
    """Energy-credit Turbo model.

    Attributes
    ----------
    tdp_w:
        The sustained power limit (PL1 in Intel terminology).
    turbo_power_w:
        The short-term power limit during Turbo (PL2), typically ~1.25-2x TDP.
    credit_capacity_j:
        Maximum accumulated energy credit (the size of the thermal "bucket").
    credit_j:
        Currently accumulated credit.
    """

    tdp_w: float
    turbo_power_w: float
    credit_capacity_j: float = 10.0
    credit_j: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.tdp_w, "tdp_w")
        require_positive(self.turbo_power_w, "turbo_power_w")
        require_positive(self.credit_capacity_j, "credit_capacity_j")
        require_non_negative(self.credit_j, "credit_j")
        if self.turbo_power_w < self.tdp_w:
            raise ModelDomainError("turbo_power_w must be at least the TDP")
        self.credit_j = min(self.credit_j, self.credit_capacity_j)

    @classmethod
    def for_tdp(cls, tdp_w: float, boost_ratio: float = 1.5) -> "TurboBoostModel":
        """Build a Turbo model with a conventional PL2/PL1 ratio."""
        require_positive(boost_ratio, "boost_ratio")
        return cls(tdp_w=tdp_w, turbo_power_w=tdp_w * boost_ratio, credit_capacity_j=2.5 * tdp_w)

    def accumulate(self, package_power_w: float, interval_s: float) -> None:
        """Account one interval of execution at ``package_power_w``.

        Running below TDP earns credit; running above TDP spends it.
        """
        require_non_negative(package_power_w, "package_power_w")
        require_non_negative(interval_s, "interval_s")
        delta_j = (self.tdp_w - package_power_w) * interval_s
        self.credit_j = max(0.0, min(self.credit_capacity_j, self.credit_j + delta_j))

    def available_power_w(self) -> float:
        """Package power currently allowed (TDP, or the Turbo limit with credit)."""
        return self.turbo_power_w if self.credit_j > 0.0 else self.tdp_w

    def turbo_duration_s(self, package_power_w: float) -> float:
        """How long Turbo can sustain ``package_power_w`` with the current credit."""
        require_positive(package_power_w, "package_power_w")
        overshoot_w = package_power_w - self.tdp_w
        if overshoot_w <= 0.0:
            return float("inf")
        return self.credit_j / overshoot_w
